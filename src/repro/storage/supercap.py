"""Super-capacitor energy storage.

SCs trade capacity for efficiency (90-95 %, Sec. VI-B) and effectively
unlimited power density at these scales; they absorb the fast component
of the TEG power mismatch in the hybrid buffer.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import PhysicalRangeError


@dataclass
class SuperCapacitor:
    """A super-capacitor bank.

    Attributes
    ----------
    capacity_wh:
        Usable energy (small — SCs are power devices, not energy devices).
    round_trip_efficiency:
        0.90-0.95 per the paper.
    soc:
        Initial state of charge.
    """

    capacity_wh: float = 2.0
    round_trip_efficiency: float = 0.93
    soc: float = 0.5

    def __post_init__(self) -> None:
        if self.capacity_wh <= 0:
            raise PhysicalRangeError("capacity must be > 0")
        if not 0.0 < self.round_trip_efficiency <= 1.0:
            raise PhysicalRangeError(
                "round-trip efficiency must be in (0, 1]")
        if not 0.0 <= self.soc <= 1.0:
            raise PhysicalRangeError("soc must be in [0, 1]")

    @property
    def stored_wh(self) -> float:
        """Currently stored energy."""
        return self.soc * self.capacity_wh

    @property
    def headroom_wh(self) -> float:
        """Energy that can still be stored."""
        return (1.0 - self.soc) * self.capacity_wh

    def charge(self, power_w: float, duration_s: float) -> float:
        """Charge; returns the power actually accepted (headroom-limited)."""
        if power_w < 0 or duration_s < 0:
            raise PhysicalRangeError("power and duration must be >= 0")
        one_way = self.round_trip_efficiency ** 0.5
        energy_in_wh = power_w * duration_s / 3600.0 * one_way
        accepted_w = power_w
        if energy_in_wh > self.headroom_wh:
            energy_in_wh = self.headroom_wh
            accepted_w = (energy_in_wh / one_way) / (duration_s / 3600.0) \
                if duration_s > 0 else 0.0
        self.soc += energy_in_wh / self.capacity_wh
        return accepted_w

    def discharge(self, power_w: float, duration_s: float) -> float:
        """Discharge; returns the power actually delivered (SoC-limited)."""
        if power_w < 0 or duration_s < 0:
            raise PhysicalRangeError("power and duration must be >= 0")
        one_way = self.round_trip_efficiency ** 0.5
        energy_out_wh = power_w * duration_s / 3600.0 / one_way
        delivered_w = power_w
        if energy_out_wh > self.stored_wh:
            energy_out_wh = self.stored_wh
            delivered_w = (energy_out_wh * one_way) / (duration_s / 3600.0) \
                if duration_s > 0 else 0.0
        self.soc -= energy_out_wh / self.capacity_wh
        return delivered_w

"""Energy storage for TEG output (Sec. VI-B).

TEG output is fluctuant and time-varying; connecting it directly to loads
would over- or under-supply them.  The paper points to hybrid energy
buffers — batteries for capacity, super-capacitors (SCs) for efficiency
and power density — after Liu et al. (ISCA'15).

* :mod:`repro.storage.battery` — a round-trip-efficiency battery model;
* :mod:`repro.storage.supercap` — a high-efficiency, low-capacity SC;
* :mod:`repro.storage.hybrid` — the hybrid buffer policy that splits
  power mismatches between the two.
"""

from .battery import Battery
from .supercap import SuperCapacitor
from .hybrid import HybridEnergyBuffer, BufferTelemetry

__all__ = [
    "Battery",
    "SuperCapacitor",
    "HybridEnergyBuffer",
    "BufferTelemetry",
]

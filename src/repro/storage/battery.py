"""Battery energy storage.

A simple state-of-charge model with asymmetric round-trip losses and
power limits — adequate for sizing the small per-rack buffers Sec. VI-B
proposes for TEG output smoothing.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import PhysicalRangeError


@dataclass
class Battery:
    """A battery characterised by capacity, efficiency and power limits.

    Attributes
    ----------
    capacity_wh:
        Usable energy capacity.
    round_trip_efficiency:
        Fraction of charged energy recoverable on discharge (~0.80 for
        lead-acid, ~0.90 for Li-ion; the paper contrasts this with
        SCs' 0.90-0.95).
    max_charge_w / max_discharge_w:
        Power limits.
    soc:
        Initial state of charge as a fraction of capacity.
    """

    capacity_wh: float = 50.0
    round_trip_efficiency: float = 0.80
    max_charge_w: float = 100.0
    max_discharge_w: float = 100.0
    soc: float = 0.5
    cycle_depth_wh: float = field(default=0.0, init=False)

    def __post_init__(self) -> None:
        if self.capacity_wh <= 0:
            raise PhysicalRangeError("capacity must be > 0")
        if not 0.0 < self.round_trip_efficiency <= 1.0:
            raise PhysicalRangeError(
                "round-trip efficiency must be in (0, 1]")
        if self.max_charge_w <= 0 or self.max_discharge_w <= 0:
            raise PhysicalRangeError("power limits must be > 0")
        if not 0.0 <= self.soc <= 1.0:
            raise PhysicalRangeError("soc must be in [0, 1]")

    @property
    def stored_wh(self) -> float:
        """Currently stored energy."""
        return self.soc * self.capacity_wh

    @property
    def headroom_wh(self) -> float:
        """Energy that can still be stored."""
        return (1.0 - self.soc) * self.capacity_wh

    def charge(self, power_w: float, duration_s: float) -> float:
        """Charge at ``power_w`` for ``duration_s``.

        Returns the power actually accepted (limited by the charge rate
        and remaining headroom).  Charging losses are applied on the way
        in (sqrt of the round-trip efficiency per direction).
        """
        if power_w < 0 or duration_s < 0:
            raise PhysicalRangeError("power and duration must be >= 0")
        accepted_w = min(power_w, self.max_charge_w)
        one_way = self.round_trip_efficiency ** 0.5
        energy_in_wh = accepted_w * duration_s / 3600.0 * one_way
        if energy_in_wh > self.headroom_wh:
            energy_in_wh = self.headroom_wh
            accepted_w = (energy_in_wh / one_way) / (duration_s / 3600.0) \
                if duration_s > 0 else 0.0
        self.soc += energy_in_wh / self.capacity_wh
        self.cycle_depth_wh += energy_in_wh
        return accepted_w

    def discharge(self, power_w: float, duration_s: float) -> float:
        """Discharge at ``power_w`` for ``duration_s``.

        Returns the power actually delivered (limited by the discharge
        rate and stored energy).  Discharge losses are applied on the way
        out.
        """
        if power_w < 0 or duration_s < 0:
            raise PhysicalRangeError("power and duration must be >= 0")
        delivered_w = min(power_w, self.max_discharge_w)
        one_way = self.round_trip_efficiency ** 0.5
        energy_out_wh = delivered_w * duration_s / 3600.0 / one_way
        if energy_out_wh > self.stored_wh:
            energy_out_wh = self.stored_wh
            delivered_w = (energy_out_wh * one_way) / (duration_s / 3600.0) \
                if duration_s > 0 else 0.0
        self.soc -= energy_out_wh / self.capacity_wh
        self.cycle_depth_wh += energy_out_wh
        return delivered_w

"""Hybrid energy buffer: SC for the fast mismatch, battery for the bulk.

Sec. VI-B proposes a small-scale hybrid buffering system (after HEB,
Liu et al. ISCA'15) between the TEG modules and the loads they supply.
The split rule implemented here is the standard one: the super-capacitor
absorbs/serves the power mismatch first (it is the more efficient,
power-dense device), and the battery handles whatever the SC cannot.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import PhysicalRangeError
from .battery import Battery
from .supercap import SuperCapacitor


@dataclass(frozen=True)
class BufferTelemetry:
    """Time series recorded while the buffer smooths a generation profile."""

    times_s: np.ndarray
    supplied_w: np.ndarray
    deficit_w: np.ndarray
    curtailed_w: np.ndarray
    battery_soc: np.ndarray
    supercap_soc: np.ndarray

    @property
    def coverage(self) -> float:
        """Fraction of demanded energy actually supplied."""
        demanded = self.supplied_w + self.deficit_w
        total = demanded.sum()
        if total <= 0:
            return 1.0
        return float(self.supplied_w.sum() / total)

    @property
    def curtailment_fraction(self) -> float:
        """Fraction of generated energy thrown away (buffers full)."""
        generated = self.supplied_w + self.curtailed_w
        total = generated.sum()
        if total <= 0:
            return 0.0
        return float(self.curtailed_w.sum() / total)


@dataclass
class HybridEnergyBuffer:
    """SC + battery buffer between TEG generation and a load."""

    battery: Battery = field(default_factory=Battery)
    supercap: SuperCapacitor = field(default_factory=SuperCapacitor)

    def step(self, generation_w: float, demand_w: float,
             duration_s: float) -> tuple[float, float, float]:
        """Process one interval.

        Parameters
        ----------
        generation_w:
            TEG output during the interval.
        demand_w:
            Load demand during the interval.
        duration_s:
            Interval length.

        Returns
        -------
        (supplied_w, deficit_w, curtailed_w)
            Power delivered to the load, unmet demand, and surplus
            generation that could not be stored.
        """
        if generation_w < 0 or demand_w < 0 or duration_s <= 0:
            raise PhysicalRangeError(
                "generation/demand must be >= 0 and duration > 0")
        direct = min(generation_w, demand_w)
        surplus = generation_w - direct
        shortfall = demand_w - direct

        curtailed = 0.0
        if surplus > 0:
            accepted_sc = self.supercap.charge(surplus, duration_s)
            remaining = surplus - accepted_sc
            accepted_batt = self.battery.charge(remaining, duration_s) \
                if remaining > 0 else 0.0
            curtailed = max(0.0, surplus - accepted_sc - accepted_batt)

        served_from_storage = 0.0
        if shortfall > 0:
            from_sc = self.supercap.discharge(shortfall, duration_s)
            remaining = shortfall - from_sc
            from_batt = self.battery.discharge(remaining, duration_s) \
                if remaining > 0 else 0.0
            served_from_storage = from_sc + from_batt

        supplied = direct + served_from_storage
        deficit = max(0.0, demand_w - supplied)
        return supplied, deficit, curtailed

    def smooth(self, generation_w: np.ndarray, demand_w: float,
               interval_s: float) -> BufferTelemetry:
        """Run a whole generation profile against a constant demand.

        The typical H2P use case: a TEG module (fluctuating with the
        cooling setting) powering a constant load such as LED lighting
        (Sec. VI-C2).
        """
        generation = np.asarray(generation_w, dtype=float)
        if generation.ndim != 1 or generation.size == 0:
            raise PhysicalRangeError(
                "generation profile must be a non-empty 1-D array")
        supplied = np.empty_like(generation)
        deficit = np.empty_like(generation)
        curtailed = np.empty_like(generation)
        batt_soc = np.empty_like(generation)
        sc_soc = np.empty_like(generation)
        for i, gen in enumerate(generation):
            supplied[i], deficit[i], curtailed[i] = self.step(
                float(gen), demand_w, interval_s)
            batt_soc[i] = self.battery.soc
            sc_soc[i] = self.supercap.soc
        return BufferTelemetry(
            times_s=np.arange(len(generation)) * interval_s,
            supplied_w=supplied,
            deficit_w=deficit,
            curtailed_w=curtailed,
            battery_soc=batt_soc,
            supercap_soc=sc_soc,
        )

"""Environmental profiles: ambient wet-bulb and natural cold sources.

The paper fixes the TEG cold side at 20 °C (Qiandao Lake deep water is
"15-20 °C perennially") and lets the cooling tower do the facility-side
work.  Real deployments see diurnal and seasonal swings in both; this
module provides smooth profiles so sensitivity studies (benchmark E-AB4)
and multi-day simulations can vary them.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from .errors import PhysicalRangeError

_SECONDS_PER_DAY = 86_400.0
_SECONDS_PER_YEAR = 365.0 * _SECONDS_PER_DAY


@dataclass(frozen=True)
class WetBulbProfile:
    """Diurnal + seasonal ambient wet-bulb temperature model.

    ``T(t) = annual_mean + seasonal*cos(year phase) + diurnal*cos(day
    phase)`` with the warmest day at ``peak_day_of_year`` and the warmest
    hour at ``peak_hour``.
    """

    annual_mean_c: float = 16.0
    seasonal_amplitude_c: float = 8.0
    diurnal_amplitude_c: float = 3.0
    peak_day_of_year: float = 200.0
    peak_hour: float = 15.0

    def __post_init__(self) -> None:
        if self.seasonal_amplitude_c < 0 or self.diurnal_amplitude_c < 0:
            raise PhysicalRangeError("amplitudes must be >= 0")

    def at(self, t_seconds: float) -> float:
        """Wet-bulb temperature at ``t_seconds`` from year start, degC."""
        day = t_seconds / _SECONDS_PER_DAY
        seasonal = self.seasonal_amplitude_c * math.cos(
            2.0 * math.pi * (day - self.peak_day_of_year) / 365.0)
        hour = (t_seconds % _SECONDS_PER_DAY) / 3600.0
        diurnal = self.diurnal_amplitude_c * math.cos(
            2.0 * math.pi * (hour - self.peak_hour) / 24.0)
        return self.annual_mean_c + seasonal + diurnal


@dataclass(frozen=True)
class ColdSourceProfile:
    """Natural-water cold source with seasonal drift and thermal inertia.

    Deep lake/sea water follows the seasons with a damped amplitude and a
    lag (water heats slower than air).  Defaults model a Qiandao-Lake-
    class source: 17.5 ± 2.5 °C, warmest ~6 weeks after midsummer.
    """

    annual_mean_c: float = 17.5
    seasonal_amplitude_c: float = 2.5
    peak_day_of_year: float = 240.0

    def __post_init__(self) -> None:
        if self.seasonal_amplitude_c < 0:
            raise PhysicalRangeError("amplitude must be >= 0")
        if self.annual_mean_c < 0 or self.annual_mean_c > 40:
            raise PhysicalRangeError(
                "natural water mean outside the plausible 0-40 C")

    def at(self, t_seconds: float) -> float:
        """Cold-source temperature at ``t_seconds`` from year start."""
        day = t_seconds / _SECONDS_PER_DAY
        return self.annual_mean_c + self.seasonal_amplitude_c * math.cos(
            2.0 * math.pi * (day - self.peak_day_of_year) / 365.0)

    def range_c(self) -> tuple[float, float]:
        """The (min, max) the profile spans over a year."""
        return (self.annual_mean_c - self.seasonal_amplitude_c,
                self.annual_mean_c + self.seasonal_amplitude_c)


#: Named climates for sensitivity studies.  Wet-bulb means/amplitudes are
#: representative of the cited deployment regions (Sec. I-II).
CLIMATES: dict[str, WetBulbProfile] = {
    # Qiandao Lake region (subtropical, humid).
    "hangzhou": WetBulbProfile(annual_mean_c=16.0, seasonal_amplitude_c=9.0,
                               diurnal_amplitude_c=2.5),
    # Tropical, hot all year round (the paper's Singapore example).
    "singapore": WetBulbProfile(annual_mean_c=25.5,
                                seasonal_amplitude_c=1.0,
                                diurnal_amplitude_c=1.5),
    # High latitude with cold winters (the district-heating belt).
    "stockholm": WetBulbProfile(annual_mean_c=6.0,
                                seasonal_amplitude_c=9.5,
                                diurnal_amplitude_c=2.0),
}

"""Programmatic access to every figure's data series.

Each ``fig*_data`` function regenerates the series behind one figure of
the paper and returns plain dictionaries of numpy arrays — ready for any
plotting library (none is required by this package).  The benchmark
suite asserts on the *shapes* of these series; this module is the public
way to get the numbers themselves.

>>> from repro.figures import fig8_data
>>> data = fig8_data()
>>> data["voltage_v"][12][-1]   # Voc of 12 TEGs at the largest dT
6.5...
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from .constants import CPU_SAFE_TEMP_C
from .control.lookup_space import LookupSpace
from .core.config import teg_loadbalance, teg_original
from .core.engine import compare_batch
from .errors import PhysicalRangeError
from .teg.module import TegString
from .teg.placement import FIG3_PHASES, PlacementStudy
from .thermal.cpu_model import CoolingSetting, CpuThermalModel
from .workloads.synthetic import trace_by_name


def fig3_data(output_dt_s: float = 10.0) -> dict:
    """Fig. 3: the TEG-sandwich transient (both CPU branches)."""
    outcome = PlacementStudy().run(FIG3_PHASES, output_dt_s=output_dt_s)
    return {
        "times_s": outcome.times_s,
        "cpu0_temp_c": outcome.sandwiched.temperatures_c["cpu"],
        "cpu1_temp_c": outcome.direct.temperatures_c["cpu"],
        "teg_voltage_v": outcome.teg_voltage_v,
    }


def fig7_data(flows_l_per_h: Sequence[float] = (50.0, 100.0, 200.0,
                                                300.0),
              deltas_c: Sequence[float] | None = None) -> dict:
    """Fig. 7: Voc of 6 series TEGs vs dT at several flow rates."""
    deltas = np.asarray(deltas_c if deltas_c is not None
                        else np.arange(0.0, 26.0, 1.0))
    string = TegString(count=6)
    return {
        "deltas_c": deltas,
        "voltage_v": {
            float(flow): np.array([
                string.open_circuit_voltage_v(float(d), float(flow))
                for d in deltas])
            for flow in flows_l_per_h
        },
    }


def fig8_data(counts: Sequence[int] = (1, 3, 6, 12),
              deltas_c: Sequence[float] | None = None) -> dict:
    """Fig. 8: Voc (a) and max power (b) vs dT for n TEGs in series."""
    deltas = np.asarray(deltas_c if deltas_c is not None
                        else np.arange(0.0, 26.0, 1.0))
    voltage = {}
    power = {}
    for count in counts:
        string = TegString(count=int(count))
        voltage[int(count)] = np.array(
            [string.open_circuit_voltage_v(float(d)) for d in deltas])
        power[int(count)] = np.array(
            [string.max_power_w(float(d)) for d in deltas])
    return {"deltas_c": deltas, "voltage_v": voltage, "power_w": power}


def fig9_data(utilisations: Sequence[float] | None = None,
              flows_l_per_h: Sequence[float] = (20.0, 100.0, 300.0),
              inlets_c: Sequence[float] = (30.0, 35.0, 40.0, 45.0),
              ) -> dict:
    """Fig. 9: outlet-inlet temperature rise vs u, flow, inlet temp."""
    utils = np.asarray(utilisations if utilisations is not None
                       else np.arange(0.0, 1.01, 0.05))
    model = CpuThermalModel().outlet_model
    by_flow = {float(flow): np.array([
        np.mean([model.delta_c(float(u), float(flow), float(t))
                 for t in inlets_c]) for u in utils])
        for flow in flows_l_per_h}
    by_inlet = {float(t): np.array([
        model.delta_c(float(u), 20.0, float(t)) for u in utils])
        for t in inlets_c}
    return {"utilisations": utils, "by_flow": by_flow,
            "by_inlet": by_inlet}


def fig10_data(coolants_c: Sequence[float] = (30.0, 35.0, 40.0, 45.0),
               utilisations: Sequence[float] | None = None) -> dict:
    """Fig. 10: CPU temperature and frequency vs utilisation."""
    utils = np.asarray(utilisations if utilisations is not None
                       else np.arange(0.0, 1.01, 0.05))
    model = CpuThermalModel()
    temps = {float(c): np.array([
        model.cpu_temp_c(float(u), CoolingSetting(
            flow_l_per_h=20.0, inlet_temp_c=float(c))) for u in utils])
        for c in coolants_c}
    freqs = np.array([model.frequency_ghz(float(u)) for u in utils])
    return {"utilisations": utils, "temps_c": temps,
            "frequency_ghz": freqs}


def fig11_data(flows_l_per_h: Sequence[float] = (20.0, 50.0, 100.0,
                                                 150.0, 250.0, 300.0),
               coolants_c: Sequence[float] | None = None) -> dict:
    """Fig. 11: CPU temperature vs coolant temperature per flow."""
    coolants = np.asarray(coolants_c if coolants_c is not None
                          else np.arange(30.0, 51.0, 2.5))
    model = CpuThermalModel()
    lines = {float(flow): np.array([
        model.cpu_temp_c(1.0, CoolingSetting(
            flow_l_per_h=float(flow), inlet_temp_c=float(t)))
        for t in coolants]) for flow in flows_l_per_h}
    return {"coolants_c": coolants, "temps_c": lines,
            "slopes": {float(flow): model.slope(float(flow))
                       for flow in flows_l_per_h}}


def fig13_data(u_max: float = 0.7, u_avg: float = 0.25,
               safe_temp_c: float = CPU_SAFE_TEMP_C,
               tolerance_c: float = 1.0) -> dict:
    """Fig. 13: the A_max and A_avg regions of the lookup space."""
    if not 0.0 <= u_avg <= u_max <= 1.0:
        raise PhysicalRangeError(
            "need 0 <= u_avg <= u_max <= 1")
    space = LookupSpace()
    def pack(region):
        return {
            "flow_l_per_h": np.array([p.flow_l_per_h for p in region]),
            "inlet_temp_c": np.array([p.inlet_temp_c for p in region]),
            "cpu_temp_c": np.array([p.cpu_temp_c for p in region]),
            "outlet_temp_c": np.array([p.outlet_temp_c
                                       for p in region]),
        }
    return {
        "a_max": pack(space.safe_region(u_max, safe_temp_c,
                                        tolerance_c)),
        "a_avg": pack(space.safe_region(u_avg, safe_temp_c,
                                        tolerance_c)),
    }


def fig14_15_data(trace_names: Sequence[str] = ("drastic", "irregular",
                                                "common"),
                  n_servers: int = 400,
                  n_workers: int | None = None,
                  cache=None) -> dict:
    """Figs. 14-15: generation and PRE series per trace and scheme.

    This is the expensive one; all (trace x scheme) pairs run as one
    :class:`~repro.core.engine.BatchSimulationEngine` batch (parallel
    across simulations, bit-identical to the serial simulator).  Worker
    count follows ``n_workers``, then ``REPRO_WORKERS``, then the CPU
    count.  ``cache`` (a directory, ``True``/``False`` or ``None`` to
    consult ``REPRO_CACHE``) memoises per-job results, so regenerating
    the figure data after an unrelated change is free (see
    :mod:`repro.core.cache`).
    """
    traces = [trace_by_name(name, n_servers=n_servers)
              for name in trace_names]
    batch = compare_batch(traces, [teg_original(), teg_loadbalance()],
                          n_workers=n_workers, cache=cache)
    out = {}
    for name, trace in zip(trace_names, traces):
        baseline = batch.get("TEG_Original", trace.name)
        optimised = batch.get("TEG_LoadBalance", trace.name)
        out[name] = {
            "times_s": baseline.times_s,
            "utilisation": baseline.utilisation_series,
            "original_w": baseline.generation_series_w,
            "loadbalance_w": optimised.generation_series_w,
            "original_pre": baseline.average_pre,
            "loadbalance_pre": optimised.average_pre,
        }
    return out

"""Thermoelectric material library.

A thermoelectric material is characterised by its Seebeck coefficient
``alpha``, electrical conductivity ``sigma`` and thermal conductivity
``kappa``; its quality is summarised by the dimensionless figure of merit

    ZT = alpha^2 * sigma * T / kappa.

Sec. VI-D of the paper discusses the material roadmap: the deployed
SP 1848-27145 is Bi2Te3 with ZT ~ 1 at 300-330 K and ~5 % conversion
efficiency, while thin-film Heusler alloys (Fe2V0.8W0.2Al) have shown
ZT ~ 6 around 360 K in the lab.  The :data:`MATERIALS` registry lets the
ablation benchmark (E-AB2) swap materials and re-run the whole pipeline.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..errors import PhysicalRangeError
from ..units import celsius_to_kelvin


@dataclass(frozen=True)
class ThermoelectricMaterial:
    """Bulk properties of a thermoelectric material (per n-p couple leg).

    Attributes
    ----------
    name:
        Human-readable material name.
    seebeck_v_per_k:
        Effective Seebeck coefficient of one n-p couple (|alpha_p| +
        |alpha_n|), volts per kelvin.
    electrical_conductivity_s_per_m:
        Electrical conductivity of the legs.
    thermal_conductivity_w_per_m_k:
        Thermal conductivity of the legs.
    reference_temp_c:
        Temperature at which the properties were measured.
    """

    name: str
    seebeck_v_per_k: float
    electrical_conductivity_s_per_m: float
    thermal_conductivity_w_per_m_k: float
    reference_temp_c: float = 27.0

    def __post_init__(self) -> None:
        if self.seebeck_v_per_k <= 0:
            raise PhysicalRangeError(
                f"{self.name}: Seebeck coefficient must be > 0")
        if self.electrical_conductivity_s_per_m <= 0:
            raise PhysicalRangeError(
                f"{self.name}: electrical conductivity must be > 0")
        if self.thermal_conductivity_w_per_m_k <= 0:
            raise PhysicalRangeError(
                f"{self.name}: thermal conductivity must be > 0")

    @property
    def leg_seebeck_v_per_k(self) -> float:
        """Seebeck coefficient of a single leg (half the couple value)."""
        return self.seebeck_v_per_k / 2.0

    def zt(self, temp_c: float | None = None) -> float:
        """Figure of merit ZT at ``temp_c`` (defaults to the reference).

        Uses the per-leg Seebeck coefficient, as ZT is a material (not a
        couple) property.
        """
        temp_k = celsius_to_kelvin(
            self.reference_temp_c if temp_c is None else temp_c)
        return (self.leg_seebeck_v_per_k ** 2
                * self.electrical_conductivity_s_per_m
                * temp_k
                / self.thermal_conductivity_w_per_m_k)

    def carnot_fraction(self, hot_c: float, cold_c: float) -> float:
        """Fraction of the Carnot efficiency this material achieves.

        Standard thermoelectric result:
        ``eta/eta_carnot = (sqrt(1+ZT) - 1) / (sqrt(1+ZT) + Tc/Th)``
        evaluated at the mean temperature.
        """
        if hot_c <= cold_c:
            return 0.0
        hot_k = celsius_to_kelvin(hot_c)
        cold_k = celsius_to_kelvin(cold_c)
        mean_c = (hot_c + cold_c) / 2.0
        m = math.sqrt(1.0 + self.zt(mean_c))
        return (m - 1.0) / (m + cold_k / hot_k)

    def conversion_efficiency(self, hot_c: float, cold_c: float) -> float:
        """Heat-to-electricity conversion efficiency between two plates."""
        if hot_c <= cold_c:
            return 0.0
        hot_k = celsius_to_kelvin(hot_c)
        carnot = 1.0 - celsius_to_kelvin(cold_c) / hot_k
        return carnot * self.carnot_fraction(hot_c, cold_c)


#: Bi2Te3 as used in the SP 1848-27145 (ZT ~ 1 near room temperature).
#: The couple Seebeck value (~400 uV/K) is the standard |alpha_p|+|alpha_n|
#: for commercial bismuth telluride.
BISMUTH_TELLURIDE = ThermoelectricMaterial(
    name="Bi2Te3",
    seebeck_v_per_k=4.0e-4,
    electrical_conductivity_s_per_m=1.1e5,
    thermal_conductivity_w_per_m_k=1.45,
    reference_temp_c=27.0,
)

#: Thin-film Heusler alloy Fe2V0.8W0.2Al; laboratory ZT ~ 6 around 360 K
#: (Hinterleitner et al., Nature 2019; paper Sec. VI-D).  Leg-level
#: parameters back-solved so that zt(87 C) ~ 6.
HEUSLER_FE2VAL = ThermoelectricMaterial(
    name="Fe2V0.8W0.2Al",
    seebeck_v_per_k=6.9e-4,
    electrical_conductivity_s_per_m=3.64e4,
    thermal_conductivity_w_per_m_k=0.26,
    reference_temp_c=87.0,
)

#: A mid-term nanostructured bulk material (Sec. VI-D cites ZT ~ 1.5-2
#: for nanostructured bulk thermoelectrics under commercialisation).
NANOSTRUCTURED_BULK = ThermoelectricMaterial(
    name="nanostructured-bulk",
    seebeck_v_per_k=4.6e-4,
    electrical_conductivity_s_per_m=1.06e5,
    thermal_conductivity_w_per_m_k=1.0,
    reference_temp_c=47.0,
)

#: Registry used by the material-sensitivity ablation (benchmark E-AB2).
MATERIALS: dict[str, ThermoelectricMaterial] = {
    material.name: material
    for material in (BISMUTH_TELLURIDE, NANOSTRUCTURED_BULK, HEUSLER_FE2VAL)
}

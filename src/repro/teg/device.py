"""A single thermoelectric generator device.

Two complementary views of the device are provided, and everything
downstream can use either:

* **Empirical** — the paper's measured fits on the SP 1848-27145
  (Sec. IV-B): open-circuit voltage Eq. 3 ``v = 0.0448 dT - 0.0051`` and
  maximum output power Eq. 6
  ``P = 0.0003 dT^2 - 0.0003 dT + 0.0011``.  These are the models the
  paper's evaluation is built on, so they are the default everywhere.
* **Physical** — first-principles Seebeck relations (Eq. 1
  ``Voc = n * alpha * dT``) parameterised by a
  :class:`~repro.teg.materials.ThermoelectricMaterial`, used for the
  material what-if studies of Sec. VI-D where no empirical fit exists.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from ..constants import (
    TEG_MAX_AMBIENT_C,
    TEG_MIN_AMBIENT_C,
    TEG_PMAX_CONST_W,
    TEG_PMAX_LIN_W_PER_C,
    TEG_PMAX_QUAD_W_PER_C2,
    TEG_RESISTANCE_OHM,
    TEG_VOC_INTERCEPT_V,
    TEG_VOC_SLOPE_V_PER_C,
)
from ..errors import PhysicalRangeError
from ..units import celsius_to_kelvin
from .materials import BISMUTH_TELLURIDE, ThermoelectricMaterial


def _check_delta(delta_t_c) -> np.ndarray:
    """Validate a scalar or array temperature difference (>= 0)."""
    delta = np.asarray(delta_t_c, dtype=float)
    if np.any(delta < 0):
        raise PhysicalRangeError(
            f"temperature difference must be >= 0, got {delta_t_c}")
    return delta


@dataclass(frozen=True)
class EmpiricalTegFit:
    """The paper's regression models for one SP 1848-27145 (Eqs. 3 and 6).

    Both fits have small negative terms near ``dT = 0``; physically the
    device produces nothing without a temperature difference, so outputs
    are floored at zero.
    """

    voc_slope_v_per_c: float = TEG_VOC_SLOPE_V_PER_C
    voc_intercept_v: float = TEG_VOC_INTERCEPT_V
    pmax_quad_w_per_c2: float = TEG_PMAX_QUAD_W_PER_C2
    pmax_lin_w_per_c: float = TEG_PMAX_LIN_W_PER_C
    pmax_const_w: float = TEG_PMAX_CONST_W

    def open_circuit_voltage_v(self, delta_t_c):
        """Open-circuit voltage of one TEG at ``delta_t_c`` (Eq. 3).

        ``delta_t_c`` may be a scalar or an array; the result matches.
        """
        delta = _check_delta(delta_t_c)
        voltage = np.maximum(
            0.0, self.voc_slope_v_per_c * delta + self.voc_intercept_v)
        if voltage.ndim == 0:
            return float(voltage)
        return voltage

    def max_power_w(self, delta_t_c):
        """Maximum output power of one TEG at ``delta_t_c`` (Eq. 6).

        ``delta_t_c`` may be a scalar or an array; the result matches.
        The fit's small positive constant term is zeroed at exactly
        ``dT = 0`` (a TEG cannot generate without a difference).
        """
        delta = _check_delta(delta_t_c)
        power = (self.pmax_quad_w_per_c2 * delta ** 2
                 + self.pmax_lin_w_per_c * delta
                 + self.pmax_const_w)
        power = np.where(delta == 0.0, 0.0, np.maximum(0.0, power))
        if power.ndim == 0:
            return float(power)
        return power


@dataclass(frozen=True)
class TegDevice:
    """One thermoelectric generator (default: the paper's SP 1848-27145).

    Attributes
    ----------
    resistance_ohm:
        Internal electrical resistance (measured as ~2 ohm, Sec. IV-B).
    n_couples:
        Number of n-p semiconductor couples.  127 couples of Bi2Te3 at
        ~0.4 mV/K per couple give the 0.0448 V/K module slope measured in
        Eq. 3, tying the physical and empirical views together.
    material:
        Leg material (determines the physical-mode Seebeck slope and the
        conversion-efficiency estimate).
    fit:
        Empirical regression used when ``mode == "empirical"``.
    mode:
        ``"empirical"`` (paper fits; default) or ``"physical"`` (Eq. 1).
    thermal_conductance_w_per_k:
        Through-device thermal conductance.  TEGs are "almost adiabatic"
        (Sec. III-B); ~0.65 W/K matches the calibrated 1.55 K/W the Fig. 3
        reproduction uses.
    """

    resistance_ohm: float = TEG_RESISTANCE_OHM
    n_couples: int = 127
    material: ThermoelectricMaterial = BISMUTH_TELLURIDE
    fit: EmpiricalTegFit = field(default_factory=EmpiricalTegFit)
    mode: str = "empirical"
    thermal_conductance_w_per_k: float = 0.645

    def __post_init__(self) -> None:
        if self.resistance_ohm <= 0:
            raise PhysicalRangeError(
                f"resistance must be > 0, got {self.resistance_ohm}")
        if self.n_couples <= 0:
            raise PhysicalRangeError(
                f"n_couples must be > 0, got {self.n_couples}")
        if self.mode not in ("empirical", "physical"):
            raise PhysicalRangeError(
                f"mode must be 'empirical' or 'physical', got {self.mode!r}")
        if self.thermal_conductance_w_per_k <= 0:
            raise PhysicalRangeError("thermal conductance must be > 0")

    # ------------------------------------------------------------------
    # Electrical characteristics
    # ------------------------------------------------------------------

    def check_ambient(self, temp_c: float) -> None:
        """Raise if ``temp_c`` is outside the device's rated ambient range."""
        if not TEG_MIN_AMBIENT_C <= temp_c <= TEG_MAX_AMBIENT_C:
            raise PhysicalRangeError(
                f"TEG rated for {TEG_MIN_AMBIENT_C}..{TEG_MAX_AMBIENT_C} C, "
                f"got {temp_c} C")

    def seebeck_slope_v_per_c(self) -> float:
        """Volts of open-circuit voltage per degC of difference."""
        if self.mode == "empirical":
            return self.fit.voc_slope_v_per_c
        return self.n_couples * self.material.seebeck_v_per_k

    def open_circuit_voltage_v(self, delta_t_c):
        """Open-circuit voltage at a hot/cold side difference (Eq. 1/Eq. 3).

        ``delta_t_c`` may be a scalar or an array; the result matches.
        """
        delta = _check_delta(delta_t_c)
        if self.mode == "empirical":
            return self.fit.open_circuit_voltage_v(delta_t_c)
        voltage = self.seebeck_slope_v_per_c() * delta
        if voltage.ndim == 0:
            return float(voltage)
        return voltage

    def current_a(self, delta_t_c: float, load_ohm: float) -> float:
        """Current into a resistive load."""
        if load_ohm < 0:
            raise PhysicalRangeError(f"load must be >= 0, got {load_ohm}")
        voc = self.open_circuit_voltage_v(delta_t_c)
        return voc / (self.resistance_ohm + load_ohm)

    def power_at_load_w(self, delta_t_c: float, load_ohm: float) -> float:
        """Power delivered into an arbitrary resistive load.

        Maximum when ``load_ohm == resistance_ohm`` (Sec. III-C).
        """
        current = self.current_a(delta_t_c, load_ohm)
        return current ** 2 * load_ohm

    def max_power_w(self, delta_t_c: float) -> float:
        """Maximum (matched-load) output power at ``delta_t_c``.

        Empirical mode uses the paper's quadratic fit (Eq. 6); physical
        mode evaluates ``Voc^2 / (4 R)`` (Eq. 5 with a matched load).
        """
        if self.mode == "empirical":
            return self.fit.max_power_w(delta_t_c)
        voc = self.open_circuit_voltage_v(delta_t_c)
        return voc ** 2 / (4.0 * self.resistance_ohm)

    # ------------------------------------------------------------------
    # Thermal characteristics
    # ------------------------------------------------------------------

    @property
    def thermal_resistance_k_per_w(self) -> float:
        """Through-device thermal resistance (why Fig. 3 overheats)."""
        return 1.0 / self.thermal_conductance_w_per_k

    def heat_through_w(self, hot_c: float, cold_c: float,
                       load_ohm: float | None = None) -> float:
        """Heat entering the hot side while generating into ``load_ohm``.

        ``Q_h = K dT + alpha I T_h - I^2 R / 2`` (conduction + Peltier
        pumping - half the Joule heat returned to the hot side).  With
        ``load_ohm=None`` a matched load is assumed.
        """
        if hot_c < cold_c:
            raise PhysicalRangeError(
                f"hot side ({hot_c} C) must be >= cold side ({cold_c} C)")
        delta = hot_c - cold_c
        load = self.resistance_ohm if load_ohm is None else load_ohm
        current = self.current_a(delta, load)
        conduction = self.thermal_conductance_w_per_k * delta
        peltier = (self.seebeck_slope_v_per_c() * current
                   * celsius_to_kelvin(hot_c))
        joule_back = 0.5 * current ** 2 * self.resistance_ohm
        return conduction + peltier - joule_back

    def conversion_efficiency(self, hot_c: float, cold_c: float) -> float:
        """Electrical output / heat input at matched load.

        ~5 % for Bi2Te3 at datacenter temperatures (Sec. VI-D).
        """
        if hot_c <= cold_c:
            return 0.0
        heat = self.heat_through_w(hot_c, cold_c)
        if heat <= 0:
            return 0.0
        power = self.max_power_w(hot_c - cold_c)
        return min(power / heat, self.material.conversion_efficiency(
            hot_c, cold_c) + 0.05)

    def with_material(self, material: ThermoelectricMaterial) -> "TegDevice":
        """A physical-mode copy of this device using another material.

        Keeps geometry (couples, resistance) and switches the Seebeck slope
        to the new material — the Sec. VI-D what-if device.
        """
        # Thermal conductance scales with the material's kappa relative to
        # the baseline material (same leg geometry).
        scale = (material.thermal_conductivity_w_per_m_k
                 / self.material.thermal_conductivity_w_per_m_k)
        return TegDevice(
            resistance_ohm=self.resistance_ohm,
            n_couples=self.n_couples,
            material=material,
            fit=self.fit,
            mode="physical",
            thermal_conductance_w_per_k=self.thermal_conductance_w_per_k
            * scale,
        )


def matched_load_power_w(voc_v: float, resistance_ohm: float) -> float:
    """Maximum power of a source ``voc_v`` behind ``resistance_ohm`` (Eq. 5).

    ``P = (Voc/2)^2 / R``; the load sees half the open-circuit voltage when
    matched to the internal resistance.
    """
    if resistance_ohm <= 0:
        raise PhysicalRangeError(
            f"resistance must be > 0, got {resistance_ohm}")
    return (voc_v / 2.0) ** 2 / resistance_ohm


#: The exact device evaluated in the paper (empirical mode, 2-ohm SP 1848).
PAPER_TEG = TegDevice()


def _self_check() -> None:
    """Cross-check the physical and empirical views agree to ~15 %."""
    physical = TegDevice(mode="physical")
    for delta in (10.0, 20.0, 25.0):
        emp = PAPER_TEG.open_circuit_voltage_v(delta)
        phy = physical.open_circuit_voltage_v(delta)
        if not math.isclose(emp, phy, rel_tol=0.2):
            raise AssertionError(
                f"empirical ({emp:.3f} V) and physical ({phy:.3f} V) TEG "
                f"models diverged at dT={delta}")


_self_check()

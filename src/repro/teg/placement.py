"""Where to place TEGs: the Sec. III-B placement study (Fig. 3).

The paper rules out sandwiching a TEG between the CPU and its cold plate by
measurement: TEGs are almost adiabatic, so CPU0 (with the TEG under its
plate) races toward the 78.9 degC limit at only 20 % load while CPU1
(directly plated) stays cool.  H2P therefore places the TEG module at the
CPU *outlet*, the hottest point of the circulation.

:class:`PlacementStudy` reproduces the experiment with the transient
thermal network: two CPUs in parallel branches of the same loop, one with
the extra TEG thermal resistance in its heat path.  It also quantifies the
alternative the paper adopts — the module at the outlet — so the two
designs can be compared on both safety and generation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from ..constants import CPU_MAX_OPERATING_TEMP_C
from ..errors import PhysicalRangeError
from ..thermal.cpu_model import cpu_power_w
from ..thermal.transient import (
    ThermalLink,
    ThermalNode,
    TransientResult,
    TransientThermalNetwork,
    step_load_profile,
)
from .device import TegDevice, PAPER_TEG
from .module import TegModule, default_server_module

#: Load phases of the Fig. 3 experiment: 50 minutes split into four phases
#: of 0 %, 10 %, 20 % and 0 % CPU utilisation.
FIG3_PHASES: tuple[tuple[float, float], ...] = (
    (750.0, 0.0), (750.0, 0.10), (750.0, 0.20), (750.0, 0.0))


@dataclass(frozen=True)
class PlacementOutcome:
    """Results of one placement experiment run.

    Attributes
    ----------
    sandwiched:
        Transient series of the branch whose CPU has a TEG under its plate.
    direct:
        Transient series of the directly-plated CPU branch.
    teg_voltage_v:
        Open-circuit voltage of the sandwiched TEG over time (tracks the
        CPU0 temperature trace in Fig. 3).
    times_s:
        Common time base of the series.
    """

    sandwiched: TransientResult
    direct: TransientResult
    teg_voltage_v: np.ndarray
    times_s: np.ndarray

    @property
    def peak_sandwiched_cpu_c(self) -> float:
        """Peak temperature of the TEG-sandwiched CPU (CPU0)."""
        return self.sandwiched.max_temp_c("cpu")

    @property
    def peak_direct_cpu_c(self) -> float:
        """Peak temperature of the directly-plated CPU (CPU1)."""
        return self.direct.max_temp_c("cpu")

    @property
    def sandwiched_near_limit(self) -> bool:
        """Whether CPU0 approached its maximum operating temperature."""
        return self.peak_sandwiched_cpu_c >= CPU_MAX_OPERATING_TEMP_C - 5.0

    @property
    def temperature_penalty_c(self) -> float:
        """Extra peak temperature caused by the sandwiched TEG."""
        return self.peak_sandwiched_cpu_c - self.peak_direct_cpu_c


@dataclass(frozen=True)
class PlacementStudy:
    """Reproduction of the Fig. 3 experiment and the outlet alternative.

    Attributes
    ----------
    device:
        The TEG under test.
    coolant_temp_c:
        Coolant temperature of the shared loop (stable in Fig. 3).
    plate_resistance_k_per_w:
        CPU-lid-to-coolant resistance of the cold plate path.
    cpu_capacity_j_per_k:
        Lumped heat capacity of die + spreader + plate metal.
    """

    device: TegDevice = PAPER_TEG
    coolant_temp_c: float = 28.0
    plate_resistance_k_per_w: float = 0.30
    cpu_capacity_j_per_k: float = 150.0

    def __post_init__(self) -> None:
        if self.plate_resistance_k_per_w <= 0:
            raise PhysicalRangeError("plate resistance must be > 0")
        if self.cpu_capacity_j_per_k <= 0:
            raise PhysicalRangeError("CPU capacity must be > 0")

    def _branch_network(self, with_teg: bool,
                        phases: Sequence[tuple[float, float]],
                        ) -> TransientThermalNetwork:
        """One CPU branch; optionally with the TEG in the heat path."""
        power_phases = [(duration, cpu_power_w(util))
                        for duration, util in phases]
        profile = step_load_profile(power_phases)
        nodes = [
            ThermalNode(name="cpu", capacity_j_per_k=self.cpu_capacity_j_per_k,
                        initial_temp_c=self.coolant_temp_c, power_w=profile),
            ThermalNode(name="coolant", initial_temp_c=self.coolant_temp_c,
                        boundary=True),
        ]
        if with_teg:
            # CPU -> TEG -> plate -> coolant.  The plate itself is a small
            # thermal mass between the TEG cold face and the coolant.
            nodes.insert(1, ThermalNode(
                name="plate", capacity_j_per_k=80.0,
                initial_temp_c=self.coolant_temp_c))
            links = [
                ThermalLink("cpu", "plate",
                            self.device.thermal_conductance_w_per_k),
                ThermalLink("plate", "coolant",
                            1.0 / self.plate_resistance_k_per_w),
            ]
        else:
            links = [
                ThermalLink("cpu", "coolant",
                            1.0 / self.plate_resistance_k_per_w),
            ]
        return TransientThermalNetwork(nodes, links)

    def run(self, phases: Sequence[tuple[float, float]] = FIG3_PHASES,
            output_dt_s: float = 10.0) -> PlacementOutcome:
        """Replay the Fig. 3 load schedule on both branches.

        Parameters
        ----------
        phases:
            ``(duration_seconds, utilisation)`` tuples; defaults to the
            paper's 0/10/20/0 % schedule over 50 minutes.
        output_dt_s:
            Sampling interval of the returned series.

        Returns
        -------
        PlacementOutcome
            Time series for both branches and the sandwiched TEG's voltage.
        """
        duration = sum(duration for duration, _ in phases)
        sandwiched_net = self._branch_network(True, phases)
        direct_net = self._branch_network(False, phases)
        sandwiched = sandwiched_net.simulate(duration, output_dt_s)
        direct = direct_net.simulate(duration, output_dt_s)
        delta_across_teg = np.maximum(
            0.0, sandwiched.temperatures_c["cpu"]
            - sandwiched.temperatures_c["plate"])
        slope = self.device.seebeck_slope_v_per_c()
        voltage = slope * delta_across_teg
        return PlacementOutcome(
            sandwiched=sandwiched,
            direct=direct,
            teg_voltage_v=voltage,
            times_s=sandwiched.times_s,
        )

    def outlet_generation_w(self, warm_out_temp_c: float,
                            cold_source_temp_c: float = 20.0,
                            module: TegModule | None = None) -> float:
        """Generation of the adopted design: the module at the CPU outlet.

        The outlet design adds *no* thermal resistance to the CPU heat path
        (its safety is unchanged), which is why the paper selects it.
        """
        module = module or default_server_module(self.device)
        return module.generation_w(warm_out_temp_c, cold_source_temp_c)

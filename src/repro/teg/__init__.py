"""Thermoelectric generator (TEG) models.

* :mod:`repro.teg.materials` — thermoelectric material library (Bi2Te3 as
  used by the SP 1848-27145, plus research materials for the Sec. VI-D
  what-if analysis).
* :mod:`repro.teg.device` — a single TEG: Seebeck physics and the paper's
  empirical fits (Eqs. 3-7).
* :mod:`repro.teg.module` — series-connected TEG modules with load matching
  and maximum-power-point operation (Fig. 5, Fig. 7, Fig. 8).
* :mod:`repro.teg.placement` — the Sec. III-B placement study: sandwiching
  a TEG under the CPU vs. placing the module at the CPU outlet.
"""

from .materials import ThermoelectricMaterial, BISMUTH_TELLURIDE, HEUSLER_FE2VAL, MATERIALS
from .device import TegDevice, EmpiricalTegFit, PAPER_TEG
from .module import TegModule, TegString, OperatingPoint
from .placement import PlacementStudy, PlacementOutcome
from .power_electronics import (
    DcDcConverter,
    MpptHarvester,
    ThermalResistanceDrift,
)

__all__ = [
    "ThermoelectricMaterial",
    "BISMUTH_TELLURIDE",
    "HEUSLER_FE2VAL",
    "MATERIALS",
    "TegDevice",
    "EmpiricalTegFit",
    "PAPER_TEG",
    "TegModule",
    "TegString",
    "OperatingPoint",
    "PlacementStudy",
    "PlacementOutcome",
    "DcDcConverter",
    "MpptHarvester",
    "ThermalResistanceDrift",
]

"""TEG power electronics: DC-DC conversion and maximum-power tracking.

The paper harvests at the matched-load point ("the maximum output power
occurs when the load resistance equals the whole TEG module's
resistance", Sec. III-C) and leaves the conversion chain implicit.  A
deployable system needs two more pieces, modelled here:

* a **DC-DC converter** lifting the module's few volts onto a 12/48 V
  rack bus (Sec. VI-D: H2P "is appropriate for these DC-supplied
  datacenters"), with a realistic efficiency-vs-load curve;
* a **maximum-power-point tracker**.  A TEG is a Thevenin source whose
  internal resistance *drifts with temperature* (Bi2Te3 resistivity rises
  ~0.3-0.5 %/K), so a converter pinned to the nameplate 2 ohm/device load
  slowly walks off the optimum as the coolant warms.  The classic
  perturb-and-observe (P&O) tracker recovers it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import PhysicalRangeError
from .device import TegDevice, PAPER_TEG
from .module import TegModule, default_server_module


@dataclass(frozen=True)
class DcDcConverter:
    """A boost converter between the TEG module and the DC bus.

    Attributes
    ----------
    rated_power_w:
        Power at which efficiency peaks.
    peak_efficiency:
        Efficiency at the rated point (~0.93 for small boost stages).
    light_load_penalty:
        Efficiency lost as load fraction approaches zero (switching and
        quiescent losses dominate at light load).
    min_input_voltage_v:
        Below this input the converter cannot start (TEG modules are
        series-stacked precisely to clear it, Sec. III-C).
    """

    rated_power_w: float = 6.0
    peak_efficiency: float = 0.93
    light_load_penalty: float = 0.25
    min_input_voltage_v: float = 1.0

    def __post_init__(self) -> None:
        if self.rated_power_w <= 0:
            raise PhysicalRangeError("rated power must be > 0")
        if not 0.0 < self.peak_efficiency <= 1.0:
            raise PhysicalRangeError("peak efficiency must be in (0, 1]")
        if not 0.0 <= self.light_load_penalty < self.peak_efficiency:
            raise PhysicalRangeError(
                "light-load penalty must be in [0, peak)")
        if self.min_input_voltage_v < 0:
            raise PhysicalRangeError("min input voltage must be >= 0")

    def efficiency(self, input_power_w: float) -> float:
        """Conversion efficiency at ``input_power_w``."""
        if input_power_w < 0:
            raise PhysicalRangeError("input power must be >= 0")
        if input_power_w == 0:
            return 0.0
        load_fraction = min(1.0, input_power_w / self.rated_power_w)
        # Saturating rise from (peak - penalty) at zero load to peak.
        rise = 1.0 - np.exp(-4.0 * load_fraction)
        return (self.peak_efficiency - self.light_load_penalty
                + self.light_load_penalty * rise)

    def output_power_w(self, input_power_w: float,
                       input_voltage_v: float) -> float:
        """Bus-side power for a harvested input.

        Returns zero when the input voltage is below the start-up
        threshold — the reason a single TEG (≈1 V at ΔT 25 °C) cannot
        drive a converter alone.
        """
        if input_voltage_v < 0:
            raise PhysicalRangeError("input voltage must be >= 0")
        if input_voltage_v < self.min_input_voltage_v:
            return 0.0
        return input_power_w * self.efficiency(input_power_w)


@dataclass(frozen=True)
class ThermalResistanceDrift:
    """Temperature dependence of the TEG's internal resistance.

    ``R(T_mean) = R_nameplate * (1 + coeff * (T_mean - reference))``.
    """

    coeff_per_c: float = 0.004
    reference_c: float = 25.0

    def resistance_ohm(self, nameplate_ohm: float,
                       mean_temp_c: float) -> float:
        """Internal resistance at an operating mean temperature."""
        if nameplate_ohm <= 0:
            raise PhysicalRangeError("nameplate resistance must be > 0")
        factor = 1.0 + self.coeff_per_c * (mean_temp_c - self.reference_c)
        return max(0.1 * nameplate_ohm, nameplate_ohm * factor)


@dataclass
class MpptHarvester:
    """A TEG module + converter with a selectable load-resistance policy.

    Policies:

    * ``fixed`` — the load is pinned to the nameplate module resistance
      (the paper's matched load, correct only at the reference
      temperature);
    * ``mppt`` — perturb-and-observe: after each interval the load is
      nudged by ``step_ohm`` in the direction that increased power;
    * ``oracle`` — the load tracks the true internal resistance exactly
      (upper bound; not realisable without measuring R online).

    The honest engineering result this class exposes: because a TEG is a
    *linear* source, the mismatch loss of the fixed policy is quadratic
    in the (small) resistance drift — under 1 % at H2P operating points —
    while P&O pays a dithering cost and can be confused by changing
    ΔT (the classic varying-irradiance artifact).  The paper's fixed
    matched load is therefore the right call, and the E-AB5 benchmark
    quantifies by how much.
    """

    module: TegModule = field(default_factory=default_server_module)
    converter: DcDcConverter = field(default_factory=DcDcConverter)
    drift: ThermalResistanceDrift = field(
        default_factory=ThermalResistanceDrift)
    step_ohm: float = 0.5

    def __post_init__(self) -> None:
        if self.step_ohm <= 0:
            raise PhysicalRangeError("step_ohm must be > 0")

    # ------------------------------------------------------------------

    def _source(self, delta_t_c: float,
                mean_temp_c: float) -> tuple[float, float]:
        """Thevenin (Voc, R_internal) of the module at one operating point."""
        count = self.module.teg_count
        device = self.module.device
        voc = count * device.open_circuit_voltage_v(delta_t_c)
        resistance = self.drift.resistance_ohm(
            count * device.resistance_ohm, mean_temp_c)
        return voc, resistance

    def harvested_power_w(self, delta_t_c: float, mean_temp_c: float,
                          load_ohm: float) -> float:
        """Electrical power into ``load_ohm`` at one operating point."""
        if load_ohm < 0:
            raise PhysicalRangeError("load must be >= 0")
        if delta_t_c < 0:
            raise PhysicalRangeError(
                "temperature difference must be >= 0")
        voc, internal = self._source(delta_t_c, mean_temp_c)
        current = voc / (internal + load_ohm)
        return current ** 2 * load_ohm

    def optimal_load_ohm(self, delta_t_c: float,
                         mean_temp_c: float) -> float:
        """The true matched load at this operating point (= R_internal)."""
        _, internal = self._source(delta_t_c, mean_temp_c)
        return internal

    def run(self, deltas_c: np.ndarray, mean_temps_c: np.ndarray,
            policy: str = "mppt") -> dict:
        """Harvest over a (ΔT, mean-temperature) time series.

        Parameters
        ----------
        deltas_c / mean_temps_c:
            Aligned per-interval operating points.
        policy:
            ``"fixed"`` or ``"mppt"``.

        Returns
        -------
        dict
            ``harvested_w`` / ``bus_w`` arrays, the load trajectory and
            total energies.
        """
        if policy not in ("fixed", "mppt", "oracle"):
            raise PhysicalRangeError(
                f"policy must be 'fixed', 'mppt' or 'oracle', "
                f"got {policy!r}")
        deltas = np.asarray(deltas_c, dtype=float)
        temps = np.asarray(mean_temps_c, dtype=float)
        if deltas.shape != temps.shape or deltas.ndim != 1 or not len(deltas):
            raise PhysicalRangeError(
                "deltas and mean temps must be equal-length 1-D arrays")

        nameplate = self.module.teg_count * self.module.device.resistance_ohm
        load = nameplate
        harvested = np.empty_like(deltas)
        bus = np.empty_like(deltas)
        loads = np.empty_like(deltas)
        direction = 1.0
        previous_power = None
        for i, (delta, temp) in enumerate(zip(deltas, temps)):
            if policy == "oracle":
                load = self.optimal_load_ohm(delta, temp)
            power = self.harvested_power_w(delta, temp, load)
            voc, internal = self._source(delta, temp)
            voltage = voc * load / (internal + load)
            harvested[i] = power
            bus[i] = self.converter.output_power_w(power, voltage)
            loads[i] = load
            if policy == "mppt":
                if previous_power is not None and power < previous_power:
                    direction = -direction
                previous_power = power
                load = max(self.step_ohm, load + direction * self.step_ohm)
        return {
            "harvested_w": harvested,
            "bus_w": bus,
            "load_ohm": loads,
            "harvested_total_w": float(harvested.mean()),
            "bus_total_w": float(bus.mean()),
        }

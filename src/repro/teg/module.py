"""Series-connected TEG strings and the per-server TEG module.

The prototype (Sec. IV-A, Fig. 5/6) mounts 12 TEGs per server: two groups
of six, each group sandwiched between a warm-loop cold plate (fed by the
CPU outlet water) and a cold-loop cold plate (fed by ~20 degC natural
water).  Electrically the TEGs are connected in series to raise the output
voltage (Sec. III-C); the maximum output power occurs when the load
resistance equals the whole string's internal resistance.

This module reproduces:

* Fig. 7 — open-circuit voltage of 6 TEGs vs. coolant temperature
  difference at different flow rates (flow enters through a convective
  coupling factor that slightly degrades the device-level temperature
  difference at low flow);
* Fig. 8a/8b — voltage and maximum power scaling with the number of TEGs
  in series (Eqs. 4 and 7).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..constants import TEGS_PER_SERVER
from ..errors import PhysicalRangeError
from .device import TegDevice, PAPER_TEG, matched_load_power_w

#: Flow rate at which the paper's Eq. 3/Eq. 6 fits were measured (Sec. IV-B).
REFERENCE_FLOW_L_PER_H = 200.0

#: Half-saturation constant of the convective coupling model, L/H.
#: Chosen so the Fig. 7 spread between 50 L/H and 300 L/H is a few percent
#: ("this improvement may be too little to be worth making").
_COUPLING_HALF_FLOW_L_PER_H = 5.0


def flow_coupling(flow_l_per_h: float,
                  reference_flow_l_per_h: float = REFERENCE_FLOW_L_PER_H) -> float:
    """Fraction of the fluid temperature difference the TEG faces see.

    At low flow the plate boundary layers eat into the available
    temperature difference; the factor is normalised to 1.0 at the
    reference flow where the empirical fits were taken, and exceeds 1
    slightly above it.
    """
    if flow_l_per_h <= 0:
        raise PhysicalRangeError(f"flow rate must be > 0, got {flow_l_per_h}")
    def saturation(f: float) -> float:
        return f / (f + _COUPLING_HALF_FLOW_L_PER_H)
    return saturation(flow_l_per_h) / saturation(reference_flow_l_per_h)


@dataclass(frozen=True)
class OperatingPoint:
    """Electrical state of a TEG string driving a load."""

    voltage_v: float
    current_a: float
    power_w: float
    load_ohm: float
    delta_t_c: float

    @property
    def is_open_circuit(self) -> bool:
        """True when no current flows (infinite load)."""
        return self.current_a == 0.0


@dataclass(frozen=True)
class TegString:
    """``n`` identical TEG devices electrically in series.

    Open-circuit voltage and matched-load power both scale linearly with
    ``n`` (paper Eqs. 4 and 7); internal resistance is ``n * R_TEG``.
    """

    device: TegDevice = PAPER_TEG
    count: int = 6

    def __post_init__(self) -> None:
        if self.count <= 0:
            raise PhysicalRangeError(f"count must be > 0, got {self.count}")

    @property
    def resistance_ohm(self) -> float:
        """Total series resistance of the string."""
        return self.count * self.device.resistance_ohm

    def open_circuit_voltage_v(self, delta_t_c: float,
                               flow_l_per_h: float | None = None) -> float:
        """String open-circuit voltage (Eq. 4: ``Voc_n = n * v``).

        Parameters
        ----------
        delta_t_c:
            Temperature difference between the warm and the cold coolant.
        flow_l_per_h:
            Optional loop flow rate; when given, the convective coupling
            factor of Fig. 7 is applied.
        """
        effective = self._effective_delta(delta_t_c, flow_l_per_h)
        return self.count * self.device.open_circuit_voltage_v(effective)

    def max_power_w(self, delta_t_c: float,
                    flow_l_per_h: float | None = None) -> float:
        """Matched-load power of the string (Eq. 7: ``P_n = n * P_1``)."""
        effective = self._effective_delta(delta_t_c, flow_l_per_h)
        return self.count * self.device.max_power_w(effective)

    def operating_point(self, delta_t_c: float, load_ohm: float,
                        flow_l_per_h: float | None = None) -> OperatingPoint:
        """Electrical operating point into an arbitrary resistive load."""
        if load_ohm < 0:
            raise PhysicalRangeError(f"load must be >= 0, got {load_ohm}")
        effective = self._effective_delta(delta_t_c, flow_l_per_h)
        voc = self.count * self.device.open_circuit_voltage_v(effective)
        current = voc / (self.resistance_ohm + load_ohm) if load_ohm >= 0 else 0.0
        voltage = current * load_ohm
        return OperatingPoint(
            voltage_v=voltage,
            current_a=current,
            power_w=current ** 2 * load_ohm,
            load_ohm=load_ohm,
            delta_t_c=effective,
        )

    def matched_operating_point(self, delta_t_c: float,
                                flow_l_per_h: float | None = None,
                                ) -> OperatingPoint:
        """Operating point at the maximum-power (matched) load."""
        return self.operating_point(delta_t_c, self.resistance_ohm,
                                    flow_l_per_h)

    def _effective_delta(self, delta_t_c, flow_l_per_h: float | None):
        delta = np.asarray(delta_t_c, dtype=float)
        if np.any(delta < 0):
            raise PhysicalRangeError(
                f"temperature difference must be >= 0, got {delta_t_c}")
        if flow_l_per_h is not None:
            delta = delta * flow_coupling(flow_l_per_h)
        if delta.ndim == 0:
            return float(delta)
        return delta


@dataclass(frozen=True)
class TegModule:
    """The per-server thermoelectric generation module (Fig. 5).

    ``group_count`` strings of ``group_size`` TEGs each; electrically the
    strings are themselves chained in series (the paper's
    "collecting-in-series method", Sec. III-C), so a default module behaves
    as 12 TEGs in series.
    """

    device: TegDevice = PAPER_TEG
    group_size: int = 6
    group_count: int = 2

    def __post_init__(self) -> None:
        if self.group_size <= 0 or self.group_count <= 0:
            raise PhysicalRangeError(
                f"group size/count must be > 0, got "
                f"{self.group_size}/{self.group_count}")

    @property
    def teg_count(self) -> int:
        """Total TEGs in the module (12 in the prototype)."""
        return self.group_size * self.group_count

    @property
    def as_string(self) -> TegString:
        """The whole module viewed as one series string."""
        return TegString(device=self.device, count=self.teg_count)

    def open_circuit_voltage_v(self, delta_t_c: float,
                               flow_l_per_h: float | None = None) -> float:
        """Module open-circuit voltage at a coolant temperature difference."""
        return self.as_string.open_circuit_voltage_v(delta_t_c, flow_l_per_h)

    def max_power_w(self, delta_t_c: float,
                    flow_l_per_h: float | None = None) -> float:
        """Module matched-load output power (paper Eq. 7 with n=12)."""
        return self.as_string.max_power_w(delta_t_c, flow_l_per_h)

    def generation_w(self, warm_out_temp_c, cold_temp_c: float,
                     flow_l_per_h: float | None = None):
        """Power generated given the warm outlet and cold source temperatures.

        ``delta_T = T_warm_out - T_cold`` (paper Eq. 2); never negative —
        the module simply produces nothing if the warm loop is colder than
        the cold source.  ``warm_out_temp_c`` may be a scalar or an array.
        """
        delta = np.maximum(0.0, np.asarray(warm_out_temp_c, dtype=float)
                           - cold_temp_c)
        if delta.ndim == 0:
            delta = float(delta)
        return self.max_power_w(delta, flow_l_per_h)

    def heat_harvested_w(self, warm_out_temp_c: float,
                         cold_temp_c: float) -> float:
        """Heat drawn from the warm loop while generating (matched load)."""
        if warm_out_temp_c <= cold_temp_c:
            return 0.0
        return self.teg_count * self.device.heat_through_w(
            warm_out_temp_c, cold_temp_c)


def default_server_module(device: TegDevice = PAPER_TEG) -> TegModule:
    """The 12-TEG module H2P attaches to each server (Sec. IV-A)."""
    assert TEGS_PER_SERVER == 12
    return TegModule(device=device, group_size=6, group_count=2)

"""Fault specifications and schedules (the declarative layer).

A :class:`FaultSpec` names one disturbance — what kind, when it starts,
how long it lasts, how hard it hits, and which circulation it targets.
A :class:`FaultSchedule` bundles several specs with one seed; it is the
unit the simulator, the batch engine and the CLI pass around, and it
round-trips through JSON so sweeps can be described in files.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator, Sequence

from ..errors import FaultInjectionError

#: Every supported fault kind, grouped by subsystem.
FAULT_KINDS = (
    # TEG harvesting hardware
    "teg_open_circuit",
    "teg_degradation",
    # Hydraulics
    "pump_derate",
    "pump_stall",
    # Facility cold side
    "chiller_excursion",
    # Sensing (what the cooling policy reads)
    "sensor_noise",
    "sensor_bias",
    "sensor_stuck",
)

#: Kinds whose magnitude must be a fraction in [0, 1].
_FRACTIONAL_KINDS = ("teg_open_circuit", "pump_derate")

#: Kinds whose magnitude must be non-negative.
_NON_NEGATIVE_KINDS = ("teg_degradation", "sensor_noise")


@dataclass(frozen=True)
class FaultSpec:
    """One disturbance applied over a time window.

    Attributes
    ----------
    kind:
        One of :data:`FAULT_KINDS`.
    start_s / duration_s:
        Active window ``[start_s, start_s + duration_s)`` in simulation
        time.  ``duration_s`` defaults to infinity (permanent fault).
    magnitude:
        Kind-specific intensity:

        * ``teg_open_circuit`` — fraction of servers whose TEG string is
          broken (a series string with one open module produces nothing);
        * ``teg_degradation`` — equivalent ageing in *years per elapsed
          fault hour*, run through
          :class:`repro.reliability.TegDegradationModel`;
        * ``pump_derate`` — fractional flow-rate loss (0.3 = -30 %);
        * ``pump_stall`` — magnitude is ignored; flow collapses to the
          trickle floor :data:`repro.faults.injectors.STALL_FLOW_L_PER_H`;
        * ``chiller_excursion`` — degrees Celsius added to the TEG
          cold-side temperature;
        * ``sensor_noise`` — Gaussian sigma added to every utilisation
          reading;
        * ``sensor_bias`` — constant offset added to every reading;
        * ``sensor_stuck`` — all readings freeze at this value.
    circulation:
        Index of the targeted water circulation, or ``None`` for all.
    """

    kind: str
    start_s: float = 0.0
    duration_s: float = math.inf
    magnitude: float = 0.0
    circulation: int | None = None

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise FaultInjectionError(
                f"unknown fault kind {self.kind!r}; valid kinds: "
                f"{', '.join(FAULT_KINDS)}")
        if not math.isfinite(self.start_s) or self.start_s < 0:
            raise FaultInjectionError(
                f"start_s must be finite and >= 0, got {self.start_s}")
        if math.isnan(self.duration_s) or self.duration_s <= 0:
            raise FaultInjectionError(
                f"duration_s must be > 0, got {self.duration_s}")
        if math.isnan(self.magnitude) or math.isinf(self.magnitude):
            raise FaultInjectionError(
                f"magnitude must be finite, got {self.magnitude}")
        if self.kind in _FRACTIONAL_KINDS and not 0.0 <= self.magnitude <= 1.0:
            raise FaultInjectionError(
                f"{self.kind} magnitude is a fraction in [0, 1], "
                f"got {self.magnitude}")
        if self.kind in _NON_NEGATIVE_KINDS and self.magnitude < 0:
            raise FaultInjectionError(
                f"{self.kind} magnitude must be >= 0, got {self.magnitude}")
        if self.circulation is not None and self.circulation < 0:
            raise FaultInjectionError(
                f"circulation index must be >= 0, got {self.circulation}")

    def active_at(self, time_s: float) -> bool:
        """Whether the fault is active at simulation time ``time_s``."""
        return self.start_s <= time_s < self.start_s + self.duration_s

    def targets(self, circulation_index: int) -> bool:
        """Whether the fault applies to the given circulation."""
        return self.circulation is None or self.circulation == circulation_index

    def elapsed_s(self, time_s: float) -> float:
        """Seconds the fault has been active at ``time_s`` (0 if not yet)."""
        return max(0.0, time_s - self.start_s)

    @property
    def is_sensor_fault(self) -> bool:
        """Whether the fault corrupts readings rather than hardware."""
        return self.kind.startswith("sensor_")

    def to_dict(self) -> dict:
        """JSON-ready representation (infinite durations are omitted)."""
        out = {"kind": self.kind, "start_s": self.start_s,
               "magnitude": self.magnitude}
        if math.isfinite(self.duration_s):
            out["duration_s"] = self.duration_s
        if self.circulation is not None:
            out["circulation"] = self.circulation
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "FaultSpec":
        """Build a spec from a JSON object, rejecting unknown keys."""
        if not isinstance(data, dict):
            raise FaultInjectionError(
                f"fault spec must be an object, got {type(data).__name__}")
        unknown = set(data) - {"kind", "start_s", "duration_s",
                               "magnitude", "circulation"}
        if unknown:
            raise FaultInjectionError(
                f"unknown fault spec keys: {sorted(unknown)}")
        if "kind" not in data:
            raise FaultInjectionError("fault spec is missing 'kind'")
        try:
            return cls(
                kind=data["kind"],
                start_s=float(data.get("start_s", 0.0)),
                duration_s=float(data.get("duration_s", math.inf)),
                magnitude=float(data.get("magnitude", 0.0)),
                circulation=(None if data.get("circulation") is None
                             else int(data["circulation"])),
            )
        except (TypeError, ValueError) as exc:
            raise FaultInjectionError(
                f"invalid fault spec field: {exc}") from None


@dataclass(frozen=True)
class FaultSchedule:
    """An ordered set of fault specs plus the seed that fixes all draws.

    Two schedules with equal specs and seeds inject **identical** series
    into any simulation — that property is enforced by the hypothesis
    tests in ``tests/faults/``.
    """

    specs: tuple[FaultSpec, ...] = ()
    seed: int = 0

    def __post_init__(self) -> None:
        object.__setattr__(self, "specs", tuple(self.specs))
        for spec in self.specs:
            if not isinstance(spec, FaultSpec):
                raise FaultInjectionError(
                    f"schedule entries must be FaultSpec, got "
                    f"{type(spec).__name__}")
        if not isinstance(self.seed, int) or isinstance(self.seed, bool):
            raise FaultInjectionError(
                f"seed must be an integer, got {self.seed!r}")
        if self.seed < 0:
            raise FaultInjectionError(f"seed must be >= 0, got {self.seed}")

    def __len__(self) -> int:
        return len(self.specs)

    def __iter__(self) -> Iterator[FaultSpec]:
        return iter(self.specs)

    def active(self, time_s: float) -> list[tuple[int, FaultSpec]]:
        """``(index, spec)`` pairs active at ``time_s`` (schedule order)."""
        return [(index, spec) for index, spec in enumerate(self.specs)
                if spec.active_at(time_s)]

    # ------------------------------------------------------------------
    # Serialisation
    # ------------------------------------------------------------------

    def to_dict(self) -> dict:
        """JSON-ready representation of the whole schedule."""
        return {"seed": self.seed,
                "faults": [spec.to_dict() for spec in self.specs]}

    def to_json(self, path: str | Path | None = None) -> str:
        """Serialise to a JSON string, optionally writing ``path``."""
        text = json.dumps(self.to_dict(), indent=2)
        if path is not None:
            Path(path).write_text(text + "\n")
        return text

    @classmethod
    def from_dict(cls, data: dict) -> "FaultSchedule":
        """Build a schedule from a parsed JSON object."""
        if not isinstance(data, dict):
            raise FaultInjectionError(
                f"fault schedule must be an object, got "
                f"{type(data).__name__}")
        unknown = set(data) - {"seed", "faults"}
        if unknown:
            raise FaultInjectionError(
                f"unknown fault schedule keys: {sorted(unknown)}")
        faults = data.get("faults", [])
        if not isinstance(faults, Sequence) or isinstance(faults, str):
            raise FaultInjectionError("'faults' must be a list of specs")
        seed = data.get("seed", 0)
        if not isinstance(seed, int) or isinstance(seed, bool):
            raise FaultInjectionError(f"seed must be an integer, got {seed!r}")
        return cls(specs=tuple(FaultSpec.from_dict(entry)
                               for entry in faults), seed=seed)

    @classmethod
    def from_json(cls, source: str | Path) -> "FaultSchedule":
        """Parse a schedule from a JSON file path or a JSON string."""
        text = str(source)
        path = Path(text)
        try:
            is_file = path.is_file()
        except OSError:  # e.g. a JSON string too long for a file name
            is_file = False
        if is_file:
            text = path.read_text()
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise FaultInjectionError(
                f"fault schedule is not valid JSON: {exc}") from None
        return cls.from_dict(data)

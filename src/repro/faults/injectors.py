"""Seeded fault injectors (the runtime layer).

A :class:`FaultRuntime` binds one :class:`~repro.faults.schedule.FaultSchedule`
to one simulation (a cluster partitioned into circulations) and answers
the four questions the simulator asks every control interval:

* :meth:`FaultRuntime.sense` — what do the utilisation sensors *read*
  (noise, bias, stuck-at applied to the true scheduled values)?
* :meth:`FaultRuntime.apply_pump` — what flow does the loop *actually*
  deliver after derating/stall, regardless of what the CDU commanded?
* :meth:`FaultRuntime.teg_output_factor` — what fraction of the nominal
  TEG output does each server produce (open strings, accelerated fade)?
* :meth:`FaultRuntime.cold_source_temp_c` — what temperature does the
  TEG cold side really see (chiller-loop excursions)?

Every random draw is produced by ``np.random.default_rng`` keyed on
``(schedule seed, spec index[, step index, circulation index])``, so the
injected series depend only on the schedule — never on evaluation order,
caching, or the worker a job landed on.
"""

from __future__ import annotations

import numpy as np

from ..errors import FaultInjectionError
from ..reliability import TegDegradationModel
from ..thermal.cpu_model import CoolingSetting
from .schedule import FaultSchedule, FaultSpec

#: Flow a stalled pump still trickles through the loop (thermosiphon /
#: bypass leakage) — deliberately below any CDU's actuator minimum.
STALL_FLOW_L_PER_H = 5.0

#: Sensor readings farther than this outside [0, 1] are implausible: the
#: control plane must assume the sensor is broken and degrade safely.
SENSOR_PLAUSIBLE_SLACK = 0.05


def plausible_readings(readings: np.ndarray) -> bool:
    """Whether a utilisation vector could come from a healthy sensor.

    Finite and within ``[0 - slack, 1 + slack]``; small excursions are
    expected from honest noise and are clipped by the caller, anything
    beyond marks the reading implausible.
    """
    values = np.asarray(readings, dtype=float)
    if values.size == 0 or not np.all(np.isfinite(values)):
        return False
    return bool(np.all((values >= -SENSOR_PLAUSIBLE_SLACK)
                       & (values <= 1.0 + SENSOR_PLAUSIBLE_SLACK)))


class FaultRuntime:
    """One schedule bound to one simulated cluster.

    Parameters
    ----------
    schedule:
        The declarative fault schedule.
    n_servers / n_circulations:
        Shape of the simulated cluster; per-server masks (which TEG
        strings are open) are drawn once at construction.
    degradation_model:
        Fade law used by ``teg_degradation`` faults.
    """

    def __init__(self, schedule: FaultSchedule, n_servers: int,
                 n_circulations: int,
                 degradation_model: TegDegradationModel | None = None
                 ) -> None:
        if not isinstance(schedule, FaultSchedule):
            raise FaultInjectionError(
                f"expected a FaultSchedule, got {type(schedule).__name__}")
        if n_servers <= 0 or n_circulations <= 0:
            raise FaultInjectionError(
                "runtime needs a positive server and circulation count")
        for spec in schedule:
            if (spec.circulation is not None
                    and spec.circulation >= n_circulations):
                raise FaultInjectionError(
                    f"fault targets circulation {spec.circulation} but the "
                    f"cluster only has {n_circulations}")
        self.schedule = schedule
        self.n_servers = n_servers
        self.n_circulations = n_circulations
        self.degradation = degradation_model or TegDegradationModel()
        # Draw static per-server masks up front: which servers' TEG
        # strings break under each open-circuit spec.
        self._open_masks: dict[int, np.ndarray] = {}
        for index, spec in enumerate(schedule):
            if spec.kind == "teg_open_circuit":
                rng = self._rng(index)
                self._open_masks[index] = (
                    rng.random(n_servers) < spec.magnitude)

    def _rng(self, spec_index: int, *extra: int) -> np.random.Generator:
        """Deterministic generator keyed on (seed, spec, *extra)."""
        return np.random.default_rng(
            (self.schedule.seed, spec_index) + extra)

    def _active(self, time_s: float, circ_index: int,
                kinds: tuple[str, ...]) -> list[tuple[int, FaultSpec]]:
        return [(index, spec) for index, spec in self.schedule.active(time_s)
                if spec.kind in kinds and spec.targets(circ_index)]

    # ------------------------------------------------------------------
    # Queries, one per subsystem
    # ------------------------------------------------------------------

    def active_count(self, time_s: float) -> int:
        """Number of fault specs active anywhere at ``time_s``."""
        return len(self.schedule.active(time_s))

    def sense(self, scheduled: np.ndarray, step_index: int,
              circ_index: int, time_s: float) -> np.ndarray:
        """The utilisation vector the policy *reads* for one circulation.

        Applies every active sensor fault in schedule order; returns the
        true values (same array contents, copied) when none are active.
        """
        readings = np.array(scheduled, dtype=float, copy=True)
        kinds = ("sensor_noise", "sensor_bias", "sensor_stuck")
        for index, spec in self._active(time_s, circ_index, kinds):
            if spec.kind == "sensor_noise":
                rng = self._rng(index, step_index, circ_index)
                readings += spec.magnitude * rng.standard_normal(
                    readings.size)
            elif spec.kind == "sensor_bias":
                readings += spec.magnitude
            else:  # sensor_stuck
                readings[:] = spec.magnitude
        return readings

    def pump_stalled(self, time_s: float, circ_index: int) -> bool:
        """Whether a stall fault grips this circulation's pump."""
        return bool(self._active(time_s, circ_index, ("pump_stall",)))

    def apply_pump(self, setting: CoolingSetting, time_s: float,
                   circ_index: int) -> CoolingSetting:
        """The setting the loop physically delivers after pump faults.

        Derates multiply the commanded flow; a stall collapses it to
        :data:`STALL_FLOW_L_PER_H`.  The inlet set-point is untouched
        (the CDU's valves still regulate temperature).
        """
        flow = setting.flow_l_per_h
        for _, spec in self._active(time_s, circ_index, ("pump_derate",)):
            flow *= (1.0 - spec.magnitude)
        if self.pump_stalled(time_s, circ_index):
            flow = STALL_FLOW_L_PER_H
        flow = max(flow, STALL_FLOW_L_PER_H)
        if flow == setting.flow_l_per_h:
            return setting
        return CoolingSetting(flow_l_per_h=flow,
                              inlet_temp_c=setting.inlet_temp_c)

    def teg_output_factor(self, time_s: float, circ_index: int,
                          group: np.ndarray) -> np.ndarray | float:
        """Per-server multiplier on nominal TEG output (1.0 = healthy).

        ``group`` holds the global server indices of the circulation, so
        open-circuit masks drawn over the whole cluster line up with the
        per-circulation evaluation.
        """
        factor: np.ndarray | float = 1.0
        for index, spec in self._active(
                time_s, circ_index, ("teg_open_circuit", "teg_degradation")):
            if spec.kind == "teg_open_circuit":
                mask = self._open_masks[index][np.asarray(group)]
                server_factor = np.where(mask, 0.0, 1.0)
                factor = factor * server_factor
            else:  # accelerated ageing through the fade law
                aged_years = (spec.elapsed_s(time_s) / 3600.0
                              * spec.magnitude)
                factor = factor * self.degradation.output_factor(aged_years)
        return factor

    def activation_events(self, duration_s: float) -> list[dict]:
        """One JSON-ready payload per spec that activates within a run.

        Used by the telemetry layer (:mod:`repro.obs`) to emit
        ``fault.activation`` events: every spec whose window intersects
        ``[0, duration_s)`` yields its schedule position, kind, window
        and magnitude.  ``end_s`` is ``None`` for permanent faults.
        """
        events: list[dict] = []
        for index, spec in enumerate(self.schedule):
            if spec.start_s >= duration_s:
                continue
            end_s = spec.start_s + spec.duration_s
            events.append({
                "spec_index": index,
                "fault": spec.kind,
                "start_s": spec.start_s,
                "end_s": None if not np.isfinite(end_s) else end_s,
                "magnitude": spec.magnitude,
                "circulation": spec.circulation,
            })
        return events

    def cold_source_temp_c(self, nominal_c: float, time_s: float,
                           circ_index: int) -> float:
        """TEG cold-side temperature after chiller-loop excursions."""
        temp = nominal_c
        for _, spec in self._active(time_s, circ_index,
                                    ("chiller_excursion",)):
            temp += spec.magnitude
        return temp


__all__ = [
    "STALL_FLOW_L_PER_H",
    "SENSOR_PLAUSIBLE_SLACK",
    "FaultRuntime",
    "plausible_readings",
]

"""Fault injection: deterministic disturbance models for the H2P plant.

Real warm-water datacenters do not run the nominal plant the paper
evaluates: TEG strings go open-circuit, modules age faster than their
datasheet fade, pumps derate or stall, chiller loops lose their cold
side, and the utilisation sensors the control plane reads drift, stick
or go noisy.  This package models those disturbances as data
(:class:`FaultSpec` / :class:`FaultSchedule`) plus a seeded, fully
deterministic runtime (:class:`FaultRuntime`) that the simulator queries
every control interval.

Design rules
------------
* **Deterministic** — every random draw is keyed on
  ``(schedule.seed, spec index, step index, circulation index)`` through
  ``numpy``'s ``default_rng``; the same seed always yields the same
  injected series regardless of evaluation order or worker count.
* **Declarative** — a schedule is plain data and round-trips through
  JSON (``h2p batch --faults spec.json``); see ``docs/faults.md`` for
  the schema.
* **Non-invasive** — with no schedule attached the simulator takes its
  original code path and its output stays bit-identical.
"""

from .schedule import FAULT_KINDS, FaultSpec, FaultSchedule
from .injectors import (
    SENSOR_PLAUSIBLE_SLACK,
    STALL_FLOW_L_PER_H,
    FaultRuntime,
    plausible_readings,
)

__all__ = [
    "FAULT_KINDS",
    "FaultSpec",
    "FaultSchedule",
    "FaultRuntime",
    "plausible_readings",
    "SENSOR_PLAUSIBLE_SLACK",
    "STALL_FLOW_L_PER_H",
]

"""Heterogeneous fleets: H2P across different CPU models.

The paper prototypes on one CPU (Xeon E5-2650 V3) but argues that "H2P
suits all types of CPUs" (Sec. VII) — the module clamps onto the outlet
piping, so only the thermal calibration changes per model.  This module
provides:

* :class:`CpuSpec` — a named CPU model: power envelope (scaling Eq. 20),
  maximum operating temperature and cold-plate thermal resistance scale;
* a small registry of representative specs;
* :class:`FleetMix` — a datacenter whose racks hold different CPU
  models.  Racks are homogeneous (as in practice), so each model gets
  its own circulations, policies and safe temperature; the mix result
  aggregates fleet-wide generation, PRE and TCO.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from .core.config import SimulationConfig, teg_loadbalance
from .core.engine import SimulationJob, run_batch
from .core.results import SimulationResult
from .errors import ConfigurationError, PhysicalRangeError
from .thermal.cpu_model import CpuThermalModel, OutletDeltaModel
from .workloads.trace import WorkloadTrace


@dataclass(frozen=True)
class CpuSpec:
    """One CPU model's thermal/power personality.

    Attributes
    ----------
    name:
        Marketing name.
    power_scale:
        Multiplier on the Eq. 20 power curve (a 145 W-TDP part runs
        ~1.4x the prototype's envelope).
    max_operating_temp_c:
        The vendor's temperature limit.
    resistance_scale:
        Multiplier on the junction-to-coolant thermal resistance (bigger
        dies spread heat better: < 1).
    safe_fraction:
        ``T_safe`` is this fraction of the max operating temperature
        (the paper uses ~80 %).
    """

    name: str
    power_scale: float = 1.0
    max_operating_temp_c: float = 78.9
    resistance_scale: float = 1.0
    safe_fraction: float = 0.79

    def __post_init__(self) -> None:
        if self.power_scale <= 0:
            raise PhysicalRangeError("power_scale must be > 0")
        if not 40.0 < self.max_operating_temp_c < 120.0:
            raise PhysicalRangeError(
                "max operating temperature outside the plausible band")
        if self.resistance_scale <= 0:
            raise PhysicalRangeError("resistance_scale must be > 0")
        if not 0.5 <= self.safe_fraction < 1.0:
            raise PhysicalRangeError(
                "safe_fraction must be in [0.5, 1)")

    @property
    def safe_temp_c(self) -> float:
        """The derated control target for this model."""
        return self.safe_fraction * self.max_operating_temp_c

    def thermal_model(self) -> CpuThermalModel:
        """A calibrated thermal model adjusted to this spec."""
        base = CpuThermalModel()
        return CpuThermalModel(
            r_min_k_per_w=base.r_min_k_per_w * self.resistance_scale,
            r_amp_k_per_w=base.r_amp_k_per_w * self.resistance_scale,
            max_operating_temp_c=self.max_operating_temp_c,
            power_scale=self.power_scale,
            outlet_model=OutletDeltaModel(
                load_delta_c=base.outlet_model.load_delta_c
                * self.power_scale),
        )


#: The prototype part (Sec. IV-A).
XEON_E5_2650_V3 = CpuSpec(name="Xeon E5-2650 v3")

#: A higher-TDP 22-core part of the same era.
XEON_E5_2699_V4 = CpuSpec(name="Xeon E5-2699 v4", power_scale=1.40,
                          max_operating_temp_c=81.0,
                          resistance_scale=0.85)

#: A dense many-core part with a hotter limit and a big heat spreader.
EPYC_CLASS = CpuSpec(name="EPYC-class 64c", power_scale=1.9,
                     max_operating_temp_c=90.0, resistance_scale=0.70)

#: A low-power edge part.
XEON_D_CLASS = CpuSpec(name="Xeon D-class", power_scale=0.45,
                       max_operating_temp_c=85.0,
                       resistance_scale=1.3)

CPU_SPECS: dict[str, CpuSpec] = {
    spec.name: spec
    for spec in (XEON_E5_2650_V3, XEON_E5_2699_V4, EPYC_CLASS,
                 XEON_D_CLASS)
}


@dataclass(frozen=True)
class FleetShareResult:
    """One CPU model's slice of the fleet evaluation."""

    spec: CpuSpec
    n_servers: int
    result: SimulationResult

    @property
    def generation_w(self) -> float:
        """Mean per-CPU generation of this slice."""
        return self.result.average_generation_w


@dataclass
class FleetMix:
    """A datacenter whose racks mix several CPU models.

    Attributes
    ----------
    shares:
        ``{spec: fraction}`` — fractions must sum to 1.
    config:
        Base scheme configuration; each slice gets its spec's safe
        temperature.
    """

    shares: dict[CpuSpec, float] = field(default_factory=lambda: {
        XEON_E5_2650_V3: 0.5, XEON_E5_2699_V4: 0.3, EPYC_CLASS: 0.2})
    config: SimulationConfig = field(default_factory=teg_loadbalance)

    def __post_init__(self) -> None:
        if not self.shares:
            raise ConfigurationError("shares must not be empty")
        total = sum(self.shares.values())
        if abs(total - 1.0) > 1e-6:
            raise ConfigurationError(
                f"shares must sum to 1, got {total}")
        if any(share <= 0 for share in self.shares.values()):
            raise ConfigurationError("every share must be > 0")

    def run(self, trace: WorkloadTrace,
            n_workers: int | None = None) -> list[FleetShareResult]:
        """Evaluate every model's slice on its portion of the trace.

        Server columns are dealt out contiguously in share order; each
        slice runs with its spec's thermal model and safe temperature.
        All slices run as one
        :class:`~repro.core.engine.BatchSimulationEngine` batch (one job
        per CPU model, parallel across slices, bit-identical to serial
        per-slice simulation); ``n_workers`` defers to ``REPRO_WORKERS``
        and then the CPU count when omitted.
        """
        jobs = []
        specs = []
        start = 0
        spec_list = list(self.shares)
        for index, spec in enumerate(spec_list):
            share = self.shares[spec]
            if index == len(spec_list) - 1:
                stop = trace.n_servers
            else:
                stop = start + max(1, int(round(share * trace.n_servers)))
                stop = min(stop, trace.n_servers)
            if stop <= start:
                raise ConfigurationError(
                    f"trace too narrow to give {spec.name} any servers")
            sub_trace = trace.slice_servers(start, stop)
            config = replace(
                self.config,
                name=f"{self.config.name}/{spec.name}",
                safe_temp_c=spec.safe_temp_c,
                circulation_size=min(self.config.circulation_size,
                                     sub_trace.n_servers))
            # Eq. 20 scaling enters through the spec's thermal model and
            # a scaled power accounting below.
            jobs.append(SimulationJob(trace=sub_trace, config=config,
                                      cpu_model=spec.thermal_model()))
            specs.append(spec)
            start = stop
        batch = run_batch(jobs, n_workers)
        return [FleetShareResult(spec=spec, n_servers=job.trace.n_servers,
                                 result=result)
                for spec, job, result in zip(specs, jobs, batch.results)]

    @staticmethod
    def aggregate(outcomes: list[FleetShareResult]) -> dict:
        """Fleet-weighted headline metrics."""
        if not outcomes:
            raise ConfigurationError("no outcomes to aggregate")
        servers = np.array([outcome.n_servers for outcome in outcomes])
        generation = np.array([outcome.generation_w
                               for outcome in outcomes])
        # average_cpu_power_w already includes the spec's power scale
        # (it flows through the slice's thermal model).
        power = np.array([outcome.result.average_cpu_power_w
                          for outcome in outcomes])
        weights = servers / servers.sum()
        fleet_generation = float(np.sum(weights * generation))
        fleet_power = float(np.sum(weights * power))
        return {
            "fleet_generation_w": fleet_generation,
            "fleet_cpu_power_w": fleet_power,
            "fleet_pre": fleet_generation / fleet_power,
            "per_spec": {
                outcome.spec.name: {
                    "servers": int(outcome.n_servers),
                    "generation_w": round(outcome.generation_w, 3),
                    "safe_temp_c": round(outcome.spec.safe_temp_c, 1),
                    "violations":
                        outcome.result.total_safety_violations,
                }
                for outcome in outcomes
            },
        }

"""CLI output routing backed by :mod:`repro.obs` events.

Every subcommand of the ``h2p`` CLI talks to the terminal through one
:class:`Reporter` instead of bare ``print`` calls, which gives all
commands the same three output contracts:

* default — human-readable lines on stdout, byte-identical to the
  pre-Reporter CLI;
* ``--quiet`` — informational lines suppressed, failure lines kept;
* ``--json`` — nothing printed until the end, then one JSON document
  built from the handler's :meth:`Reporter.result` payloads.

Everything the reporter says is also recorded as structured
``cli.info`` / ``cli.error`` / ``cli.result`` events in an
:class:`~repro.obs.events.EventLog`, so a ``--telemetry`` run can fold
the console transcript into its ``events.jsonl`` artefact.
"""

from __future__ import annotations

import json
import sys
from typing import Any, TextIO

from .events import EventLog

__all__ = ["Reporter"]


class Reporter:
    """Routes CLI output: text lines, JSON payloads, structured events.

    Parameters
    ----------
    quiet:
        Suppress :meth:`info` lines (``error`` lines still print).
    json_mode:
        Print nothing until :meth:`flush`, which emits one JSON document
        of every :meth:`result` payload.
    stream:
        Output stream (default: ``sys.stdout``, resolved per call so
        pytest's ``capsys`` and friends see the output).
    """

    def __init__(self, *, quiet: bool = False, json_mode: bool = False,
                 stream: TextIO | None = None) -> None:
        self.quiet = quiet
        self.json_mode = json_mode
        self._stream = stream
        #: Structured transcript of everything reported.
        self.events = EventLog()
        #: Accumulated machine-readable payloads (the ``--json`` body).
        self.payload: dict[str, Any] = {}

    @property
    def stream(self) -> TextIO:
        return self._stream if self._stream is not None else sys.stdout

    def info(self, text: str = "") -> None:
        """One informational line (hidden by ``--quiet`` / ``--json``)."""
        self.events.emit("cli.info", text=text)
        if not self.quiet and not self.json_mode:
            print(text, file=self.stream)

    def error(self, text: str) -> None:
        """One failure line — printed even under ``--quiet``."""
        self.events.emit("cli.error", text=text)
        if not self.json_mode:
            print(text, file=self.stream)

    def result(self, key: str, value: Any) -> None:
        """Attach one machine-readable payload under ``key``."""
        self.events.emit("cli.result", key=key)
        self.payload[key] = value

    def flush(self) -> None:
        """Emit the JSON document (no-op outside ``--json`` mode)."""
        if self.json_mode:
            print(json.dumps(self.payload, indent=2, sort_keys=True,
                             default=str), file=self.stream)

"""Exporters: Prometheus text format and the console span-tree renderer.

Everything here consumes *snapshots* (plain data), never live sessions,
so exporters work identically on a local run and on merged worker
telemetry.  JSONL export lives on :class:`repro.obs.events.EventLog`
itself; the run manifest is assembled in :mod:`repro.obs.manifest`.
"""

from __future__ import annotations

import re
from pathlib import Path

from .metrics import MetricsSnapshot

__all__ = [
    "prometheus_name",
    "prometheus_text",
    "write_prometheus",
    "render_span_tree",
]

_NAME_OK = re.compile(r"[^a-zA-Z0-9_:]")


def prometheus_name(name: str, suffix: str = "") -> str:
    """Map a dotted metric name onto the Prometheus grammar.

    ``engine.cache.hits`` -> ``repro_engine_cache_hits``; any character
    outside ``[a-zA-Z0-9_:]`` becomes ``_``.
    """
    return "repro_" + _NAME_OK.sub("_", name) + suffix


def _format_value(value: float) -> str:
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def prometheus_text(snapshot: MetricsSnapshot) -> str:
    """Render a metrics snapshot in the Prometheus text exposition format.

    Counters gain the conventional ``_total`` suffix; histograms emit
    cumulative ``_bucket{le=...}`` series plus ``_sum`` and ``_count``.
    The output is deterministic (sorted by metric name).
    """
    lines: list[str] = []
    for name in sorted(snapshot.counters):
        metric = prometheus_name(name, "_total")
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric} {_format_value(snapshot.counters[name])}")
    for name in sorted(snapshot.gauges):
        metric = prometheus_name(name)
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric} {_format_value(snapshot.gauges[name])}")
    for name in sorted(snapshot.histograms):
        hist = snapshot.histograms[name]
        metric = prometheus_name(name)
        lines.append(f"# TYPE {metric} histogram")
        cumulative = 0
        for bound, count in zip(hist.buckets, hist.counts):
            cumulative += count
            lines.append(
                f'{metric}_bucket{{le="{_format_value(bound)}"}} '
                f"{cumulative}")
        lines.append(f'{metric}_bucket{{le="+Inf"}} {hist.total}')
        lines.append(f"{metric}_sum {_format_value(hist.sum)}")
        lines.append(f"{metric}_count {hist.total}")
    return "\n".join(lines) + ("\n" if lines else "")


def write_prometheus(snapshot: MetricsSnapshot, path: str | Path) -> Path:
    """Write the Prometheus rendering of ``snapshot`` to ``path``."""
    path = Path(path)
    path.write_text(prometheus_text(snapshot), encoding="utf-8")
    return path


def render_span_tree(tree: dict, indent: str = "  ") -> str:
    """Render a serialised span tree as an aligned console listing.

    ``tree`` is the ``Tracer.snapshot()`` shape: top-level span names
    mapping to ``{count, wall_s, cpu_s, children}`` dicts.  Children are
    shown in recorded order, indented under their parent, with each
    node's share of its parent's wall time.
    """
    rows: list[tuple[str, int, float, float, str]] = []

    def walk(name: str, node: dict, depth: int, parent_wall: float) -> None:
        wall = float(node.get("wall_s", 0.0))
        share = ""
        if parent_wall > 0:
            share = f"{wall / parent_wall:6.1%}"
        rows.append((indent * depth + name, int(node.get("count", 0)),
                     wall, float(node.get("cpu_s", 0.0)), share))
        for child_name, child in node.get("children", {}).items():
            walk(child_name, child, depth + 1, wall)

    for name, node in tree.items():
        walk(name, node, 0, 0.0)
    if not rows:
        return "(no spans recorded)"
    name_width = max(len(row[0]) for row in rows + [("span", 0, 0, 0, "")])
    lines = [f"{'span':<{name_width}}  {'calls':>7} {'wall s':>10} "
             f"{'cpu s':>10} {'parent%':>7}"]
    for name, count, wall, cpu, share in rows:
        lines.append(f"{name:<{name_width}}  {count:>7} {wall:>10.4f} "
                     f"{cpu:>10.4f} {share:>7}")
    return "\n".join(lines)

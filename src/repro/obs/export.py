"""Exporters: Prometheus text format and the console span-tree renderer.

Everything here consumes *snapshots* (plain data), never live sessions,
so exporters work identically on a local run and on merged worker
telemetry.  JSONL export lives on :class:`repro.obs.events.EventLog`
itself; the run manifest is assembled in :mod:`repro.obs.manifest`.
"""

from __future__ import annotations

import os
import re
import tempfile
from pathlib import Path

from .metrics import (MetricsSnapshot, decode_series, escape_label_value,
                      series_family)

__all__ = [
    "prometheus_name",
    "prometheus_labels",
    "prometheus_text",
    "write_prometheus",
    "render_span_tree",
    "atomic_write_text",
]

_NAME_OK = re.compile(r"[^a-zA-Z0-9_:]")


def prometheus_name(name: str, suffix: str = "") -> str:
    """Map a dotted metric name onto the Prometheus grammar.

    ``engine.cache.hits`` -> ``repro_engine_cache_hits``; any character
    outside ``[a-zA-Z0-9_:]`` becomes ``_``.  ``name`` must be a bare
    family name — labels are rendered separately (see
    :func:`prometheus_labels`).
    """
    return "repro_" + _NAME_OK.sub("_", name) + suffix


def prometheus_labels(labels: dict[str, str],
                      extra: dict[str, str] | None = None) -> str:
    """Render a label dict as a ``{k="v",...}`` block (or ``""``).

    Values are escaped per the exposition format (backslash, quote,
    newline); ``extra`` labels (e.g. ``le``) append after the sorted
    series labels.
    """
    pairs = [(key, labels[key]) for key in sorted(labels)]
    if extra:
        pairs.extend(extra.items())
    if not pairs:
        return ""
    body = ",".join(f'{key}="{escape_label_value(value)}"'
                    for key, value in pairs)
    return "{" + body + "}"


def _format_value(value: float) -> str:
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def _families(series: dict) -> dict[str, list[str]]:
    """Group sorted series keys by family, families sorted by name."""
    grouped: dict[str, list[str]] = {}
    for key in sorted(series, key=lambda k: (series_family(k), k)):
        grouped.setdefault(series_family(key), []).append(key)
    return grouped


def prometheus_text(snapshot: MetricsSnapshot) -> str:
    """Render a metrics snapshot in the Prometheus text exposition format.

    Counters gain the conventional ``_total`` suffix; histograms emit
    cumulative ``_bucket{le=...}`` series plus ``_sum`` and ``_count``.
    Labelled series render as ``metric{k="v"}`` with one ``# TYPE`` line
    per family.  The output is deterministic (sorted by family, then by
    series key).
    """
    lines: list[str] = []
    for name, keys in _families(snapshot.counters).items():
        metric = prometheus_name(name, "_total")
        lines.append(f"# TYPE {metric} counter")
        for key in keys:
            _, labels = decode_series(key)
            lines.append(f"{metric}{prometheus_labels(labels)} "
                         f"{_format_value(snapshot.counters[key])}")
    for name, keys in _families(snapshot.gauges).items():
        metric = prometheus_name(name)
        lines.append(f"# TYPE {metric} gauge")
        for key in keys:
            _, labels = decode_series(key)
            lines.append(f"{metric}{prometheus_labels(labels)} "
                         f"{_format_value(snapshot.gauges[key])}")
    for name, keys in _families(snapshot.histograms).items():
        metric = prometheus_name(name)
        lines.append(f"# TYPE {metric} histogram")
        for key in keys:
            hist = snapshot.histograms[key]
            _, labels = decode_series(key)
            block = prometheus_labels(labels)
            cumulative = 0
            for bound, count in zip(hist.buckets, hist.counts):
                cumulative += count
                le = prometheus_labels(labels,
                                       {"le": _format_value(bound)})
                lines.append(f"{metric}_bucket{le} {cumulative}")
            le = prometheus_labels(labels, {"le": "+Inf"})
            lines.append(f"{metric}_bucket{le} {hist.total}")
            lines.append(f"{metric}_sum{block} {_format_value(hist.sum)}")
            lines.append(f"{metric}_count{block} {hist.total}")
    return "\n".join(lines) + ("\n" if lines else "")


def atomic_write_text(path: str | Path, text: str) -> Path:
    """Durably replace ``path`` with ``text``: write-fsync-rename.

    The same discipline the checkpoint store uses — the bytes go to a
    temporary file in the target directory, are fsynced, then renamed
    over the destination, and the directory entry is fsynced — so a
    SIGKILL at any point leaves either the old artifact or the new one,
    never a truncated hybrid.
    """
    path = Path(path)
    fd, tmp_name = tempfile.mkstemp(
        dir=path.parent, prefix=path.name + ".", suffix=".tmp")
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            handle.write(text)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    try:
        dir_fd = os.open(path.parent, os.O_RDONLY)
    except OSError:
        return path
    try:
        os.fsync(dir_fd)
    except OSError:
        pass
    finally:
        os.close(dir_fd)
    return path


def write_prometheus(snapshot: MetricsSnapshot, path: str | Path) -> Path:
    """Atomically write the Prometheus rendering of ``snapshot``."""
    return atomic_write_text(path, prometheus_text(snapshot))


def render_span_tree(tree: dict, indent: str = "  ") -> str:
    """Render a serialised span tree as an aligned console listing.

    ``tree`` is the ``Tracer.snapshot()`` shape: top-level span names
    mapping to ``{count, wall_s, cpu_s, children}`` dicts.  Children are
    shown in recorded order, indented under their parent, with each
    node's share of its parent's wall time.
    """
    rows: list[tuple[str, int, float, float, str]] = []

    def walk(name: str, node: dict, depth: int, parent_wall: float) -> None:
        wall = float(node.get("wall_s", 0.0))
        share = ""
        if parent_wall > 0:
            share = f"{wall / parent_wall:6.1%}"
        rows.append((indent * depth + name, int(node.get("count", 0)),
                     wall, float(node.get("cpu_s", 0.0)), share))
        for child_name, child in node.get("children", {}).items():
            walk(child_name, child, depth + 1, wall)

    for name, node in tree.items():
        walk(name, node, 0, 0.0)
    if not rows:
        return "(no spans recorded)"
    name_width = max(len(row[0]) for row in rows + [("span", 0, 0, 0, "")])
    lines = [f"{'span':<{name_width}}  {'calls':>7} {'wall s':>10} "
             f"{'cpu s':>10} {'parent%':>7}"]
    for name, count, wall, cpu, share in rows:
        lines.append(f"{name:<{name_width}}  {count:>7} {wall:>10.4f} "
                     f"{cpu:>10.4f} {share:>7}")
    return "\n".join(lines)

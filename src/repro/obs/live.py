"""Live telemetry plane: an in-process Prometheus scrape endpoint.

A :class:`LiveTelemetryServer` is a stdlib-only ``http.server`` thread
that exposes the *current* state of a run while it is still in flight:

* ``GET /metrics`` — the shared registry rendered in the Prometheus
  text exposition format (labelled ``repro_*`` series), exactly what
  ``metrics.prom`` would contain if the run stopped now;
* ``GET /healthz`` — a JSON liveness document: run phase, jobs and
  shards completed/total, straggler re-dispatch count.

The server holds a reference to a live :class:`~repro.obs.session.
Telemetry` (bound per run with :meth:`LiveTelemetryServer.bind`) and a
:class:`RunHealth` progress tracker the engine updates from its
coordinator thread.  Scrapes snapshot the registry over a point-in-time
copy of its instrument table, so the run thread never blocks on a
scrape and the scrape never observes a torn dict.  Everything here is
strictly observational: simulation records are bit-identical with the
endpoint attached or not.

Attachment points: ``BatchSimulationEngine(metrics_port=N)`` /
``run_batch(metrics_port=N)``, ``simulate_sharded(metrics_port=N)``,
``h2p batch --metrics-port N``, or the ``REPRO_METRICS_PORT``
environment variable (validated; port ``0`` binds an ephemeral port and
the bound address is reported).  The engine shuts the server down in
``close()``.
"""

from __future__ import annotations

import json
import os
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from ..errors import ConfigurationError
from .export import prometheus_text
from .session import Telemetry

__all__ = [
    "METRICS_PORT_ENV_VAR",
    "resolve_metrics_port",
    "RunHealth",
    "LiveTelemetryServer",
]

#: Environment variable naming the default live-scrape port.
METRICS_PORT_ENV_VAR = "REPRO_METRICS_PORT"


def resolve_metrics_port(explicit: int | None = None) -> int | None:
    """Scrape port: explicit > ``REPRO_METRICS_PORT`` > ``None`` (off).

    Raises
    ------
    ConfigurationError
        When either source is not an integer in ``[0, 65535]`` (``0``
        asks the OS for an ephemeral port).
    """
    if explicit is not None:
        source, value = "metrics_port", explicit
    else:
        env = os.environ.get(METRICS_PORT_ENV_VAR)
        if env is None or not env.strip():
            return None
        source, value = METRICS_PORT_ENV_VAR, env
    try:
        port = int(value)
    except (TypeError, ValueError):
        raise ConfigurationError(
            f"{source} must be an integer port, got {value!r}") from None
    if not 0 <= port <= 65535:
        raise ConfigurationError(
            f"{source} must be in [0, 65535], got {port}")
    return port


class RunHealth:
    """Thread-safe progress state behind ``GET /healthz``.

    The engine's coordinator thread mutates it (phase transitions, job
    and shard completions, straggler re-dispatches); the scrape thread
    renders it.  All methods take the lock, none are on a per-step hot
    path — the finest granularity is one call per job or shard.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.phase = "idle"
        self.jobs_total = 0
        self.jobs_completed = 0
        self.jobs_failed = 0
        self.shards_total = 0
        self.shards_completed = 0
        self.stragglers = 0
        self.runs = 0

    def begin(self, *, jobs_total: int = 0, shards_total: int = 0) -> None:
        """Reset progress for a new run (phase becomes ``running``)."""
        with self._lock:
            self.phase = "running"
            self.jobs_total = jobs_total
            self.jobs_completed = 0
            self.jobs_failed = 0
            self.shards_total = shards_total
            self.shards_completed = 0
            self.stragglers = 0
            self.runs += 1

    def set_phase(self, phase: str) -> None:
        with self._lock:
            self.phase = phase

    def add_shards(self, n: int) -> None:
        """Grow the shard denominator (autotune replans, extra jobs)."""
        with self._lock:
            self.shards_total += n

    def shard_done(self, n: int = 1) -> None:
        with self._lock:
            self.shards_completed += n

    def job_done(self, *, failed: bool = False) -> None:
        with self._lock:
            if failed:
                self.jobs_failed += 1
            else:
                self.jobs_completed += 1

    def straggler(self) -> None:
        with self._lock:
            self.stragglers += 1

    def finish(self, phase: str = "done") -> None:
        with self._lock:
            self.phase = phase

    def to_dict(self) -> dict:
        with self._lock:
            return {
                "phase": self.phase,
                "runs": self.runs,
                "jobs": {"completed": self.jobs_completed,
                         "failed": self.jobs_failed,
                         "total": self.jobs_total},
                "shards": {"completed": self.shards_completed,
                           "total": self.shards_total},
                "stragglers": self.stragglers,
            }


class _ScrapeHandler(BaseHTTPRequestHandler):
    """Routes ``/metrics`` and ``/healthz``; everything else is 404."""

    server_version = "repro-obs-live/1"
    protocol_version = "HTTP/1.1"

    def do_GET(self) -> None:  # noqa: N802 (http.server API)
        path = self.path.split("?", 1)[0]
        if path == "/metrics":
            telemetry = self.server.live_telemetry
            text = (prometheus_text(telemetry.registry.snapshot())
                    if telemetry is not None else "")
            self._reply(200, text,
                        "text/plain; version=0.0.4; charset=utf-8")
        elif path == "/healthz":
            health = self.server.live_health
            body = json.dumps(
                health.to_dict() if health is not None
                else {"phase": "idle"}, sort_keys=True) + "\n"
            self._reply(200, body, "application/json")
        else:
            self._reply(404, f"no such route: {path}\n", "text/plain")

    def _reply(self, status: int, body: str, content_type: str) -> None:
        payload = body.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(payload)))
        self.end_headers()
        self.wfile.write(payload)

    def log_message(self, fmt: str, *args) -> None:
        """Scrapes are high-frequency; never write them to stderr."""


class _LiveHTTPServer(ThreadingHTTPServer):
    daemon_threads = True
    # Scrape targets restart often in tests and CI; never fight TIME_WAIT.
    allow_reuse_address = True

    live_telemetry: Telemetry | None = None
    live_health: RunHealth | None = None


class LiveTelemetryServer:
    """Serve ``/metrics`` and ``/healthz`` for a run in flight.

    The server binds eagerly at construction (so callers can report the
    resolved address before any work starts), serves from a daemon
    thread, and is re-bindable: each engine run points it at that run's
    live session with :meth:`bind`.  :meth:`close` shuts the listener
    down and joins the thread — the engine calls it from ``close()`` so
    a context-managed engine never leaks the port.
    """

    def __init__(self, *, port: int = 0, host: str = "127.0.0.1") -> None:
        try:
            self._server = _LiveHTTPServer((host, port), _ScrapeHandler)
        except OSError as exc:
            raise ConfigurationError(
                f"cannot bind live metrics endpoint on {host}:{port}: "
                f"{exc}") from exc
        self._thread = threading.Thread(
            target=self._server.serve_forever, kwargs={"poll_interval": 0.1},
            name="repro-obs-live", daemon=True)
        self._thread.start()
        self._closed = False

    @property
    def host(self) -> str:
        return self._server.server_address[0]

    @property
    def port(self) -> int:
        """The actually bound port (resolved when constructed with 0)."""
        return self._server.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def bind(self, telemetry: Telemetry | None,
             health: RunHealth | None = None) -> None:
        """Point ``/metrics`` (and ``/healthz``) at a live session."""
        self._server.live_telemetry = telemetry
        self._server.live_health = health

    def close(self) -> None:
        """Stop serving and join the listener thread (idempotent)."""
        if self._closed:
            return
        self._closed = True
        self._server.shutdown()
        self._thread.join(timeout=5.0)
        self._server.server_close()

    def __enter__(self) -> "LiveTelemetryServer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

"""Telemetry sessions: the glue between instruments and instrumented code.

A :class:`Telemetry` session bundles one metrics registry, one span
tracer and one event log.  Instrumented code never holds a session —
it calls the module-level helpers (:func:`span`, :func:`add`,
:func:`observe`, :func:`emit`, ...) which read the *current* session
from a :class:`contextvars.ContextVar`:

* no session installed -> every helper is a near-free no-op (one
  context-variable read), which is how the kernel hot path stays within
  the 3 % overhead budget when telemetry is off;
* a session installed with :func:`session` -> all helpers record into
  it.  Sessions are context-local, so thread-pool jobs running
  concurrently in one process each record into their own session and
  the per-job snapshots never double count.

Cross-process flow: a worker job runs under its own session, freezes it
into a :class:`TelemetrySnapshot` (plain picklable data), and attaches
the snapshot to its :class:`~repro.core.results.SimulationResult`; the
batch layer merges every snapshot into its session with
:meth:`Telemetry.merge_snapshot`.  Because counter merge is addition,
gauge merge is max and histogram merge is per-bucket addition, the
aggregate is identical for serial, thread and process executors.

Environment knobs (validated, ``ConfigurationError`` names the
variable on malformed values):

* ``REPRO_TELEMETRY`` — boolean flag enabling telemetry by default;
* ``REPRO_TELEMETRY_DIR`` — default directory for run artefacts
  (``manifest.json``, ``events.jsonl``, ``metrics.prom``).
"""

from __future__ import annotations

import contextvars
import os
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from ..errors import ConfigurationError
from .events import Event, EventLog
from .metrics import (
    DEFAULT_TEG_POWER_BUCKETS_W,
    MetricsRegistry,
    MetricsSnapshot,
)
from .spans import NULL_SPAN, Tracer

__all__ = [
    "TELEMETRY_ENV_VAR",
    "TELEMETRY_DIR_ENV_VAR",
    "Telemetry",
    "TelemetrySnapshot",
    "current",
    "session",
    "span",
    "add",
    "gauge_max",
    "observe",
    "emit",
    "record_result",
    "telemetry_enabled",
    "resolve_telemetry_dir",
]

#: Environment variable enabling telemetry by default (boolean flag).
TELEMETRY_ENV_VAR = "REPRO_TELEMETRY"

#: Environment variable naming the default run-artefact directory.
TELEMETRY_DIR_ENV_VAR = "REPRO_TELEMETRY_DIR"

_TRUE_WORDS = ("1", "true", "yes", "on")
_FALSE_WORDS = ("0", "false", "no", "off")

#: Cap on per-run safety-violation events so a pathological run cannot
#: balloon the event log; the full count is always in the metrics.
MAX_VIOLATION_EVENTS = 50


def telemetry_enabled(explicit: bool | None = None) -> bool:
    """Whether telemetry is on: explicit > ``REPRO_TELEMETRY`` > off.

    Raises
    ------
    ConfigurationError
        When ``REPRO_TELEMETRY`` is set to something that is not a
        boolean word (``1/0``, ``true/false``, ``yes/no``, ``on/off``).
    """
    if explicit is not None:
        return bool(explicit)
    env = os.environ.get(TELEMETRY_ENV_VAR)
    if env is None:
        return False
    word = env.strip().lower()
    if word in _TRUE_WORDS:
        return True
    if word in _FALSE_WORDS or word == "":
        return False
    raise ConfigurationError(
        f"{TELEMETRY_ENV_VAR} must be one of "
        f"{'/'.join(_TRUE_WORDS + _FALSE_WORDS)}, got {env!r}")


def resolve_telemetry_dir(explicit: str | Path | None = None) -> Path | None:
    """Artefact directory: explicit > ``REPRO_TELEMETRY_DIR`` > ``None``.

    Raises
    ------
    ConfigurationError
        When ``REPRO_TELEMETRY_DIR`` is blank, or either source names an
        existing path that is not a directory.
    """
    if explicit is not None:
        path = Path(explicit)
    else:
        env = os.environ.get(TELEMETRY_DIR_ENV_VAR)
        if env is None:
            return None
        if not env.strip():
            raise ConfigurationError(
                f"{TELEMETRY_DIR_ENV_VAR} must be a directory path, "
                f"got {env!r}")
        path = Path(env)
    if path.exists() and not path.is_dir():
        raise ConfigurationError(
            f"telemetry directory {str(path)!r} exists and is not a "
            f"directory ({TELEMETRY_DIR_ENV_VAR})")
    return path


@dataclass(frozen=True)
class TelemetrySnapshot:
    """One session frozen to plain data (what worker processes pickle)."""

    metrics: MetricsSnapshot = field(default_factory=MetricsSnapshot)
    spans: dict = field(default_factory=dict)
    events: tuple[Event, ...] = ()

    def merge(self, other: "TelemetrySnapshot") -> "TelemetrySnapshot":
        """Combine two snapshots with the standard order-free semantics."""
        tracer = Tracer()
        tracer.merge(self.spans)
        tracer.merge(other.spans)
        return TelemetrySnapshot(
            metrics=self.metrics.merge(other.metrics),
            spans=tracer.snapshot(),
            events=self.events + other.events,
        )


class Telemetry:
    """One live telemetry session: registry + tracer + event log."""

    def __init__(self) -> None:
        self.registry = MetricsRegistry()
        self.tracer = Tracer()
        self.events = EventLog()

    def snapshot(self) -> TelemetrySnapshot:
        """Freeze the whole session into picklable plain data."""
        return TelemetrySnapshot(
            metrics=self.registry.snapshot(),
            spans=self.tracer.snapshot(),
            events=tuple(self.events.snapshot()),
        )

    def merge_snapshot(self, snap: TelemetrySnapshot) -> None:
        """Fold a (worker) snapshot into this session."""
        self.registry.merge(snap.metrics)
        self.tracer.merge(snap.spans)
        self.events.extend(snap.events)


_CURRENT: contextvars.ContextVar[Telemetry | None] = contextvars.ContextVar(
    "repro_obs_telemetry", default=None)


def current() -> Telemetry | None:
    """The session helpers record into right now (``None`` = disabled)."""
    return _CURRENT.get()


@contextmanager
def session(telemetry: Telemetry | None):
    """Install ``telemetry`` as the current session for the block.

    ``session(None)`` explicitly disables recording inside the block
    (used to shield nested code from an outer session).
    """
    token = _CURRENT.set(telemetry)
    try:
        yield telemetry
    finally:
        _CURRENT.reset(token)


def span(name: str):
    """A timing span under the current session (no-op when disabled)."""
    telemetry = _CURRENT.get()
    if telemetry is None:
        return NULL_SPAN
    return telemetry.tracer.span(name)


def add(name: str, amount: float = 1.0,
        labels: dict[str, object] | None = None) -> None:
    """Increment the counter ``name`` (no-op when disabled)."""
    telemetry = _CURRENT.get()
    if telemetry is not None:
        telemetry.registry.counter(name, labels).inc(amount)


def gauge_max(name: str, value: float,
              labels: dict[str, object] | None = None) -> None:
    """Raise the gauge ``name`` to at least ``value`` (no-op disabled)."""
    telemetry = _CURRENT.get()
    if telemetry is not None:
        telemetry.registry.gauge(name, labels).set_max(value)


def observe(name: str, values,
            buckets: tuple[float, ...] = DEFAULT_TEG_POWER_BUCKETS_W,
            labels: dict[str, object] | None = None) -> None:
    """Fold observations into the histogram ``name`` (no-op disabled).

    Non-finite observations are skipped by the histogram rather than
    poisoning its sum; when any are dropped an ``obs.histogram_skipped``
    event records the series and how many were skipped.
    """
    telemetry = _CURRENT.get()
    if telemetry is not None:
        dropped = telemetry.registry.histogram(
            name, buckets, labels).observe_many(
                np.asarray(values, dtype=float))
        if dropped:
            telemetry.events.emit("obs.histogram_skipped", metric=name,
                                  dropped=dropped)


def emit(kind: str, **data) -> None:
    """Record a structured event (no-op when disabled)."""
    telemetry = _CURRENT.get()
    if telemetry is not None:
        telemetry.events.emit(kind, **data)


def record_result(result, circulation_size: int | None = None) -> None:
    """Fold one finished :class:`SimulationResult` into the session.

    Called by the simulator/kernel at the end of every run; the whole
    recording is column-level NumPy work, so it costs a handful of array
    passes per *run* (never per step).  Catalogue (see
    ``docs/observability.md``): ``sim.runs``, ``sim.steps``,
    ``sim.safety_violations``, ``sim.degraded_steps``,
    ``sim.lost_harvest_kwh``, gauge ``sim.max_cpu_temp_c`` and the
    ``teg.power_w`` per-CPU generation histogram — every series labelled
    ``{scheme, trace}``.  When the caller supplies ``circulation_size``
    (the simulator passes its config's), safety violations are
    additionally broken down per circulation as
    ``sim.circulation.safety_violations{scheme, trace, circulation}``;
    violation ``server_id``s are already in the global frame on every
    path that records results, so the labelled totals are identical
    whichever executor ran the jobs.  Safety violations are also emitted
    as events (capped at :data:`MAX_VIOLATION_EVENTS` per run).
    """
    telemetry = _CURRENT.get()
    if telemetry is None:
        return
    registry = telemetry.registry
    labels = {"scheme": result.scheme, "trace": result.trace_name}
    n_steps = len(result.records)
    registry.counter("sim.runs", labels).inc()
    registry.counter("sim.steps", labels).inc(n_steps)
    if n_steps == 0:
        return
    registry.counter("sim.safety_violations", labels).inc(
        result.total_safety_violations)
    registry.counter("sim.degraded_steps", labels).inc(
        result.degraded_steps)
    registry.counter("sim.lost_harvest_kwh", labels).inc(
        result.total_lost_harvest_kwh)
    registry.gauge("sim.max_cpu_temp_c", labels).set_max(
        float(np.max(result._series("max_cpu_temp_c"))))
    registry.histogram("teg.power_w", labels=labels).observe_many(
        result.generation_series_w)
    if circulation_size is not None and circulation_size > 0:
        per_circ: dict[int, int] = {}
        for violation in result.violations:
            circ = violation.server_id // circulation_size
            per_circ[circ] = per_circ.get(circ, 0) + 1
        for circ, count in per_circ.items():
            registry.counter(
                "sim.circulation.safety_violations",
                {**labels, "circulation": str(circ)}).inc(count)
    for violation in result.violations[:MAX_VIOLATION_EVENTS]:
        telemetry.events.emit(
            "sim.safety_violation",
            scheme=result.scheme, trace=result.trace_name,
            server_id=violation.server_id,
            step_index=violation.step_index,
            time_s=violation.time_s,
            temperature_c=round(violation.temperature_c, 3))
    dropped = len(result.violations) - MAX_VIOLATION_EVENTS
    if dropped > 0:
        telemetry.events.emit(
            "sim.safety_violations_truncated",
            scheme=result.scheme, trace=result.trace_name,
            dropped=dropped)

"""Gated OpenTelemetry bridge: OTLP export without a hard dependency.

Two layers, deliberately separated:

* **Pure converters** — :func:`telemetry_to_otlp` maps a frozen
  :class:`~repro.obs.session.TelemetrySnapshot` onto OTLP-JSON-shaped
  dictionaries (``resourceSpans`` / ``resourceMetrics``).  Our spans are
  aggregates (count + wall/cpu totals, no per-call timestamps), so span
  times are synthesised: the root starts at ``base_time_unix_nano`` and
  children nest sequentially inside their parent's window.  Histograms
  convert losslessly (explicit bounds + bucket counts).  No third-party
  import anywhere — this layer is always available and fully testable.

* **The SDK bridge** — :class:`OtlpBridge` replays a snapshot through
  the OpenTelemetry SDK (tracer spans with explicit start/end times;
  counters, gauges and per-bucket histogram series through a meter) and
  ships it to ``REPRO_OTLP_ENDPOINT`` / an explicit endpoint via the
  OTLP/HTTP exporters.  The SDK import is *gated*: when
  ``opentelemetry`` is not installed, constructing a bridge raises
  :class:`~repro.errors.ConfigurationError` naming what is missing —
  requesting OTLP never degrades silently, and not requesting it never
  imports anything.
"""

from __future__ import annotations

import hashlib
import os
import time
from types import SimpleNamespace

from ..errors import ConfigurationError
from .metrics import MetricsSnapshot, decode_series
from .session import TelemetrySnapshot

__all__ = [
    "OTLP_ENDPOINT_ENV_VAR",
    "resolve_otlp_endpoint",
    "otlp_available",
    "telemetry_to_otlp",
    "OtlpBridge",
]

#: Environment variable naming the OTLP/HTTP collector base endpoint.
OTLP_ENDPOINT_ENV_VAR = "REPRO_OTLP_ENDPOINT"

_SCOPE = {"name": "repro.obs", "version": "1"}


def resolve_otlp_endpoint(explicit: str | None = None) -> str | None:
    """Collector endpoint: explicit > ``REPRO_OTLP_ENDPOINT`` > ``None``.

    Raises
    ------
    ConfigurationError
        When the configured value is blank or not an ``http(s)`` URL.
    """
    if explicit is not None:
        source, value = "otlp endpoint", explicit
    else:
        value = os.environ.get(OTLP_ENDPOINT_ENV_VAR)
        if value is None:
            return None
        source = OTLP_ENDPOINT_ENV_VAR
    value = value.strip()
    if not value:
        raise ConfigurationError(f"{source} must not be blank")
    if not value.startswith(("http://", "https://")):
        raise ConfigurationError(
            f"{source} must be an http(s) URL, got {value!r}")
    return value.rstrip("/")


def otlp_available() -> bool:
    """Whether the OpenTelemetry SDK (and OTLP exporters) can import."""
    try:
        _import_sdk()
    except ConfigurationError:
        return False
    return True


def _attributes(mapping: dict) -> list[dict]:
    """Label dict -> OTLP keyValue list (string values, sorted keys)."""
    return [{"key": key, "value": {"stringValue": str(mapping[key])}}
            for key in sorted(mapping)]


def _spans_to_otlp(tree: dict, base_ns: int) -> list[dict]:
    """Flatten a serialised span tree into OTLP span dicts.

    Synthetic clock: each node occupies ``wall_s`` of its parent's
    window, siblings laid out sequentially from the parent's start.
    Aggregate counts/cpu ride as attributes — the tree is a profile,
    not a trace, and the attributes say so.
    """
    spans: list[dict] = []

    def walk(name: str, node: dict, start_ns: int, parent_id: str,
             path: str) -> int:
        wall_ns = int(float(node.get("wall_s", 0.0)) * 1e9)
        span_id = hashlib.blake2b(path.encode(),
                                  digest_size=8).hexdigest()
        spans.append({
            "name": name,
            "spanId": span_id,
            "parentSpanId": parent_id,
            "startTimeUnixNano": str(start_ns),
            "endTimeUnixNano": str(start_ns + wall_ns),
            "attributes": _attributes({
                "repro.span.count": int(node.get("count", 0)),
                "repro.span.cpu_s": float(node.get("cpu_s", 0.0)),
                "repro.span.aggregate": "true",
            }),
        })
        child_start = start_ns
        for child_name, child in (node.get("children") or {}).items():
            child_start = walk(child_name, child, child_start, span_id,
                               f"{path}/{child_name}")
        return start_ns + wall_ns

    cursor = base_ns
    for name, node in (tree or {}).items():
        cursor = walk(name, node, cursor, "", name)
    return spans


def _metrics_to_otlp(metrics: MetricsSnapshot, base_ns: int) -> list[dict]:
    out: list[dict] = []
    for key, value in sorted(metrics.counters.items()):
        name, labels = decode_series(key)
        out.append({
            "name": name,
            "sum": {
                "aggregationTemporality": 2,  # CUMULATIVE
                "isMonotonic": True,
                "dataPoints": [{
                    "asDouble": float(value),
                    "timeUnixNano": str(base_ns),
                    "attributes": _attributes(labels),
                }],
            },
        })
    for key, value in sorted(metrics.gauges.items()):
        name, labels = decode_series(key)
        out.append({
            "name": name,
            "gauge": {
                "dataPoints": [{
                    "asDouble": float(value),
                    "timeUnixNano": str(base_ns),
                    "attributes": _attributes(labels),
                }],
            },
        })
    for key, hist in sorted(metrics.histograms.items()):
        name, labels = decode_series(key)
        out.append({
            "name": name,
            "histogram": {
                "aggregationTemporality": 2,
                "dataPoints": [{
                    "count": str(hist.total),
                    "sum": float(hist.sum),
                    "explicitBounds": list(hist.buckets),
                    "bucketCounts": [str(c) for c in hist.counts],
                    "timeUnixNano": str(base_ns),
                    "attributes": _attributes(labels),
                }],
            },
        })
    return out


def telemetry_to_otlp(snapshot: TelemetrySnapshot, *,
                      resource: dict | None = None,
                      base_time_unix_nano: int = 0) -> dict:
    """Convert one snapshot into OTLP-JSON-shaped payloads.

    Pure data-in/data-out (no SDK, no clock reads): the caller picks the
    synthetic ``base_time_unix_nano`` origin, so conversions are
    deterministic and the shapes can be asserted in tests or shipped to
    any OTLP/HTTP-JSON collector directly.
    """
    resource_obj = {"attributes": _attributes(
        {"service.name": "repro", **(resource or {})})}
    return {
        "resourceSpans": [{
            "resource": resource_obj,
            "scopeSpans": [{
                "scope": dict(_SCOPE),
                "spans": _spans_to_otlp(snapshot.spans,
                                        base_time_unix_nano),
            }],
        }],
        "resourceMetrics": [{
            "resource": resource_obj,
            "scopeMetrics": [{
                "scope": dict(_SCOPE),
                "metrics": _metrics_to_otlp(snapshot.metrics,
                                            base_time_unix_nano),
            }],
        }],
    }


def _import_sdk() -> SimpleNamespace:
    """Import every SDK piece the bridge needs, or raise (gated)."""
    try:
        from opentelemetry.exporter.otlp.proto.http.metric_exporter import (
            OTLPMetricExporter)
        from opentelemetry.exporter.otlp.proto.http.trace_exporter import (
            OTLPSpanExporter)
        from opentelemetry.sdk.metrics import MeterProvider
        from opentelemetry.sdk.metrics.export import (
            PeriodicExportingMetricReader)
        from opentelemetry.sdk.resources import Resource
        from opentelemetry.sdk.trace import TracerProvider
        from opentelemetry.sdk.trace.export import BatchSpanProcessor
    except ImportError as exc:
        raise ConfigurationError(
            "OTLP export requested but the OpenTelemetry SDK is not "
            "importable (install opentelemetry-sdk and "
            "opentelemetry-exporter-otlp-proto-http, or unset "
            f"{OTLP_ENDPOINT_ENV_VAR}/--otlp): {exc}") from exc
    return SimpleNamespace(
        Resource=Resource,
        TracerProvider=TracerProvider,
        BatchSpanProcessor=BatchSpanProcessor,
        OTLPSpanExporter=OTLPSpanExporter,
        MeterProvider=MeterProvider,
        PeriodicExportingMetricReader=PeriodicExportingMetricReader,
        OTLPMetricExporter=OTLPMetricExporter,
    )


class OtlpBridge:
    """Replay telemetry snapshots through the OpenTelemetry SDK.

    Constructing the bridge resolves the endpoint and imports the SDK —
    both failures raise :class:`ConfigurationError` immediately, so a
    run never gets deep into a month-class simulation before finding out
    its telemetry sink is missing.  :meth:`export` then ships one
    snapshot: spans as SDK spans with explicit (synthetic) timestamps,
    counters/gauges through a meter, histograms as per-bucket ``le``
    counter series plus ``_sum``/``_count`` (lossless under OTLP's
    delta-free cumulative temporality).
    """

    def __init__(self, endpoint: str | None = None) -> None:
        self.endpoint = resolve_otlp_endpoint(endpoint)
        if self.endpoint is None:
            raise ConfigurationError(
                f"OTLP bridge needs an endpoint: pass one or set "
                f"{OTLP_ENDPOINT_ENV_VAR}")
        self._sdk = _import_sdk()

    def export(self, snapshot: TelemetrySnapshot, *,
               resource: dict | None = None) -> dict:
        """Ship one snapshot; returns the OTLP-JSON shape it mirrors."""
        sdk = self._sdk
        base_ns = time.time_ns()
        payload = telemetry_to_otlp(snapshot, resource=resource,
                                    base_time_unix_nano=base_ns)
        sdk_resource = sdk.Resource.create(
            {"service.name": "repro", **(resource or {})})

        tracer_provider = sdk.TracerProvider(resource=sdk_resource)
        tracer_provider.add_span_processor(sdk.BatchSpanProcessor(
            sdk.OTLPSpanExporter(endpoint=f"{self.endpoint}/v1/traces")))
        tracer = tracer_provider.get_tracer(_SCOPE["name"])
        self._replay_spans(tracer, snapshot.spans, base_ns)
        tracer_provider.shutdown()

        reader = sdk.PeriodicExportingMetricReader(
            sdk.OTLPMetricExporter(
                endpoint=f"{self.endpoint}/v1/metrics"),
            export_interval_millis=60_000)
        meter_provider = sdk.MeterProvider(resource=sdk_resource,
                                           metric_readers=[reader])
        self._replay_metrics(meter_provider.get_meter(_SCOPE["name"]),
                             snapshot.metrics)
        meter_provider.shutdown()
        return payload

    @staticmethod
    def _replay_spans(tracer, tree: dict, base_ns: int) -> None:
        def walk(name: str, node: dict, start_ns: int, context) -> int:
            wall_ns = int(float(node.get("wall_s", 0.0)) * 1e9)
            span = tracer.start_span(name, context=context,
                                     start_time=start_ns)
            span.set_attribute("repro.span.count",
                               int(node.get("count", 0)))
            span.set_attribute("repro.span.cpu_s",
                               float(node.get("cpu_s", 0.0)))
            try:
                from opentelemetry import trace as trace_api
                child_context = trace_api.set_span_in_context(span)
            except ImportError:  # pragma: no cover - SDK without API
                child_context = None
            cursor = start_ns
            for child_name, child in (node.get("children") or {}).items():
                cursor = walk(child_name, child, cursor, child_context)
            span.end(end_time=start_ns + wall_ns)
            return start_ns + wall_ns

        cursor = base_ns
        for name, node in (tree or {}).items():
            cursor = walk(name, node, cursor, None)

    @staticmethod
    def _replay_metrics(meter, metrics: MetricsSnapshot) -> None:
        for key, value in sorted(metrics.counters.items()):
            name, labels = decode_series(key)
            meter.create_counter(name).add(float(value), labels)
        for key, value in sorted(metrics.gauges.items()):
            name, labels = decode_series(key)
            gauge_factory = getattr(meter, "create_gauge", None)
            if gauge_factory is not None:
                gauge_factory(name).set(float(value), labels)
            else:  # older SDKs: a non-monotonic counter preserves values
                meter.create_up_down_counter(name).add(float(value),
                                                       labels)
        for key, hist in sorted(metrics.histograms.items()):
            name, labels = decode_series(key)
            counter = meter.create_counter(f"{name}_bucket")
            bounds = [str(b) for b in hist.buckets] + ["+Inf"]
            for bound, count in zip(bounds, hist.counts):
                counter.add(float(count), {**labels, "le": bound})
            meter.create_counter(f"{name}_count").add(float(hist.total),
                                                      labels)
            meter.create_counter(f"{name}_sum").add(float(hist.sum),
                                                    labels)

"""``repro.obs`` — zero-dependency telemetry for the H2P reproduction.

Three pillars (see ``docs/observability.md`` for the full contract):

* **tracing** — nestable :func:`span` context managers building a
  hierarchical wall/CPU timing tree (:mod:`repro.obs.spans`);
* **metrics** — a process-local registry of counters, gauges and
  fixed-bucket histograms with order-free snapshot/merge semantics so
  worker registries aggregate exactly across serial, thread and process
  executors (:mod:`repro.obs.metrics`);
* **events + manifest** — a JSONL structured event log and a per-run
  ``manifest.json`` with config, git SHA, environment, timings and
  metric totals (:mod:`repro.obs.events`, :mod:`repro.obs.manifest`).

Instrumented code calls the module-level helpers; with no session
installed every helper is a near-free no-op, so the kernel hot path is
unaffected when telemetry is off::

    from repro import obs

    with obs.session(obs.Telemetry()) as telemetry:
        with obs.span("kernel.evaluate"):
            ...
        obs.add("engine.cache.hits", 12)
    telemetry.registry.snapshot().counters["engine.cache.hits"]
"""

from .events import Event, EventLog
from .export import (
    atomic_write_text,
    prometheus_labels,
    prometheus_name,
    prometheus_text,
    render_span_tree,
    write_prometheus,
)
from .live import (
    METRICS_PORT_ENV_VAR,
    LiveTelemetryServer,
    RunHealth,
    resolve_metrics_port,
)
from .manifest import (
    MANIFEST_SCHEMA,
    ManifestDiff,
    build_manifest,
    counter_totals,
    diff_manifests,
    git_revision,
    load_manifest,
    write_run_artifacts,
)
from .metrics import (
    DEFAULT_TEG_POWER_BUCKETS_W,
    Counter,
    Gauge,
    Histogram,
    HistogramSnapshot,
    MetricsRegistry,
    MetricsSnapshot,
    decode_series,
    encode_series,
    escape_label_value,
    series_family,
)
from .otel import (
    OTLP_ENDPOINT_ENV_VAR,
    OtlpBridge,
    otlp_available,
    resolve_otlp_endpoint,
    telemetry_to_otlp,
)
from .reporter import Reporter
from .session import (
    TELEMETRY_DIR_ENV_VAR,
    TELEMETRY_ENV_VAR,
    Telemetry,
    TelemetrySnapshot,
    add,
    current,
    emit,
    gauge_max,
    observe,
    record_result,
    resolve_telemetry_dir,
    session,
    span,
    telemetry_enabled,
)
from .spans import NULL_SPAN, SpanNode, Tracer

__all__ = [
    "TELEMETRY_ENV_VAR",
    "TELEMETRY_DIR_ENV_VAR",
    "MANIFEST_SCHEMA",
    "DEFAULT_TEG_POWER_BUCKETS_W",
    "NULL_SPAN",
    "Telemetry",
    "TelemetrySnapshot",
    "MetricsRegistry",
    "MetricsSnapshot",
    "Counter",
    "Gauge",
    "Histogram",
    "HistogramSnapshot",
    "Tracer",
    "SpanNode",
    "Event",
    "EventLog",
    "Reporter",
    "current",
    "session",
    "span",
    "add",
    "gauge_max",
    "observe",
    "emit",
    "record_result",
    "telemetry_enabled",
    "resolve_telemetry_dir",
    "prometheus_name",
    "prometheus_labels",
    "prometheus_text",
    "write_prometheus",
    "render_span_tree",
    "atomic_write_text",
    "git_revision",
    "build_manifest",
    "write_run_artifacts",
    "counter_totals",
    "load_manifest",
    "ManifestDiff",
    "diff_manifests",
    "encode_series",
    "decode_series",
    "series_family",
    "escape_label_value",
    "METRICS_PORT_ENV_VAR",
    "LiveTelemetryServer",
    "RunHealth",
    "resolve_metrics_port",
    "OTLP_ENDPOINT_ENV_VAR",
    "OtlpBridge",
    "otlp_available",
    "resolve_otlp_endpoint",
    "telemetry_to_otlp",
]

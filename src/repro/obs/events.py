"""Structured run events and their JSONL log.

An :class:`Event` is one timestamped, machine-readable fact about a run:
the batch started, a job was retried, a fault activated, a CPU crossed
its safety limit.  An :class:`EventLog` accumulates events in memory
(appending is a hot-path no-op when telemetry is off — the session layer
never calls it) and serialises to JSON Lines, one event per line, so
logs stream, concatenate and grep cleanly.

Worker-side events ride back to the batch layer inside the telemetry
snapshot (events are plain data) and are re-emitted into the batch
log, tagged with the job that produced them.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator, Sequence

__all__ = ["Event", "EventLog"]


@dataclass(frozen=True)
class Event:
    """One structured occurrence: a kind, a wall-clock stamp, a payload."""

    kind: str
    ts: float
    data: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        """JSON-ready representation (kind and ts first, then payload)."""
        out = {"kind": self.kind, "ts": round(self.ts, 6)}
        out.update(self.data)
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "Event":
        payload = {key: value for key, value in data.items()
                   if key not in ("kind", "ts")}
        return cls(kind=data["kind"], ts=float(data.get("ts", 0.0)),
                   data=payload)


class EventLog:
    """Append-only in-memory event list with JSONL serialisation."""

    def __init__(self) -> None:
        self._events: list[Event] = []

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[Event]:
        return iter(self._events)

    def emit(self, kind: str, **data) -> Event:
        """Record one event now and return it."""
        event = Event(kind=kind, ts=time.time(), data=data)
        self._events.append(event)
        return event

    def extend(self, events: Sequence[Event]) -> None:
        """Append already-built events (merging worker logs)."""
        self._events.extend(events)

    def of_kind(self, kind: str) -> list[Event]:
        """Every event whose kind matches exactly."""
        return [event for event in self._events if event.kind == kind]

    def snapshot(self) -> list[Event]:
        """A shallow copy of the event list (events are immutable)."""
        return list(self._events)

    def to_jsonl(self) -> str:
        """The log as JSON Lines (one compact object per event)."""
        return "".join(json.dumps(event.to_dict(), sort_keys=True) + "\n"
                       for event in self._events)

    def write_jsonl(self, path: str | Path) -> Path:
        """Atomically write the log to ``path`` and return it.

        Uses the same write-fsync-rename discipline as the other run
        artefacts so a crash mid-write never truncates the log.
        """
        from .export import atomic_write_text

        return atomic_write_text(path, self.to_jsonl())

    @classmethod
    def from_jsonl(cls, text: str) -> "EventLog":
        """Parse a JSONL document back into a log."""
        log = cls()
        for line in text.splitlines():
            if line.strip():
                log._events.append(Event.from_dict(json.loads(line)))
        return log

"""Nestable tracing spans producing a hierarchical timing tree.

A :class:`Tracer` keeps a stack of :class:`SpanNode`\\ s; entering
``tracer.span("kernel.decide")`` pushes a child of the current node and
accumulates wall and CPU time (plus a call count) on exit.  Re-entering
the same name under the same parent accumulates into one node, so hot
paths produce a compact tree however many times they run.

Span trees serialise to nested plain dicts (``Tracer.snapshot``), merge
additively (``Tracer.merge``) so worker trees fold into the batch
layer's tree, and render as a console tree
(:func:`repro.obs.export.render_span_tree`).

When telemetry is disabled there is no tracer at all — the module-level
``span()`` helper in :mod:`repro.obs` returns a shared no-op context
manager, keeping the disabled path at one context-variable read.
"""

from __future__ import annotations

import time

__all__ = ["SpanNode", "Tracer", "NULL_SPAN"]


class SpanNode:
    """One name in the timing tree: call count, wall/CPU time, children."""

    __slots__ = ("name", "count", "wall_s", "cpu_s", "children")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.wall_s = 0.0
        self.cpu_s = 0.0
        self.children: dict[str, SpanNode] = {}

    def child(self, name: str) -> "SpanNode":
        node = self.children.get(name)
        if node is None:
            node = self.children[name] = SpanNode(name)
        return node

    def to_dict(self) -> dict:
        """JSON-ready nested representation."""
        out = {
            "count": self.count,
            "wall_s": round(self.wall_s, 6),
            "cpu_s": round(self.cpu_s, 6),
        }
        if self.children:
            out["children"] = {name: node.to_dict()
                               for name, node in self.children.items()}
        return out

    def merge_dict(self, data: dict) -> None:
        """Fold a serialised subtree (``to_dict`` shape) into this node."""
        self.count += int(data.get("count", 0))
        self.wall_s += float(data.get("wall_s", 0.0))
        self.cpu_s += float(data.get("cpu_s", 0.0))
        for name, child in data.get("children", {}).items():
            self.child(name).merge_dict(child)


class _Span:
    """Context manager for one active span (entered once, not reentrant)."""

    __slots__ = ("_tracer", "_name", "_wall0", "_cpu0")

    def __init__(self, tracer: "Tracer", name: str) -> None:
        self._tracer = tracer
        self._name = name

    def __enter__(self) -> "_Span":
        self._tracer._push(self._name)
        self._wall0 = time.perf_counter()
        self._cpu0 = time.process_time()
        return self

    def __exit__(self, *exc_info) -> None:
        wall = time.perf_counter() - self._wall0
        cpu = time.process_time() - self._cpu0
        self._tracer._pop(wall, cpu)


class _NullSpan:
    """Shared do-nothing span handed out when telemetry is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info) -> None:
        return None


NULL_SPAN = _NullSpan()


class Tracer:
    """Stack-based builder of one span tree.

    Not thread-safe by design: every telemetry session (and therefore
    every tracer) is local to one job or to the batch layer's main
    thread — see :mod:`repro.obs`.
    """

    def __init__(self) -> None:
        self.root = SpanNode("")
        self._stack: list[SpanNode] = [self.root]

    def span(self, name: str) -> _Span:
        """A context manager timing one entry of ``name``."""
        return _Span(self, name)

    def _push(self, name: str) -> None:
        self._stack.append(self._stack[-1].child(name))

    def _pop(self, wall_s: float, cpu_s: float) -> None:
        node = self._stack.pop()
        node.count += 1
        node.wall_s += wall_s
        node.cpu_s += cpu_s

    @property
    def depth(self) -> int:
        """Current nesting depth (0 outside any span)."""
        return len(self._stack) - 1

    def snapshot(self) -> dict:
        """The tree as nested plain dicts (top-level spans keyed by name)."""
        return {name: node.to_dict()
                for name, node in self.root.children.items()}

    def merge(self, tree: dict) -> None:
        """Fold a serialised tree (``snapshot`` shape) into the root."""
        for name, data in tree.items():
            self.root.child(name).merge_dict(data)

"""Structured run manifests for reproducibility audits.

A manifest is one ``manifest.json`` capturing everything needed to
explain (and re-run) a batch: the exact invocation, the environment
(git SHA, Python/NumPy versions, platform), the jobs that ran, batch
metrics, the merged metric snapshot and the span tree.  Alongside it the
run directory gets ``events.jsonl`` (the structured event log) and
``metrics.prom`` (a Prometheus text-format snapshot) so a perf
regression can be diagnosed from the artefacts alone — no re-run
needed.  The CLI writes one per ``h2p batch --telemetry DIR`` run; the
CI slow job uploads its golden-run manifest as a workflow artifact.
"""

from __future__ import annotations

import json
import platform
import subprocess
import sys
import time
from pathlib import Path

from .export import write_prometheus
from .session import Telemetry

__all__ = ["MANIFEST_SCHEMA", "git_revision", "build_manifest",
           "write_run_artifacts"]

#: Schema identifier stamped into every manifest (bump on breaking
#: layout changes so auditing tools can dispatch).
MANIFEST_SCHEMA = "repro.obs/manifest/v1"


def git_revision(cwd: str | Path | None = None) -> dict | None:
    """The repository revision the run executed from, or ``None``.

    Best-effort: installs outside a git checkout (wheels, tarballs)
    simply record ``None`` rather than failing the run.
    """
    try:
        sha = subprocess.run(
            ["git", "rev-parse", "HEAD"], cwd=cwd, capture_output=True,
            text=True, timeout=5.0, check=True).stdout.strip()
        status = subprocess.run(
            ["git", "status", "--porcelain"], cwd=cwd, capture_output=True,
            text=True, timeout=5.0, check=True).stdout
    except (OSError, subprocess.SubprocessError):
        return None
    if not sha:
        return None
    return {"sha": sha, "dirty": bool(status.strip())}


def build_manifest(telemetry: Telemetry, *,
                   command: list[str] | None = None,
                   batch=None,
                   extra: dict | None = None) -> dict:
    """Assemble the manifest dictionary for one run.

    Parameters
    ----------
    telemetry:
        The (already merged) batch-level session.
    command:
        The invocation argv, recorded verbatim.
    batch:
        An optional :class:`~repro.core.engine.BatchResult`; its
        aggregate metrics, per-job summaries and failure records are
        embedded so manifest totals can be audited against the result
        object.
    extra:
        Caller-specific entries merged into the top level (seeds,
        experiment ids, ...).
    """
    import numpy

    from .. import __version__

    manifest = {
        "schema": MANIFEST_SCHEMA,
        "created_unix": round(time.time(), 3),
        "command": list(command) if command is not None else None,
        "environment": {
            "repro_version": __version__,
            "python": sys.version.split()[0],
            "numpy": numpy.__version__,
            "platform": platform.platform(),
            "git": git_revision(),
        },
        "metrics": telemetry.registry.snapshot().to_dict(),
        "spans": telemetry.tracer.snapshot(),
        "n_events": len(telemetry.events),
    }
    if batch is not None:
        manifest["batch"] = batch.metrics.summary()
        manifest["jobs"] = batch.summaries()
        manifest["failures"] = [
            {
                "scheme": failed.scheme,
                "trace": failed.trace_name,
                "error_type": failed.error_type,
                "message": failed.message,
                "attempts": failed.attempts,
                "elapsed_s": round(failed.elapsed_s, 4),
                "timed_out": failed.timed_out,
            }
            for failed in batch.failures
        ]
    if extra:
        manifest.update(extra)
    return manifest


def write_run_artifacts(directory: str | Path, telemetry: Telemetry, *,
                        command: list[str] | None = None,
                        batch=None,
                        extra: dict | None = None) -> dict[str, Path]:
    """Write ``manifest.json``, ``events.jsonl`` and ``metrics.prom``.

    Creates ``directory`` (and parents) if needed; returns the path of
    every artefact written, keyed by artefact name.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    manifest = build_manifest(telemetry, command=command, batch=batch,
                              extra=extra)
    manifest["artifacts"] = {"events": "events.jsonl",
                             "prometheus": "metrics.prom"}
    manifest_path = directory / "manifest.json"
    manifest_path.write_text(
        json.dumps(manifest, indent=2, sort_keys=True) + "\n",
        encoding="utf-8")
    events_path = telemetry.events.write_jsonl(directory / "events.jsonl")
    prom_path = write_prometheus(telemetry.registry.snapshot(),
                                 directory / "metrics.prom")
    return {"manifest": manifest_path, "events": events_path,
            "prometheus": prom_path}

"""Structured run manifests for reproducibility audits.

A manifest is one ``manifest.json`` capturing everything needed to
explain (and re-run) a batch: the exact invocation, the environment
(git SHA, Python/NumPy versions, platform), the jobs that ran, batch
metrics, the merged metric snapshot and the span tree.  Alongside it the
run directory gets ``events.jsonl`` (the structured event log) and
``metrics.prom`` (a Prometheus text-format snapshot) so a perf
regression can be diagnosed from the artefacts alone — no re-run
needed.  The CLI writes one per ``h2p batch --telemetry DIR`` run; the
CI slow job uploads its golden-run manifest as a workflow artifact.
"""

from __future__ import annotations

import json
import platform
import subprocess
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path

from .export import atomic_write_text, write_prometheus
from .metrics import series_family
from .session import Telemetry

__all__ = ["MANIFEST_SCHEMA", "git_revision", "build_manifest",
           "write_run_artifacts", "counter_totals", "ManifestDiff",
           "diff_manifests", "load_manifest"]

#: Schema identifier stamped into every manifest (bump on breaking
#: layout changes so auditing tools can dispatch).
MANIFEST_SCHEMA = "repro.obs/manifest/v1"


def git_revision(cwd: str | Path | None = None) -> dict | None:
    """The repository revision the run executed from, or ``None``.

    Best-effort: installs outside a git checkout (wheels, tarballs)
    simply record ``None`` rather than failing the run.
    """
    try:
        sha = subprocess.run(
            ["git", "rev-parse", "HEAD"], cwd=cwd, capture_output=True,
            text=True, timeout=5.0, check=True).stdout.strip()
        status = subprocess.run(
            ["git", "status", "--porcelain"], cwd=cwd, capture_output=True,
            text=True, timeout=5.0, check=True).stdout
    except (OSError, subprocess.SubprocessError):
        return None
    if not sha:
        return None
    return {"sha": sha, "dirty": bool(status.strip())}


def build_manifest(telemetry: Telemetry, *,
                   command: list[str] | None = None,
                   batch=None,
                   extra: dict | None = None) -> dict:
    """Assemble the manifest dictionary for one run.

    Parameters
    ----------
    telemetry:
        The (already merged) batch-level session.
    command:
        The invocation argv, recorded verbatim.
    batch:
        An optional :class:`~repro.core.engine.BatchResult`; its
        aggregate metrics, per-job summaries and failure records are
        embedded so manifest totals can be audited against the result
        object.
    extra:
        Caller-specific entries merged into the top level (seeds,
        experiment ids, ...).
    """
    import numpy

    from .. import __version__

    manifest = {
        "schema": MANIFEST_SCHEMA,
        "created_unix": round(time.time(), 3),
        "command": list(command) if command is not None else None,
        "environment": {
            "repro_version": __version__,
            "python": sys.version.split()[0],
            "numpy": numpy.__version__,
            "platform": platform.platform(),
            "git": git_revision(),
        },
        "metrics": telemetry.registry.snapshot().to_dict(),
        "spans": telemetry.tracer.snapshot(),
        "n_events": len(telemetry.events),
    }
    if batch is not None:
        manifest["batch"] = batch.metrics.summary()
        manifest["jobs"] = batch.summaries()
        manifest["failures"] = [
            {
                "scheme": failed.scheme,
                "trace": failed.trace_name,
                "error_type": failed.error_type,
                "message": failed.message,
                "attempts": failed.attempts,
                "elapsed_s": round(failed.elapsed_s, 4),
                "timed_out": failed.timed_out,
            }
            for failed in batch.failures
        ]
    if extra:
        manifest.update(extra)
    return manifest


def write_run_artifacts(directory: str | Path, telemetry: Telemetry, *,
                        command: list[str] | None = None,
                        batch=None,
                        extra: dict | None = None) -> dict[str, Path]:
    """Write ``manifest.json``, ``events.jsonl`` and ``metrics.prom``.

    Creates ``directory`` (and parents) if needed; returns the path of
    every artefact written, keyed by artefact name.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    manifest = build_manifest(telemetry, command=command, batch=batch,
                              extra=extra)
    manifest["artifacts"] = {"events": "events.jsonl",
                             "prometheus": "metrics.prom"}
    manifest_path = atomic_write_text(
        directory / "manifest.json",
        json.dumps(manifest, indent=2, sort_keys=True) + "\n")
    events_path = telemetry.events.write_jsonl(directory / "events.jsonl")
    prom_path = write_prometheus(telemetry.registry.snapshot(),
                                 directory / "metrics.prom")
    return {"manifest": manifest_path, "events": events_path,
            "prometheus": prom_path}


def counter_totals(series: dict[str, float]) -> dict[str, float]:
    """Aggregate a counter series dict into per-family totals.

    ``series`` is the ``manifest["metrics"]["counters"]`` shape: encoded
    series keys (``name{k="v"}``) to values.  Labelled series of one
    family sum — the JSON twin of the snapshot dicts' bare-name lookup.
    """
    totals: dict[str, float] = {}
    for key, value in series.items():
        family = series_family(key)
        totals[family] = totals.get(family, 0.0) + float(value)
    return totals


def load_manifest(path: str | Path) -> dict:
    """Read one ``manifest.json``; raises ``ConfigurationError`` nicely."""
    from ..errors import ConfigurationError

    path = Path(path)
    try:
        manifest = json.loads(path.read_text(encoding="utf-8"))
    except OSError as exc:
        raise ConfigurationError(
            f"cannot read manifest {str(path)!r}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise ConfigurationError(
            f"manifest {str(path)!r} is not valid JSON: {exc}") from exc
    if not isinstance(manifest, dict):
        raise ConfigurationError(
            f"manifest {str(path)!r} does not hold a JSON object")
    return manifest


@dataclass
class ManifestDiff:
    """The outcome of comparing two run manifests.

    ``drifts`` holds one entry per disagreement: metric series whose
    values differ beyond tolerance, series present on only one side, and
    span-tree nodes whose path or call count differ.  Wall/CPU times are
    *never* compared — two correct runs differ in timing.
    """

    a: str
    b: str
    rel_tol: float
    drifts: list[dict] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.drifts

    def to_dict(self) -> dict:
        return {"a": self.a, "b": self.b, "rel_tol": self.rel_tol,
                "ok": self.ok, "n_drifts": len(self.drifts),
                "drifts": self.drifts}

    def describe(self) -> str:
        if self.ok:
            return (f"manifests agree: {self.a} == {self.b} "
                    f"(rel_tol={self.rel_tol:g})")
        lines = [f"{len(self.drifts)} drift(s) between {self.a} "
                 f"and {self.b} (rel_tol={self.rel_tol:g}):"]
        for drift in self.drifts:
            lines.append(f"  [{drift['kind']}] {drift['name']}: "
                         f"{drift['detail']}")
        return "\n".join(lines)


def _close(a: float, b: float, rel_tol: float) -> bool:
    return abs(a - b) <= max(1e-12, rel_tol * max(abs(a), abs(b)))


def _span_shapes(tree: dict, prefix: str = "") -> dict[str, int]:
    """Flatten a serialised span tree to ``path -> count``."""
    shapes: dict[str, int] = {}
    for name, node in (tree or {}).items():
        path = f"{prefix}/{name}" if prefix else name
        shapes[path] = int(node.get("count", 0))
        shapes.update(_span_shapes(node.get("children", {}), path))
    return shapes


def diff_manifests(manifest_a: dict, manifest_b: dict, *,
                   rel_tol: float = 1e-6,
                   name_a: str = "A", name_b: str = "B") -> ManifestDiff:
    """Compare two manifests' metric totals and span trees.

    Metric values (counter/gauge values, histogram sums) compare with
    relative tolerance ``rel_tol``; histogram bucket counts and totals,
    and span call counts, compare exactly.  Series or span paths present
    on only one side are drifts.  Timing (span wall/cpu, batch
    durations) is ignored entirely, so two honest re-runs of the same
    workload diff clean.
    """
    diff = ManifestDiff(a=name_a, b=name_b, rel_tol=rel_tol)
    metrics_a = manifest_a.get("metrics") or {}
    metrics_b = manifest_b.get("metrics") or {}

    for kind in ("counters", "gauges"):
        series_a = metrics_a.get(kind) or {}
        series_b = metrics_b.get(kind) or {}
        for key in sorted(set(series_a) | set(series_b)):
            if key not in series_a or key not in series_b:
                present, absent = ((name_a, name_b) if key in series_a
                                   else (name_b, name_a))
                value = series_a.get(key, series_b.get(key))
                if kind == "counters" and _close(float(value), 0.0,
                                                rel_tol):
                    continue  # an absent counter is a zero counter
                diff.drifts.append({
                    "kind": kind[:-1], "name": key,
                    "a": series_a.get(key), "b": series_b.get(key),
                    "detail": f"only in {present} (={value!r}), "
                              f"missing from {absent}"})
            elif not _close(float(series_a[key]), float(series_b[key]),
                            rel_tol):
                diff.drifts.append({
                    "kind": kind[:-1], "name": key,
                    "a": series_a[key], "b": series_b[key],
                    "detail": f"{series_a[key]!r} vs {series_b[key]!r}"})

    hists_a = metrics_a.get("histograms") or {}
    hists_b = metrics_b.get("histograms") or {}
    for key in sorted(set(hists_a) | set(hists_b)):
        if key not in hists_a or key not in hists_b:
            present = name_a if key in hists_a else name_b
            absent = name_b if key in hists_a else name_a
            diff.drifts.append({
                "kind": "histogram", "name": key,
                "a": hists_a.get(key), "b": hists_b.get(key),
                "detail": f"only in {present}, missing from {absent}"})
            continue
        ha, hb = hists_a[key], hists_b[key]
        if list(ha.get("buckets", [])) != list(hb.get("buckets", [])):
            detail = "bucket bounds differ"
        elif list(ha.get("counts", [])) != list(hb.get("counts", [])):
            detail = (f"bucket counts differ: {ha.get('counts')} vs "
                      f"{hb.get('counts')}")
        elif int(ha.get("total", 0)) != int(hb.get("total", 0)):
            detail = (f"totals differ: {ha.get('total')} vs "
                      f"{hb.get('total')}")
        elif not _close(float(ha.get("sum", 0.0)),
                        float(hb.get("sum", 0.0)), rel_tol):
            detail = f"sums differ: {ha.get('sum')} vs {hb.get('sum')}"
        else:
            continue
        diff.drifts.append({"kind": "histogram", "name": key,
                            "a": ha, "b": hb, "detail": detail})

    shapes_a = _span_shapes(manifest_a.get("spans") or {})
    shapes_b = _span_shapes(manifest_b.get("spans") or {})
    for path in sorted(set(shapes_a) | set(shapes_b)):
        if path not in shapes_a or path not in shapes_b:
            present = name_a if path in shapes_a else name_b
            absent = name_b if path in shapes_a else name_a
            diff.drifts.append({
                "kind": "span", "name": path,
                "a": shapes_a.get(path), "b": shapes_b.get(path),
                "detail": f"only in {present}, missing from {absent}"})
        elif shapes_a[path] != shapes_b[path]:
            diff.drifts.append({
                "kind": "span", "name": path,
                "a": shapes_a[path], "b": shapes_b[path],
                "detail": f"call counts differ: {shapes_a[path]} vs "
                          f"{shapes_b[path]}"})
    return diff

"""Process-local metrics: counters, gauges and fixed-bucket histograms.

A :class:`MetricsRegistry` is a flat namespace of named instruments.
Worker processes record into their own registry, snapshot it into a
plain-data :class:`MetricsSnapshot`, and ship the snapshot back with the
job result; the batch layer merges snapshots into its own registry with
:meth:`MetricsRegistry.merge`.  Merge semantics are order-free so the
aggregate is identical whichever executor (serial, thread, process) ran
the jobs:

* counters add;
* gauges combine with ``max`` (the only order-free combiner that is
  useful for the quantities we track — peak temperatures, high-water
  marks);
* histograms add per-bucket counts (buckets must match).

Nothing here imports beyond NumPy and the package's error types, and no
instrument ever raises on the hot path once created.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import ConfigurationError

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "HistogramSnapshot",
    "MetricsRegistry",
    "MetricsSnapshot",
    "DEFAULT_TEG_POWER_BUCKETS_W",
]

#: Default bucket upper bounds for the per-CPU TEG power histogram
#: (``teg.power_w``).  The paper's headline band is 3.7-4.2 W/CPU;
#: the buckets bracket it with room for degraded and ZT-optimistic runs.
DEFAULT_TEG_POWER_BUCKETS_W = (0.5, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 8.0)


class Counter:
    """A monotonically increasing sum."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be >= 0: counters never go down)."""
        if amount < 0:
            raise ConfigurationError(
                f"counter {self.name!r} cannot decrease (got {amount})")
        self.value += amount


class Gauge:
    """A point-in-time value; cross-process merge keeps the maximum."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: float | None = None

    def set(self, value: float) -> None:
        """Record the latest observation."""
        self.value = float(value)

    def set_max(self, value: float) -> None:
        """Keep the larger of the current and the new value."""
        value = float(value)
        if self.value is None or value > self.value:
            self.value = value


@dataclass(frozen=True)
class HistogramSnapshot:
    """Plain-data view of one histogram (picklable, mergeable)."""

    buckets: tuple[float, ...]
    counts: tuple[int, ...]  # len(buckets) + 1: last bucket is +inf
    total: int
    sum: float

    def merge(self, other: "HistogramSnapshot") -> "HistogramSnapshot":
        if self.buckets != other.buckets:
            raise ConfigurationError(
                f"cannot merge histograms with different buckets: "
                f"{self.buckets} vs {other.buckets}")
        return HistogramSnapshot(
            buckets=self.buckets,
            counts=tuple(a + b for a, b in zip(self.counts, other.counts)),
            total=self.total + other.total,
            sum=self.sum + other.sum,
        )


class Histogram:
    """Fixed-bucket histogram (cumulative counts exported Prometheus-style).

    ``buckets`` are upper bounds, strictly increasing; an implicit
    ``+inf`` bucket catches overflow.  :meth:`observe_many` is the fast
    path: one ``np.histogram`` call per array, so whole time series can
    be folded in without a per-step Python loop.
    """

    __slots__ = ("name", "buckets", "_edges", "_counts", "_sum", "_total")

    def __init__(self, name: str,
                 buckets: tuple[float, ...] = DEFAULT_TEG_POWER_BUCKETS_W
                 ) -> None:
        buckets = tuple(float(b) for b in buckets)
        if not buckets:
            raise ConfigurationError(
                f"histogram {name!r} needs at least one bucket bound")
        if any(b >= c for b, c in zip(buckets, buckets[1:])):
            raise ConfigurationError(
                f"histogram {name!r} buckets must be strictly increasing, "
                f"got {buckets}")
        self.name = name
        self.buckets = buckets
        self._edges = np.concatenate(
            ([-np.inf], np.asarray(buckets), [np.inf]))
        self._counts = np.zeros(len(buckets) + 1, dtype=np.int64)
        self._sum = 0.0
        self._total = 0

    def observe(self, value: float) -> None:
        """Record one observation."""
        self.observe_many(np.asarray([value], dtype=float))

    def observe_many(self, values: np.ndarray) -> None:
        """Record a whole array of observations in one histogram pass."""
        values = np.asarray(values, dtype=float).ravel()
        if values.size == 0:
            return
        counts, _ = np.histogram(values, bins=self._edges)
        self._counts += counts
        self._sum += float(values.sum())
        self._total += values.size

    def snapshot(self) -> HistogramSnapshot:
        """Freeze the current state into plain data."""
        return HistogramSnapshot(
            buckets=self.buckets,
            counts=tuple(int(c) for c in self._counts),
            total=self._total,
            sum=self._sum,
        )

    def restore(self, snap: HistogramSnapshot) -> None:
        """Merge a snapshot's counts into this histogram."""
        if snap.buckets != self.buckets:
            raise ConfigurationError(
                f"cannot merge histogram {self.name!r}: bucket bounds "
                f"differ ({snap.buckets} vs {self.buckets})")
        self._counts += np.asarray(snap.counts, dtype=np.int64)
        self._sum += snap.sum
        self._total += snap.total


@dataclass(frozen=True)
class MetricsSnapshot:
    """Every instrument of one registry, frozen to plain data.

    The shape process-pool workers pickle back to the batch layer;
    ``merge`` implements the same order-free semantics as
    :meth:`MetricsRegistry.merge` so snapshots can be pre-combined.
    """

    counters: dict[str, float] = field(default_factory=dict)
    gauges: dict[str, float] = field(default_factory=dict)
    histograms: dict[str, HistogramSnapshot] = field(default_factory=dict)

    def merge(self, other: "MetricsSnapshot") -> "MetricsSnapshot":
        counters = dict(self.counters)
        for name, value in other.counters.items():
            counters[name] = counters.get(name, 0.0) + value
        gauges = dict(self.gauges)
        for name, value in other.gauges.items():
            gauges[name] = max(gauges[name], value) \
                if name in gauges else value
        histograms = dict(self.histograms)
        for name, snap in other.histograms.items():
            histograms[name] = histograms[name].merge(snap) \
                if name in histograms else snap
        return MetricsSnapshot(counters=counters, gauges=gauges,
                               histograms=histograms)

    def to_dict(self) -> dict:
        """JSON-ready representation (manifest / exporters)."""
        return {
            "counters": {name: value for name, value
                         in sorted(self.counters.items())},
            "gauges": {name: value for name, value
                       in sorted(self.gauges.items())},
            "histograms": {
                name: {
                    "buckets": list(snap.buckets),
                    "counts": list(snap.counts),
                    "total": snap.total,
                    "sum": snap.sum,
                }
                for name, snap in sorted(self.histograms.items())
            },
        }


class MetricsRegistry:
    """A flat, process-local namespace of named instruments.

    ``counter`` / ``gauge`` / ``histogram`` get-or-create; asking for an
    existing name with a different instrument kind raises — a registry
    never silently aliases two meanings onto one series.
    """

    def __init__(self) -> None:
        self._instruments: dict[str, Counter | Gauge | Histogram] = {}

    def __len__(self) -> int:
        return len(self._instruments)

    def _get(self, name: str, kind: type, factory):
        instrument = self._instruments.get(name)
        if instrument is None:
            instrument = self._instruments[name] = factory()
        elif not isinstance(instrument, kind):
            raise ConfigurationError(
                f"metric {name!r} is a {type(instrument).__name__}, "
                f"not a {kind.__name__}")
        return instrument

    def counter(self, name: str) -> Counter:
        """Get or create the counter called ``name``."""
        return self._get(name, Counter, lambda: Counter(name))

    def gauge(self, name: str) -> Gauge:
        """Get or create the gauge called ``name``."""
        return self._get(name, Gauge, lambda: Gauge(name))

    def histogram(self, name: str,
                  buckets: tuple[float, ...] = DEFAULT_TEG_POWER_BUCKETS_W
                  ) -> Histogram:
        """Get or create the histogram called ``name``."""
        return self._get(name, Histogram, lambda: Histogram(name, buckets))

    def snapshot(self) -> MetricsSnapshot:
        """Freeze every instrument into a picklable snapshot."""
        counters: dict[str, float] = {}
        gauges: dict[str, float] = {}
        histograms: dict[str, HistogramSnapshot] = {}
        for name, instrument in self._instruments.items():
            if isinstance(instrument, Counter):
                counters[name] = instrument.value
            elif isinstance(instrument, Gauge):
                if instrument.value is not None:
                    gauges[name] = instrument.value
            else:
                histograms[name] = instrument.snapshot()
        return MetricsSnapshot(counters=counters, gauges=gauges,
                               histograms=histograms)

    def merge(self, snap: MetricsSnapshot) -> None:
        """Fold a snapshot in: counters add, gauges max, histograms add."""
        for name, value in snap.counters.items():
            self.counter(name).inc(value)
        for name, value in snap.gauges.items():
            self.gauge(name).set_max(value)
        for name, hist_snap in snap.histograms.items():
            self.histogram(name, hist_snap.buckets).restore(hist_snap)

"""Process-local metrics: counters, gauges and fixed-bucket histograms.

A :class:`MetricsRegistry` is a flat namespace of named instruments.
Worker processes record into their own registry, snapshot it into a
plain-data :class:`MetricsSnapshot`, and ship the snapshot back with the
job result; the batch layer merges snapshots into its own registry with
:meth:`MetricsRegistry.merge`.  Merge semantics are order-free so the
aggregate is identical whichever executor (serial, thread, process,
sharded) ran the jobs:

* counters add;
* gauges combine with ``max`` (the only order-free combiner that is
  useful for the quantities we track — peak temperatures, high-water
  marks);
* histograms add per-bucket counts (buckets must match).

Instruments optionally carry **labels** (``counter(name, labels={...})``).
A labelled series is stored under an encoded key —
``name{k="v",k2="v2"}`` with label names sorted and values escaped per
the Prometheus exposition format — so snapshots stay plain string-keyed
dicts and the merge algebra above applies per series unchanged.  Looking
up a bare family name on a snapshot dict aggregates every series of that
family (counters sum, gauges max, histograms merge), so pre-label
consumers keep working.

Nothing here imports beyond NumPy and the package's error types, and no
instrument ever raises on the hot path once created.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from functools import reduce

import numpy as np

from ..errors import ConfigurationError

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "HistogramSnapshot",
    "MetricsRegistry",
    "MetricsSnapshot",
    "DEFAULT_TEG_POWER_BUCKETS_W",
    "encode_series",
    "decode_series",
    "series_family",
    "escape_label_value",
]

#: Default bucket upper bounds for the per-CPU TEG power histogram
#: (``teg.power_w``).  The paper's headline band is 3.7-4.2 W/CPU;
#: the buckets bracket it with room for degraded and ZT-optimistic runs.
DEFAULT_TEG_POWER_BUCKETS_W = (0.5, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 8.0)

_LABEL_NAME_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")
_LABEL_PAIR_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


def escape_label_value(value: str) -> str:
    """Escape a label value per the Prometheus exposition format.

    Backslash, double quote and newline are the three characters the
    format reserves inside a quoted label value.
    """
    return (str(value)
            .replace("\\", r"\\")
            .replace('"', r'\"')
            .replace("\n", r"\n"))


def _unescape_label_value(value: str) -> str:
    out: list[str] = []
    it = iter(value)
    for ch in it:
        if ch != "\\":
            out.append(ch)
            continue
        nxt = next(it, "")
        out.append({"n": "\n", '"': '"', "\\": "\\"}.get(nxt, "\\" + nxt))
    return "".join(out)


def encode_series(name: str, labels: dict[str, object] | None = None) -> str:
    """Encode ``(name, labels)`` into the canonical series key.

    The key is the bare name when there are no labels, otherwise
    ``name{k="v",...}`` with label names sorted so equal label sets
    always produce the same key (merge stays order-free).
    """
    if "{" in name or "}" in name:
        raise ConfigurationError(
            f"metric name {name!r} must not contain braces")
    if not labels:
        return name
    for key in labels:
        if not _LABEL_NAME_RE.match(key):
            raise ConfigurationError(
                f"metric {name!r} label name {key!r} is not a valid "
                f"Prometheus label name")
    body = ",".join(f'{key}="{escape_label_value(labels[key])}"'
                    for key in sorted(labels))
    return f"{name}{{{body}}}"


def decode_series(key: str) -> tuple[str, dict[str, str]]:
    """Split an encoded series key back into ``(name, labels)``."""
    name, brace, rest = key.partition("{")
    if not brace:
        return key, {}
    if not rest.endswith("}"):
        raise ConfigurationError(f"malformed series key {key!r}")
    labels = {m.group(1): _unescape_label_value(m.group(2))
              for m in _LABEL_PAIR_RE.finditer(rest[:-1])}
    return name, labels


def series_family(key: str) -> str:
    """The bare metric name an encoded series key belongs to."""
    return key.partition("{")[0]


class _SeriesDict(dict):
    """Series-keyed dict with bare-name fallback aggregation.

    Exact keys (including full ``name{...}`` series keys) behave like a
    normal dict — ``in``, ``.get`` and iteration are untouched, so the
    merge algebra stays per-series.  Indexing a *bare family name* that
    has only labelled series aggregates them, which keeps pre-label
    callers (``counters["sim.runs"]``) working after relabelling.
    """

    def __missing__(self, name):
        if "{" in name:
            raise KeyError(name)
        values = [value for key, value in self.items()
                  if series_family(key) == name]
        if not values:
            raise KeyError(name)
        return self._aggregate(values)

    def family(self, name: str) -> dict[str, object]:
        """Every series of one family, keyed by encoded series key."""
        return {key: value for key, value in self.items()
                if series_family(key) == name}


class _CounterDict(_SeriesDict):
    @staticmethod
    def _aggregate(values):
        return float(sum(values))


class _GaugeDict(_SeriesDict):
    @staticmethod
    def _aggregate(values):
        return max(values)


class _HistogramDict(_SeriesDict):
    @staticmethod
    def _aggregate(values):
        return reduce(lambda a, b: a.merge(b), values)


class Counter:
    """A monotonically increasing sum."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be >= 0: counters never go down)."""
        if amount < 0:
            raise ConfigurationError(
                f"counter {self.name!r} cannot decrease (got {amount})")
        self.value += amount


class Gauge:
    """A point-in-time value; cross-process merge keeps the maximum."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: float | None = None

    def set(self, value: float) -> None:
        """Record the latest observation."""
        self.value = float(value)

    def set_max(self, value: float) -> None:
        """Keep the larger of the current and the new value."""
        value = float(value)
        if self.value is None or value > self.value:
            self.value = value


@dataclass(frozen=True)
class HistogramSnapshot:
    """Plain-data view of one histogram (picklable, mergeable)."""

    buckets: tuple[float, ...]
    counts: tuple[int, ...]  # len(buckets) + 1: last bucket is +inf
    total: int
    sum: float

    def merge(self, other: "HistogramSnapshot") -> "HistogramSnapshot":
        if self.buckets != other.buckets:
            raise ConfigurationError(
                f"cannot merge histograms with different buckets: "
                f"{self.buckets} vs {other.buckets}")
        return HistogramSnapshot(
            buckets=self.buckets,
            counts=tuple(a + b for a, b in zip(self.counts, other.counts)),
            total=self.total + other.total,
            sum=self.sum + other.sum,
        )


class Histogram:
    """Fixed-bucket histogram (cumulative counts exported Prometheus-style).

    ``buckets`` are upper bounds, strictly increasing; an implicit
    ``+inf`` bucket catches overflow.  :meth:`observe_many` is the fast
    path: one ``np.histogram`` call per array, so whole time series can
    be folded in without a per-step Python loop.
    """

    __slots__ = ("name", "buckets", "_edges", "_counts", "_sum", "_total")

    def __init__(self, name: str,
                 buckets: tuple[float, ...] = DEFAULT_TEG_POWER_BUCKETS_W
                 ) -> None:
        buckets = tuple(float(b) for b in buckets)
        if not buckets:
            raise ConfigurationError(
                f"histogram {name!r} needs at least one bucket bound")
        if any(b >= c for b, c in zip(buckets, buckets[1:])):
            raise ConfigurationError(
                f"histogram {name!r} buckets must be strictly increasing, "
                f"got {buckets}")
        self.name = name
        self.buckets = buckets
        self._edges = np.concatenate(
            ([-np.inf], np.asarray(buckets), [np.inf]))
        self._counts = np.zeros(len(buckets) + 1, dtype=np.int64)
        self._sum = 0.0
        self._total = 0

    def observe(self, value: float) -> int:
        """Record one observation; returns 1 if it was non-finite."""
        return self.observe_many(np.asarray([value], dtype=float))

    def observe_many(self, values: np.ndarray) -> int:
        """Record an array of observations in one histogram pass.

        Non-finite values (NaN, ±inf) would poison ``sum`` forever, so
        they are skipped; the number skipped is returned so callers can
        surface an event instead of silently corrupting the series.
        Empty arrays are a no-op.
        """
        values = np.asarray(values, dtype=float).ravel()
        if values.size == 0:
            return 0
        finite = np.isfinite(values)
        dropped = int(values.size) - int(np.count_nonzero(finite))
        if dropped:
            values = values[finite]
            if values.size == 0:
                return dropped
        counts, _ = np.histogram(values, bins=self._edges)
        self._counts += counts
        self._sum += float(values.sum())
        self._total += int(values.size)
        return dropped

    def snapshot(self) -> HistogramSnapshot:
        """Freeze the current state into plain data."""
        return HistogramSnapshot(
            buckets=self.buckets,
            counts=tuple(int(c) for c in self._counts),
            total=self._total,
            sum=self._sum,
        )

    def restore(self, snap: HistogramSnapshot) -> None:
        """Merge a snapshot's counts into this histogram."""
        if snap.buckets != self.buckets:
            raise ConfigurationError(
                f"cannot merge histogram {self.name!r}: bucket bounds "
                f"differ ({snap.buckets} vs {self.buckets})")
        self._counts += np.asarray(snap.counts, dtype=np.int64)
        self._sum += snap.sum
        self._total += snap.total


@dataclass(frozen=True)
class MetricsSnapshot:
    """Every instrument of one registry, frozen to plain data.

    The shape process-pool workers pickle back to the batch layer;
    ``merge`` implements the same order-free semantics as
    :meth:`MetricsRegistry.merge` so snapshots can be pre-combined.
    Keys are encoded series keys (see :func:`encode_series`); indexing a
    bare family name aggregates its labelled series.
    """

    counters: dict[str, float] = field(default_factory=dict)
    gauges: dict[str, float] = field(default_factory=dict)
    histograms: dict[str, HistogramSnapshot] = field(default_factory=dict)

    def __post_init__(self) -> None:
        # Wrap into the fallback-aggregating dict flavours regardless of
        # how the snapshot was built (constructor, merge, unpickle).
        object.__setattr__(self, "counters", _CounterDict(self.counters))
        object.__setattr__(self, "gauges", _GaugeDict(self.gauges))
        object.__setattr__(self, "histograms",
                           _HistogramDict(self.histograms))

    def merge(self, other: "MetricsSnapshot") -> "MetricsSnapshot":
        counters = dict(self.counters)
        for name, value in other.counters.items():
            counters[name] = counters.get(name, 0.0) + value
        gauges = dict(self.gauges)
        for name, value in other.gauges.items():
            gauges[name] = max(gauges[name], value) \
                if name in gauges else value
        histograms = dict(self.histograms)
        for name, snap in other.histograms.items():
            histograms[name] = histograms[name].merge(snap) \
                if name in histograms else snap
        return MetricsSnapshot(counters=counters, gauges=gauges,
                               histograms=histograms)

    def to_dict(self) -> dict:
        """JSON-ready representation (manifest / exporters)."""
        return {
            "counters": {name: value for name, value
                         in sorted(self.counters.items())},
            "gauges": {name: value for name, value
                       in sorted(self.gauges.items())},
            "histograms": {
                name: {
                    "buckets": list(snap.buckets),
                    "counts": list(snap.counts),
                    "total": snap.total,
                    "sum": snap.sum,
                }
                for name, snap in sorted(self.histograms.items())
            },
        }


class MetricsRegistry:
    """A flat, process-local namespace of named instruments.

    ``counter`` / ``gauge`` / ``histogram`` get-or-create; asking for an
    existing name with a different instrument kind raises — a registry
    never silently aliases two meanings onto one series.  The kind check
    applies per *family*: ``engine.jobs`` cannot be a counter under one
    label set and a gauge under another.
    """

    def __init__(self) -> None:
        self._instruments: dict[str, Counter | Gauge | Histogram] = {}
        self._kinds: dict[str, type] = {}

    def __len__(self) -> int:
        return len(self._instruments)

    def _series(self, key: str, kind: type, factory):
        name = series_family(key)
        known = self._kinds.get(name)
        if known is None:
            self._kinds[name] = kind
        elif known is not kind:
            raise ConfigurationError(
                f"metric {name!r} is a {known.__name__}, "
                f"not a {kind.__name__}")
        instrument = self._instruments.get(key)
        if instrument is None:
            instrument = self._instruments[key] = factory(key)
        return instrument

    def counter(self, name: str,
                labels: dict[str, object] | None = None) -> Counter:
        """Get or create the counter series ``name``/``labels``."""
        return self._series(encode_series(name, labels), Counter, Counter)

    def gauge(self, name: str,
              labels: dict[str, object] | None = None) -> Gauge:
        """Get or create the gauge series ``name``/``labels``."""
        return self._series(encode_series(name, labels), Gauge, Gauge)

    def histogram(self, name: str,
                  buckets: tuple[float, ...] = DEFAULT_TEG_POWER_BUCKETS_W,
                  labels: dict[str, object] | None = None) -> Histogram:
        """Get or create the histogram series ``name``/``labels``."""
        return self._series(encode_series(name, labels), Histogram,
                            lambda key: Histogram(key, buckets))

    def snapshot(self) -> MetricsSnapshot:
        """Freeze every instrument into a picklable snapshot.

        Iterates over a point-in-time copy of the instrument table so a
        scrape thread can snapshot while the run thread registers new
        series (dict mutation during iteration would raise).
        """
        counters: dict[str, float] = {}
        gauges: dict[str, float] = {}
        histograms: dict[str, HistogramSnapshot] = {}
        for name, instrument in list(self._instruments.items()):
            if isinstance(instrument, Counter):
                counters[name] = instrument.value
            elif isinstance(instrument, Gauge):
                if instrument.value is not None:
                    gauges[name] = instrument.value
            else:
                histograms[name] = instrument.snapshot()
        return MetricsSnapshot(counters=counters, gauges=gauges,
                               histograms=histograms)

    def merge(self, snap: MetricsSnapshot) -> None:
        """Fold a snapshot in: counters add, gauges max, histograms add."""
        for key, value in snap.counters.items():
            self._series(key, Counter, Counter).inc(value)
        for key, value in snap.gauges.items():
            self._series(key, Gauge, Gauge).set_max(value)
        for key, hist_snap in snap.histograms.items():
            self._series(
                key, Histogram,
                lambda k, b=hist_snap.buckets: Histogram(k, b),
            ).restore(hist_snap)

"""Cooling-setting policies (Sec. V-B1).

Every control interval (5 minutes in the paper) the CDU of each water
circulation must pick a cooling setting ``{f, T_warm_in}``.  The paper's
policy maximises the TEG output subject to keeping the *binding* CPU at
the safe temperature:

* Step 1 — take the binding utilisation ``U`` of the circulation
  (``U_max`` without scheduling, ``U_avg`` after ideal balancing);
* Step 2 — slice the measurement space for points with
  ``T_CPU`` within ``T_safe ± 1 degC``;
* Step 3 — among those, pick the setting with the largest TEG power
  (Eq. 2 + Eq. 7).

Three policy classes are provided: the verbatim lookup-space search, an
analytic policy that inverts the calibrated model directly (and can charge
pump power against generation), and a static baseline.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Protocol, Sequence

import numpy as np

from ..constants import CPU_SAFE_TEMP_C, NATURAL_WATER_TEMP_C
from ..errors import ConfigurationError, PhysicalRangeError
from ..teg.module import TegModule, default_server_module
from ..thermal.cpu_model import CoolingSetting, CpuThermalModel
from ..thermal.hydraulics import PipeSegment, loop_pump_power_w, prototype_warm_loop
from .lookup_space import LookupSpace


@dataclass(frozen=True)
class PolicyDecision:
    """A policy's output for one control interval.

    Attributes
    ----------
    setting:
        The cooling setting to apply.
    binding_utilisation:
        The utilisation the decision was keyed on (``U_max`` or ``U_avg``).
    predicted_cpu_temp_c / predicted_outlet_temp_c:
        Model predictions at the binding utilisation.
    predicted_generation_w:
        Per-server TEG power the policy expects.
    """

    setting: CoolingSetting
    binding_utilisation: float
    predicted_cpu_temp_c: float
    predicted_outlet_temp_c: float
    predicted_generation_w: float


class CoolingPolicy(Protocol):
    """Anything that maps per-server utilisations to a cooling setting."""

    def decide(self, utilisations: Sequence[float]) -> PolicyDecision:
        """Choose the cooling setting for the next control interval."""
        ...


def _check_bindings(bindings: Sequence[float]) -> np.ndarray:
    """Validate a batch of pre-aggregated binding utilisations.

    Mirrors the element validation in :func:`_binding_utilisation` (the
    error class and message match the scalar path) but accepts an empty
    batch — ``decide_batch([])`` is a no-op, not a misconfiguration.
    """
    utils = np.asarray([float(b) for b in bindings], dtype=float)
    if utils.size and np.any((utils < 0) | (utils > 1)):
        raise PhysicalRangeError("all utilisations must be in [0, 1]")
    return utils


def _binding_utilisation(utilisations: Sequence[float],
                         aggregation: str) -> float:
    utils = np.asarray(list(utilisations), dtype=float)
    if utils.size == 0:
        raise ConfigurationError("utilisation list must not be empty")
    if np.any((utils < 0) | (utils > 1)):
        raise PhysicalRangeError("all utilisations must be in [0, 1]")
    if aggregation == "max":
        return float(utils.max())
    if aggregation == "avg":
        return float(utils.mean())
    raise ConfigurationError(
        f"aggregation must be 'max' or 'avg', got {aggregation!r}")


def conservative_setting(policy) -> CoolingSetting:
    """The safest setting a policy's actuator space offers.

    Coldest admissible inlet at the fastest admissible flow — the
    degraded-mode fallback when sensor readings are implausible or a
    plant fault has tripped (harvesting efficiency is sacrificed for
    thermal headroom).  Works for all three policy classes:

    * :class:`LookupSpacePolicy` — last flow / first inlet of its grid;
    * :class:`AnalyticPolicy` — fastest candidate flow at ``inlet_min_c``;
    * anything else (e.g. :class:`StaticPolicy`) — the prototype's full
      actuator range (300 L/h at 20 °C).
    """
    space = getattr(policy, "space", None)
    if space is not None:
        return CoolingSetting(flow_l_per_h=float(space.flow_grid[-1]),
                              inlet_temp_c=float(space.inlet_grid[0]))
    flows = getattr(policy, "flow_candidates", None)
    inlet_min = getattr(policy, "inlet_min_c", None)
    if flows and inlet_min is not None:
        return CoolingSetting(flow_l_per_h=float(max(flows)),
                              inlet_temp_c=float(inlet_min))
    return CoolingSetting(flow_l_per_h=300.0, inlet_temp_c=20.0)


@dataclass
class StaticPolicy:
    """A fixed cooling setting — the unoptimised warm-water baseline."""

    setting: CoolingSetting = field(default_factory=lambda: CoolingSetting(
        flow_l_per_h=50.0, inlet_temp_c=45.0))
    model: CpuThermalModel = field(default_factory=CpuThermalModel)
    teg_module: TegModule = field(default_factory=default_server_module)
    cold_source_temp_c: float = NATURAL_WATER_TEMP_C
    aggregation: str = "max"

    def decide(self, utilisations: Sequence[float]) -> PolicyDecision:
        """Always return the configured setting (with model predictions)."""
        binding = _binding_utilisation(utilisations, self.aggregation)
        cpu_temp = self.model.cpu_temp_c(binding, self.setting)
        outlet = self.model.outlet_temp_c(binding, self.setting)
        generation = self.teg_module.generation_w(
            outlet, self.cold_source_temp_c, self.setting.flow_l_per_h)
        return PolicyDecision(
            setting=self.setting,
            binding_utilisation=binding,
            predicted_cpu_temp_c=cpu_temp,
            predicted_outlet_temp_c=outlet,
            predicted_generation_w=generation,
        )

    def decide_batch(self, bindings: Sequence[float]
                     ) -> list[PolicyDecision]:
        """Decisions for many pre-aggregated binding utilisations.

        Element ``i`` equals ``decide([bindings[i]])``: the model and
        TEG arithmetic is elementwise, so evaluating the whole batch in
        one pass reproduces each scalar prediction bit for bit.
        """
        utils = _check_bindings(bindings)
        if utils.size == 0:
            return []
        cpu_temps = self.model.cpu_temp_c(utils, self.setting)
        outlets = self.model.outlet_temp_c(utils, self.setting)
        generations = self.teg_module.generation_w(
            outlets, self.cold_source_temp_c, self.setting.flow_l_per_h)
        return [
            PolicyDecision(
                setting=self.setting,
                binding_utilisation=float(utils[i]),
                predicted_cpu_temp_c=float(cpu_temps[i]),
                predicted_outlet_temp_c=float(outlets[i]),
                predicted_generation_w=float(generations[i]),
            )
            for i in range(utils.size)
        ]


@dataclass
class LookupSpacePolicy:
    """The paper's Step 1-3 search over the measurement space (Fig. 13).

    Attributes
    ----------
    space:
        The fitted measurement space.
    safe_temp_c / tolerance_c:
        The ``T_safe ± tol`` slice of Step 2.
    aggregation:
        ``"max"`` keys on the hottest server (*TEG_Original*); ``"avg"``
        keys on the mean (*TEG_LoadBalance* after balancing).
    fallback_setting:
        Used when no grid point is near ``T_safe`` (extreme loads); the
        coldest, fastest setting available — safety first.
    """

    space: LookupSpace = field(default_factory=LookupSpace)
    teg_module: TegModule = field(default_factory=default_server_module)
    cold_source_temp_c: float = NATURAL_WATER_TEMP_C
    safe_temp_c: float = CPU_SAFE_TEMP_C
    tolerance_c: float = 1.0
    aggregation: str = "max"
    #: Decisions are cached on the binding utilisation quantised to this
    #: resolution; the lookup grid itself is much coarser, so this loses
    #: no fidelity while making cluster-scale simulation cheap.
    cache_resolution: float = 0.005
    _cache: dict = field(default_factory=dict, repr=False, compare=False)

    def decide(self, utilisations: Sequence[float]) -> PolicyDecision:
        """Pick the near-``T_safe`` setting with the largest TEG output."""
        binding = _binding_utilisation(utilisations, self.aggregation)
        key = round(binding / self.cache_resolution)
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        decision = self._decide_uncached(binding)
        self._cache[key] = decision
        return decision

    def decide_batch(self, bindings: Sequence[float]
                     ) -> list[PolicyDecision]:
        """Decisions for many pre-aggregated binding utilisations.

        Element ``i`` equals ``decide([bindings[i]])`` bit for bit, and
        the memo ends up in the same state: bindings that miss the memo
        are evaluated against the interpolated planes in one vectorised
        pass, then inserted in first-occurrence order — exactly the
        order the scalar loop would have primed them in.
        """
        utils = _check_bindings(bindings)
        keys = [round(float(b) / self.cache_resolution) for b in utils]
        novel: dict[int, float] = {}
        for key, binding in zip(keys, utils):
            if key not in self._cache and key not in novel:
                novel[key] = float(binding)
        if novel:
            computed = self._decide_uncached_batch(list(novel.values()))
            for key, decision in zip(novel, computed):
                self._cache[key] = decision
        return [self._cache[key] for key in keys]

    def _decide_uncached_batch(self, bindings: Sequence[float]
                               ) -> list[PolicyDecision]:
        """Vectorised :meth:`_decide_uncached` over many bindings.

        The scalar search scans the ``(flow, inlet)`` grid flow-major
        and keeps the first strict maximum; ``np.argmax`` over the
        ``-inf``-masked, flow-major-raveled power plane picks the same
        point, so each row reproduces the scalar decision bit for bit
        (including the fallback and emergency branches).
        """
        if self.tolerance_c <= 0:
            # The scalar path raises this from safe_region on every miss.
            raise PhysicalRangeError(
                f"tolerance must be > 0, got {self.tolerance_c}")
        cpu, outlet = self.space.plane_temperatures_batch(bindings)
        power = np.empty_like(outlet)
        for j, flow in enumerate(self.space.flow_grid):
            power[:, j, :] = self.teg_module.generation_w(
                outlet[:, j, :], self.cold_source_temp_c, float(flow))
        in_band = np.abs(cpu - self.safe_temp_c) <= self.tolerance_c
        below_band = cpu <= self.safe_temp_c + self.tolerance_c
        n_inlets = len(self.space.inlet_grid)
        decisions = []
        for i, binding in enumerate(bindings):
            mask = in_band[i] if in_band[i].any() else below_band[i]
            if mask.any():
                masked = np.where(mask, power[i], -np.inf).ravel()
                flat = int(np.argmax(masked))
                j, k = divmod(flat, n_inlets)
                flow = float(self.space.flow_grid[j])
                inlet = float(self.space.inlet_grid[k])
                cpu_temp = float(cpu[i, j, k])
                out_temp = float(outlet[i, j, k])
                best_power = float(masked[flat])
            else:
                # Overload: every setting overshoots; emergency-cool.
                flow = float(self.space.flow_grid[-1])
                inlet = float(self.space.inlet_grid[0])
                cpu_temp = float(cpu[i, -1, 0])
                out_temp = float(outlet[i, -1, 0])
                best_power = float(power[i, -1, 0])
            decisions.append(PolicyDecision(
                setting=CoolingSetting(flow_l_per_h=flow,
                                       inlet_temp_c=inlet),
                binding_utilisation=float(binding),
                predicted_cpu_temp_c=cpu_temp,
                predicted_outlet_temp_c=out_temp,
                predicted_generation_w=best_power,
            ))
        return decisions

    def _decide_uncached(self, binding: float) -> PolicyDecision:
        region = self.space.safe_region(binding, self.safe_temp_c,
                                        self.tolerance_c)
        if not region:
            return self._fallback(binding)
        best_point = None
        best_power = -np.inf
        for point in region:
            power = self.teg_module.generation_w(
                point.outlet_temp_c, self.cold_source_temp_c,
                point.flow_l_per_h)
            if power > best_power:
                best_power = power
                best_point = point
        assert best_point is not None
        return PolicyDecision(
            setting=best_point.setting,
            binding_utilisation=binding,
            predicted_cpu_temp_c=best_point.cpu_temp_c,
            predicted_outlet_temp_c=best_point.outlet_temp_c,
            predicted_generation_w=best_power,
        )

    def _fallback(self, binding: float) -> PolicyDecision:
        """No grid point sits in the ``T_safe ± tol`` band.

        Two distinct situations end up here:

        * the load is so light that even the hottest admissible setting
          leaves the CPU *below* the band — then pick the safe setting
          with the largest TEG output (the actuator simply cannot push
          the water any hotter);
        * the load is so heavy that every setting overshoots the band —
          then cool as hard as possible (coldest inlet, fastest flow).
        """
        cpu_plane, outlet_plane = self.space.plane_temperatures(binding)
        best_point = None
        best_power = -np.inf
        for j, flow in enumerate(self.space.flow_grid):
            for k, inlet in enumerate(self.space.inlet_grid):
                cpu_temp = float(cpu_plane[j, k])
                if cpu_temp > self.safe_temp_c + self.tolerance_c:
                    continue
                outlet = float(outlet_plane[j, k])
                power = self.teg_module.generation_w(
                    outlet, self.cold_source_temp_c, float(flow))
                if power > best_power:
                    best_power = power
                    best_point = (float(flow), float(inlet), cpu_temp,
                                  outlet)
        if best_point is None:
            # Overload: every setting overshoots; emergency-cool.
            flow = float(self.space.flow_grid[-1])
            inlet = float(self.space.inlet_grid[0])
            outlet = float(outlet_plane[-1, 0])
            best_point = (flow, inlet, float(cpu_plane[-1, 0]), outlet)
            best_power = self.teg_module.generation_w(
                outlet, self.cold_source_temp_c, flow)
        flow, inlet, cpu_temp, outlet = best_point
        return PolicyDecision(
            setting=CoolingSetting(flow_l_per_h=flow, inlet_temp_c=inlet),
            binding_utilisation=binding,
            predicted_cpu_temp_c=cpu_temp,
            predicted_outlet_temp_c=outlet,
            predicted_generation_w=best_power,
        )


@dataclass
class AnalyticPolicy:
    """Continuous-optimum policy inverting the calibrated model.

    For each candidate flow the constraint ``T_CPU(U, f, T_in) = T_safe``
    is solved exactly for the inlet temperature; the flow maximising the
    (optionally pump-net) TEG output wins.  This is the idealised version
    of the lookup search and doubles as an upper bound on it.

    Attributes
    ----------
    net_of_pump:
        If True, maximise ``P_TEG - P_pump / n_servers_per_pump`` instead
        of raw generation (the Sec. IV-B flow-rate caveat).
    """

    model: CpuThermalModel = field(default_factory=CpuThermalModel)
    teg_module: TegModule = field(default_factory=default_server_module)
    cold_source_temp_c: float = NATURAL_WATER_TEMP_C
    safe_temp_c: float = CPU_SAFE_TEMP_C
    aggregation: str = "max"
    flow_candidates: Sequence[float] = (
        20.0, 50.0, 100.0, 150.0, 200.0, 250.0, 300.0)
    inlet_min_c: float = 20.0
    inlet_max_c: float = 60.0
    net_of_pump: bool = False
    pipe_segments: Sequence[PipeSegment] = field(
        default_factory=prototype_warm_loop)

    def decide(self, utilisations: Sequence[float]) -> PolicyDecision:
        """Maximise predicted generation subject to ``T_CPU <= T_safe``."""
        binding = _binding_utilisation(utilisations, self.aggregation)
        best: PolicyDecision | None = None
        best_objective = -np.inf
        for flow in self.flow_candidates:
            inlet = self.model.inlet_for_cpu_temp(binding, flow,
                                                  self.safe_temp_c)
            inlet = min(max(inlet, self.inlet_min_c), self.inlet_max_c)
            setting = CoolingSetting(flow_l_per_h=flow, inlet_temp_c=inlet)
            cpu_temp = self.model.cpu_temp_c(binding, setting)
            if cpu_temp > self.safe_temp_c + 1.0:
                continue  # clamped inlet still too hot at this flow
            outlet = self.model.outlet_temp_c(binding, setting)
            generation = self.teg_module.generation_w(
                outlet, self.cold_source_temp_c, flow)
            objective = generation
            if self.net_of_pump:
                objective -= loop_pump_power_w(self.pipe_segments, flow,
                                               inlet)
            if objective > best_objective:
                best_objective = objective
                best = PolicyDecision(
                    setting=setting,
                    binding_utilisation=binding,
                    predicted_cpu_temp_c=cpu_temp,
                    predicted_outlet_temp_c=outlet,
                    predicted_generation_w=generation,
                )
        if best is None:
            # Even the coldest admissible inlet overheats: emergency cool.
            flow = max(self.flow_candidates)
            setting = CoolingSetting(flow_l_per_h=flow,
                                     inlet_temp_c=self.inlet_min_c)
            outlet = self.model.outlet_temp_c(binding, setting)
            best = PolicyDecision(
                setting=setting,
                binding_utilisation=binding,
                predicted_cpu_temp_c=self.model.cpu_temp_c(binding, setting),
                predicted_outlet_temp_c=outlet,
                predicted_generation_w=self.teg_module.generation_w(
                    outlet, self.cold_source_temp_c, flow),
            )
        return best

    def decide_batch(self, bindings: Sequence[float]
                     ) -> list[PolicyDecision]:
        """Decisions for many pre-aggregated binding utilisations.

        Element ``i`` equals ``decide([bindings[i]])`` bit for bit: the
        flow candidates are scanned in the same order with the same
        first-strict-maximum update, and every per-flow quantity is the
        elementwise-identical array form of the scalar arithmetic.  The
        only scalar expression that does not broadcast — the inlet
        clamp and the ``max(inlet_factor, 0.0)`` inside the outlet
        model — is mirrored with ``np.minimum``/``np.maximum``, which
        agree with Python ``min``/``max`` on every finite input.
        """
        utils = _check_bindings(bindings)
        n = utils.size
        if n == 0:
            return []
        best_objective = np.full(n, -np.inf)
        best_flow = np.empty(n)
        best_inlet = np.empty(n)
        best_cpu = np.empty(n)
        best_outlet = np.empty(n)
        best_generation = np.empty(n)
        found = np.zeros(n, dtype=bool)
        outlet_model = self.model.outlet_model
        # Loop-invariant: the scalar path recomputes this per flow but
        # the value is identical each time.
        power = self.model.cpu_power_w(utils)
        for flow in self.flow_candidates:
            inlet = self.model.inlet_for_cpu_temp(utils, flow,
                                                  self.safe_temp_c)
            inlet = np.minimum(np.maximum(inlet, self.inlet_min_c),
                               self.inlet_max_c)
            # cpu_temp_c / outlet_temp_c with a per-binding inlet array
            # (CoolingSetting holds one scalar inlet, so the model calls
            # are inlined with the same expressions).
            cpu_temp = (self.model.slope(flow) * inlet
                        + self.model.thermal_resistance_k_per_w(flow)
                        * power)
            if outlet_model.mode == "physical":
                delta = outlet_model.delta_c(utils, flow, 0.0)
            else:
                base = (outlet_model.base_delta_c
                        + outlet_model.load_delta_c * utils)
                flow_factor = (
                    flow / outlet_model.reference_flow_l_per_h
                ) ** outlet_model.flow_exponent
                inlet_factor = 1.0 + outlet_model.inlet_sensitivity_per_c * (
                    inlet - outlet_model.reference_inlet_c)
                delta = base * flow_factor * np.maximum(inlet_factor, 0.0)
            outlet = inlet + delta
            generation = self.teg_module.generation_w(
                outlet, self.cold_source_temp_c, flow)
            objective = generation
            if self.net_of_pump:
                objective = objective - np.array([
                    loop_pump_power_w(self.pipe_segments, flow, float(v))
                    for v in inlet])
            admissible = cpu_temp <= self.safe_temp_c + 1.0
            better = admissible & (objective > best_objective)
            best_objective[better] = objective[better]
            best_flow[better] = flow
            best_inlet[better] = inlet[better]
            best_cpu[better] = cpu_temp[better]
            best_outlet[better] = outlet[better]
            best_generation[better] = generation[better]
            found |= better
        decisions: list[PolicyDecision | None] = [None] * n
        for i in np.flatnonzero(found):
            decisions[i] = PolicyDecision(
                setting=CoolingSetting(flow_l_per_h=float(best_flow[i]),
                                       inlet_temp_c=float(best_inlet[i])),
                binding_utilisation=float(utils[i]),
                predicted_cpu_temp_c=float(best_cpu[i]),
                predicted_outlet_temp_c=float(best_outlet[i]),
                predicted_generation_w=float(best_generation[i]),
            )
        missing = np.flatnonzero(~found)
        if missing.size:
            # Even the coldest admissible inlet overheats: emergency cool.
            flow = max(self.flow_candidates)
            setting = CoolingSetting(flow_l_per_h=flow,
                                     inlet_temp_c=self.inlet_min_c)
            subset = utils[missing]
            outlets = self.model.outlet_temp_c(subset, setting)
            cpu_temps = self.model.cpu_temp_c(subset, setting)
            generations = self.teg_module.generation_w(
                outlets, self.cold_source_temp_c, flow)
            for pos, i in enumerate(missing):
                decisions[i] = PolicyDecision(
                    setting=setting,
                    binding_utilisation=float(utils[i]),
                    predicted_cpu_temp_c=float(cpu_temps[pos]),
                    predicted_outlet_temp_c=float(outlets[pos]),
                    predicted_generation_w=float(generations[pos]),
                )
        return decisions

"""Predictive cooling policy — anticipating the next interval's load.

The paper's Step 1-3 controller is reactive: it cools for the
utilisation it just measured.  On a fast-moving (*drastic*) trace the
binding server can rise within the interval, eating the safety margin.
:class:`PredictivePolicy` wraps any base policy and decides on a
*forecast* of the next interval instead, with an explicit sigma margin —
implementing the natural "future work" extension of Sec. V-B.

The wrapper is stateful: call :meth:`decide` once per interval in trace
order (the simulator does exactly that).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from ..errors import PhysicalRangeError
from ..workloads.forecast import EwmaForecaster
from .cooling_policy import AnalyticPolicy, CoolingPolicy, PolicyDecision


@dataclass
class PredictivePolicy:
    """Decide cooling settings on forecasted, not measured, load.

    Attributes
    ----------
    base:
        The underlying policy that maps utilisations to a setting
        (defaults to the analytic optimiser).
    forecaster:
        Per-server one-step forecaster with a safety margin.
    warmup_intervals:
        For the first N intervals (cold forecaster) the measured
        utilisations are used directly.
    """

    base: CoolingPolicy = field(default_factory=AnalyticPolicy)
    forecaster: EwmaForecaster = field(default_factory=EwmaForecaster)
    warmup_intervals: int = 2
    _seen: int = field(default=0, repr=False)

    def __post_init__(self) -> None:
        if self.warmup_intervals < 1:
            raise PhysicalRangeError(
                "warmup_intervals must be >= 1")

    def decide(self, utilisations: Sequence[float]) -> PolicyDecision:
        """Feed the measurement, then decide on the forecast."""
        utils = np.asarray(list(utilisations), dtype=float)
        self.forecaster.observe(utils)
        self._seen += 1
        if self._seen <= self.warmup_intervals:
            return self.base.decide(utils)
        return self.base.decide(self.forecaster.predict())

    def reset(self) -> None:
        """Forget the forecaster state (for replaying another trace)."""
        self.forecaster = type(self.forecaster)(
            alpha=getattr(self.forecaster, "alpha", 0.5),
            margin_sigmas=self.forecaster.margin_sigmas)
        self._seen = 0

"""Workload schedulers (Sec. V-B2: "Balancing Workload").

Balancing flattens the utilisation across a circulation so the binding
(hottest) CPU runs cooler, which lets the inlet temperature — and hence
the TEG output — rise.  Three schedulers are provided:

* :class:`NoScheduler` — identity; together with a ``max``-keyed cooling
  policy this is the paper's *TEG_Original* scheme;
* :class:`IdealBalancer` — every server carries the step average; with an
  ``avg``-keyed policy this is *TEG_LoadBalance*;
* :class:`ThresholdBalancer` — a bounded-migration balancer that only
  moves load above a percentile cap, modelling that real migration is not
  free; it interpolates between the two extremes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import PhysicalRangeError


class WorkloadScheduler:
    """Base scheduler: maps a per-server utilisation vector to another.

    Subclasses must preserve total work (the sum of utilisations) to
    within numerical tolerance and keep every value inside ``[0, 1]``.
    """

    #: Utilisation aggregation the matching cooling policy should key on.
    policy_aggregation: str = "max"

    def schedule(self, utilisations: np.ndarray) -> np.ndarray:
        """Return the rebalanced utilisation vector."""
        raise NotImplementedError

    def _validate(self, utilisations: np.ndarray) -> np.ndarray:
        utils = np.asarray(utilisations, dtype=float)
        if utils.ndim != 1 or utils.size == 0:
            raise PhysicalRangeError(
                "utilisations must be a non-empty 1-D vector")
        if np.any((utils < 0) | (utils > 1)):
            raise PhysicalRangeError("all utilisations must be in [0, 1]")
        return utils


@dataclass
class NoScheduler(WorkloadScheduler):
    """Leave the workload where it is (*TEG_Original*)."""

    policy_aggregation: str = "max"

    def schedule(self, utilisations: np.ndarray) -> np.ndarray:
        """Identity mapping."""
        return self._validate(utilisations).copy()


@dataclass
class IdealBalancer(WorkloadScheduler):
    """Perfectly flatten the load (*TEG_LoadBalance*).

    Every server ends up at the circulation average, preserving total
    work exactly; the binding utilisation becomes ``U_avg``.
    """

    policy_aggregation: str = "avg"

    def schedule(self, utilisations: np.ndarray) -> np.ndarray:
        """All servers at the mean utilisation."""
        utils = self._validate(utilisations)
        return np.full_like(utils, utils.mean())


@dataclass
class ThresholdBalancer(WorkloadScheduler):
    """Shave load above a cap and spread it over the cooler servers.

    Models a realistic balancer that migrates only the workload exceeding
    ``cap`` (a utilisation level), limited by available headroom.  With
    ``cap=0`` it degenerates to :class:`IdealBalancer`; with ``cap=1`` to
    :class:`NoScheduler`.
    """

    cap: float = 0.5
    policy_aggregation: str = "max"

    def __post_init__(self) -> None:
        if not 0.0 <= self.cap <= 1.0:
            raise PhysicalRangeError(
                f"cap must be in [0, 1], got {self.cap}")

    def schedule(self, utilisations: np.ndarray) -> np.ndarray:
        """Move the excess above ``cap`` onto servers below it."""
        utils = self._validate(utilisations)
        mean = utils.mean()
        cap = max(self.cap, mean)  # cannot flatten below the average
        excess = np.clip(utils - cap, 0.0, None)
        shaved = utils - excess
        headroom = np.clip(cap - shaved, 0.0, None)
        total_excess = excess.sum()
        total_headroom = headroom.sum()
        if total_excess == 0:
            return shaved
        if total_headroom <= 0:
            return utils.copy()
        placed = min(total_excess, total_headroom)
        result = shaved + headroom / total_headroom * placed
        # Any residual that could not be placed stays on its origin server.
        residual = total_excess - placed
        if residual > 0:
            result = result + excess / total_excess * residual
        return np.clip(result, 0.0, 1.0)

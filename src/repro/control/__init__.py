"""Control plane: the software-based optimisations of Sec. V-B.

* :mod:`repro.control.lookup_space` — the fitted 3-D measurement space
  ``(u, f, T_warm_in) -> T_CPU`` of Fig. 12, with the near-``T_safe``
  region extraction of Fig. 13;
* :mod:`repro.control.cooling_policy` — policies choosing the cooling
  setting ``{f, T_warm_in}`` every control interval (the paper's Step 1-3
  lookup search plus an analytic equivalent and static baselines);
* :mod:`repro.control.scheduling` — workload schedulers (none / ideal
  balancing / threshold balancing), implementing the *TEG_LoadBalance*
  strategy.
"""

from .lookup_space import LookupSpace, SpacePoint
from .cooling_policy import (
    CoolingPolicy,
    StaticPolicy,
    LookupSpacePolicy,
    AnalyticPolicy,
    PolicyDecision,
)
from .scheduling import (
    WorkloadScheduler,
    NoScheduler,
    IdealBalancer,
    ThresholdBalancer,
)
from .predictive import PredictivePolicy

__all__ = [
    "LookupSpace",
    "SpacePoint",
    "CoolingPolicy",
    "StaticPolicy",
    "LookupSpacePolicy",
    "AnalyticPolicy",
    "PolicyDecision",
    "WorkloadScheduler",
    "NoScheduler",
    "IdealBalancer",
    "ThresholdBalancer",
    "PredictivePolicy",
]

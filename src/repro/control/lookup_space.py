"""The 3-D measurement space of Fig. 12 and the Fig. 13 region search.

The paper's policy does not invert a closed-form model: it interpolates a
cloud of *measurements*.  Each measured point has coordinates
``(u, f, T_warm_in)`` and carries the observed ``T_CPU`` (and, through
Eq. 8, ``T_warm_out``).  Because "T_CPU changes continuously and linearly
with its variables", the discrete cloud is fitted into a continuous lookup
space usable at any operating point.

:class:`LookupSpace` simulates that workflow: it is *built from samples*
(by default sampled from the calibrated :class:`CpuThermalModel`, playing
the role of the testbed), then interpolates trilinearly, and can extract
the near-``T_safe`` slice the paper calls the space ``X`` intersected with
the utilisation plane ``U`` (Fig. 13).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np
from scipy.interpolate import RegularGridInterpolator

from ..constants import CPU_SAFE_TEMP_C
from ..errors import ConfigurationError, PhysicalRangeError
from ..thermal.cpu_model import CoolingSetting, CpuThermalModel


@dataclass(frozen=True)
class SpacePoint:
    """One point of the lookup space with its predicted temperatures."""

    utilisation: float
    flow_l_per_h: float
    inlet_temp_c: float
    cpu_temp_c: float
    outlet_temp_c: float

    @property
    def setting(self) -> CoolingSetting:
        """The cooling setting of this point."""
        return CoolingSetting(flow_l_per_h=self.flow_l_per_h,
                              inlet_temp_c=self.inlet_temp_c)


class LookupSpace:
    """Interpolated ``(u, f, T_in) -> (T_CPU, T_out)`` measurement space.

    Parameters
    ----------
    model:
        The CPU thermal model standing in for the testbed measurements.
    utilisation_grid / flow_grid / inlet_grid:
        Grid axes of the simulated measurement campaign.  The defaults
        mirror the prototype's sweeps: utilisation 0-100 % in 10 % steps,
        flow 20-300 L/H, inlet 20-60 degC.
    """

    def __init__(self, model: CpuThermalModel | None = None,
                 utilisation_grid: np.ndarray | None = None,
                 flow_grid: np.ndarray | None = None,
                 inlet_grid: np.ndarray | None = None) -> None:
        self.model = model or CpuThermalModel()
        self.utilisation_grid = np.asarray(
            utilisation_grid if utilisation_grid is not None
            else np.linspace(0.0, 1.0, 11))
        self.flow_grid = np.asarray(
            flow_grid if flow_grid is not None
            else np.array([20.0, 50.0, 100.0, 150.0, 200.0, 250.0, 300.0]))
        self.inlet_grid = np.asarray(
            inlet_grid if inlet_grid is not None
            else np.linspace(20.0, 60.0, 21))
        for axis_name, axis in (("utilisation", self.utilisation_grid),
                                ("flow", self.flow_grid),
                                ("inlet", self.inlet_grid)):
            if axis.ndim != 1 or len(axis) < 2:
                raise ConfigurationError(
                    f"{axis_name} grid must be 1-D with >= 2 points")
            if np.any(np.diff(axis) <= 0):
                raise ConfigurationError(
                    f"{axis_name} grid must be strictly increasing")
        self._cpu_temp, self._outlet_temp = self._measure()
        self._cpu_interp = RegularGridInterpolator(
            (self.utilisation_grid, self.flow_grid, self.inlet_grid),
            self._cpu_temp, bounds_error=True)
        self._outlet_interp = RegularGridInterpolator(
            (self.utilisation_grid, self.flow_grid, self.inlet_grid),
            self._outlet_temp, bounds_error=True)

    def _measure(self) -> tuple[np.ndarray, np.ndarray]:
        """Run the simulated measurement campaign over the grid."""
        shape = (len(self.utilisation_grid), len(self.flow_grid),
                 len(self.inlet_grid))
        cpu = np.empty(shape)
        outlet = np.empty(shape)
        for i, util in enumerate(self.utilisation_grid):
            for j, flow in enumerate(self.flow_grid):
                for k, inlet in enumerate(self.inlet_grid):
                    setting = CoolingSetting(flow_l_per_h=float(flow),
                                             inlet_temp_c=float(inlet))
                    cpu[i, j, k] = self.model.cpu_temp_c(float(util), setting)
                    outlet[i, j, k] = self.model.outlet_temp_c(
                        float(util), setting)
        return cpu, outlet

    # ------------------------------------------------------------------
    # Interpolation
    # ------------------------------------------------------------------

    def _point(self, utilisation: float, flow_l_per_h: float,
               inlet_temp_c: float) -> np.ndarray:
        if not 0.0 <= utilisation <= 1.0:
            raise PhysicalRangeError(
                f"utilisation must be in [0, 1], got {utilisation}")
        return np.array([[utilisation, flow_l_per_h, inlet_temp_c]])

    def cpu_temp_c(self, utilisation: float, flow_l_per_h: float,
                   inlet_temp_c: float) -> float:
        """Interpolated CPU temperature at an arbitrary operating point."""
        return float(self._cpu_interp(
            self._point(utilisation, flow_l_per_h, inlet_temp_c))[0])

    def outlet_temp_c(self, utilisation: float, flow_l_per_h: float,
                      inlet_temp_c: float) -> float:
        """Interpolated CPU-outlet water temperature (``T_warm_out``)."""
        return float(self._outlet_interp(
            self._point(utilisation, flow_l_per_h, inlet_temp_c))[0])

    # ------------------------------------------------------------------
    # Fig. 13: the intersection A = U ∩ X
    # ------------------------------------------------------------------

    def plane_temperatures(self, utilisation: float
                           ) -> tuple[np.ndarray, np.ndarray]:
        """Interpolated ``(T_CPU, T_out)`` over the whole ``u`` plane.

        One batched interpolator call over every ``(flow, inlet)`` grid
        point — bit-identical to (but far faster than) the per-point
        :meth:`cpu_temp_c` / :meth:`outlet_temp_c` loop.  Both returned
        arrays have shape ``(len(flow_grid), len(inlet_grid))``.
        """
        if not 0.0 <= utilisation <= 1.0:
            raise PhysicalRangeError(
                f"utilisation must be in [0, 1], got {utilisation}")
        flows = np.repeat(self.flow_grid, len(self.inlet_grid))
        inlets = np.tile(self.inlet_grid, len(self.flow_grid))
        points = np.column_stack(
            [np.full(flows.shape, utilisation), flows, inlets])
        shape = (len(self.flow_grid), len(self.inlet_grid))
        return (self._cpu_interp(points).reshape(shape),
                self._outlet_interp(points).reshape(shape))

    def plane_temperatures_batch(self, utilisations
                                 ) -> tuple[np.ndarray, np.ndarray]:
        """Interpolated ``(T_CPU, T_out)`` planes for many utilisations.

        One interpolator call covering every ``(u, flow, inlet)``
        combination.  Row ``i`` of each returned array is bit-identical
        to ``plane_temperatures(utilisations[i])`` — the interpolator
        evaluates each query point independently, so batching changes
        neither the arithmetic nor its order.  Both returned arrays have
        shape ``(len(utilisations), len(flow_grid), len(inlet_grid))``.
        """
        utils = np.asarray(utilisations, dtype=float)
        if utils.ndim != 1:
            raise ConfigurationError(
                f"utilisations must be 1-D, got shape {utils.shape}")
        in_range = (utils >= 0.0) & (utils <= 1.0)
        if not np.all(in_range):
            offending = utils[~in_range][0]
            raise PhysicalRangeError(
                f"utilisation must be in [0, 1], got {offending}")
        flows = np.repeat(self.flow_grid, len(self.inlet_grid))
        inlets = np.tile(self.inlet_grid, len(self.flow_grid))
        points = np.column_stack([
            np.repeat(utils, flows.size),
            np.tile(flows, utils.size),
            np.tile(inlets, utils.size),
        ])
        shape = (utils.size, len(self.flow_grid), len(self.inlet_grid))
        return (self._cpu_interp(points).reshape(shape),
                self._outlet_interp(points).reshape(shape))

    def safe_region(self, utilisation: float,
                    safe_temp_c: float = CPU_SAFE_TEMP_C,
                    tolerance_c: float = 1.0) -> list[SpacePoint]:
        """Grid points on the utilisation plane with T_CPU near T_safe.

        Implements Step 1-2 of Sec. V-B1: draw the plane ``u = U`` and keep
        the points whose CPU temperature lies within
        ``[T_safe - tol, T_safe + tol]``.

        Returns
        -------
        list of SpacePoint
            The intersection area ``A`` (may be empty when no setting can
            hold the CPU near ``T_safe`` — e.g. at very high load with a
            bounded inlet grid).  Points are ordered flow-major then
            inlet, exactly as the measurement sweeps run.
        """
        if tolerance_c <= 0:
            raise PhysicalRangeError(
                f"tolerance must be > 0, got {tolerance_c}")
        cpu_plane, outlet_plane = self.plane_temperatures(utilisation)
        region = []
        for j, flow in enumerate(self.flow_grid):
            for k, inlet in enumerate(self.inlet_grid):
                cpu_temp = float(cpu_plane[j, k])
                if abs(cpu_temp - safe_temp_c) <= tolerance_c:
                    region.append(SpacePoint(
                        utilisation=utilisation,
                        flow_l_per_h=float(flow),
                        inlet_temp_c=float(inlet),
                        cpu_temp_c=cpu_temp,
                        outlet_temp_c=float(outlet_plane[j, k]),
                    ))
        return region

    def iter_points(self) -> Iterator[SpacePoint]:
        """Iterate over every simulated measurement point (Fig. 12)."""
        for i, util in enumerate(self.utilisation_grid):
            for j, flow in enumerate(self.flow_grid):
                for k, inlet in enumerate(self.inlet_grid):
                    yield SpacePoint(
                        utilisation=float(util),
                        flow_l_per_h=float(flow),
                        inlet_temp_c=float(inlet),
                        cpu_temp_c=float(self._cpu_temp[i, j, k]),
                        outlet_temp_c=float(self._outlet_temp[i, j, k]),
                    )

    @property
    def n_points(self) -> int:
        """Total number of points in the measurement grid."""
        return (len(self.utilisation_grid) * len(self.flow_grid)
                * len(self.inlet_grid))

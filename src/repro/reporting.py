"""Plain-text reporting: tables, strip charts and run summaries.

Everything the CLI and the examples print goes through here, so library
users can generate the same artefacts programmatically (and tests can
assert on their structure).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from .core.results import SchemeComparison, SimulationResult
from .errors import PhysicalRangeError

_GLYPHS = " .:-=+*#%@"


def format_table(headers: Sequence[str], rows: Sequence[Sequence],
                 float_format: str = "{:.3f}") -> str:
    """Render an aligned text table.

    Parameters
    ----------
    headers:
        Column titles.
    rows:
        Row cells; floats are formatted with ``float_format``.

    Returns
    -------
    str
        The table, newline-joined, no trailing newline.
    """
    if not headers:
        raise PhysicalRangeError("headers must not be empty")

    def fmt(cell) -> str:
        if isinstance(cell, float):
            return float_format.format(cell)
        return str(cell)

    rendered = [[fmt(cell) for cell in row] for row in rows]
    for row in rendered:
        if len(row) != len(headers):
            raise PhysicalRangeError(
                f"row width {len(row)} != header width {len(headers)}")
    widths = [max(len(str(header)),
                  *(len(row[i]) for row in rendered)) if rendered
              else len(str(header))
              for i, header in enumerate(headers)]
    lines = ["  ".join(str(h).ljust(w) for h, w in zip(headers, widths))]
    lines.append("  ".join("-" * w for w in widths))
    for row in rendered:
        lines.append("  ".join(cell.ljust(w)
                               for cell, w in zip(row, widths)))
    return "\n".join(lines)


def strip_chart(series: Sequence[float], width: int = 60,
                label: str = "") -> str:
    """Render a series as a one-line density strip.

    Each column maps the local value onto a glyph ramp between the
    series' min and max — enough to see trends and anti-correlations in
    a terminal.
    """
    values = np.asarray(list(series), dtype=float)
    if values.ndim != 1 or values.size == 0:
        raise PhysicalRangeError("series must be a non-empty 1-D array")
    if width < 1:
        raise PhysicalRangeError(f"width must be >= 1, got {width}")
    step = max(1, values.size // width)
    sampled = values[::step]
    lo, hi = float(sampled.min()), float(sampled.max())
    span = (hi - lo) or 1.0
    cells = "".join(
        _GLYPHS[min(len(_GLYPHS) - 1,
                    int((value - lo) / span * (len(_GLYPHS) - 1)))]
        for value in sampled)
    prefix = f"{label:<12}" if label else ""
    return f"{prefix}|{cells}|"


def result_report(result: SimulationResult) -> str:
    """One-paragraph text summary of a simulation run."""
    lines = [
        f"scheme {result.scheme} on trace {result.trace_name!r} "
        f"({result.n_servers} servers, {len(result.records)} intervals "
        f"of {result.interval_s / 60.0:.0f} min)",
        f"  generation : avg {result.average_generation_w:.3f} W/CPU, "
        f"peak {result.peak_generation_w:.3f} W/CPU "
        f"({result.total_generation_kwh:.2f} kWh total)",
        f"  PRE        : {result.average_pre:.2%}",
        f"  safety     : {result.total_safety_violations} violations",
        f"  util-gen correlation: {result.anti_correlation:+.2f}",
    ]
    return "\n".join(lines)


def comparison_report(comparison: SchemeComparison,
                      chart_width: int = 60) -> str:
    """Full text report of an Original-vs-LoadBalance comparison."""
    base = comparison.baseline
    optimised = comparison.optimised
    table = format_table(
        ["metric", base.scheme, optimised.scheme],
        [
            ["avg generation (W/CPU)", base.average_generation_w,
             optimised.average_generation_w],
            ["peak generation (W/CPU)", base.peak_generation_w,
             optimised.peak_generation_w],
            ["PRE", base.average_pre, optimised.average_pre],
            ["violations", base.total_safety_violations,
             optimised.total_safety_violations],
        ])
    lines = [
        f"trace {base.trace_name!r}: "
        f"{100.0 * comparison.generation_improvement:+.1f} % generation "
        f"from workload balancing",
        table,
        strip_chart(optimised.utilisation_series, chart_width,
                    "utilisation"),
        strip_chart(optimised.generation_series_w, chart_width,
                    "generation"),
    ]
    return "\n".join(lines)

"""District heating: seasonal demand and the datacenter offtake.

The paper's core objection to district heating is the *mismatch*: "most
datacenters are located in warm areas, where the peak-hour heat capacity
of datacenters exceeds the heat demand of residential homes from spring
to autumn" (Sec. I).  :class:`HeatDemandProfile` models demand as a
degree-day function of the climate, and
:class:`DistrictHeatingSystem` computes how much of a datacenter's
(constant, year-round) heat stream the district can actually absorb.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..environment import WetBulbProfile
from ..errors import PhysicalRangeError

_HOURS_PER_YEAR = 8760


@dataclass(frozen=True)
class HeatDemandProfile:
    """Heating demand of the district served by the datacenter's heat.

    Demand follows the heating-degree concept: proportional to how far
    the ambient sits below a base temperature, zero above it.

    Attributes
    ----------
    climate:
        The district's ambient profile (wet-bulb is a fine proxy for the
        seasonal shape).
    base_temp_c:
        No heating is needed above this ambient temperature.
    peak_demand_kw:
        Demand when the ambient is at its annual minimum.
    """

    climate: WetBulbProfile = field(default_factory=WetBulbProfile)
    base_temp_c: float = 15.0
    peak_demand_kw: float = 500.0

    def __post_init__(self) -> None:
        if self.peak_demand_kw <= 0:
            raise PhysicalRangeError("peak demand must be > 0")

    def _coldest_c(self) -> float:
        return (self.climate.annual_mean_c
                - self.climate.seasonal_amplitude_c
                - self.climate.diurnal_amplitude_c)

    def demand_kw(self, t_seconds: float) -> float:
        """Heat demand at one instant, kW (0 outside the heating season)."""
        ambient = self.climate.at(t_seconds)
        shortfall = self.base_temp_c - ambient
        if shortfall <= 0.0:
            return 0.0
        coldest_shortfall = self.base_temp_c - self._coldest_c()
        if coldest_shortfall <= 0.0:
            return 0.0
        return self.peak_demand_kw * min(1.0,
                                         shortfall / coldest_shortfall)

    def hourly_demand_kw(self) -> np.ndarray:
        """Demand sampled at every hour of a year."""
        hours = np.arange(_HOURS_PER_YEAR) * 3600.0
        return np.array([self.demand_kw(float(t)) for t in hours])

    def heating_hours_per_year(self) -> int:
        """Hours with nonzero demand (the paper's season length issue)."""
        return int(np.count_nonzero(self.hourly_demand_kw() > 0.0))


@dataclass(frozen=True)
class DistrictHeatingSystem:
    """The offtake contract between a datacenter and a DHS.

    Attributes
    ----------
    demand:
        The district's demand profile.
    transport_efficiency:
        Fraction of exported heat that survives the piping to the
        district (the "complex piping arrangement" loss).
    heat_price_usd_per_kwh:
        What the DHS pays for delivered heat (well below the electricity
        tariff — heat is the lower-grade product).
    pipeline_capex_usd:
        One-time cost of connecting the datacenter to the district
        (the "huge project" of Sec. II-C).
    pipeline_lifetime_years:
        Amortisation horizon of that connection.
    """

    demand: HeatDemandProfile = field(default_factory=HeatDemandProfile)
    transport_efficiency: float = 0.85
    heat_price_usd_per_kwh: float = 0.03
    pipeline_capex_usd: float = 2_000_000.0
    pipeline_lifetime_years: float = 30.0

    def __post_init__(self) -> None:
        if not 0.0 < self.transport_efficiency <= 1.0:
            raise PhysicalRangeError(
                "transport efficiency must be in (0, 1]")
        if self.heat_price_usd_per_kwh < 0:
            raise PhysicalRangeError("heat price must be >= 0")
        if self.pipeline_capex_usd < 0:
            raise PhysicalRangeError("pipeline capex must be >= 0")
        if self.pipeline_lifetime_years <= 0:
            raise PhysicalRangeError("pipeline lifetime must be > 0")

    def absorbed_heat_kwh_per_year(self, supply_kw: float) -> float:
        """Heat the district actually takes from a constant supply.

        Hour by hour, the offtake is ``min(supply, demand)`` — the
        mismatch the paper describes: in warm seasons demand is zero and
        the datacenter's heat has nowhere to go.
        """
        if supply_kw < 0:
            raise PhysicalRangeError("supply must be >= 0")
        demand = self.demand.hourly_demand_kw()
        delivered = np.minimum(supply_kw * self.transport_efficiency,
                               demand)
        return float(delivered.sum())

    def utilisation_factor(self, supply_kw: float) -> float:
        """Fraction of the datacenter's annual heat that finds a buyer."""
        if supply_kw == 0:
            return 0.0
        absorbed = self.absorbed_heat_kwh_per_year(supply_kw)
        available = supply_kw * _HOURS_PER_YEAR
        return absorbed / available

    def annual_revenue_usd(self, supply_kw: float) -> float:
        """Heat sales minus the amortised pipeline cost (can be < 0)."""
        sales = (self.absorbed_heat_kwh_per_year(supply_kw)
                 * self.heat_price_usd_per_kwh)
        amortised = self.pipeline_capex_usd / self.pipeline_lifetime_years
        return sales - amortised

"""Waste-heat reuse alternatives (Sec. II-C).

The paper positions H2P against the two established reuse routes:

* **district heating** — valuable but demand-limited: "heat is not
  always in great demand from season to season, from district to
  district", and it needs a mature urban heating system;
* **CCHP** — combined cooling, heat and power, with "much higher"
  construction and maintenance costs and a gas supply.

This subpackage models both alternatives and a comparison harness so the
Sec. II-C argument can be evaluated quantitatively for a given climate
and datacenter:

* :mod:`repro.heatreuse.district` — seasonal heat-demand model and a
  district-heating offtake with transport losses;
* :mod:`repro.heatreuse.cchp` — an absorption-chiller CCHP plant;
* :mod:`repro.heatreuse.comparison` — annualised value of each route
  (H2P TEGs included) for one datacenter heat stream.
"""

from .district import DistrictHeatingSystem, HeatDemandProfile
from .cchp import CchpPlant
from .comparison import ReuseComparison, ReuseOption

__all__ = [
    "DistrictHeatingSystem",
    "HeatDemandProfile",
    "CchpPlant",
    "ReuseComparison",
    "ReuseOption",
]

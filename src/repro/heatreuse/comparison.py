"""Side-by-side valuation of the reuse routes (the Sec. II-C argument).

Given one datacenter's waste-heat stream and climate, compute the
annualised value of:

* **H2P** — TEG recycling: revenue follows the electricity recovered,
  installation is trivial (the modules clamp onto existing loops);
* **district heating** — demand-limited heat sales minus the pipeline;
* **CCHP** — a co-located tri-generation plant (whose value is mostly
  independent of the datacenter's low-grade heat).

The paper's qualitative claims this harness makes testable: district
heating collapses in warm climates (Singapore) and holds up in cold ones
(Stockholm); H2P's value is climate-independent; CCHP is a different
business, not a waste-heat recycler.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..constants import ELECTRICITY_PRICE_USD_PER_KWH, TEG_UNIT_PRICE_USD
from ..environment import WetBulbProfile
from ..errors import PhysicalRangeError
from .cchp import CchpPlant
from .district import DistrictHeatingSystem, HeatDemandProfile

_HOURS_PER_YEAR = 8760.0


@dataclass(frozen=True)
class ReuseOption:
    """One valued reuse route."""

    name: str
    annual_value_usd: float
    utilisation: float
    notes: str = ""


@dataclass(frozen=True)
class ReuseComparison:
    """A datacenter's heat stream, valued under each reuse route.

    Attributes
    ----------
    n_servers:
        Cluster size.
    heat_per_server_kw:
        Average heat each server sheds into the loop (~IT power).
    teg_generation_per_server_w:
        Average TEG output per server under H2P.
    climate:
        The deployment climate (drives district-heating demand).
    electricity_price_usd_per_kwh:
        Local tariff.
    """

    n_servers: int = 1000
    heat_per_server_kw: float = 0.048
    teg_generation_per_server_w: float = 4.177
    climate: WetBulbProfile = field(default_factory=WetBulbProfile)
    electricity_price_usd_per_kwh: float = ELECTRICITY_PRICE_USD_PER_KWH
    #: District-heating connection cost per kW of exported heat
    #: (pipes, heat exchangers, integration — the "huge project").
    dh_connection_usd_per_kw: float = 800.0
    district: DistrictHeatingSystem | None = None
    cchp: CchpPlant = field(default_factory=CchpPlant)

    def __post_init__(self) -> None:
        if self.n_servers <= 0:
            raise PhysicalRangeError("n_servers must be > 0")
        if self.heat_per_server_kw <= 0:
            raise PhysicalRangeError("heat per server must be > 0")
        if self.teg_generation_per_server_w < 0:
            raise PhysicalRangeError("TEG generation must be >= 0")
        if self.dh_connection_usd_per_kw < 0:
            raise PhysicalRangeError("connection cost must be >= 0")

    @property
    def total_heat_kw(self) -> float:
        """The datacenter's continuous waste-heat stream."""
        return self.n_servers * self.heat_per_server_kw

    def _district(self) -> DistrictHeatingSystem:
        if self.district is not None:
            return self.district
        # Size the district's peak demand to the datacenter's output so
        # the *seasonal availability*, not sizing, drives the result, and
        # scale the pipeline to the exported capacity.
        return DistrictHeatingSystem(
            demand=HeatDemandProfile(climate=self.climate,
                                     peak_demand_kw=self.total_heat_kw),
            pipeline_capex_usd=self.dh_connection_usd_per_kw
            * self.total_heat_kw)

    # ------------------------------------------------------------------

    def h2p_option(self) -> ReuseOption:
        """Value of TEG recycling, net of amortised module cost."""
        generation_kw = (self.n_servers
                         * self.teg_generation_per_server_w / 1000.0)
        revenue = (generation_kw * _HOURS_PER_YEAR
                   * self.electricity_price_usd_per_kwh)
        module_cost = (self.n_servers * 12 * TEG_UNIT_PRICE_USD) / 25.0
        electricity_fraction = (generation_kw / self.total_heat_kw
                                if self.total_heat_kw else 0.0)
        return ReuseOption(
            name="H2P (TEG recycling)",
            annual_value_usd=revenue - module_cost,
            utilisation=electricity_fraction,
            notes="climate-independent; electricity, not heat",
        )

    def district_option(self) -> ReuseOption:
        """Value of selling the heat to a district heating system."""
        system = self._district()
        supply = self.total_heat_kw
        return ReuseOption(
            name="district heating",
            annual_value_usd=system.annual_revenue_usd(supply),
            utilisation=system.utilisation_factor(supply),
            notes=f"{system.demand.heating_hours_per_year()} heating "
                  f"hours/year in this climate",
        )

    def cchp_option(self) -> ReuseOption:
        """Value of a co-located CCHP plant of matching capacity."""
        capacity_kw = self.total_heat_kw  # same order as the DC's load
        value = self.cchp.annual_net_value_usd(
            capacity_kw, self.electricity_price_usd_per_kwh,
            datacenter_heat_kw=self.total_heat_kw)
        boost = self.cchp.waste_heat_boost
        return ReuseOption(
            name="CCHP",
            annual_value_usd=value,
            utilisation=boost,
            notes="a generator, not a recycler: only "
                  f"{boost:.0%} of DC heat is usable",
        )

    def all_options(self) -> list[ReuseOption]:
        """All three routes, most valuable first."""
        options = [self.h2p_option(), self.district_option(),
                   self.cchp_option()]
        return sorted(options, key=lambda option: option.annual_value_usd,
                      reverse=True)

"""Combined cooling, heat and power (CCHP) — the Sec. II-C alternative.

A CCHP plant burns gas to co-generate electricity, useful heat and (via
an absorption chiller) cooling.  The paper's objections: high
construction and maintenance costs, gas supply with "stricter fire and
explosion protection", and the fact that datacenter waste heat is too
low-grade to drive a steam turbine by itself — CCHP is a *co-located
generator*, not a waste-heat recycler, so the datacenter's warm water can
at best pre-heat its bottoming cycle.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import PhysicalRangeError

_HOURS_PER_YEAR = 8760.0


@dataclass(frozen=True)
class CchpPlant:
    """A small gas-fired CCHP plant co-located with the datacenter.

    Attributes
    ----------
    electrical_efficiency:
        Gas-to-electricity conversion of the prime mover.
    heat_recovery_efficiency:
        Fraction of the remaining fuel energy recovered as useful heat.
    absorption_cop:
        COP of the absorption chiller driven by the recovered heat.
    gas_price_usd_per_kwh:
        Fuel price per kWh of gas (HHV).
    capex_usd_per_kw:
        Installed cost per kW of electrical capacity.
    lifetime_years:
        Plant amortisation horizon.
    maintenance_usd_per_kwh:
        O&M per kWh of electricity produced (the "much higher ...
        maintenance costs").
    waste_heat_boost:
        Fraction of the datacenter's warm-water heat that usefully
        pre-heats the bottoming cycle (small: the water is low-grade).
    """

    electrical_efficiency: float = 0.35
    heat_recovery_efficiency: float = 0.45
    absorption_cop: float = 0.7
    gas_price_usd_per_kwh: float = 0.035
    capex_usd_per_kw: float = 1500.0
    lifetime_years: float = 20.0
    maintenance_usd_per_kwh: float = 0.012
    waste_heat_boost: float = 0.05

    def __post_init__(self) -> None:
        if not 0.0 < self.electrical_efficiency < 1.0:
            raise PhysicalRangeError(
                "electrical efficiency must be in (0, 1)")
        if not 0.0 <= self.heat_recovery_efficiency < 1.0:
            raise PhysicalRangeError(
                "heat recovery efficiency must be in [0, 1)")
        if (self.electrical_efficiency
                + self.heat_recovery_efficiency) >= 1.0:
            raise PhysicalRangeError(
                "electrical + heat recovery efficiency must be < 1")
        if self.absorption_cop <= 0:
            raise PhysicalRangeError("absorption COP must be > 0")
        if not 0.0 <= self.waste_heat_boost <= 0.5:
            raise PhysicalRangeError(
                "waste-heat boost must be in [0, 0.5]")
        for name in ("gas_price_usd_per_kwh", "capex_usd_per_kw",
                     "maintenance_usd_per_kwh"):
            if getattr(self, name) < 0:
                raise PhysicalRangeError(f"{name} must be >= 0")
        if self.lifetime_years <= 0:
            raise PhysicalRangeError("lifetime must be > 0")

    # ------------------------------------------------------------------

    def electricity_kwh_per_year(self, capacity_kw: float,
                                 capacity_factor: float = 0.85) -> float:
        """Annual electricity production of a plant of ``capacity_kw``."""
        self._check_capacity(capacity_kw, capacity_factor)
        return capacity_kw * capacity_factor * _HOURS_PER_YEAR

    def gas_kwh_per_year(self, capacity_kw: float,
                         capacity_factor: float = 0.85,
                         datacenter_heat_kw: float = 0.0) -> float:
        """Annual fuel input; datacenter warm water trims it slightly."""
        if datacenter_heat_kw < 0:
            raise PhysicalRangeError("datacenter heat must be >= 0")
        electricity = self.electricity_kwh_per_year(capacity_kw,
                                                    capacity_factor)
        gas = electricity / self.electrical_efficiency
        credit = (datacenter_heat_kw * self.waste_heat_boost
                  * _HOURS_PER_YEAR)
        return max(0.0, gas - credit)

    def cooling_kwh_per_year(self, capacity_kw: float,
                             capacity_factor: float = 0.85) -> float:
        """Annual cooling the absorption chiller delivers."""
        gas = (self.electricity_kwh_per_year(capacity_kw, capacity_factor)
               / self.electrical_efficiency)
        recovered_heat = gas * self.heat_recovery_efficiency
        return recovered_heat * self.absorption_cop

    def annual_net_value_usd(self, capacity_kw: float,
                             electricity_price_usd_per_kwh: float,
                             capacity_factor: float = 0.85,
                             datacenter_heat_kw: float = 0.0,
                             cooling_value_usd_per_kwh: float = 0.02,
                             ) -> float:
        """Revenue (electricity + cooling) minus fuel, O&M and CapEx."""
        if electricity_price_usd_per_kwh < 0 or cooling_value_usd_per_kwh < 0:
            raise PhysicalRangeError("prices must be >= 0")
        electricity = self.electricity_kwh_per_year(capacity_kw,
                                                    capacity_factor)
        cooling = self.cooling_kwh_per_year(capacity_kw, capacity_factor)
        gas = self.gas_kwh_per_year(capacity_kw, capacity_factor,
                                    datacenter_heat_kw)
        revenue = (electricity * electricity_price_usd_per_kwh
                   + cooling * cooling_value_usd_per_kwh)
        costs = (gas * self.gas_price_usd_per_kwh
                 + electricity * self.maintenance_usd_per_kwh
                 + capacity_kw * self.capex_usd_per_kw
                 / self.lifetime_years)
        return revenue - costs

    @staticmethod
    def _check_capacity(capacity_kw: float,
                        capacity_factor: float) -> None:
        if capacity_kw < 0:
            raise PhysicalRangeError("capacity must be >= 0")
        if not 0.0 <= capacity_factor <= 1.0:
            raise PhysicalRangeError(
                "capacity factor must be in [0, 1]")

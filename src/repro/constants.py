"""Physical constants and paper-calibrated parameters.

Every constant that the paper states explicitly is reproduced here with a
reference to the section or equation it comes from, so that the rest of the
library never embeds magic numbers.
"""

from __future__ import annotations

# ---------------------------------------------------------------------------
# Fundamental / fluid properties
# ---------------------------------------------------------------------------

#: Specific heat capacity of water, J/(kg*degC).  Sec. V-A of the paper.
WATER_HEAT_CAPACITY_J_PER_KG_C = 4.2e3

#: Density of water, kg/m^3.  Sec. V-A (the ``rho`` in Eq. 10).
WATER_DENSITY_KG_PER_M3 = 1.0e3

#: Zero Celsius expressed in Kelvin.
ZERO_CELSIUS_K = 273.15

# ---------------------------------------------------------------------------
# CPU (Intel Xeon E5-2650 V3) — Sec. II-B, Sec. IV
# ---------------------------------------------------------------------------

#: Maximum operating temperature of the prototype CPU, degC.
CPU_MAX_OPERATING_TEMP_C = 78.9

#: Safe operating temperature used in Fig. 13 of the paper, degC.
CPU_SAFE_TEMP_C = 62.0

#: Nominal (maximum) CPU frequency of the E5-2650 V3, GHz.
CPU_MAX_FREQUENCY_GHZ = 3.0

#: Frequency plateau under the "powersave" governor (Fig. 10), GHz.
CPU_POWERSAVE_FREQUENCY_GHZ = 2.5

#: CPU power model Eq. 20:  P = A * ln(u + B) + C  with u in [0, 1].
#: Calibrated on the E5-2650 V3 with RMS error < 5 W (Sec. V-C).
CPU_POWER_LOG_COEFF_W = 109.71
CPU_POWER_LOG_OFFSET = 1.17
CPU_POWER_CONST_W = -7.83

# ---------------------------------------------------------------------------
# TEG (SP 1848-27145) — Sec. III-A, Sec. IV-B
# ---------------------------------------------------------------------------

#: Electrical resistance of a single TEG, ohm (Sec. IV-B, "measured as 2").
TEG_RESISTANCE_OHM = 2.0

#: Linear open-circuit voltage fit of one TEG, Eq. 3:  v = a*dT + b  (volt).
TEG_VOC_SLOPE_V_PER_C = 0.0448
TEG_VOC_INTERCEPT_V = -0.0051

#: Quadratic max-power fit of one TEG, Eq. 6:  P = p2*dT^2 + p1*dT + p0 (watt).
TEG_PMAX_QUAD_W_PER_C2 = 0.0003
TEG_PMAX_LIN_W_PER_C = -0.0003
TEG_PMAX_CONST_W = 0.0011

#: Number of TEGs mounted per server in H2P (Sec. IV-A / Sec. V-D).
TEGS_PER_SERVER = 12

#: Purchase price of one TEG, USD (Sec. III-A).
TEG_UNIT_PRICE_USD = 1.0

#: Conservative lifespan assumption used in the TCO analysis, years
#: (Sec. V-D; the datasheet range is 28-34 years).
TEG_LIFESPAN_YEARS = 25.0

#: TEG footprint, metres (4 cm x 4 cm, Sec. III-A).
TEG_SIDE_M = 0.04

#: Admissible ambient temperature range of the SP 1848-27145, degC.
TEG_MIN_AMBIENT_C = -60.0
TEG_MAX_AMBIENT_C = 120.0

#: Approximate thermal resistance a TEG adds when sandwiched between a CPU
#: and its cold plate, K/W.  Not stated numerically in the paper; calibrated
#: so that the Fig. 3 transient (CPU0 approaches 78.9 degC at 20 % load)
#: is reproduced.  TEGs are "almost adiabatic" (Sec. III-B).
TEG_THERMAL_RESISTANCE_K_PER_W = 1.55

# ---------------------------------------------------------------------------
# Cooling system — Sec. V-A
# ---------------------------------------------------------------------------

#: Coefficient of performance assumed for the chiller (Sec. V-A, after [24]).
CHILLER_COP = 3.6

#: Default per-server flow rate in a shared circulation, litres/hour
#: (the constant ``f`` example in Sec. V-A).
DEFAULT_FLOW_RATE_L_PER_H = 50.0

#: Temperature of the natural cold-water source, degC (Sec. III-C / IV-B).
NATURAL_WATER_TEMP_C = 20.0

#: Warm-water inlet band the paper advocates, degC (Sec. I / II-B).
WARM_WATER_MIN_C = 40.0
WARM_WATER_MAX_C = 50.0

# ---------------------------------------------------------------------------
# Economics — Sec. V-C / V-D, Table I
# ---------------------------------------------------------------------------

#: Electricity price, USD per kWh (Sec. V-C, after Parasol [16]).
ELECTRICITY_PRICE_USD_PER_KWH = 0.13

#: Table I: datacenter infrastructure CapEx, USD per server per month.
DC_INFRA_CAPEX_USD = 21.26

#: Table I: server CapEx, USD per server per month.
SERVER_CAPEX_USD = 31.25

#: Table I: datacenter infrastructure OpEx, USD per server per month.
DC_INFRA_OPEX_USD = 7.63

#: Table I: server OpEx, USD per server per month.
SERVER_OPEX_USD = 1.56

#: Table I: TEG CapEx, USD per server per month (12 TEGs, 25-year life).
TEG_CAPEX_USD = 0.04

#: Table I: monthly TEG revenue under the two schemes, USD/server/month.
TEG_REV_ORIGINAL_USD = 0.34
TEG_REV_LOADBALANCE_USD = 0.39

#: Headline per-CPU generation averages reported in the abstract, watts.
PAPER_AVG_POWER_ORIGINAL_W = 3.694
PAPER_AVG_POWER_LOADBALANCE_W = 4.177

#: Headline PRE band reported in the abstract.
PAPER_PRE_MIN = 0.128
PAPER_PRE_MAX = 0.162
PAPER_PRE_AVG = 0.1423

# ---------------------------------------------------------------------------
# Evaluation setup — Sec. V
# ---------------------------------------------------------------------------

#: Cluster size used in the trace-driven evaluation (Sec. V-A).
EVAL_CLUSTER_SERVERS = 1000

#: Cooling-setting adjustment interval, seconds (Sec. V-B, "e.g., 5 minutes").
EVAL_CONTROL_INTERVAL_S = 300.0

#: Hours in a month used by the Table I amortisation (30-day month).
HOURS_PER_MONTH = 720.0

"""H2P: Heat to Power — thermal energy harvesting and recycling for warm
water-cooled datacenters.

A full reproduction of the ISCA 2020 paper by Zhu, Jiang, Liu et al.
(HUST).  The package builds every system the paper describes or depends
on: the thermal/hydraulic substrate, TEG device and module models, the
warm-water cooling plant (chiller, tower, CDU, TECs), the workload
substrate, the Sec. V control-plane optimisations, the trace-driven
datacenter simulator, and the economics.

Quickstart
----------
>>> from repro import H2PSystem, CoolingSetting
>>> system = H2PSystem()
>>> power = system.server_generation_w(
...     0.2, CoolingSetting(flow_l_per_h=100, inlet_temp_c=50.0))
"""

from .constants import (
    CPU_MAX_OPERATING_TEMP_C,
    CPU_SAFE_TEMP_C,
    NATURAL_WATER_TEMP_C,
    TEGS_PER_SERVER,
)
from .core import (
    BatchResult,
    BatchSimulationEngine,
    DatacenterSimulator,
    FailedJob,
    H2PSystem,
    SchemeComparison,
    SimulationConfig,
    SimulationJob,
    SimulationResult,
    run_batch,
    teg_loadbalance,
    teg_static,
    teg_original,
)
from .economics import BreakEvenAnalysis, TcoModel, power_reusing_efficiency
from .errors import (
    ConfigurationError,
    CoolingFailureError,
    FaultInjectionError,
    JobExecutionError,
    PhysicalRangeError,
    ReproError,
    TraceFormatError,
)
from .faults import FaultSchedule, FaultSpec
from .teg import PAPER_TEG, TegDevice, TegModule
from .thermal import CoolingSetting, CpuThermalModel
from .workloads import (
    WorkloadTrace,
    common_trace,
    drastic_trace,
    irregular_trace,
    trace_by_name,
)

__version__ = "1.0.0"

__all__ = [
    "H2PSystem",
    "DatacenterSimulator",
    "BatchSimulationEngine",
    "BatchResult",
    "SimulationJob",
    "FailedJob",
    "run_batch",
    "FaultSchedule",
    "FaultSpec",
    "SimulationConfig",
    "SimulationResult",
    "SchemeComparison",
    "teg_original",
    "teg_loadbalance",
    "teg_static",
    "CoolingSetting",
    "CpuThermalModel",
    "TegDevice",
    "TegModule",
    "PAPER_TEG",
    "WorkloadTrace",
    "drastic_trace",
    "irregular_trace",
    "common_trace",
    "trace_by_name",
    "TcoModel",
    "BreakEvenAnalysis",
    "power_reusing_efficiency",
    "ReproError",
    "ConfigurationError",
    "PhysicalRangeError",
    "CoolingFailureError",
    "TraceFormatError",
    "FaultInjectionError",
    "JobExecutionError",
    "CPU_MAX_OPERATING_TEMP_C",
    "CPU_SAFE_TEMP_C",
    "NATURAL_WATER_TEMP_C",
    "TEGS_PER_SERVER",
    "__version__",
]

"""Scenario builder: composable synthetic events on utilisation traces.

The three class generators reproduce the paper's traces statistically;
stress-testing a *policy* needs targeted events instead — a step, a
ramp, a synchronized surge, a runaway server.  :class:`ScenarioBuilder`
starts from any base trace (or a flat background) and layers events on
chosen servers and time windows, always clipping to ``[0, 1]``.

>>> from repro.workloads.scenarios import ScenarioBuilder
>>> trace = (ScenarioBuilder(n_servers=20, duration_s=7200.0)
...          .background(0.2)
...          .step(start_s=1800.0, magnitude=0.6, servers=[3])
...          .build())
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from ..errors import ConfigurationError, PhysicalRangeError
from .trace import WorkloadTrace


@dataclass
class ScenarioBuilder:
    """Fluent builder for event-driven traces.

    Attributes
    ----------
    n_servers / duration_s / interval_s:
        Shape of the trace being built.
    base:
        Optional base trace to start from (its shape wins over the
        explicit dimensions).
    """

    n_servers: int = 20
    duration_s: float = 12 * 3600.0
    interval_s: float = 300.0
    base: WorkloadTrace | None = None
    name: str = "scenario"
    _matrix: np.ndarray = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.base is not None:
            self._matrix = self.base.utilisation.copy()
            self.n_servers = self.base.n_servers
            self.duration_s = self.base.duration_s
            self.interval_s = self.base.interval_s
        else:
            if self.n_servers <= 0:
                raise PhysicalRangeError("n_servers must be > 0")
            if self.duration_s <= 0 or self.interval_s <= 0:
                raise PhysicalRangeError(
                    "duration and interval must be > 0")
            steps = int(round(self.duration_s / self.interval_s))
            if steps == 0:
                raise PhysicalRangeError(
                    "duration shorter than one interval")
            self._matrix = np.zeros((steps, self.n_servers))

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------

    def _steps(self) -> int:
        return self._matrix.shape[0]

    def _window(self, start_s: float, duration_s: float | None,
                ) -> slice:
        if start_s < 0:
            raise PhysicalRangeError("start_s must be >= 0")
        start = int(start_s / self.interval_s)
        if start >= self._steps():
            raise ConfigurationError(
                f"event at {start_s}s starts after the trace ends")
        if duration_s is None:
            return slice(start, self._steps())
        if duration_s <= 0:
            raise PhysicalRangeError("event duration must be > 0")
        stop = min(self._steps(),
                   start + max(1, int(round(duration_s
                                            / self.interval_s))))
        return slice(start, stop)

    def _columns(self, servers: Sequence[int] | None) -> np.ndarray:
        if servers is None:
            return np.arange(self.n_servers)
        columns = np.asarray(list(servers), dtype=int)
        if columns.size == 0:
            raise ConfigurationError("server list must not be empty")
        if np.any((columns < 0) | (columns >= self.n_servers)):
            raise ConfigurationError(
                f"server indices must be in [0, {self.n_servers})")
        return columns

    # ------------------------------------------------------------------
    # Events (each returns self for chaining)
    # ------------------------------------------------------------------

    def background(self, level: float,
                   servers: Sequence[int] | None = None,
                   ) -> "ScenarioBuilder":
        """Set a constant background utilisation."""
        if not 0.0 <= level <= 1.0:
            raise PhysicalRangeError("level must be in [0, 1]")
        self._matrix[:, self._columns(servers)] = level
        return self

    def step(self, start_s: float, magnitude: float,
             duration_s: float | None = None,
             servers: Sequence[int] | None = None) -> "ScenarioBuilder":
        """Add a rectangular load step (negative magnitude allowed)."""
        window = self._window(start_s, duration_s)
        self._matrix[window][:, self._columns(servers)] += magnitude
        return self

    def ramp(self, start_s: float, duration_s: float, magnitude: float,
             servers: Sequence[int] | None = None) -> "ScenarioBuilder":
        """Add a linear ramp from 0 to ``magnitude`` over the window,
        holding the final level afterwards."""
        window = self._window(start_s, duration_s)
        length = window.stop - window.start
        profile = np.linspace(0.0, magnitude, length)
        columns = self._columns(servers)
        self._matrix[window.start:window.stop][:, columns] += \
            profile[:, None]
        if window.stop < self._steps():
            self._matrix[window.stop:][:, columns] += magnitude
        return self

    def sine(self, period_s: float, amplitude: float,
             servers: Sequence[int] | None = None) -> "ScenarioBuilder":
        """Add a sinusoidal modulation over the whole trace."""
        if period_s <= 0:
            raise PhysicalRangeError("period must be > 0")
        if amplitude < 0:
            raise PhysicalRangeError("amplitude must be >= 0")
        t = np.arange(self._steps()) * self.interval_s
        wave = amplitude * np.sin(2.0 * np.pi * t / period_s)
        self._matrix[:, self._columns(servers)] += wave[:, None]
        return self

    def runaway(self, server: int, start_s: float) -> "ScenarioBuilder":
        """Pin one server at 100 % from ``start_s`` onward (a stuck
        process — the hot-spot generator of Sec. II-B)."""
        window = self._window(start_s, None)
        self._matrix[window, server] = 1.0
        return self

    def noise(self, sigma: float, seed: int = 0,
              servers: Sequence[int] | None = None) -> "ScenarioBuilder":
        """Add iid Gaussian noise."""
        if sigma < 0:
            raise PhysicalRangeError("sigma must be >= 0")
        rng = np.random.default_rng(seed)
        columns = self._columns(servers)
        self._matrix[:, columns] += rng.normal(
            0.0, sigma, size=(self._steps(), columns.size))
        return self

    # ------------------------------------------------------------------

    def build(self) -> WorkloadTrace:
        """Clip to [0, 1] and produce the trace."""
        return WorkloadTrace(np.clip(self._matrix, 0.0, 1.0),
                             self.interval_s, name=self.name)

"""Trace persistence and cluster-table ingestion.

Two on-disk formats are supported:

* **Matrix CSV** — the library's native format: a header row
  ``interval_s,<value>`` followed by one row per time step with one column
  per server.  Round-trips :class:`~repro.workloads.trace.WorkloadTrace`
  exactly (up to float formatting).
* **Cluster table** — the long format the public Google/Alibaba traces
  use after standard preprocessing: rows of
  ``timestamp_s,server_id,cpu_utilisation``.  :func:`load_cluster_table`
  pivots such a table into a trace, aligning timestamps onto a fixed grid
  and forward-filling gaps, which is the same preparation the paper
  describes (selecting 1,000 servers for 24 hours).
"""

from __future__ import annotations

import csv
from pathlib import Path

import numpy as np

from ..errors import TraceFormatError
from .trace import WorkloadTrace


def save_trace_csv(trace: WorkloadTrace, path: str | Path) -> None:
    """Write a trace to the native matrix-CSV format."""
    path = Path(path)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["interval_s", repr(trace.interval_s), trace.name])
        for row in trace.utilisation:
            writer.writerow([f"{value:.6f}" for value in row])


def load_trace_csv(path: str | Path) -> WorkloadTrace:
    """Read a trace previously written by :func:`save_trace_csv`."""
    path = Path(path)
    with path.open(newline="") as handle:
        reader = csv.reader(handle)
        try:
            header = next(reader)
        except StopIteration:
            raise TraceFormatError(f"{path}: empty trace file") from None
        if len(header) < 2 or header[0] != "interval_s":
            raise TraceFormatError(
                f"{path}: expected header 'interval_s,<seconds>[,name]', "
                f"got {header!r}")
        try:
            interval_s = float(header[1])
        except ValueError:
            raise TraceFormatError(
                f"{path}: invalid interval {header[1]!r}") from None
        name = header[2] if len(header) > 2 else path.stem
        rows = []
        for line_no, row in enumerate(reader, start=2):
            if not row:
                continue
            try:
                rows.append([float(value) for value in row])
            except ValueError as exc:
                raise TraceFormatError(
                    f"{path}:{line_no}: non-numeric value ({exc})") from None
    if not rows:
        raise TraceFormatError(f"{path}: no data rows")
    widths = {len(row) for row in rows}
    if len(widths) != 1:
        raise TraceFormatError(
            f"{path}: ragged rows (widths {sorted(widths)})")
    return WorkloadTrace(np.array(rows), interval_s, name=name)


def load_cluster_table(path: str | Path, interval_s: float = 300.0,
                       max_servers: int | None = None,
                       name: str | None = None) -> WorkloadTrace:
    """Pivot a long-format cluster table into a trace.

    Parameters
    ----------
    path:
        CSV file with rows ``timestamp_s,server_id,cpu_utilisation``
        (a header row is permitted and detected).  Utilisation may be a
        fraction in [0, 1] or a percentage in (1, 100]; percentages are
        detected and rescaled.
    interval_s:
        Grid the timestamps are binned onto; within a bin, the mean
        utilisation per server is used.
    max_servers:
        Optionally keep only the first N distinct server ids (the paper
        selects 1,000 of Google's 12.5k servers).
    name:
        Trace label; defaults to the file stem.

    Returns
    -------
    WorkloadTrace
        Dense trace; bins a server never reported in are forward-filled
        from its previous value (0 before its first report).
    """
    path = Path(path)
    timestamps: list[float] = []
    server_ids: list[str] = []
    utils: list[float] = []
    with path.open(newline="") as handle:
        reader = csv.reader(handle)
        for line_no, row in enumerate(reader, start=1):
            if not row:
                continue
            if line_no == 1 and not _is_numeric(row[0]):
                continue  # header
            if len(row) < 3:
                raise TraceFormatError(
                    f"{path}:{line_no}: expected 3 columns "
                    f"(timestamp, server, utilisation), got {len(row)}")
            try:
                timestamps.append(float(row[0]))
                utils.append(float(row[2]))
            except ValueError as exc:
                raise TraceFormatError(
                    f"{path}:{line_no}: non-numeric field ({exc})") from None
            server_ids.append(row[1])
    if not timestamps:
        raise TraceFormatError(f"{path}: no data rows")

    util_array = np.array(utils)
    if util_array.max() > 1.0:
        if util_array.max() > 100.0:
            raise TraceFormatError(
                f"{path}: utilisation values exceed 100 "
                f"(max {util_array.max()})")
        util_array = util_array / 100.0

    unique_servers: list[str] = []
    seen: set[str] = set()
    for server in server_ids:
        if server not in seen:
            seen.add(server)
            unique_servers.append(server)
    if max_servers is not None:
        unique_servers = unique_servers[:max_servers]
    server_index = {server: i for i, server in enumerate(unique_servers)}

    t0 = min(timestamps)
    t1 = max(timestamps)
    n_steps = int(np.floor((t1 - t0) / interval_s)) + 1
    n_servers = len(unique_servers)
    sums = np.zeros((n_steps, n_servers))
    counts = np.zeros((n_steps, n_servers))
    for ts, server, util in zip(timestamps, server_ids, util_array):
        column = server_index.get(server)
        if column is None:
            continue
        row_idx = int((ts - t0) / interval_s)
        sums[row_idx, column] += util
        counts[row_idx, column] += 1

    matrix = np.zeros((n_steps, n_servers))
    have = counts > 0
    matrix[have] = sums[have] / counts[have]
    # Forward-fill bins with no reports from the previous bin.
    for step in range(1, n_steps):
        missing = ~have[step]
        matrix[step, missing] = matrix[step - 1, missing]
    return WorkloadTrace(np.clip(matrix, 0.0, 1.0), interval_s,
                         name=name or path.stem)


def _is_numeric(token: str) -> bool:
    try:
        float(token)
    except ValueError:
        return False
    return True

"""Workload substrate: utilisation traces and CPU power.

The paper's evaluation replays CPU-utilisation traces from Alibaba and
Google clusters (Sec. V-C).  Since the raw traces cannot ship with the
library, :mod:`repro.workloads.synthetic` generates statistically matched
stand-ins for the three classes the paper defines (*drastic*, *irregular*,
*common*), and :mod:`repro.workloads.loader` can ingest the real traces
from CSV when available.
"""

from .trace import WorkloadTrace, TraceStatistics
from .synthetic import (
    drastic_trace,
    irregular_trace,
    common_trace,
    trace_by_name,
    TRACE_GENERATORS,
)
from .loader import save_trace_csv, load_trace_csv, load_cluster_table
from .cpu_power import trace_power_w, trace_energy_kwh, average_power_w
from .analysis import (
    TraceClassifier,
    TraceFeatures,
    autocorrelation,
    extract_features,
)
from .forecast import Ar1Forecaster, EwmaForecaster, backtest
from .scenarios import ScenarioBuilder

__all__ = [
    "WorkloadTrace",
    "TraceStatistics",
    "drastic_trace",
    "irregular_trace",
    "common_trace",
    "trace_by_name",
    "TRACE_GENERATORS",
    "save_trace_csv",
    "load_trace_csv",
    "load_cluster_table",
    "trace_power_w",
    "trace_energy_kwh",
    "average_power_w",
    "TraceClassifier",
    "TraceFeatures",
    "autocorrelation",
    "extract_features",
    "Ar1Forecaster",
    "EwmaForecaster",
    "backtest",
    "ScenarioBuilder",
]

"""Short-horizon utilisation forecasting.

The paper's controller is reactive: at the start of each 5-minute
interval it reads the *current* utilisations and sets the cooling for
the interval (Sec. V-B).  If the load rises mid-interval, the safety
margin absorbs it.  A predictive controller instead sets the cooling for
the utilisation it *expects* — which needs a forecaster.

Two classic one-step forecasters are provided, both per-server:

* :class:`EwmaForecaster` — exponentially weighted moving average;
* :class:`Ar1Forecaster` — a mean-reverting AR(1) fitted online.

Both support an uncertainty margin ("forecast + k sigma") so a policy
can trade generation for safety headroom explicitly.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import PhysicalRangeError


@dataclass
class EwmaForecaster:
    """Exponentially weighted moving-average forecaster.

    Attributes
    ----------
    alpha:
        Smoothing factor; 1.0 degenerates to "next = current" (the
        paper's implicit reactive assumption).
    margin_sigmas:
        How many residual standard deviations to add to the forecast
        (safety headroom).
    """

    alpha: float = 0.5
    margin_sigmas: float = 1.0
    _level: np.ndarray | None = field(default=None, repr=False)
    _residual_var: np.ndarray | None = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if not 0.0 < self.alpha <= 1.0:
            raise PhysicalRangeError(
                f"alpha must be in (0, 1], got {self.alpha}")
        if self.margin_sigmas < 0:
            raise PhysicalRangeError("margin_sigmas must be >= 0")

    def observe(self, utilisations: np.ndarray) -> None:
        """Feed one interval's per-server utilisations."""
        utils = np.asarray(utilisations, dtype=float)
        if utils.ndim != 1 or utils.size == 0:
            raise PhysicalRangeError(
                "utilisations must be a non-empty 1-D vector")
        if self._level is None:
            self._level = utils.copy()
            self._residual_var = np.zeros_like(utils)
            return
        if utils.shape != self._level.shape:
            raise PhysicalRangeError(
                "server count changed between observations")
        residual = utils - self._level
        self._residual_var = (0.9 * self._residual_var
                              + 0.1 * residual ** 2)
        self._level = self._level + self.alpha * residual

    def predict(self) -> np.ndarray:
        """One-step-ahead per-server forecast (with safety margin)."""
        if self._level is None:
            raise PhysicalRangeError(
                "forecaster has seen no observations yet")
        margin = self.margin_sigmas * np.sqrt(self._residual_var)
        return np.clip(self._level + margin, 0.0, 1.0)


@dataclass
class Ar1Forecaster:
    """Online mean-reverting AR(1): ``u[t+1] = mu + rho (u[t] - mu)``.

    ``mu`` and ``rho`` are estimated per server with exponential
    forgetting; the forecast reverts toward each server's running mean,
    which suits the strongly persistent *common*-class traces.
    """

    forgetting: float = 0.95
    margin_sigmas: float = 1.0
    _mean: np.ndarray | None = field(default=None, repr=False)
    _last: np.ndarray | None = field(default=None, repr=False)
    _cov: np.ndarray | None = field(default=None, repr=False)
    _var: np.ndarray | None = field(default=None, repr=False)
    _residual_var: np.ndarray | None = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if not 0.5 <= self.forgetting < 1.0:
            raise PhysicalRangeError(
                f"forgetting must be in [0.5, 1), got {self.forgetting}")
        if self.margin_sigmas < 0:
            raise PhysicalRangeError("margin_sigmas must be >= 0")

    def observe(self, utilisations: np.ndarray) -> None:
        """Feed one interval's per-server utilisations."""
        utils = np.asarray(utilisations, dtype=float)
        if utils.ndim != 1 or utils.size == 0:
            raise PhysicalRangeError(
                "utilisations must be a non-empty 1-D vector")
        if self._mean is None:
            self._mean = utils.copy()
            self._last = utils.copy()
            self._cov = np.zeros_like(utils)
            self._var = np.full_like(utils, 1e-6)
            self._residual_var = np.zeros_like(utils)
            return
        if utils.shape != self._mean.shape:
            raise PhysicalRangeError(
                "server count changed between observations")
        f = self.forgetting
        prediction = self._point_forecast()
        self._residual_var = (f * self._residual_var
                              + (1 - f) * (utils - prediction) ** 2)
        prev_dev = self._last - self._mean
        self._mean = f * self._mean + (1 - f) * utils
        new_dev = utils - self._mean
        self._cov = f * self._cov + (1 - f) * prev_dev * new_dev
        self._var = f * self._var + (1 - f) * prev_dev ** 2
        self._last = utils.copy()

    def _rho(self) -> np.ndarray:
        rho = np.where(self._var > 1e-9, self._cov / self._var, 0.0)
        return np.clip(rho, -0.99, 0.99)

    def _point_forecast(self) -> np.ndarray:
        return self._mean + self._rho() * (self._last - self._mean)

    def predict(self) -> np.ndarray:
        """One-step-ahead per-server forecast (with safety margin)."""
        if self._mean is None:
            raise PhysicalRangeError(
                "forecaster has seen no observations yet")
        margin = self.margin_sigmas * np.sqrt(self._residual_var)
        return np.clip(self._point_forecast() + margin, 0.0, 1.0)


def backtest(forecaster, trace_matrix: np.ndarray) -> dict:
    """Walk a forecaster through a trace and score it.

    Parameters
    ----------
    forecaster:
        An object with ``observe`` / ``predict``.
    trace_matrix:
        (time x servers) utilisation matrix.

    Returns
    -------
    dict
        Mean absolute error of the point forecast and the *coverage* —
        the fraction of next-interval binding (max) utilisations at or
        below the forecast binding (what a safety-minded policy needs).
    """
    matrix = np.asarray(trace_matrix, dtype=float)
    if matrix.ndim != 2 or matrix.shape[0] < 3:
        raise PhysicalRangeError(
            "trace matrix must be 2-D with at least 3 steps")
    errors = []
    covered = 0
    total = 0
    forecaster.observe(matrix[0])
    for step in range(1, matrix.shape[0] - 1):
        forecaster.observe(matrix[step])
        forecast = forecaster.predict()
        actual = matrix[step + 1]
        errors.append(np.mean(np.abs(forecast - actual)))
        covered += int(actual.max() <= forecast.max() + 1e-9)
        total += 1
    return {
        "mae": float(np.mean(errors)),
        "binding_coverage": covered / total,
    }

"""Workload trace container.

A :class:`WorkloadTrace` is a rectangular matrix of CPU utilisations —
rows are time steps at a fixed interval, columns are servers — plus enough
metadata to resample, slice and describe it.  All utilisations are
fractions in ``[0, 1]``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import PhysicalRangeError, TraceFormatError


@dataclass(frozen=True)
class TraceStatistics:
    """Summary statistics of a trace (used to compare against the paper).

    ``volatility`` is the mean absolute step-to-step utilisation change
    averaged over servers — the paper's qualitative "drastic and frequent
    fluctuations" made quantitative.
    """

    mean: float
    std: float
    p95: float
    max: float
    volatility: float

    def describe(self) -> str:
        """One-line human-readable summary."""
        return (f"mean={self.mean:.3f} std={self.std:.3f} "
                f"p95={self.p95:.3f} max={self.max:.3f} "
                f"volatility={self.volatility:.4f}")


class WorkloadTrace:
    """A (time x servers) matrix of CPU utilisations at a fixed interval.

    Parameters
    ----------
    utilisation:
        2-D array-like of shape ``(n_steps, n_servers)`` with values in
        ``[0, 1]``.
    interval_s:
        Seconds between consecutive rows.
    name:
        Human-readable trace label ("drastic", "google-123", ...).
    """

    def __init__(self, utilisation: np.ndarray, interval_s: float,
                 name: str = "trace") -> None:
        matrix = np.asarray(utilisation, dtype=float)
        if matrix.ndim != 2:
            raise TraceFormatError(
                f"utilisation must be 2-D (time x servers), "
                f"got shape {matrix.shape}")
        if matrix.size == 0:
            raise TraceFormatError("trace must not be empty")
        if np.any(~np.isfinite(matrix)):
            raise TraceFormatError("trace contains NaN or infinite values")
        if np.any((matrix < 0) | (matrix > 1)):
            raise PhysicalRangeError(
                "all utilisations must be in [0, 1]; offending range "
                f"[{matrix.min():.3f}, {matrix.max():.3f}]")
        if interval_s <= 0:
            raise PhysicalRangeError(
                f"interval must be > 0, got {interval_s}")
        self._matrix = matrix
        self._matrix.setflags(write=False)
        self.interval_s = float(interval_s)
        self.name = name
        #: Keeps the backing ``multiprocessing.shared_memory`` segment
        #: alive when this trace is a zero-copy view (see
        #: :meth:`from_shared`); ``None`` for ordinary traces.
        self._shared_block = None

    @classmethod
    def from_shared(cls, matrix: np.ndarray, interval_s: float,
                    name: str = "trace", *,
                    block=None) -> "WorkloadTrace":
        """Wrap a matrix that lives in shared memory, without copying.

        ``matrix`` must already satisfy the trace invariants (it was
        validated by the owning process before export); re-validating
        here would be redundant but harmless, so the normal constructor
        checks still run.  ``block`` is the ``SharedMemory`` handle the
        view was created from; the trace holds it so the mapping outlives
        the caller's local variable.
        """
        trace = cls(matrix, interval_s, name=name)
        trace._shared_block = block
        return trace

    # ------------------------------------------------------------------
    # Shape and access
    # ------------------------------------------------------------------

    @property
    def utilisation(self) -> np.ndarray:
        """The read-only (time x servers) utilisation matrix."""
        return self._matrix

    @property
    def n_steps(self) -> int:
        """Number of time steps."""
        return self._matrix.shape[0]

    @property
    def n_servers(self) -> int:
        """Number of servers (columns)."""
        return self._matrix.shape[1]

    @property
    def duration_s(self) -> float:
        """Total covered wall-clock time."""
        return self.n_steps * self.interval_s

    @property
    def times_s(self) -> np.ndarray:
        """Start time of every step."""
        return np.arange(self.n_steps) * self.interval_s

    def step(self, index: int) -> np.ndarray:
        """Per-server utilisations of one time step."""
        return self._matrix[index]

    def server(self, index: int) -> np.ndarray:
        """Utilisation time series of one server."""
        return self._matrix[:, index]

    def __len__(self) -> int:
        return self.n_steps

    def __repr__(self) -> str:
        return (f"WorkloadTrace(name={self.name!r}, steps={self.n_steps}, "
                f"servers={self.n_servers}, interval={self.interval_s:.0f}s)")

    # ------------------------------------------------------------------
    # Aggregations
    # ------------------------------------------------------------------

    def mean_per_step(self) -> np.ndarray:
        """Cluster-average utilisation at every step (the balanced view)."""
        return self._matrix.mean(axis=1)

    def max_per_step(self) -> np.ndarray:
        """Hottest-server utilisation at every step (the binding view)."""
        return self._matrix.max(axis=1)

    def statistics(self) -> TraceStatistics:
        """Summary statistics of the whole trace."""
        flat = self._matrix.ravel()
        if self.n_steps > 1:
            volatility = float(
                np.mean(np.abs(np.diff(self._matrix, axis=0))))
        else:
            volatility = 0.0
        return TraceStatistics(
            mean=float(flat.mean()),
            std=float(flat.std()),
            p95=float(np.percentile(flat, 95)),
            max=float(flat.max()),
            volatility=volatility,
        )

    # ------------------------------------------------------------------
    # Transformations
    # ------------------------------------------------------------------

    def slice_servers(self, start: int, stop: int) -> "WorkloadTrace":
        """A trace containing only servers ``start:stop``."""
        if not 0 <= start < stop <= self.n_servers:
            raise TraceFormatError(
                f"invalid server slice [{start}:{stop}] for "
                f"{self.n_servers} servers")
        return WorkloadTrace(self._matrix[:, start:stop], self.interval_s,
                             name=f"{self.name}[{start}:{stop}]")

    def window(self, step_start: int, step_stop: int,
               server_start: int, server_stop: int) -> "WorkloadTrace":
        """A rectangular tile ``[step_start:step_stop, server_start:server_stop]``.

        Unlike :meth:`slice_servers` / :meth:`slice_time` the tile is a
        zero-copy *view* on this trace's matrix — the property the
        fleet-scale sharding layer (:mod:`repro.core.shard`) depends on —
        and it keeps any backing shared-memory segment alive.  The tile
        keeps the parent's name: a shard is an execution detail, not a
        new trace identity.
        """
        if not (0 <= step_start < step_stop <= self.n_steps
                and 0 <= server_start < server_stop <= self.n_servers):
            raise TraceFormatError(
                f"invalid window [{step_start}:{step_stop}, "
                f"{server_start}:{server_stop}] for a "
                f"{self.n_steps} x {self.n_servers} trace")
        view = self._matrix[step_start:step_stop, server_start:server_stop]
        return WorkloadTrace.from_shared(view, self.interval_s,
                                         name=self.name,
                                         block=self._shared_block)

    def slice_time(self, start_s: float, stop_s: float) -> "WorkloadTrace":
        """A trace restricted to the window ``[start_s, stop_s)``."""
        start_idx = int(np.floor(start_s / self.interval_s))
        stop_idx = int(np.ceil(stop_s / self.interval_s))
        if not 0 <= start_idx < stop_idx <= self.n_steps:
            raise TraceFormatError(
                f"invalid time window [{start_s}, {stop_s}) for a trace of "
                f"{self.duration_s} s")
        return WorkloadTrace(self._matrix[start_idx:stop_idx],
                             self.interval_s, name=self.name)

    def resample(self, interval_s: float) -> "WorkloadTrace":
        """Resample to a coarser interval by block-averaging.

        The control plane acts every 5 minutes (Sec. V-B); traces recorded
        at finer granularity are averaged into control intervals.
        """
        if interval_s <= 0:
            raise PhysicalRangeError(
                f"interval must be > 0, got {interval_s}")
        if interval_s < self.interval_s:
            raise TraceFormatError(
                "resample only coarsens: requested "
                f"{interval_s}s < native {self.interval_s}s")
        block = int(round(interval_s / self.interval_s))
        usable = (self.n_steps // block) * block
        if usable == 0:
            raise TraceFormatError(
                "trace too short for the requested interval")
        blocks = self._matrix[:usable].reshape(
            usable // block, block, self.n_servers)
        return WorkloadTrace(blocks.mean(axis=1), block * self.interval_s,
                             name=self.name)

    def balanced(self) -> "WorkloadTrace":
        """The trace after ideal workload balancing (Sec. V-B2).

        Every server carries the cluster-average utilisation of its step;
        total work per step is preserved exactly.
        """
        means = self.mean_per_step()
        matrix = np.repeat(means[:, None], self.n_servers, axis=1)
        return WorkloadTrace(matrix, self.interval_s,
                             name=f"{self.name}-balanced")

    def concat_time(self, other: "WorkloadTrace") -> "WorkloadTrace":
        """Append another trace of the same width and interval in time."""
        if other.n_servers != self.n_servers:
            raise TraceFormatError(
                f"server counts differ: {self.n_servers} vs "
                f"{other.n_servers}")
        if not np.isclose(other.interval_s, self.interval_s):
            raise TraceFormatError(
                f"intervals differ: {self.interval_s} vs {other.interval_s}")
        return WorkloadTrace(
            np.vstack([self._matrix, other.utilisation]), self.interval_s,
            name=f"{self.name}+{other.name}")

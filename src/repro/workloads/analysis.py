"""Trace analytics: the features behind the paper's workload taxonomy.

Sec. V-C sorts workloads into three classes by eye — *drastic* ("drastic
and frequent fluctuations"), *irregular* ("relatively common, but with
occasional high peaks") and *common* ("very little fluctuations").  This
module extracts the features that formalise that judgement and provides
a rule-based classifier, so arbitrary (e.g. freshly ingested) traces can
be routed to the right expectations.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import PhysicalRangeError
from .trace import WorkloadTrace


def autocorrelation(series: np.ndarray, lag: int = 1) -> float:
    """Lag-``lag`` autocorrelation of a 1-D series (0 for flat series)."""
    values = np.asarray(series, dtype=float)
    if values.ndim != 1 or values.size == 0:
        raise PhysicalRangeError("series must be a non-empty 1-D array")
    if lag < 1 or lag >= values.size:
        raise PhysicalRangeError(
            f"lag must be in [1, {values.size - 1}], got {lag}")
    a = values[:-lag]
    b = values[lag:]
    if a.std() == 0 or b.std() == 0:
        return 0.0
    return float(np.corrcoef(a, b)[0, 1])


@dataclass(frozen=True)
class TraceFeatures:
    """Feature vector summarising one trace's dynamics.

    Attributes
    ----------
    mean / std:
        Overall utilisation statistics.
    volatility:
        Mean absolute step-to-step change per server (the "drastic"
        axis).
    spike_rate:
        Fraction of (server, step) samples that are *transient*
        excursions — far above their own server's typical level (the
        "occasional high peaks" axis).  Persistent per-server offsets do
        not count: a steadily busy server is heterogeneity, not a spike.
    heterogeneity:
        Standard deviation of per-server mean utilisations — how unlike
        each other the servers are.
    persistence:
        Lag-1 autocorrelation of the cluster-mean series.
    diurnality:
        Amplitude of the best-fit 24 h cosine on the cluster mean
        (0 when the trace is shorter than a day).
    """

    mean: float
    std: float
    volatility: float
    spike_rate: float
    heterogeneity: float
    persistence: float
    diurnality: float


def extract_features(trace: WorkloadTrace) -> TraceFeatures:
    """Compute the :class:`TraceFeatures` of a trace."""
    matrix = trace.utilisation
    flat = matrix.ravel()
    mean = float(flat.mean())
    std = float(flat.std())
    if trace.n_steps > 1:
        volatility = float(np.mean(np.abs(np.diff(matrix, axis=0))))
    else:
        volatility = 0.0

    # Transient excursions: deviation from each server's own mean, at
    # least 0.25 utilisation and 3 deviation-sigmas above it.
    deviations = matrix - matrix.mean(axis=0, keepdims=True)
    dev_std = float(deviations.std())
    if dev_std > 0:
        threshold = max(0.25, 3.0 * dev_std)
        spike_rate = float(np.mean(deviations > threshold))
    else:
        spike_rate = 0.0

    heterogeneity = float(matrix.mean(axis=0).std())

    cluster_mean = trace.mean_per_step()
    persistence = (autocorrelation(cluster_mean, 1)
                   if trace.n_steps > 2 else 0.0)

    diurnality = 0.0
    if trace.duration_s >= 86_400.0:
        phase = 2.0 * np.pi * trace.times_s / 86_400.0
        design = np.column_stack([np.cos(phase), np.sin(phase),
                                  np.ones_like(phase)])
        coeffs, *_ = np.linalg.lstsq(design, cluster_mean, rcond=None)
        diurnality = float(np.hypot(coeffs[0], coeffs[1]))

    return TraceFeatures(
        mean=mean,
        std=std,
        volatility=volatility,
        spike_rate=spike_rate,
        heterogeneity=heterogeneity,
        persistence=persistence,
        diurnality=diurnality,
    )


@dataclass(frozen=True)
class TraceClassifier:
    """Rule-based classifier for the paper's three workload classes.

    The rules mirror the prose: heavy step-to-step movement makes a trace
    *drastic*; a calm background punctured by outliers makes it
    *irregular*; everything else is *common*.
    """

    drastic_volatility: float = 0.03
    irregular_spike_rate: float = 1e-4

    def classify(self, trace: WorkloadTrace) -> str:
        """Return ``"drastic"``, ``"irregular"`` or ``"common"``."""
        features = extract_features(trace)
        if features.volatility >= self.drastic_volatility:
            return "drastic"
        if features.spike_rate >= self.irregular_spike_rate:
            return "irregular"
        return "common"

    def explain(self, trace: WorkloadTrace) -> dict:
        """The classification together with the features behind it."""
        features = extract_features(trace)
        return {
            "class": self.classify(trace),
            "volatility": round(features.volatility, 5),
            "spike_rate": round(features.spike_rate, 6),
            "mean": round(features.mean, 4),
            "heterogeneity": round(features.heterogeneity, 4),
            "persistence": round(features.persistence, 3),
            "diurnality": round(features.diurnality, 4),
        }

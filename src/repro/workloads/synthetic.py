"""Synthetic stand-ins for the Alibaba and Google cluster traces.

The paper classifies its evaluation workloads into three types (Sec. V-C):

* **drastic** — Alibaba cluster, 1,313 servers over 12 hours; "drastic and
  frequent fluctuations" of CPU utilisation;
* **irregular** — 1,000 Google servers over 24 hours; "relatively common,
  but with occasional high peaks";
* **common** — another 1,000 Google servers over 24 hours; "very little
  fluctuations".

The raw traces are not redistributable, so the generators below synthesise
traces with the same qualitative structure and with mean utilisations
back-solved from the paper's own PRE numbers (PRE = generation / CPU power
with Eq. 20 pins the average utilisation of each class to ~0.26 / ~0.19 /
~0.25 respectively).  Every generator is deterministic given a seed.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from ..errors import PhysicalRangeError
from .trace import WorkloadTrace

#: Native sampling interval of the synthetic traces (matches the control
#: interval of Sec. V-B so no resampling is needed by default).
DEFAULT_INTERVAL_S = 300.0


def _rng(seed: int | None) -> np.random.Generator:
    return np.random.default_rng(seed)


def _diurnal(n_steps: int, interval_s: float, amplitude: float,
             phase_h: float = 14.0) -> np.ndarray:
    """Daily load curve peaking at ``phase_h`` o'clock (Sec. VI-B:
    "during the peak hours (midday to the evening) the CPU load is
    generally high")."""
    hours = np.arange(n_steps) * interval_s / 3600.0
    return amplitude * np.cos((hours - phase_h) / 24.0 * 2.0 * np.pi)


def _ar1(rng: np.random.Generator, n_steps: int, n_servers: int,
         rho: float, sigma: float) -> np.ndarray:
    """Per-server AR(1) noise with persistence ``rho``."""
    noise = rng.normal(0.0, sigma, size=(n_steps, n_servers))
    series = np.empty_like(noise)
    series[0] = noise[0]
    for t in range(1, n_steps):
        series[t] = rho * series[t - 1] + noise[t]
    return series


def _steps(duration_s: float, interval_s: float) -> int:
    if duration_s <= 0 or interval_s <= 0:
        raise PhysicalRangeError(
            "duration and interval must both be > 0")
    n_steps = int(round(duration_s / interval_s))
    if n_steps == 0:
        raise PhysicalRangeError(
            "duration shorter than one interval")
    return n_steps


def drastic_trace(n_servers: int = 1313, duration_s: float = 12 * 3600.0,
                  interval_s: float = DEFAULT_INTERVAL_S,
                  seed: int | None = 0) -> WorkloadTrace:
    """Alibaba-like trace: large, fast, frequent utilisation swings.

    Mean utilisation ~0.26 with heavy step-to-step movement: weakly
    persistent AR(1) noise, random square-wave batch jobs and a diurnal
    baseline.
    """
    rng = _rng(seed)
    n_steps = _steps(duration_s, interval_s)
    base = 0.22 + _diurnal(n_steps, interval_s, amplitude=0.05)
    noise = _ar1(rng, n_steps, n_servers, rho=0.3, sigma=0.07)
    # Batch jobs: rectangular bursts of extra load on random servers.
    bursts = np.zeros((n_steps, n_servers))
    n_bursts = max(1, n_steps * n_servers // 40)
    starts = rng.integers(0, n_steps, size=n_bursts)
    servers = rng.integers(0, n_servers, size=n_bursts)
    lengths = rng.integers(1, max(2, n_steps // 6), size=n_bursts)
    heights = rng.uniform(0.12, 0.32, size=n_bursts)
    for start, server, length, height in zip(starts, servers, lengths,
                                             heights):
        bursts[start:start + length, server] += height
    # Cluster schedulers keep CPU headroom; sustained utilisation above
    # ~90 % is rare in the public Alibaba data, so stacked bursts saturate
    # there rather than at the theoretical 100 %.
    matrix = np.clip(base[:, None] + noise + bursts, 0.0, 0.90)
    return WorkloadTrace(matrix, interval_s, name="drastic")


def irregular_trace(n_servers: int = 1000, duration_s: float = 24 * 3600.0,
                    interval_s: float = DEFAULT_INTERVAL_S,
                    seed: int | None = 1) -> WorkloadTrace:
    """Google-like trace with occasional high peaks.

    Mean utilisation ~0.19; smooth persistent background with rare,
    tall utilisation spikes on a few servers at a time.
    """
    rng = _rng(seed)
    n_steps = _steps(duration_s, interval_s)
    base = 0.17 + _diurnal(n_steps, interval_s, amplitude=0.04)
    noise = _ar1(rng, n_steps, n_servers, rho=0.9, sigma=0.02)
    spikes = np.zeros((n_steps, n_servers))
    n_spikes = max(1, n_steps * n_servers // 400)
    starts = rng.integers(0, n_steps, size=n_spikes)
    servers = rng.integers(0, n_servers, size=n_spikes)
    lengths = rng.integers(1, 4, size=n_spikes)
    heights = rng.uniform(0.5, 0.8, size=n_spikes)
    for start, server, length, height in zip(starts, servers, lengths,
                                             heights):
        spikes[start:start + length, server] += height
    matrix = np.clip(base[:, None] + noise + spikes, 0.0, 1.0)
    return WorkloadTrace(matrix, interval_s, name="irregular")


def common_trace(n_servers: int = 1000, duration_s: float = 24 * 3600.0,
                 interval_s: float = DEFAULT_INTERVAL_S,
                 seed: int | None = 2) -> WorkloadTrace:
    """Google-like trace with very little fluctuation.

    Mean utilisation ~0.25; strongly persistent noise with small variance
    and a gentle diurnal swing, no spikes.
    """
    rng = _rng(seed)
    n_steps = _steps(duration_s, interval_s)
    base = 0.22 + _diurnal(n_steps, interval_s, amplitude=0.03)
    noise = _ar1(rng, n_steps, n_servers, rho=0.97, sigma=0.008)
    # Server heterogeneity: most servers cluster near the base load, but a
    # small share host steadily busy services (the binding CPUs a shared
    # circulation must be cooled for).
    per_server_offset = rng.normal(0.0, 0.05, size=n_servers)
    hot = rng.random(n_servers) < 0.04
    per_server_offset[hot] += rng.uniform(0.18, 0.32, size=int(hot.sum()))
    matrix = np.clip(base[:, None] + noise + per_server_offset[None, :],
                     0.0, 1.0)
    return WorkloadTrace(matrix, interval_s, name="common")


#: Registry of the paper's three workload classes.
TRACE_GENERATORS: dict[str, Callable[..., WorkloadTrace]] = {
    "drastic": drastic_trace,
    "irregular": irregular_trace,
    "common": common_trace,
}


def trace_by_name(name: str, **kwargs) -> WorkloadTrace:
    """Generate one of the paper's trace classes by name.

    Parameters
    ----------
    name:
        One of ``"drastic"``, ``"irregular"``, ``"common"``.
    **kwargs:
        Forwarded to the generator (``n_servers``, ``duration_s``,
        ``interval_s``, ``seed``).
    """
    try:
        generator = TRACE_GENERATORS[name]
    except KeyError:
        raise KeyError(
            f"unknown trace class {name!r}; expected one of "
            f"{sorted(TRACE_GENERATORS)}") from None
    return generator(**kwargs)

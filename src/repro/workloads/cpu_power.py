"""Trace-level CPU power (vectorised Eq. 20).

The PRE metric (Eq. 19) divides TEG generation by CPU power consumption;
this module evaluates the paper's CPU power model over whole traces.
"""

from __future__ import annotations

import numpy as np

from ..constants import (
    CPU_POWER_CONST_W,
    CPU_POWER_LOG_COEFF_W,
    CPU_POWER_LOG_OFFSET,
)
from ..errors import PhysicalRangeError
from .trace import WorkloadTrace


def power_w(utilisation: np.ndarray | float) -> np.ndarray:
    """Vectorised CPU power model (Eq. 20) for utilisations in [0, 1]."""
    utils = np.asarray(utilisation, dtype=float)
    if np.any((utils < 0) | (utils > 1)):
        raise PhysicalRangeError("all utilisations must be in [0, 1]")
    return (CPU_POWER_LOG_COEFF_W * np.log(utils + CPU_POWER_LOG_OFFSET)
            + CPU_POWER_CONST_W)


def trace_power_w(trace: WorkloadTrace) -> np.ndarray:
    """Per-step, per-server CPU power matrix for a trace, watts."""
    return power_w(trace.utilisation)


def average_power_w(trace: WorkloadTrace) -> float:
    """Mean per-CPU power over the whole trace, watts."""
    return float(trace_power_w(trace).mean())


def trace_energy_kwh(trace: WorkloadTrace) -> float:
    """Total CPU energy of the trace, kWh."""
    total_w = trace_power_w(trace).sum(axis=1)  # watts per step
    return float(total_w.sum() * trace.interval_s / 3600.0 / 1000.0)

"""Self-audit: physical-consistency checks on models and results.

A reproduction is only trustworthy if its numbers obey the physics they
claim to come from.  This module re-derives invariants from first
principles and checks simulator outputs against them:

* circulation states — temperature ordering, energy-split consistency,
  TEG output bounded by the heat actually available;
* simulation results — finite series, PRE sanity, time-base integrity;
* model cross-checks — the empirical TEG fits vs the Seebeck physics,
  and Eq. 20 vs the thermal model's assumptions.

Audits return an :class:`AuditReport` rather than raising, so callers
can decide whether a finding is fatal.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .constants import CPU_MAX_OPERATING_TEMP_C
from .cooling.loop import CirculationState, WaterCirculation
from .core.results import SimulationResult
from .teg.device import PAPER_TEG, TegDevice


@dataclass
class AuditReport:
    """Outcome of one audit: a list of human-readable findings."""

    subject: str
    issues: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when no issue was found."""
        return not self.issues

    def add(self, message: str) -> None:
        """Record one finding."""
        self.issues.append(message)

    def __str__(self) -> str:
        if self.ok:
            return f"[OK] {self.subject}"
        details = "; ".join(self.issues)
        return f"[{len(self.issues)} issue(s)] {self.subject}: {details}"


def audit_circulation_state(circulation: WaterCirculation,
                            state: CirculationState) -> AuditReport:
    """Check one evaluated circulation state for physical consistency."""
    report = AuditReport(subject="circulation state")

    if np.any(~np.isfinite(state.cpu_temps_c)):
        report.add("non-finite CPU temperatures")
    if np.any(~np.isfinite(state.teg_powers_w)):
        report.add("non-finite TEG powers")

    # Outlets must sit above the inlet (the CPU adds heat).
    if np.any(state.outlet_temps_c <= state.setting.inlet_temp_c):
        report.add("an outlet temperature at or below the inlet")

    # CPUs must sit above their own coolant.
    if np.any(state.cpu_temps_c < state.setting.inlet_temp_c):
        report.add("a CPU colder than its coolant")

    # TEG output cannot exceed the Carnot-limited fraction of the heat
    # the warm stream carries above the cold source.
    cold = circulation.cold_source_temp_c
    hot = state.outlet_temps_c
    carnot = 1.0 - (cold + 273.15) / np.maximum(hot + 273.15,
                                                cold + 273.15 + 1e-9)
    heat_available = np.array([
        circulation.teg_module.heat_harvested_w(float(t), cold)
        for t in hot])
    bound = carnot * np.maximum(heat_available, 0.0)
    over = state.teg_powers_w > bound + 1e-9
    if np.any(over & (heat_available > 0)):
        report.add("TEG output exceeds the Carnot-limited heat draw")

    # Facility powers must be non-negative.
    for name in ("chiller_power_w", "tower_power_w", "pump_power_w"):
        if getattr(state, name) < 0:
            report.add(f"negative {name}")

    return report


def audit_simulation_result(result: SimulationResult) -> AuditReport:
    """Check a finished simulation run for integrity."""
    report = AuditReport(
        subject=f"result {result.scheme}/{result.trace_name}")
    if not result.records:
        report.add("no records")
        return report

    times = result.times_s
    if np.any(np.diff(times) <= 0):
        report.add("time base is not strictly increasing")

    for name, series in (
            ("generation", result.generation_series_w),
            ("utilisation", result.utilisation_series),
            ("PRE", result.pre_series)):
        if np.any(~np.isfinite(series)):
            report.add(f"non-finite {name} series")

    if np.any(result.generation_series_w < 0):
        report.add("negative generation")
    if np.any((result.utilisation_series < 0)
              | (result.utilisation_series > 1)):
        report.add("utilisation outside [0, 1]")
    if np.any(result.pre_series < 0) or np.any(result.pre_series > 1.0):
        report.add("PRE outside [0, 1] — generation exceeds CPU power?")

    max_temps = result.max_cpu_temp_series_c
    recorded = result.total_safety_violations
    if recorded == 0 and np.any(
            max_temps > CPU_MAX_OPERATING_TEMP_C + 1e-9):
        report.add("max CPU temperature exceeds the limit but no "
                   "violation was recorded")

    return report


def audit_teg_models(device: TegDevice = PAPER_TEG,
                     tolerance: float = 0.25) -> AuditReport:
    """Cross-check the empirical fits against the Seebeck physics."""
    report = AuditReport(subject=f"TEG model ({device.material.name})")
    physical = TegDevice(mode="physical", material=device.material,
                         n_couples=device.n_couples,
                         resistance_ohm=device.resistance_ohm)
    for delta in (5.0, 15.0, 25.0, 40.0):
        emp_v = device.open_circuit_voltage_v(delta)
        phy_v = physical.open_circuit_voltage_v(delta)
        if phy_v > 0 and abs(emp_v - phy_v) / phy_v > tolerance:
            report.add(f"Voc disagreement at dT={delta}: empirical "
                       f"{emp_v:.3f} V vs physical {phy_v:.3f} V")
        emp_p = device.max_power_w(delta)
        phy_p = physical.max_power_w(delta)
        if phy_p > 0 and abs(emp_p - phy_p) / phy_p > 2 * tolerance:
            report.add(f"Pmax disagreement at dT={delta}: empirical "
                       f"{emp_p:.4f} W vs physical {phy_p:.4f} W")
    # Efficiency sanity: electrical output must stay below Carnot at a
    # representative operating point.
    hot, cold = 55.0, 20.0
    carnot = 1.0 - (cold + 273.15) / (hot + 273.15)
    efficiency = device.conversion_efficiency(hot, cold)
    if efficiency >= carnot:
        report.add(f"conversion efficiency {efficiency:.3f} exceeds "
                   f"Carnot {carnot:.3f}")
    return report

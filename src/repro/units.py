"""Small unit-conversion helpers.

The paper mixes litres/hour, kilograms/second, degrees Celsius and Kelvin.
Centralising the conversions keeps the physics modules free of ad-hoc
arithmetic and makes the intended unit of every quantity explicit at the
call site.
"""

from __future__ import annotations

from .constants import WATER_DENSITY_KG_PER_M3, ZERO_CELSIUS_K
from .errors import PhysicalRangeError

SECONDS_PER_HOUR = 3600.0
LITRES_PER_M3 = 1000.0


def litres_per_hour_to_kg_per_s(flow_l_per_h: float,
                                density_kg_per_m3: float = WATER_DENSITY_KG_PER_M3) -> float:
    """Convert a volumetric water flow (L/H) to a mass flow (kg/s).

    Parameters
    ----------
    flow_l_per_h:
        Volumetric flow rate in litres per hour.  Must be non-negative.
    density_kg_per_m3:
        Fluid density; defaults to water.

    Returns
    -------
    float
        Mass flow rate in kilograms per second.
    """
    if flow_l_per_h < 0:
        raise PhysicalRangeError(f"flow rate must be >= 0, got {flow_l_per_h}")
    volume_m3_per_s = flow_l_per_h / LITRES_PER_M3 / SECONDS_PER_HOUR
    return volume_m3_per_s * density_kg_per_m3


def kg_per_s_to_litres_per_hour(mass_flow_kg_per_s: float,
                                density_kg_per_m3: float = WATER_DENSITY_KG_PER_M3) -> float:
    """Convert a mass flow (kg/s) back to a volumetric flow (L/H)."""
    if mass_flow_kg_per_s < 0:
        raise PhysicalRangeError(
            f"mass flow must be >= 0, got {mass_flow_kg_per_s}")
    volume_m3_per_s = mass_flow_kg_per_s / density_kg_per_m3
    return volume_m3_per_s * LITRES_PER_M3 * SECONDS_PER_HOUR


def celsius_to_kelvin(temp_c: float) -> float:
    """Convert a temperature from degrees Celsius to Kelvin."""
    temp_k = temp_c + ZERO_CELSIUS_K
    if temp_k < 0:
        raise PhysicalRangeError(f"temperature below absolute zero: {temp_c} C")
    return temp_k


def kelvin_to_celsius(temp_k: float) -> float:
    """Convert a temperature from Kelvin to degrees Celsius."""
    if temp_k < 0:
        raise PhysicalRangeError(f"temperature below absolute zero: {temp_k} K")
    return temp_k - ZERO_CELSIUS_K


def watts_to_kwh(power_w: float, duration_s: float) -> float:
    """Energy in kWh produced by ``power_w`` watts over ``duration_s`` seconds."""
    if duration_s < 0:
        raise PhysicalRangeError(f"duration must be >= 0, got {duration_s}")
    return power_w * duration_s / SECONDS_PER_HOUR / 1000.0


def kwh_to_joules(energy_kwh: float) -> float:
    """Convert kilowatt-hours to joules."""
    return energy_kwh * 3.6e6


def joules_to_kwh(energy_j: float) -> float:
    """Convert joules to kilowatt-hours."""
    return energy_j / 3.6e6

"""Lumped-capacitance transient thermal network.

The paper's Fig. 3 experiment (a TEG sandwiched between CPU0 and its cold
plate drives the CPU toward its temperature limit at only 20 % load) and
the hot-spot / chiller-lag dynamics of Sec. II-B are transient phenomena.
We model them with a small RC network:

* a :class:`ThermalNode` is either a capacitive node (die, plate, coolant
  slug) with heat capacity and an optional injected power, or a boundary
  node pinned at a fixed temperature (an infinite reservoir);
* a :class:`ThermalLink` is a conductance (1/R) between two nodes;
* :class:`TransientThermalNetwork` integrates the resulting ODE system
  ``C_i dT_i/dt = P_i + sum_j G_ij (T_j - T_i)`` with an explicit scheme
  and automatic sub-stepping for stability.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from ..errors import ConfigurationError, PhysicalRangeError

PowerFunction = Callable[[float], float]


@dataclass
class ThermalNode:
    """One lumped thermal mass (or a fixed-temperature boundary).

    Attributes
    ----------
    name:
        Unique identifier used to address the node in results.
    capacity_j_per_k:
        Heat capacity. Ignored for boundary nodes.
    initial_temp_c:
        Temperature at ``t = 0``.
    power_w:
        Constant injected power, or a callable ``power(t_seconds) -> watts``
        for time-varying loads (used to replay the Fig. 3 load phases).
    boundary:
        If True the node temperature is held at ``initial_temp_c`` forever
        (an ideal reservoir such as the facility water supply).
    """

    name: str
    capacity_j_per_k: float = 100.0
    initial_temp_c: float = 25.0
    power_w: float | PowerFunction = 0.0
    boundary: bool = False

    def __post_init__(self) -> None:
        if not self.boundary and self.capacity_j_per_k <= 0:
            raise PhysicalRangeError(
                f"node {self.name!r}: capacity must be > 0, "
                f"got {self.capacity_j_per_k}")

    def power_at(self, t_seconds: float) -> float:
        """Injected power at simulation time ``t_seconds``."""
        if callable(self.power_w):
            return float(self.power_w(t_seconds))
        return float(self.power_w)


@dataclass(frozen=True)
class ThermalLink:
    """A thermal conductance between two named nodes."""

    node_a: str
    node_b: str
    conductance_w_per_k: float

    def __post_init__(self) -> None:
        if self.conductance_w_per_k <= 0:
            raise PhysicalRangeError(
                f"link {self.node_a}-{self.node_b}: conductance must be > 0, "
                f"got {self.conductance_w_per_k}")
        if self.node_a == self.node_b:
            raise ConfigurationError(
                f"link endpoints must differ, got {self.node_a!r} twice")

    @property
    def resistance_k_per_w(self) -> float:
        """Thermal resistance of the link (1 / conductance)."""
        return 1.0 / self.conductance_w_per_k


@dataclass
class TransientResult:
    """Time series produced by :meth:`TransientThermalNetwork.simulate`."""

    times_s: np.ndarray
    temperatures_c: dict[str, np.ndarray] = field(default_factory=dict)

    def max_temp_c(self, node: str) -> float:
        """Peak temperature reached by ``node`` over the run."""
        return float(np.max(self.temperatures_c[node]))

    def final_temp_c(self, node: str) -> float:
        """Temperature of ``node`` at the end of the run."""
        return float(self.temperatures_c[node][-1])


class TransientThermalNetwork:
    """Explicitly-integrated RC thermal network.

    Parameters
    ----------
    nodes:
        The thermal masses and boundaries of the network.
    links:
        Conductances between pairs of nodes.  Every endpoint must name an
        existing node.
    """

    def __init__(self, nodes: Sequence[ThermalNode],
                 links: Sequence[ThermalLink]) -> None:
        names = [node.name for node in nodes]
        if len(set(names)) != len(names):
            raise ConfigurationError(f"duplicate node names in {names}")
        self._nodes = list(nodes)
        self._index = {name: i for i, name in enumerate(names)}
        for link in links:
            for endpoint in (link.node_a, link.node_b):
                if endpoint not in self._index:
                    raise ConfigurationError(
                        f"link references unknown node {endpoint!r}")
        self._links = list(links)
        self._conductance = self._build_conductance_matrix()

    def _build_conductance_matrix(self) -> np.ndarray:
        n = len(self._nodes)
        matrix = np.zeros((n, n))
        for link in self._links:
            i = self._index[link.node_a]
            j = self._index[link.node_b]
            matrix[i, j] += link.conductance_w_per_k
            matrix[j, i] += link.conductance_w_per_k
        return matrix

    @property
    def node_names(self) -> list[str]:
        """Names of all nodes in insertion order."""
        return [node.name for node in self._nodes]

    def _stable_dt(self) -> float:
        """Largest explicit-Euler step that keeps every node stable."""
        dt = np.inf
        row_conductance = self._conductance.sum(axis=1)
        for i, node in enumerate(self._nodes):
            if node.boundary or row_conductance[i] == 0:
                continue
            tau = node.capacity_j_per_k / row_conductance[i]
            dt = min(dt, 0.5 * tau)
        if not np.isfinite(dt):
            dt = 1.0
        return dt

    def simulate(self, duration_s: float, output_dt_s: float = 1.0,
                 ) -> TransientResult:
        """Integrate the network for ``duration_s`` seconds.

        Parameters
        ----------
        duration_s:
            Total simulated time.
        output_dt_s:
            Sampling interval of the returned time series.  Internally the
            integrator sub-steps as needed for stability.

        Returns
        -------
        TransientResult
            Per-node temperature time series sampled every ``output_dt_s``.
        """
        if duration_s <= 0:
            raise PhysicalRangeError(
                f"duration must be > 0, got {duration_s}")
        if output_dt_s <= 0:
            raise PhysicalRangeError(
                f"output interval must be > 0, got {output_dt_s}")
        inner_dt = min(self._stable_dt(), output_dt_s)
        substeps = max(1, int(np.ceil(output_dt_s / inner_dt)))
        inner_dt = output_dt_s / substeps

        n_out = int(np.floor(duration_s / output_dt_s)) + 1
        times = np.arange(n_out) * output_dt_s
        temps = np.array([node.initial_temp_c for node in self._nodes],
                         dtype=float)
        boundary_mask = np.array([node.boundary for node in self._nodes])
        capacities = np.array([node.capacity_j_per_k for node in self._nodes])

        history = np.empty((n_out, len(self._nodes)))
        history[0] = temps
        t = 0.0
        for step in range(1, n_out):
            for _ in range(substeps):
                powers = np.array([node.power_at(t) for node in self._nodes])
                inflow = self._conductance @ temps
                outflow = self._conductance.sum(axis=1) * temps
                dTdt = (powers + inflow - outflow) / capacities
                dTdt[boundary_mask] = 0.0
                temps = temps + inner_dt * dTdt
                t += inner_dt
            history[step] = temps

        series = {name: history[:, i] for name, i in self._index.items()}
        return TransientResult(times_s=times, temperatures_c=series)


def step_load_profile(phases: Sequence[tuple[float, float]],
                      ) -> PowerFunction:
    """Build a piecewise-constant power function from (duration, watts) pairs.

    Used to replay the Fig. 3 experiment, whose 50 minutes are split into
    four phases of 0 %, 10 %, 20 % and 0 % CPU load.

    Parameters
    ----------
    phases:
        Sequence of ``(duration_seconds, power_watts)`` tuples.  After the
        last phase the final power level persists.
    """
    if not phases:
        raise ConfigurationError("at least one phase is required")
    boundaries: list[float] = []
    powers: list[float] = []
    elapsed = 0.0
    for duration, power in phases:
        if duration <= 0:
            raise PhysicalRangeError(
                f"phase duration must be > 0, got {duration}")
        elapsed += duration
        boundaries.append(elapsed)
        powers.append(power)

    def profile(t_seconds: float) -> float:
        for boundary, power in zip(boundaries, powers):
            if t_seconds < boundary:
                return power
        return powers[-1]

    return profile

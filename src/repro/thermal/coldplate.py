"""Cold plates and liquid-liquid heat exchangers (effectiveness-NTU).

Two heat-transfer elements appear throughout the paper's architecture:

* **Cold plates** press against a heat source (CPU die or TEG face) and
  transfer heat into/out of the coolant flowing through them.  We model a
  plate as a single-stream heat exchanger with effectiveness
  ``eps = 1 - exp(-NTU)`` where ``NTU = UA / (m_dot * cp)``.
* **CDU heat exchangers** couple the TCS loop to the FWS loop (Fig. 1);
  we model them as counterflow exchangers with the standard two-stream
  effectiveness relation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..errors import PhysicalRangeError
from ..units import litres_per_hour_to_kg_per_s
from .water import water_properties


def _mass_capacity_w_per_k(flow_l_per_h: float, temp_c: float) -> float:
    """Capacity rate m_dot * cp of a water stream, W/K."""
    mass_flow = litres_per_hour_to_kg_per_s(flow_l_per_h)
    cp = water_properties(temp_c).heat_capacity_j_per_kg_c
    return mass_flow * cp


@dataclass(frozen=True)
class ColdPlate:
    """A liquid cold plate pressed against a solid surface.

    Attributes
    ----------
    ua_w_per_k:
        Overall conductance between the plate surface and the bulk coolant.
        The prototype's 4x4 cm CPU plate is ~20 W/K; the 4x24 cm TEG plates
        are ~80 W/K (scaled by wetted area).
    contact_resistance_k_per_w:
        Interface resistance between the source (CPU lid / TEG ceramic) and
        the plate, including thermal paste.
    """

    ua_w_per_k: float = 20.0
    contact_resistance_k_per_w: float = 0.05

    def __post_init__(self) -> None:
        if self.ua_w_per_k <= 0:
            raise PhysicalRangeError(
                f"UA must be > 0, got {self.ua_w_per_k}")
        if self.contact_resistance_k_per_w < 0:
            raise PhysicalRangeError("contact resistance must be >= 0")

    def effectiveness(self, flow_l_per_h: float, temp_c: float = 40.0) -> float:
        """Single-stream effectiveness ``1 - exp(-NTU)`` in [0, 1]."""
        if flow_l_per_h <= 0:
            return 1.0  # stagnant coolant equilibrates with the surface
        capacity = _mass_capacity_w_per_k(flow_l_per_h, temp_c)
        ntu = self.ua_w_per_k / capacity
        return 1.0 - math.exp(-ntu)

    def heat_to_coolant_w(self, surface_temp_c: float, inlet_temp_c: float,
                          flow_l_per_h: float) -> float:
        """Heat absorbed by the coolant from an isothermal surface.

        ``q = eps * m_dot * cp * (T_surface - T_inlet)``; negative when the
        surface is colder than the coolant (the plate then pre-heats the
        surface, as happens on the TEG cold side).
        """
        if flow_l_per_h <= 0:
            return 0.0
        capacity = _mass_capacity_w_per_k(flow_l_per_h, inlet_temp_c)
        eps = self.effectiveness(flow_l_per_h, inlet_temp_c)
        return eps * capacity * (surface_temp_c - inlet_temp_c)

    def outlet_temp_c(self, surface_temp_c: float, inlet_temp_c: float,
                      flow_l_per_h: float) -> float:
        """Coolant outlet temperature after traversing the plate."""
        if flow_l_per_h <= 0:
            return surface_temp_c
        q = self.heat_to_coolant_w(surface_temp_c, inlet_temp_c, flow_l_per_h)
        capacity = _mass_capacity_w_per_k(flow_l_per_h, inlet_temp_c)
        return inlet_temp_c + q / capacity

    def surface_temp_for_heat_w(self, heat_w: float, inlet_temp_c: float,
                                flow_l_per_h: float) -> float:
        """Surface temperature required to reject ``heat_w`` into the coolant.

        Inverts :meth:`heat_to_coolant_w` and adds the contact-resistance
        rise, giving the steady-state temperature of a source dissipating
        ``heat_w`` (e.g. a CPU die) through this plate.
        """
        if flow_l_per_h <= 0:
            raise PhysicalRangeError(
                "cannot reject steady heat into a stagnant coolant")
        capacity = _mass_capacity_w_per_k(flow_l_per_h, inlet_temp_c)
        eps = self.effectiveness(flow_l_per_h, inlet_temp_c)
        plate_surface = inlet_temp_c + heat_w / (eps * capacity)
        return plate_surface + heat_w * self.contact_resistance_k_per_w


@dataclass(frozen=True)
class CounterflowHeatExchanger:
    """Counterflow liquid-liquid heat exchanger (the CDU in Fig. 1)."""

    ua_w_per_k: float = 500.0

    def __post_init__(self) -> None:
        if self.ua_w_per_k <= 0:
            raise PhysicalRangeError(f"UA must be > 0, got {self.ua_w_per_k}")

    def effectiveness(self, hot_flow_l_per_h: float, cold_flow_l_per_h: float,
                      hot_temp_c: float = 45.0,
                      cold_temp_c: float = 25.0) -> float:
        """Two-stream counterflow effectiveness.

        Uses the standard relation
        ``eps = (1 - exp(-NTU (1-Cr))) / (1 - Cr exp(-NTU (1-Cr)))`` with
        the balanced-flow limit ``eps = NTU / (1 + NTU)`` when Cr -> 1.
        """
        if hot_flow_l_per_h <= 0 or cold_flow_l_per_h <= 0:
            return 0.0
        c_hot = _mass_capacity_w_per_k(hot_flow_l_per_h, hot_temp_c)
        c_cold = _mass_capacity_w_per_k(cold_flow_l_per_h, cold_temp_c)
        c_min, c_max = min(c_hot, c_cold), max(c_hot, c_cold)
        cr = c_min / c_max
        ntu = self.ua_w_per_k / c_min
        if abs(1.0 - cr) < 1e-9:
            return ntu / (1.0 + ntu)
        expo = math.exp(-ntu * (1.0 - cr))
        return (1.0 - expo) / (1.0 - cr * expo)

    def transferred_heat_w(self, hot_in_c: float, cold_in_c: float,
                           hot_flow_l_per_h: float,
                           cold_flow_l_per_h: float) -> float:
        """Heat moved from the hot stream to the cold stream, watts."""
        if hot_in_c < cold_in_c:
            # No heat flows "uphill" in a passive exchanger.
            return 0.0
        c_hot = _mass_capacity_w_per_k(hot_flow_l_per_h, hot_in_c)
        c_cold = _mass_capacity_w_per_k(cold_flow_l_per_h, cold_in_c)
        if c_hot == 0 or c_cold == 0:
            return 0.0
        eps = self.effectiveness(hot_flow_l_per_h, cold_flow_l_per_h,
                                 hot_in_c, cold_in_c)
        return eps * min(c_hot, c_cold) * (hot_in_c - cold_in_c)

    def outlet_temps_c(self, hot_in_c: float, cold_in_c: float,
                       hot_flow_l_per_h: float,
                       cold_flow_l_per_h: float) -> tuple[float, float]:
        """Return ``(hot_out_c, cold_out_c)`` for the given inlets."""
        q = self.transferred_heat_w(hot_in_c, cold_in_c,
                                    hot_flow_l_per_h, cold_flow_l_per_h)
        c_hot = _mass_capacity_w_per_k(hot_flow_l_per_h, hot_in_c)
        c_cold = _mass_capacity_w_per_k(cold_flow_l_per_h, cold_in_c)
        hot_out = hot_in_c - (q / c_hot if c_hot > 0 else 0.0)
        cold_out = cold_in_c + (q / c_cold if c_cold > 0 else 0.0)
        return hot_out, cold_out

"""Thermal substrate: fluids, hydraulics, cold plates and CPU thermal models.

This subpackage provides the physics the H2P architecture sits on top of:

* :mod:`repro.thermal.water` — temperature-dependent water properties;
* :mod:`repro.thermal.hydraulics` — pipe pressure drop and pump power;
* :mod:`repro.thermal.coldplate` — effectiveness-NTU cold plates and
  liquid-liquid heat exchangers;
* :mod:`repro.thermal.cpu_model` — the steady-state CPU temperature and
  outlet-water models calibrated against Figs. 9-11 of the paper;
* :mod:`repro.thermal.transient` — a lumped-capacitance transient network
  used to reproduce Fig. 3 and hot-spot dynamics.
"""

from .water import WaterProperties, water_properties
from .hydraulics import PipeSegment, Pump, PumpCurve, loop_pump_power_w
from .coldplate import ColdPlate, CounterflowHeatExchanger
from .cpu_model import (
    CpuThermalModel,
    FrequencyGovernor,
    OutletDeltaModel,
    CoolingSetting,
)
from .transient import (
    ThermalNode,
    ThermalLink,
    TransientThermalNetwork,
    TransientResult,
    step_load_profile,
)

__all__ = [
    "WaterProperties",
    "water_properties",
    "PipeSegment",
    "Pump",
    "PumpCurve",
    "loop_pump_power_w",
    "ColdPlate",
    "CounterflowHeatExchanger",
    "CpuThermalModel",
    "FrequencyGovernor",
    "OutletDeltaModel",
    "CoolingSetting",
    "ThermalNode",
    "ThermalLink",
    "TransientThermalNetwork",
    "TransientResult",
    "step_load_profile",
]

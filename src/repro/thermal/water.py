"""Temperature-dependent thermophysical properties of liquid water.

The paper treats water as having constant heat capacity (Sec. V-A), which is
adequate over the 20-60 degC range it operates in.  We provide both the
constant-property shortcut the paper uses and smooth engineering
correlations, so that the heat-exchanger and hydraulics models can resolve
second-order effects (viscosity drop with temperature, Prandtl number) when
desired.

The correlations below are standard polynomial fits to IAPWS data for liquid
water at atmospheric pressure, valid for 0-100 degC; each is accurate to
better than 1 % over 10-80 degC, which comfortably covers every operating
point in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..constants import WATER_DENSITY_KG_PER_M3, WATER_HEAT_CAPACITY_J_PER_KG_C
from ..errors import PhysicalRangeError

_VALID_MIN_C = 0.0
_VALID_MAX_C = 100.0


@dataclass(frozen=True)
class WaterProperties:
    """Bundle of water properties evaluated at one temperature.

    Attributes
    ----------
    temperature_c:
        Evaluation temperature, degC.
    density_kg_per_m3:
        Mass density.
    heat_capacity_j_per_kg_c:
        Isobaric specific heat.
    viscosity_pa_s:
        Dynamic viscosity.
    conductivity_w_per_m_k:
        Thermal conductivity.
    """

    temperature_c: float
    density_kg_per_m3: float
    heat_capacity_j_per_kg_c: float
    viscosity_pa_s: float
    conductivity_w_per_m_k: float

    @property
    def prandtl(self) -> float:
        """Prandtl number Pr = cp * mu / k (dimensionless)."""
        return (self.heat_capacity_j_per_kg_c * self.viscosity_pa_s
                / self.conductivity_w_per_m_k)

    @property
    def kinematic_viscosity_m2_per_s(self) -> float:
        """Kinematic viscosity nu = mu / rho."""
        return self.viscosity_pa_s / self.density_kg_per_m3


def _check_range(temp_c: float) -> None:
    if not (_VALID_MIN_C <= temp_c <= _VALID_MAX_C):
        raise PhysicalRangeError(
            f"water property correlations are valid for "
            f"{_VALID_MIN_C}-{_VALID_MAX_C} C, got {temp_c} C")


def density_kg_per_m3(temp_c: float) -> float:
    """Density of liquid water at ``temp_c`` (polynomial fit, 0-100 degC)."""
    _check_range(temp_c)
    # Kell-style fit truncated to cubic; 999.97 kg/m^3 near 4 C.
    t = temp_c
    return 999.85 + 5.332e-2 * t - 7.564e-3 * t ** 2 + 4.323e-5 * t ** 3


def heat_capacity_j_per_kg_c(temp_c: float) -> float:
    """Isobaric specific heat of liquid water at ``temp_c``."""
    _check_range(temp_c)
    t = temp_c
    # Quartic fit to IAPWS liquid-water data (max error ~1.5 J/kg/K);
    # shallow minimum of ~4178 J/kg/K near 35 C.
    return (4216.92 - 3.04861 * t + 7.96623e-2 * t ** 2
            - 8.32343e-4 * t ** 3 + 3.40035e-6 * t ** 4)


def viscosity_pa_s(temp_c: float) -> float:
    """Dynamic viscosity of liquid water (Vogel-type fit)."""
    _check_range(temp_c)
    # mu = A * 10^(B / (T - C)) with T in kelvin; classic Vogel fit.
    temp_k = temp_c + 273.15
    return 2.414e-5 * 10.0 ** (247.8 / (temp_k - 140.0))


def conductivity_w_per_m_k(temp_c: float) -> float:
    """Thermal conductivity of liquid water (quadratic fit)."""
    _check_range(temp_c)
    t = temp_c
    return 0.5706 + 1.756e-3 * t - 6.46e-6 * t ** 2


def water_properties(temp_c: float, *, constant: bool = False) -> WaterProperties:
    """Evaluate all water properties at a temperature.

    Parameters
    ----------
    temp_c:
        Water temperature in degC (0-100).
    constant:
        If True, return the constant properties the paper assumes
        (rho = 1000 kg/m^3, cp = 4200 J/kg/K) with viscosity and
        conductivity evaluated at the requested temperature.  Use this to
        reproduce the paper's Eq. 10 arithmetic exactly.

    Returns
    -------
    WaterProperties
        Property bundle at ``temp_c``.
    """
    _check_range(temp_c)
    if constant:
        rho = WATER_DENSITY_KG_PER_M3
        cp = WATER_HEAT_CAPACITY_J_PER_KG_C
    else:
        rho = density_kg_per_m3(temp_c)
        cp = heat_capacity_j_per_kg_c(temp_c)
    return WaterProperties(
        temperature_c=temp_c,
        density_kg_per_m3=rho,
        heat_capacity_j_per_kg_c=cp,
        viscosity_pa_s=viscosity_pa_s(temp_c),
        conductivity_w_per_m_k=conductivity_w_per_m_k(temp_c),
    )

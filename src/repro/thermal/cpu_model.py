"""Steady-state CPU thermal and power models calibrated to the paper.

The paper characterises an Intel Xeon E5-2650 V3 cooled by a cold plate and
reports three empirical relationships that this module encodes:

* **Eq. 20** — CPU power vs. utilisation:
  ``P = 109.71 * ln(u + 1.17) - 7.83`` watts with ``u`` in ``[0, 1]``
  (9.4 W idle, ~77 W at full load, RMS error < 5 W).
* **Fig. 10 / Fig. 11** — CPU temperature is linear in coolant temperature,
  ``T_CPU = k(f) * T_coolant + b(u, f)`` with the slope ``k`` in [1, 1.3]
  growing as the flow rate shrinks, and the cooling benefit of extra flow
  saturating above ~250 L/H.
* **Fig. 9** — the coolant outlet-inlet temperature difference fluctuates
  within 1-3.5 degC and is driven almost entirely by CPU utilisation.

The calibration constants were chosen so that the model reproduces every
anchor point the paper states: full load with 40-45 degC water stays below
the 78.9 degC limit, while 50 degC water with >=70 % utilisation exceeds it
(Sec. II-B), and the Fig. 13 working region around T_safe = 62 degC.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..constants import (
    CPU_MAX_FREQUENCY_GHZ,
    CPU_MAX_OPERATING_TEMP_C,
    CPU_POWER_CONST_W,
    CPU_POWER_LOG_COEFF_W,
    CPU_POWER_LOG_OFFSET,
    CPU_POWERSAVE_FREQUENCY_GHZ,
    WATER_HEAT_CAPACITY_J_PER_KG_C,
)
from ..errors import PhysicalRangeError
from ..units import litres_per_hour_to_kg_per_s


def _check_utilisation(utilisation) -> np.ndarray:
    """Validate a scalar or array utilisation and return it as an array."""
    utils = np.asarray(utilisation, dtype=float)
    if np.any((utils < 0.0) | (utils > 1.0)):
        raise PhysicalRangeError(
            f"utilisation must be in [0, 1], got {utilisation}")
    return utils


def cpu_power_w(utilisation):
    """CPU electrical power at a given utilisation (paper Eq. 20).

    Parameters
    ----------
    utilisation:
        CPU utilisation as a fraction in ``[0, 1]``; scalar or array.

    Returns
    -------
    float or numpy.ndarray
        Package power in watts (~9.4 W idle, ~77 W at 100 %); matches the
        input's shape.
    """
    utils = _check_utilisation(utilisation)
    power = (CPU_POWER_LOG_COEFF_W
             * np.log(utils + CPU_POWER_LOG_OFFSET)
             + CPU_POWER_CONST_W)
    if power.ndim == 0:
        return float(power)
    return power


@dataclass(frozen=True)
class CoolingSetting:
    """The pair ``{f, T_warm_in}`` the control plane adjusts (Sec. V-B).

    Attributes
    ----------
    flow_l_per_h:
        Coolant flow rate through each server's cold plate, litres/hour.
    inlet_temp_c:
        Inlet water temperature ``T_warm_in``, degC.
    """

    flow_l_per_h: float
    inlet_temp_c: float

    def __post_init__(self) -> None:
        if self.flow_l_per_h <= 0:
            raise PhysicalRangeError(
                f"flow rate must be > 0, got {self.flow_l_per_h}")
        if not -10.0 <= self.inlet_temp_c <= 90.0:
            raise PhysicalRangeError(
                f"inlet temperature {self.inlet_temp_c} C is outside the "
                f"plausible coolant range (-10..90 C)")


@dataclass(frozen=True)
class FrequencyGovernor:
    """The "powersave" CPU frequency governor observed in Fig. 10.

    Frequency rises roughly linearly with utilisation, slows beyond 50 %
    and settles at ~2.5 GHz instead of the 3.0 GHz maximum.
    """

    idle_frequency_ghz: float = 1.2
    knee_utilisation: float = 0.5
    knee_frequency_ghz: float = 2.3
    plateau_frequency_ghz: float = CPU_POWERSAVE_FREQUENCY_GHZ
    plateau_rate: float = 0.15

    def frequency_ghz(self, utilisation: float) -> float:
        """Operating frequency at ``utilisation`` (fraction in [0, 1])."""
        if not 0.0 <= utilisation <= 1.0:
            raise PhysicalRangeError(
                f"utilisation must be in [0, 1], got {utilisation}")
        if utilisation <= self.knee_utilisation:
            slope = ((self.knee_frequency_ghz - self.idle_frequency_ghz)
                     / self.knee_utilisation)
            return self.idle_frequency_ghz + slope * utilisation
        span = self.plateau_frequency_ghz - self.knee_frequency_ghz
        progress = 1.0 - math.exp(
            -(utilisation - self.knee_utilisation) / self.plateau_rate)
        freq = self.knee_frequency_ghz + span * progress
        return min(freq, CPU_MAX_FREQUENCY_GHZ)


@dataclass(frozen=True)
class OutletDeltaModel:
    """Model of ``dT_out-in``, the coolant temperature rise across the CPU.

    Two modes are provided:

    * ``"empirical"`` (default) reproduces Fig. 9: the rise is ~1 degC idle
      and ~3.5 degC at full load at the prototype's 20 L/H reference flow,
      with only weak flow-rate and inlet-temperature dependence.
    * ``"physical"`` applies the energy balance
      ``dT = eta * P_cpu / (m_dot * cp)`` with a heat-capture efficiency
      ``eta``; use it when strict energy conservation across the loop
      matters more than matching the measured weak flow sensitivity.
    """

    mode: str = "empirical"
    capture_efficiency: float = 0.85
    base_delta_c: float = 1.05
    load_delta_c: float = 2.45
    flow_exponent: float = -0.08
    inlet_sensitivity_per_c: float = 0.004
    reference_flow_l_per_h: float = 20.0
    reference_inlet_c: float = 35.0

    def __post_init__(self) -> None:
        if self.mode not in ("empirical", "physical"):
            raise PhysicalRangeError(
                f"mode must be 'empirical' or 'physical', got {self.mode!r}")
        if not 0.0 < self.capture_efficiency <= 1.0:
            raise PhysicalRangeError(
                f"capture efficiency must be in (0, 1], "
                f"got {self.capture_efficiency}")

    def delta_c(self, utilisation, flow_l_per_h: float,
                inlet_temp_c: float):
        """Outlet-inlet temperature difference, degC.

        ``utilisation`` may be a scalar or an array; the result matches.
        """
        utilisation = _check_utilisation(utilisation)
        if utilisation.ndim == 0:
            utilisation = float(utilisation)
        if flow_l_per_h <= 0:
            raise PhysicalRangeError(
                f"flow rate must be > 0, got {flow_l_per_h}")
        if self.mode == "physical":
            mass_flow = litres_per_hour_to_kg_per_s(flow_l_per_h)
            capacity = mass_flow * WATER_HEAT_CAPACITY_J_PER_KG_C
            return self.capture_efficiency * cpu_power_w(utilisation) / capacity
        base = self.base_delta_c + self.load_delta_c * utilisation
        flow_factor = (flow_l_per_h
                       / self.reference_flow_l_per_h) ** self.flow_exponent
        inlet_factor = 1.0 + self.inlet_sensitivity_per_c * (
            inlet_temp_c - self.reference_inlet_c)
        return base * flow_factor * max(inlet_factor, 0.0)


@dataclass(frozen=True)
class CpuThermalModel:
    """Steady-state CPU temperature model (Figs. 10-11).

    ``T_CPU = k(f) * T_inlet + R_th(f) * P_cpu(u)``

    where the slope ``k(f) = 1 + k_amp * exp(-f / k_flow)`` reproduces the
    paper's observation that the slope grows as the flow decreases
    (k in [1, 1.3]) and the junction-to-coolant thermal resistance
    ``R_th(f) = r_min + r_amp * exp(-f / r_flow)`` saturates above
    ~250 L/H (Fig. 11).
    """

    k_amp: float = 0.30
    k_flow_l_per_h: float = 100.0
    r_min_k_per_w: float = 0.12
    r_amp_k_per_w: float = 0.196
    r_flow_l_per_h: float = 120.0
    max_operating_temp_c: float = CPU_MAX_OPERATING_TEMP_C
    outlet_model: OutletDeltaModel = OutletDeltaModel()
    governor: FrequencyGovernor = FrequencyGovernor()
    extra_resistance_k_per_w: float = 0.0
    #: Multiplier on the Eq. 20 power curve; 1.0 is the prototype CPU.
    #: Lets heterogeneous-fleet specs reuse the same calibration shape.
    power_scale: float = 1.0

    def slope(self, flow_l_per_h: float) -> float:
        """The coefficient ``k(f)`` of the linear law (paper: k in [1, 1.3])."""
        if flow_l_per_h <= 0:
            raise PhysicalRangeError(
                f"flow rate must be > 0, got {flow_l_per_h}")
        return 1.0 + self.k_amp * math.exp(-flow_l_per_h / self.k_flow_l_per_h)

    def thermal_resistance_k_per_w(self, flow_l_per_h: float) -> float:
        """Junction-to-coolant thermal resistance at ``flow_l_per_h``."""
        if flow_l_per_h <= 0:
            raise PhysicalRangeError(
                f"flow rate must be > 0, got {flow_l_per_h}")
        r_plate = (self.r_min_k_per_w
                   + self.r_amp_k_per_w
                   * math.exp(-flow_l_per_h / self.r_flow_l_per_h))
        return r_plate + self.extra_resistance_k_per_w

    def cpu_power_w(self, utilisation):
        """CPU power at ``utilisation`` — Eq. 20 times ``power_scale``."""
        return self.power_scale * cpu_power_w(utilisation)

    def cpu_temp_c(self, utilisation, setting: CoolingSetting):
        """Steady-state CPU temperature for a load and cooling setting."""
        power = self.cpu_power_w(utilisation)
        return (self.slope(setting.flow_l_per_h) * setting.inlet_temp_c
                + self.thermal_resistance_k_per_w(setting.flow_l_per_h) * power)

    def outlet_temp_c(self, utilisation: float,
                      setting: CoolingSetting) -> float:
        """CPU outlet water temperature ``T_warm_out`` (paper Eq. 8)."""
        delta = self.outlet_model.delta_c(
            utilisation, setting.flow_l_per_h, setting.inlet_temp_c)
        return setting.inlet_temp_c + delta

    def inlet_for_cpu_temp(self, utilisation: float, flow_l_per_h: float,
                           target_cpu_temp_c: float) -> float:
        """Invert the linear law: the inlet temperature giving a CPU temp.

        This is the analytic core of the cooling-setting policy: for a given
        load and flow, the hottest admissible inlet temperature is the one
        that puts the CPU exactly at the safe temperature.
        """
        power = self.cpu_power_w(utilisation)
        rth = self.thermal_resistance_k_per_w(flow_l_per_h)
        return (target_cpu_temp_c - rth * power) / self.slope(flow_l_per_h)

    def is_safe(self, utilisation: float, setting: CoolingSetting,
                safety_margin_c: float = 0.0) -> bool:
        """Whether the CPU stays below its maximum operating temperature."""
        return (self.cpu_temp_c(utilisation, setting)
                <= self.max_operating_temp_c - safety_margin_c)

    def frequency_ghz(self, utilisation: float) -> float:
        """Operating frequency under the configured governor (Fig. 10)."""
        return self.governor.frequency_ghz(utilisation)

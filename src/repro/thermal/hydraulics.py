"""Pipe pressure drop and pump power for the water circulations.

The paper notes (Sec. IV-B) that raising the flow rate buys only a small
increase in TEG voltage while costing "more power consumption of the pump".
To quantify that trade-off (benchmark E-AB1) we model:

* laminar/turbulent Darcy-Weisbach pressure drop in the loop piping,
* minor losses through cold plates and fittings as equivalent K-factors,
* a variable-speed pump with a wire-to-water efficiency curve.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Sequence

from ..errors import PhysicalRangeError
from ..units import litres_per_hour_to_kg_per_s
from .water import water_properties

_LAMINAR_REYNOLDS_LIMIT = 2300.0


@dataclass(frozen=True)
class PipeSegment:
    """One hydraulic element of a cooling loop.

    Attributes
    ----------
    length_m:
        Straight pipe length.
    diameter_m:
        Inner diameter.
    k_minor:
        Sum of minor-loss coefficients for the fittings, bends and cold
        plates lumped into this segment (dimensionless).
    roughness_m:
        Absolute wall roughness; the default corresponds to drawn plastic
        tubing used in the prototype loops.
    """

    length_m: float
    diameter_m: float
    k_minor: float = 0.0
    roughness_m: float = 1.5e-6

    def __post_init__(self) -> None:
        if self.length_m < 0:
            raise PhysicalRangeError(f"length must be >= 0, got {self.length_m}")
        if self.diameter_m <= 0:
            raise PhysicalRangeError(
                f"diameter must be > 0, got {self.diameter_m}")
        if self.k_minor < 0:
            raise PhysicalRangeError(f"k_minor must be >= 0, got {self.k_minor}")

    @property
    def area_m2(self) -> float:
        """Flow cross-section area."""
        return math.pi * self.diameter_m ** 2 / 4.0

    def velocity_m_per_s(self, flow_l_per_h: float, temp_c: float = 40.0) -> float:
        """Mean flow velocity for a volumetric flow rate."""
        mass_flow = litres_per_hour_to_kg_per_s(flow_l_per_h)
        rho = water_properties(temp_c).density_kg_per_m3
        return mass_flow / rho / self.area_m2

    def reynolds(self, flow_l_per_h: float, temp_c: float = 40.0) -> float:
        """Reynolds number of the flow in this segment."""
        props = water_properties(temp_c)
        velocity = self.velocity_m_per_s(flow_l_per_h, temp_c)
        return (props.density_kg_per_m3 * velocity * self.diameter_m
                / props.viscosity_pa_s)

    def friction_factor(self, flow_l_per_h: float, temp_c: float = 40.0) -> float:
        """Darcy friction factor (laminar 64/Re, else Swamee-Jain)."""
        re = self.reynolds(flow_l_per_h, temp_c)
        if re <= 0:
            return 0.0
        if re < _LAMINAR_REYNOLDS_LIMIT:
            return 64.0 / re
        relative_roughness = self.roughness_m / self.diameter_m
        return 0.25 / math.log10(relative_roughness / 3.7
                                 + 5.74 / re ** 0.9) ** 2

    def pressure_drop_pa(self, flow_l_per_h: float, temp_c: float = 40.0) -> float:
        """Total pressure drop (friction + minor losses) across the segment."""
        if flow_l_per_h < 0:
            raise PhysicalRangeError(
                f"flow rate must be >= 0, got {flow_l_per_h}")
        if flow_l_per_h == 0:
            return 0.0
        props = water_properties(temp_c)
        velocity = self.velocity_m_per_s(flow_l_per_h, temp_c)
        dynamic_pressure = 0.5 * props.density_kg_per_m3 * velocity ** 2
        friction = self.friction_factor(flow_l_per_h, temp_c)
        major = friction * self.length_m / self.diameter_m * dynamic_pressure
        minor = self.k_minor * dynamic_pressure
        return major + minor


@dataclass(frozen=True)
class PumpCurve:
    """Wire-to-water efficiency of a small variable-speed circulation pump.

    Efficiency peaks at ``best_efficiency`` around ``best_flow_l_per_h`` and
    degrades quadratically away from it, floored at ``min_efficiency`` —
    the typical bathtub shape of small canned-rotor pumps.
    """

    best_efficiency: float = 0.45
    best_flow_l_per_h: float = 200.0
    falloff_per_l_per_h: float = 1.2e-3
    min_efficiency: float = 0.08

    def __post_init__(self) -> None:
        if not (0 < self.best_efficiency <= 1):
            raise PhysicalRangeError(
                f"best_efficiency must be in (0, 1], got {self.best_efficiency}")
        if not (0 < self.min_efficiency <= self.best_efficiency):
            raise PhysicalRangeError(
                "min_efficiency must be in (0, best_efficiency]")

    def efficiency(self, flow_l_per_h: float) -> float:
        """Wire-to-water efficiency at ``flow_l_per_h``."""
        if flow_l_per_h < 0:
            raise PhysicalRangeError(
                f"flow rate must be >= 0, got {flow_l_per_h}")
        deviation = abs(flow_l_per_h - self.best_flow_l_per_h)
        eff = self.best_efficiency * (
            1.0 - (self.falloff_per_l_per_h * deviation) ** 2)
        return max(self.min_efficiency, eff)


@dataclass(frozen=True)
class Pump:
    """A variable-speed pump driving one or more pipe segments."""

    curve: PumpCurve = field(default_factory=PumpCurve)

    def electrical_power_w(self, flow_l_per_h: float, head_pa: float) -> float:
        """Electrical power drawn to deliver ``flow_l_per_h`` against ``head_pa``.

        Parameters
        ----------
        flow_l_per_h:
            Delivered volumetric flow.
        head_pa:
            Total pressure the pump must develop.

        Returns
        -------
        float
            Electrical input power in watts (hydraulic power divided by the
            wire-to-water efficiency at this operating point).
        """
        if head_pa < 0:
            raise PhysicalRangeError(f"head must be >= 0, got {head_pa}")
        if flow_l_per_h == 0 or head_pa == 0:
            return 0.0
        volume_m3_per_s = flow_l_per_h / 1000.0 / 3600.0
        hydraulic_w = volume_m3_per_s * head_pa
        return hydraulic_w / self.curve.efficiency(flow_l_per_h)


def loop_pump_power_w(segments: Sequence[PipeSegment], flow_l_per_h: float,
                      temp_c: float = 40.0,
                      pump: Pump | None = None) -> float:
    """Electrical pump power needed to drive a loop of segments in series.

    This is the quantity weighed against the extra TEG output when the
    paper concludes that a larger flow rate "may be too little to be worth
    making" (Sec. IV-B).
    """
    pump = pump or Pump()
    total_drop = sum(seg.pressure_drop_pa(flow_l_per_h, temp_c)
                     for seg in segments)
    return pump.electrical_power_w(flow_l_per_h, total_drop)


def prototype_warm_loop() -> list[PipeSegment]:
    """Pipe network of the prototype's warm (TCS) circulation (Sec. IV-A).

    Three cold plates (one 4x4 cm on the CPU, two 4x24 cm on the TEG
    modules), a flowmeter and interconnecting tubing, lumped into
    segments with representative minor-loss coefficients.
    """
    return [
        PipeSegment(length_m=2.0, diameter_m=0.008, k_minor=4.0),   # tubing+bends
        PipeSegment(length_m=0.04, diameter_m=0.004, k_minor=8.0),  # CPU plate
        PipeSegment(length_m=0.24, diameter_m=0.004, k_minor=6.0),  # TEG plate 1
        PipeSegment(length_m=0.24, diameter_m=0.004, k_minor=6.0),  # TEG plate 2
        PipeSegment(length_m=0.1, diameter_m=0.006, k_minor=2.5),   # flowmeter
    ]


def production_manifold() -> list[PipeSegment]:
    """Per-server hydraulics of a production rack manifold.

    Real racks feed cold plates from wide supply/return manifolds with
    short drops per server; the per-server share of the pressure drop is
    an order of magnitude below the prototype's bench loop.  Use this
    when accounting pump power at datacenter scale (the prototype loop
    is only fair for the testbed itself).
    """
    return [
        PipeSegment(length_m=0.3, diameter_m=0.012, k_minor=1.0),  # drop
        PipeSegment(length_m=0.04, diameter_m=0.006, k_minor=4.0),  # plate
        PipeSegment(length_m=0.3, diameter_m=0.012, k_minor=1.0),  # return
    ]


def prototype_cold_loop() -> list[PipeSegment]:
    """Pipe network of the prototype's cold (natural-water) circulation."""
    return [
        PipeSegment(length_m=2.0, diameter_m=0.008, k_minor=4.0),
        PipeSegment(length_m=0.24, diameter_m=0.004, k_minor=6.0),
        PipeSegment(length_m=0.24, diameter_m=0.004, k_minor=6.0),
        PipeSegment(length_m=0.3, diameter_m=0.008, k_minor=3.0),   # heat sink
    ]

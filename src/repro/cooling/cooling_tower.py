"""Evaporative cooling tower.

In warm water cooling "the main cooling task can be undertaken by the
cooling tower via evaporation" (Sec. II-B).  A tower can cool the facility
water down to the ambient *wet-bulb* temperature plus an approach; when
that is not cold enough for the requested supply temperature, the chiller
has to trim the remainder — which is exactly the regime split the paper's
economics rely on.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import PhysicalRangeError


@dataclass(frozen=True)
class CoolingTower:
    """An evaporative (wet) cooling tower.

    Attributes
    ----------
    approach_c:
        Closest the leaving water can get to the ambient wet-bulb
        temperature (typical 3-6 degC for datacenter towers).
    fan_power_w_per_kw:
        Electrical fan + spray-pump power per kW of heat rejected;
        ~0.01-0.03 kW/kW for efficient towers, vastly cheaper than a
        chiller's 1/COP ~ 0.28 kW/kW.
    max_heat_kw:
        Rated heat-rejection capacity.
    """

    approach_c: float = 4.0
    fan_power_w_per_kw: float = 15.0
    max_heat_kw: float = 2000.0

    def __post_init__(self) -> None:
        if self.approach_c < 0:
            raise PhysicalRangeError(
                f"approach must be >= 0, got {self.approach_c}")
        if self.fan_power_w_per_kw < 0:
            raise PhysicalRangeError("fan power must be >= 0")
        if self.max_heat_kw <= 0:
            raise PhysicalRangeError("capacity must be > 0")

    def coldest_supply_c(self, wet_bulb_c: float) -> float:
        """Lowest water temperature the tower alone can deliver."""
        return wet_bulb_c + self.approach_c

    def can_reach(self, target_supply_c: float, wet_bulb_c: float) -> bool:
        """Whether free cooling alone can hit ``target_supply_c``."""
        return target_supply_c >= self.coldest_supply_c(wet_bulb_c)

    def electricity_w_for_heat(self, heat_w: float) -> float:
        """Fan/spray electricity to reject ``heat_w`` of heat."""
        if heat_w < 0:
            raise PhysicalRangeError(f"heat must be >= 0, got {heat_w}")
        if heat_w > self.max_heat_kw * 1000.0:
            raise PhysicalRangeError(
                f"heat load {heat_w/1000:.1f} kW exceeds tower capacity "
                f"{self.max_heat_kw} kW")
        return heat_w / 1000.0 * self.fan_power_w_per_kw

    def split_with_chiller(self, heat_w: float, target_supply_c: float,
                           wet_bulb_c: float) -> tuple[float, float]:
        """Partition a heat load between the tower and the chiller.

        Returns ``(tower_heat_w, chiller_heat_w)``.  When the target supply
        temperature is reachable by evaporation alone the chiller share is
        zero (the warm-water regime); otherwise the chiller must remove the
        fraction of the load proportional to the temperature shortfall
        relative to the loop temperature ranges — a standard sequencing
        approximation.
        """
        if heat_w < 0:
            raise PhysicalRangeError(f"heat must be >= 0, got {heat_w}")
        coldest = self.coldest_supply_c(wet_bulb_c)
        if target_supply_c >= coldest:
            return heat_w, 0.0
        shortfall = coldest - target_supply_c
        # The tower pre-cools to its limit; the chiller trims the rest.
        # Share is proportional to the shortfall over a nominal 10 degC
        # loop range, capped at the full load.
        chiller_fraction = min(1.0, shortfall / 10.0)
        chiller_heat = heat_w * chiller_fraction
        return heat_w - chiller_heat, chiller_heat

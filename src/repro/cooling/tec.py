"""Thermoelectric cooler (TEC) — the hybrid hot-spot remedy.

H2P assumes the hybrid cooling architecture of Jiang et al. (ISCA'19,
ref. [24]): each CPU carries a TEC that provides "extra and timely
fine-grained cooling" when a hot spot emerges faster than the chiller can
respond.  With TECs absorbing transients, the loop inlet temperature can be
raised into the warm-water band — which is what makes TEG harvesting
worthwhile in the first place.

The standard Peltier model is used:

    Q_c = alpha * I * T_c - I^2 R / 2 - K * dT      (heat pumped)
    P   = alpha * I * dT + I^2 R                     (electrical input)

Sec. VI-C1 of the paper proposes powering TECs from TEGs; the
:mod:`repro.applications.tec_powering` module builds on this class.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import PhysicalRangeError
from ..units import celsius_to_kelvin


@dataclass(frozen=True)
class ThermoelectricCooler:
    """A Peltier cooler attached to one CPU.

    Attributes
    ----------
    seebeck_v_per_k:
        Module Seebeck coefficient (all couples in series).
    resistance_ohm:
        Electrical resistance of the module.
    thermal_conductance_w_per_k:
        Parasitic through-module conductance.
    max_current_a:
        Manufacturer current limit.
    """

    seebeck_v_per_k: float = 0.05
    resistance_ohm: float = 1.8
    thermal_conductance_w_per_k: float = 0.7
    max_current_a: float = 6.0

    def __post_init__(self) -> None:
        if self.seebeck_v_per_k <= 0:
            raise PhysicalRangeError("Seebeck coefficient must be > 0")
        if self.resistance_ohm <= 0:
            raise PhysicalRangeError("resistance must be > 0")
        if self.thermal_conductance_w_per_k <= 0:
            raise PhysicalRangeError("thermal conductance must be > 0")
        if self.max_current_a <= 0:
            raise PhysicalRangeError("max current must be > 0")

    def _check_current(self, current_a: float) -> None:
        if current_a < 0:
            raise PhysicalRangeError(
                f"current must be >= 0, got {current_a}")
        if current_a > self.max_current_a:
            raise PhysicalRangeError(
                f"current {current_a} A exceeds the module limit "
                f"{self.max_current_a} A")

    def heat_pumped_w(self, current_a: float, cold_side_c: float,
                      hot_side_c: float) -> float:
        """Heat absorbed from the cold side (the CPU) at ``current_a``.

        Can be negative if conduction leak beats the Peltier pumping.
        """
        self._check_current(current_a)
        if hot_side_c < cold_side_c:
            raise PhysicalRangeError(
                "hot side must be >= cold side for a cooling TEC")
        delta = hot_side_c - cold_side_c
        peltier = (self.seebeck_v_per_k * current_a
                   * celsius_to_kelvin(cold_side_c))
        joule_back = 0.5 * current_a ** 2 * self.resistance_ohm
        leak = self.thermal_conductance_w_per_k * delta
        return peltier - joule_back - leak

    def electrical_power_w(self, current_a: float, cold_side_c: float,
                           hot_side_c: float) -> float:
        """Electrical input power at ``current_a`` (always >= 0)."""
        self._check_current(current_a)
        delta = max(0.0, hot_side_c - cold_side_c)
        return (self.seebeck_v_per_k * current_a * delta
                + current_a ** 2 * self.resistance_ohm)

    def cop(self, current_a: float, cold_side_c: float,
            hot_side_c: float) -> float:
        """Coefficient of performance Q_c / P (0 when not pumping)."""
        power = self.electrical_power_w(current_a, cold_side_c, hot_side_c)
        if power <= 0:
            return 0.0
        pumped = self.heat_pumped_w(current_a, cold_side_c, hot_side_c)
        return max(0.0, pumped / power)

    def optimal_current_a(self, cold_side_c: float, hot_side_c: float,
                          samples: int = 200) -> float:
        """Current that maximises pumped heat for given side temperatures."""
        best_current = 0.0
        best_pumped = 0.0
        for i in range(1, samples + 1):
            current = self.max_current_a * i / samples
            pumped = self.heat_pumped_w(current, cold_side_c, hot_side_c)
            if pumped > best_pumped:
                best_pumped = pumped
                best_current = current
        return best_current

    def max_heat_pumped_w(self, cold_side_c: float,
                          hot_side_c: float) -> float:
        """Largest heat the TEC can absorb at the given side temperatures."""
        current = self.optimal_current_a(cold_side_c, hot_side_c)
        if current == 0.0:
            return 0.0
        return self.heat_pumped_w(current, cold_side_c, hot_side_c)

    def hotspot_relief_c(self, cpu_power_w: float, cold_side_c: float,
                         hot_side_c: float,
                         junction_resistance_k_per_w: float = 0.3) -> float:
        """CPU temperature reduction the TEC buys during a hot spot.

        The pumped heat no longer flows through the junction-to-coolant
        resistance, so the die drops by ``Q_pumped * R_jc`` (bounded by the
        share of the CPU power the TEC can actually absorb).
        """
        if cpu_power_w < 0:
            raise PhysicalRangeError("CPU power must be >= 0")
        pumped = min(self.max_heat_pumped_w(cold_side_c, hot_side_c),
                     cpu_power_w)
        return pumped * junction_resistance_k_per_w

"""Cooling-system substrate: chillers, towers, CDUs, TECs and loops.

This subpackage models the facility side of Fig. 1:

* :mod:`repro.cooling.chiller` — vapour-compression chiller with COP
  (the energy sink Eq. 10 charges against);
* :mod:`repro.cooling.cooling_tower` — evaporative cooling tower, the
  primary heat-rejection path of warm water cooling;
* :mod:`repro.cooling.cdu` — coolant distribution unit coupling the TCS
  and FWS loops;
* :mod:`repro.cooling.tec` — thermoelectric coolers, the hybrid hot-spot
  remedy of Jiang et al. (ISCA'19) that H2P builds on;
* :mod:`repro.cooling.loop` — a complete water circulation serving n
  servers;
* :mod:`repro.cooling.circulation_design` — the Sec. V-A study of how many
  servers should share one circulation.
"""

from .chiller import Chiller, chiller_energy_kwh
from .cooling_tower import CoolingTower
from .cdu import CoolantDistributionUnit
from .tec import ThermoelectricCooler
from .loop import WaterCirculation, CirculationState
from .circulation_design import (
    CirculationDesignProblem,
    CirculationDesignResult,
    expected_max_of_normal,
)
from .hotspot import HotSpotScenario, HotSpotOutcome
from .plumbing import PlumbingStudy, PlumbingOutcome
from .faults import FaultyCdu, DegradedChiller

__all__ = [
    "Chiller",
    "chiller_energy_kwh",
    "CoolingTower",
    "CoolantDistributionUnit",
    "ThermoelectricCooler",
    "WaterCirculation",
    "CirculationState",
    "CirculationDesignProblem",
    "CirculationDesignResult",
    "expected_max_of_normal",
    "HotSpotScenario",
    "HotSpotOutcome",
    "PlumbingStudy",
    "PlumbingOutcome",
    "FaultyCdu",
    "DegradedChiller",
]

"""Serial vs parallel plumbing of servers in a circulation.

The prototype connects its two CPUs "in parallel in the water
circulation, hence the flow rate and the inlet temperature in the two
branches are almost the same" (Sec. III-B).  The alternative — serial
plumbing, where each cold plate's outlet feeds the next server's inlet —
is attractive for TEG harvesting: the water leaves the *last* server
much hotter, so a single TEG module at the chain's end sees a bigger
temperature difference.  The cost is thermal: downstream CPUs are cooled
with pre-heated water.

:class:`PlumbingStudy` evaluates both arrangements for one group of
servers and quantifies the trade the paper settles implicitly by
choosing parallel.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..constants import NATURAL_WATER_TEMP_C
from ..errors import PhysicalRangeError
from ..teg.module import TegModule, default_server_module
from ..thermal.cpu_model import CoolingSetting, CpuThermalModel


@dataclass(frozen=True)
class PlumbingOutcome:
    """One arrangement's evaluation."""

    arrangement: str
    cpu_temps_c: np.ndarray
    inlet_temps_c: np.ndarray
    outlet_temps_c: np.ndarray
    generation_w: float

    @property
    def max_cpu_temp_c(self) -> float:
        """The binding CPU temperature of the arrangement."""
        return float(self.cpu_temps_c.max())

    @property
    def final_outlet_c(self) -> float:
        """Water temperature leaving the group."""
        return float(self.outlet_temps_c[-1])


@dataclass
class PlumbingStudy:
    """Compare serial and parallel plumbing of one server group.

    In the parallel arrangement every server sees ``setting.inlet_temp_c``
    and carries a per-server TEG module at its own outlet (the paper's
    H2P design).  In the serial arrangement the coolant visits the
    servers in order, and one TEG module harvests at the chain outlet —
    sized as ``teg_per_server x n`` so the TEG capital is identical.

    Attributes
    ----------
    cpu_model:
        Shared thermal calibration.
    teg_module:
        The per-server module (12 TEGs in the prototype).
    cold_source_temp_c:
        TEG cold side.
    """

    cpu_model: CpuThermalModel = field(default_factory=CpuThermalModel)
    teg_module: TegModule = field(default_factory=default_server_module)
    cold_source_temp_c: float = NATURAL_WATER_TEMP_C

    def parallel(self, utilisations: np.ndarray,
                 setting: CoolingSetting) -> PlumbingOutcome:
        """The paper's arrangement: identical inlets, per-server TEGs."""
        utils = self._check(utilisations)
        inlets = np.full(utils.shape, setting.inlet_temp_c)
        cpu_temps = self.cpu_model.cpu_temp_c(utils, setting)
        outlets = self.cpu_model.outlet_temp_c(utils, setting)
        generation = float(np.sum(self.teg_module.generation_w(
            outlets, self.cold_source_temp_c, setting.flow_l_per_h)))
        return PlumbingOutcome(
            arrangement="parallel",
            cpu_temps_c=np.asarray(cpu_temps, dtype=float),
            inlet_temps_c=inlets,
            outlet_temps_c=np.asarray(outlets, dtype=float),
            generation_w=generation,
        )

    def serial(self, utilisations: np.ndarray,
               setting: CoolingSetting) -> PlumbingOutcome:
        """Chain arrangement: each outlet feeds the next server's inlet.

        The whole chain carries the same flow; the group's TEG capital
        (n modules' worth of TEGs) sits at the chain outlet.  Note the
        serial chain sees ``n``-times less total coolant volume per
        server at the same per-branch flow, which is exactly why its
        outlet runs hot.
        """
        utils = self._check(utilisations)
        inlets = np.empty(utils.shape)
        outlets = np.empty(utils.shape)
        cpu_temps = np.empty(utils.shape)
        inlet = setting.inlet_temp_c
        for i, u in enumerate(utils):
            stage = CoolingSetting(flow_l_per_h=setting.flow_l_per_h,
                                   inlet_temp_c=float(inlet))
            inlets[i] = inlet
            cpu_temps[i] = self.cpu_model.cpu_temp_c(float(u), stage)
            outlets[i] = self.cpu_model.outlet_temp_c(float(u), stage)
            inlet = outlets[i]
        chain_module = TegModule(
            device=self.teg_module.device,
            group_size=self.teg_module.group_size,
            group_count=self.teg_module.group_count * len(utils))
        generation = float(chain_module.generation_w(
            float(outlets[-1]), self.cold_source_temp_c,
            setting.flow_l_per_h))
        return PlumbingOutcome(
            arrangement="serial",
            cpu_temps_c=cpu_temps,
            inlet_temps_c=inlets,
            outlet_temps_c=outlets,
            generation_w=generation,
        )

    def compare(self, utilisations: np.ndarray,
                setting: CoolingSetting) -> dict[str, PlumbingOutcome]:
        """Both arrangements on the same group and setting."""
        return {
            "parallel": self.parallel(utilisations, setting),
            "serial": self.serial(utilisations, setting),
        }

    def safe_serial_inlet(self, utilisations: np.ndarray,
                          flow_l_per_h: float,
                          safe_temp_c: float) -> float:
        """Hottest group inlet keeping every chained CPU at/below T_safe.

        Because each stage adds its outlet rise to the next inlet, the
        binding constraint is usually the *last* busy server.  Solved by
        bisection on the group inlet.
        """
        utils = self._check(utilisations)
        low, high = 0.0, 70.0
        for _ in range(48):
            mid = (low + high) / 2.0
            outcome = self.serial(utils, CoolingSetting(
                flow_l_per_h=flow_l_per_h, inlet_temp_c=mid))
            if outcome.max_cpu_temp_c > safe_temp_c:
                high = mid
            else:
                low = mid
        return low

    @staticmethod
    def _check(utilisations) -> np.ndarray:
        utils = np.asarray(utilisations, dtype=float)
        if utils.ndim != 1 or utils.size == 0:
            raise PhysicalRangeError(
                "utilisations must be a non-empty 1-D vector")
        if np.any((utils < 0) | (utils > 1)):
            raise PhysicalRangeError("all utilisations must be in [0, 1]")
        return utils

"""Vapour-compression chiller model.

The chiller is the expensive active element warm water cooling tries to
avoid (Sec. II-B).  The paper models its energy with Eq. 10:

    E_chiller = C_water * dT * n * f * t * rho / COP

i.e. the heat that must be removed from the circulating water divided by
the coefficient of performance (assumed 3.6, after Jiang et al.).  We also
expose a response-lag parameter: the paper stresses that a chiller "needs
several minutes" to cool the loop, which is what creates the hot-spot risk
TECs have to cover.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..constants import (
    CHILLER_COP,
    WATER_DENSITY_KG_PER_M3,
    WATER_HEAT_CAPACITY_J_PER_KG_C,
)
from ..errors import PhysicalRangeError
from ..units import joules_to_kwh, litres_per_hour_to_kg_per_s


@dataclass(frozen=True)
class Chiller:
    """A facility chiller characterised by its COP and response lag.

    Attributes
    ----------
    cop:
        Coefficient of performance: heat removed / electricity consumed.
    capacity_kw:
        Maximum heat-removal rate.
    response_time_s:
        Time for a set-point change to propagate to the loop (Sec. II-B:
        "the chiller needs a relatively long time (e.g., several minutes)").
    capex_usd:
        Purchase cost, used by the circulation-design optimisation Eq. 12.
    """

    cop: float = CHILLER_COP
    capacity_kw: float = 50.0
    response_time_s: float = 300.0
    capex_usd: float = 20000.0

    def __post_init__(self) -> None:
        if self.cop <= 0:
            raise PhysicalRangeError(f"COP must be > 0, got {self.cop}")
        if self.capacity_kw <= 0:
            raise PhysicalRangeError(
                f"capacity must be > 0, got {self.capacity_kw}")
        if self.response_time_s < 0:
            raise PhysicalRangeError("response time must be >= 0")
        if self.capex_usd < 0:
            raise PhysicalRangeError("capex must be >= 0")

    def electricity_w_for_heat(self, heat_w: float) -> float:
        """Electrical draw to remove ``heat_w`` of heat continuously."""
        if heat_w < 0:
            raise PhysicalRangeError(f"heat must be >= 0, got {heat_w}")
        if heat_w > self.capacity_kw * 1000.0:
            raise PhysicalRangeError(
                f"heat load {heat_w/1000:.1f} kW exceeds chiller capacity "
                f"{self.capacity_kw} kW")
        return heat_w / self.cop

    def cooling_energy_j(self, delta_t_c: float, n_servers: int,
                         flow_l_per_h: float, duration_s: float) -> float:
        """Electrical energy to cool a circulation by ``delta_t_c`` (Eq. 10).

        Parameters
        ----------
        delta_t_c:
            Temperature reduction the chiller must apply to the loop water.
        n_servers:
            Number of servers sharing the circulation.
        flow_l_per_h:
            Per-server flow rate.
        duration_s:
            Interval over which the reduction is sustained.

        Returns
        -------
        float
            Electrical energy in joules
            (``C_water * dT * n * f * t * rho / COP``).
        """
        if delta_t_c < 0:
            # The loop is already cool enough; the chiller idles.
            return 0.0
        if n_servers <= 0:
            raise PhysicalRangeError(
                f"n_servers must be > 0, got {n_servers}")
        if duration_s < 0:
            raise PhysicalRangeError(
                f"duration must be >= 0, got {duration_s}")
        mass_flow = litres_per_hour_to_kg_per_s(
            flow_l_per_h, WATER_DENSITY_KG_PER_M3)
        heat_j = (WATER_HEAT_CAPACITY_J_PER_KG_C * delta_t_c
                  * n_servers * mass_flow * duration_s)
        return heat_j / self.cop


def chiller_energy_kwh(delta_t_c: float, n_servers: int, flow_l_per_h: float,
                       duration_s: float, cop: float = CHILLER_COP) -> float:
    """Convenience wrapper around Eq. 10 returning kWh."""
    chiller = Chiller(cop=cop)
    return joules_to_kwh(chiller.cooling_energy_j(
        delta_t_c, n_servers, flow_l_per_h, duration_s))

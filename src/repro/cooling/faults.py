"""Actuator and equipment fault injection.

A control loop is only as good as its actuators.  This module wraps the
cooling plant's components with configurable fault modes so resilience
tests (and the E-AB13 benchmark) can ask: *what happens to safety and
generation when the hardware misbehaves?*

* :class:`FaultyCdu` — a CDU whose set-point tracking degrades: a stuck
  valve (flow pinned), a stuck supply temperature, or a biased sensor
  (applies an offset between requested and delivered inlet temperature);
* :class:`DegradedChiller` — a chiller whose COP has degraded (fouled
  condenser) by a given factor.

All wrappers preserve the wrapped component's interface, so they drop
into :class:`~repro.cooling.loop.WaterCirculation` unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import PhysicalRangeError
from ..thermal.cpu_model import CoolingSetting
from .cdu import CoolantDistributionUnit
from .chiller import Chiller

_FAULT_MODES = ("none", "stuck_flow", "stuck_temp", "sensor_bias")


@dataclass
class FaultyCdu(CoolantDistributionUnit):
    """A CDU with an injectable actuator fault.

    Attributes
    ----------
    fault_mode:
        ``"none"`` | ``"stuck_flow"`` | ``"stuck_temp"`` |
        ``"sensor_bias"``.
    stuck_flow_l_per_h / stuck_temp_c:
        The value the faulty actuator is frozen at.
    sensor_bias_c:
        Delivered inlet = requested + bias (a miscalibrated supply
        sensor makes the loop run hotter than the policy believes).
    """

    fault_mode: str = "none"
    stuck_flow_l_per_h: float = 20.0
    stuck_temp_c: float = 50.0
    sensor_bias_c: float = 0.0

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.fault_mode not in _FAULT_MODES:
            raise PhysicalRangeError(
                f"fault_mode must be one of {_FAULT_MODES}, "
                f"got {self.fault_mode!r}")

    def apply(self, setting: CoolingSetting) -> CoolingSetting:
        """Apply the requested setting through the fault."""
        requested = self.clamp(setting)
        flow = requested.flow_l_per_h
        temp = requested.inlet_temp_c
        if self.fault_mode == "stuck_flow":
            flow = self.stuck_flow_l_per_h
        elif self.fault_mode == "stuck_temp":
            temp = self.stuck_temp_c
        elif self.fault_mode == "sensor_bias":
            temp = temp + self.sensor_bias_c
        delivered = self.clamp(CoolingSetting(flow_l_per_h=flow,
                                              inlet_temp_c=temp))
        self._setting = delivered
        return delivered


@dataclass(frozen=True)
class DegradedChiller(Chiller):
    """A chiller whose COP has degraded by ``degradation_factor``."""

    degradation_factor: float = 0.7

    def __post_init__(self) -> None:
        super().__post_init__()
        if not 0.0 < self.degradation_factor <= 1.0:
            raise PhysicalRangeError(
                "degradation_factor must be in (0, 1]")

    @property
    def effective_cop(self) -> float:
        """COP after degradation."""
        return self.cop * self.degradation_factor

    def electricity_w_for_heat(self, heat_w: float) -> float:
        """Electrical draw at the degraded COP."""
        base = super().electricity_w_for_heat(heat_w)
        return base / self.degradation_factor

    def cooling_energy_j(self, delta_t_c: float, n_servers: int,
                         flow_l_per_h: float, duration_s: float) -> float:
        """Eq. 10 energy at the degraded COP."""
        base = super().cooling_energy_j(delta_t_c, n_servers,
                                        flow_l_per_h, duration_s)
        return base / self.degradation_factor

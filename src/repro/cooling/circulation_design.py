"""Economical water-circulation design (Sec. V-A).

How many servers should share one water circulation?  One server per
circulation lets the inlet temperature track each CPU individually (best
for TEG output) but needs a chiller and a pump per server; a single giant
circulation amortises hardware but forces the inlet temperature down to
whatever the *hottest* CPU demands.

The paper formalises the trade-off with order statistics: if the CPU
temperatures in a circulation are i.i.d. ``N(mu, sigma^2)``, the expected
maximum of ``n`` of them (Eqs. 13-17) determines how far the inlet must be
lowered (Eq. 18), hence the chiller energy (Eqs. 10-11); adding the
amortised chiller cost gives the total to minimise over ``n`` (Eq. 12).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np
from scipy import integrate, stats

from ..constants import (
    CHILLER_COP,
    DEFAULT_FLOW_RATE_L_PER_H,
    ELECTRICITY_PRICE_USD_PER_KWH,
    EVAL_CLUSTER_SERVERS,
    CPU_SAFE_TEMP_C,
)
from ..errors import PhysicalRangeError
from ..units import joules_to_kwh
from .chiller import Chiller


def expected_max_of_normal(mu: float, sigma: float, n: int) -> float:
    """Expectation of the maximum of ``n`` i.i.d. N(mu, sigma^2) draws.

    Implements Eqs. 15-17 of the paper:
    ``E[T_(n)] = int x * n * F(x)^(n-1) * f(x) dx`` evaluated by adaptive
    quadrature on the standard normal and rescaled.

    Parameters
    ----------
    mu / sigma:
        Mean and standard deviation of each CPU temperature.
    n:
        Number of servers in the circulation.

    Returns
    -------
    float
        ``E[max(T_1..T_n)]`` in the same unit as ``mu``.
    """
    if sigma < 0:
        raise PhysicalRangeError(f"sigma must be >= 0, got {sigma}")
    if n <= 0:
        raise PhysicalRangeError(f"n must be > 0, got {n}")
    if sigma == 0 or n == 1:
        return mu

    def integrand(z: float) -> float:
        return z * n * stats.norm.cdf(z) ** (n - 1) * stats.norm.pdf(z)

    expected_z, _ = integrate.quad(integrand, -12.0, 12.0, limit=200)
    return mu + sigma * expected_z


@dataclass(frozen=True)
class CirculationDesignResult:
    """Outcome of the circulation-size optimisation.

    Attributes
    ----------
    best_n:
        Cost-minimising number of servers per circulation.
    candidate_n:
        All evaluated circulation sizes.
    total_costs_usd:
        Total cost (energy + hardware) per candidate, aligned with
        ``candidate_n``.
    energy_costs_usd / hardware_costs_usd:
        The two components of the total.
    expected_inlet_reduction_c:
        ``E[dT_i]`` per candidate — how much the inlet must drop below the
        single-server ideal.
    """

    best_n: int
    candidate_n: np.ndarray
    total_costs_usd: np.ndarray
    energy_costs_usd: np.ndarray
    hardware_costs_usd: np.ndarray
    expected_inlet_reduction_c: np.ndarray

    @property
    def best_cost_usd(self) -> float:
        """Total cost at the optimum."""
        idx = int(np.argmin(self.total_costs_usd))
        return float(self.total_costs_usd[idx])

    def cost_for(self, n: int) -> float:
        """Total cost for a specific circulation size."""
        matches = np.nonzero(self.candidate_n == n)[0]
        if len(matches) == 0:
            raise KeyError(f"n={n} was not among the evaluated candidates")
        return float(self.total_costs_usd[matches[0]])


@dataclass(frozen=True)
class CirculationDesignProblem:
    """The Sec. V-A optimisation instance.

    Attributes
    ----------
    total_servers:
        Cluster size to partition into circulations (paper: 1,000).
    temp_mu_c / temp_sigma_c:
        Normal distribution of individual CPU temperatures under the
        workload mix (Eq. 13).
    safe_temp_c:
        ``T_safe`` every CPU must be brought down to.
    slope_k:
        The ``k`` of ``T_CPU = k * T_coolant + b`` used to translate a CPU
        overshoot into an inlet reduction (Eq. 18; paper: k in [1, 1.3]).
    flow_l_per_h:
        Constant per-server flow rate (Eq. 10's ``f``; paper example 50).
    horizon_hours:
        Operating time over which chiller energy is accumulated and
        hardware amortised (e.g. one year).
    electricity_price_usd_per_kwh:
        Tariff applied to chiller energy.
    chiller:
        Chiller model supplying COP and CapEx.
    chiller_lifetime_hours:
        Amortisation horizon of the chiller CapEx.
    """

    total_servers: int = EVAL_CLUSTER_SERVERS
    temp_mu_c: float = 55.0
    temp_sigma_c: float = 6.0
    safe_temp_c: float = CPU_SAFE_TEMP_C
    slope_k: float = 1.15
    flow_l_per_h: float = DEFAULT_FLOW_RATE_L_PER_H
    horizon_hours: float = 24.0 * 365.0
    electricity_price_usd_per_kwh: float = ELECTRICITY_PRICE_USD_PER_KWH
    chiller: Chiller = field(
        default_factory=lambda: Chiller(cop=CHILLER_COP, capacity_kw=500,
                                        capex_usd=20000.0))
    chiller_lifetime_hours: float = 24.0 * 365.0 * 10.0

    def __post_init__(self) -> None:
        if self.total_servers <= 0:
            raise PhysicalRangeError("total_servers must be > 0")
        if self.temp_sigma_c < 0:
            raise PhysicalRangeError("temp_sigma_c must be >= 0")
        if not 1.0 <= self.slope_k <= 1.5:
            raise PhysicalRangeError(
                f"slope k should be in [1, 1.5] (paper: [1, 1.3]), "
                f"got {self.slope_k}")
        if self.horizon_hours <= 0:
            raise PhysicalRangeError("horizon_hours must be > 0")

    def expected_inlet_reduction_c(self, n: int) -> float:
        """``E[dT_i]`` for an ``n``-server circulation (Eq. 18), >= 0."""
        expected_max = expected_max_of_normal(
            self.temp_mu_c, self.temp_sigma_c, n)
        return max(0.0, (expected_max - self.safe_temp_c) / self.slope_k)

    def chiller_energy_kwh(self, n: int) -> float:
        """Chiller energy of ONE ``n``-server circulation over the horizon.

        Eq. 10 with ``dT_i`` replaced by its expectation.
        """
        delta = self.expected_inlet_reduction_c(n)
        energy_j = self.chiller.cooling_energy_j(
            delta, n, self.flow_l_per_h, self.horizon_hours * 3600.0)
        return joules_to_kwh(energy_j)

    def circulation_count(self, n: int) -> int:
        """Number of circulations (``total_servers / n``, rounded up)."""
        if n <= 0:
            raise PhysicalRangeError(f"n must be > 0, got {n}")
        return math.ceil(self.total_servers / n)

    def energy_cost_usd(self, n: int) -> float:
        """Electricity cost of all chillers over the horizon (Eq. 11)."""
        per_circulation = self.chiller_energy_kwh(n)
        return (per_circulation * self.circulation_count(n)
                * self.electricity_price_usd_per_kwh)

    def hardware_cost_usd(self, n: int) -> float:
        """Amortised chiller CapEx over the horizon for ``1000/n`` chillers."""
        amortisation = self.horizon_hours / self.chiller_lifetime_hours
        return self.circulation_count(n) * self.chiller.capex_usd * amortisation

    def total_cost_usd(self, n: int) -> float:
        """Objective of Eq. 12 for one candidate circulation size."""
        return self.energy_cost_usd(n) + self.hardware_cost_usd(n)

    def optimise(self, candidates: list[int] | None = None,
                 ) -> CirculationDesignResult:
        """Minimise Eq. 12 over circulation sizes.

        Parameters
        ----------
        candidates:
            Circulation sizes to evaluate; defaults to every divisor-like
            size from 1 to ``total_servers`` on a log-spaced grid plus the
            exact divisors of ``total_servers``.

        Returns
        -------
        CirculationDesignResult
            Per-candidate cost breakdown and the optimum.
        """
        if candidates is None:
            grid = set(int(x) for x in np.unique(np.round(
                np.logspace(0, math.log10(self.total_servers), 40))))
            divisors = {d for d in range(1, self.total_servers + 1)
                        if self.total_servers % d == 0}
            candidates = sorted(grid | divisors)
        if not candidates:
            raise PhysicalRangeError("candidate list must not be empty")
        n_array = np.array(sorted(set(candidates)), dtype=int)
        if np.any(n_array <= 0) or np.any(n_array > self.total_servers):
            raise PhysicalRangeError(
                "candidates must lie in [1, total_servers]")
        energy = np.array([self.energy_cost_usd(int(n)) for n in n_array])
        hardware = np.array([self.hardware_cost_usd(int(n)) for n in n_array])
        total = energy + hardware
        reductions = np.array([
            self.expected_inlet_reduction_c(int(n)) for n in n_array])
        best = int(n_array[int(np.argmin(total))])
        return CirculationDesignResult(
            best_n=best,
            candidate_n=n_array,
            total_costs_usd=total,
            energy_costs_usd=energy,
            hardware_costs_usd=hardware,
            expected_inlet_reduction_c=reductions,
        )

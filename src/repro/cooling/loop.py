"""A complete water circulation serving ``n`` servers.

In H2P's evaluation (Sec. V-A) servers are grouped into circulations, each
with its own CDU, chiller share and centralised pump; every server in a
circulation sees the same inlet temperature and flow rate.  This module
glues the substrates together: given per-server utilisations and a cooling
setting, it evaluates CPU temperatures, outlet temperatures, TEG
generation, the chiller's share of the heat, and pump power.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from ..constants import NATURAL_WATER_TEMP_C
from ..errors import ConfigurationError, PhysicalRangeError
from ..teg.module import TegModule, default_server_module
from ..thermal.cpu_model import CoolingSetting, CpuThermalModel, cpu_power_w
from ..thermal.hydraulics import (
    PipeSegment,
    loop_pump_power_w,
    prototype_warm_loop,
)
from .cdu import CoolantDistributionUnit
from .chiller import Chiller
from .cooling_tower import CoolingTower


@dataclass(frozen=True)
class CirculationState:
    """Snapshot of one circulation after an evaluation step.

    All arrays are per-server and aligned with the utilisation input.
    """

    utilisations: np.ndarray
    cpu_temps_c: np.ndarray
    outlet_temps_c: np.ndarray
    cpu_powers_w: np.ndarray
    teg_powers_w: np.ndarray
    setting: CoolingSetting
    chiller_power_w: float
    tower_power_w: float
    pump_power_w: float

    @property
    def total_generation_w(self) -> float:
        """Total TEG output of the circulation."""
        return float(np.sum(self.teg_powers_w))

    @property
    def total_cpu_power_w(self) -> float:
        """Total CPU power consumption of the circulation."""
        return float(np.sum(self.cpu_powers_w))

    @property
    def max_cpu_temp_c(self) -> float:
        """Hottest CPU in the circulation (the safety-binding one)."""
        return float(np.max(self.cpu_temps_c))

    @property
    def mean_generation_w(self) -> float:
        """Average per-CPU TEG output (the paper's headline unit)."""
        return float(np.mean(self.teg_powers_w))


@dataclass
class WaterCirculation:
    """``n`` servers sharing one cooling loop, CDU and TEG cold source.

    Attributes
    ----------
    n_servers:
        Number of servers in the circulation.
    cpu_model:
        Thermal model shared by all (homogeneous) servers.
    teg_module:
        Per-server TEG module at each CPU outlet.
    cdu:
        Actuator for the cooling setting.
    chiller / tower:
        Facility equipment assigned to this circulation.
    cold_source_temp_c:
        Natural-water temperature on the TEG cold side (Sec. III-C).
    wet_bulb_c:
        Ambient wet-bulb temperature seen by the cooling tower.
    pipe_segments:
        Hydraulic elements per server branch, for pump-power accounting.
    """

    n_servers: int = 50
    cpu_model: CpuThermalModel = field(default_factory=CpuThermalModel)
    teg_module: TegModule = field(default_factory=default_server_module)
    cdu: CoolantDistributionUnit = field(
        default_factory=CoolantDistributionUnit)
    chiller: Chiller = field(default_factory=lambda: Chiller(capacity_kw=200))
    tower: CoolingTower = field(default_factory=CoolingTower)
    cold_source_temp_c: float = NATURAL_WATER_TEMP_C
    wet_bulb_c: float = 18.0
    pipe_segments: Sequence[PipeSegment] = field(
        default_factory=prototype_warm_loop)

    def __post_init__(self) -> None:
        if self.n_servers <= 0:
            raise PhysicalRangeError(
                f"n_servers must be > 0, got {self.n_servers}")

    def evaluate(self, utilisations: Sequence[float],
                 setting: CoolingSetting, *,
                 clamp_setting: bool = True,
                 cold_source_temp_c: float | None = None,
                 teg_output_factor: "np.ndarray | float" = 1.0
                 ) -> CirculationState:
        """Steady-state evaluation of the circulation at one instant.

        Parameters
        ----------
        utilisations:
            Per-server CPU utilisations in ``[0, 1]``; length must equal
            ``n_servers``.
        setting:
            The cooling setting to apply (clamped by the CDU).
        clamp_setting:
            Route the setting through the CDU actuator (the default).
            Fault injection passes ``False`` when the plant physically
            delivers something outside the actuator band (e.g. a stalled
            pump trickling below the valve minimum).
        cold_source_temp_c:
            Per-call override of the TEG cold-side temperature
            (chiller-loop excursion faults); ``None`` uses the nominal.
        teg_output_factor:
            Scalar or per-server multiplier on the nominal TEG output
            (open strings, accelerated fade); 1.0 means healthy.

        Returns
        -------
        CirculationState
            Per-server temperatures, generation, and facility powers.
        """
        utils = np.asarray(list(utilisations), dtype=float)
        if utils.shape != (self.n_servers,):
            raise ConfigurationError(
                f"expected {self.n_servers} utilisations, got {utils.shape}")
        if np.any((utils < 0) | (utils > 1)):
            raise PhysicalRangeError(
                "all utilisations must be in [0, 1]")
        applied = self.cdu.apply(setting) if clamp_setting else setting
        cold_side_c = (self.cold_source_temp_c if cold_source_temp_c is None
                       else cold_source_temp_c)

        # All model entry points are vectorised over utilisation.
        cpu_temps = self.cpu_model.cpu_temp_c(utils, applied)
        outlet_temps = self.cpu_model.outlet_temp_c(utils, applied)
        cpu_powers = self.cpu_model.cpu_power_w(utils)
        teg_powers = self.teg_module.generation_w(
            outlet_temps, cold_side_c, applied.flow_l_per_h)
        teg_powers = teg_powers * teg_output_factor

        # Facility side: all captured heat returns through the CDU and is
        # rejected by tower and (if the set-point is below the tower's
        # reach) the chiller.
        captured_heat_w = float(np.sum(cpu_powers))
        tower_heat, chiller_heat = self.tower.split_with_chiller(
            captured_heat_w, applied.inlet_temp_c, self.wet_bulb_c)
        chiller_power = self.chiller.electricity_w_for_heat(chiller_heat)
        tower_power = self.tower.electricity_w_for_heat(tower_heat)
        pump_power = self.n_servers * loop_pump_power_w(
            self.pipe_segments, applied.flow_l_per_h, applied.inlet_temp_c)

        return CirculationState(
            utilisations=utils,
            cpu_temps_c=cpu_temps,
            outlet_temps_c=outlet_temps,
            cpu_powers_w=cpu_powers,
            teg_powers_w=teg_powers,
            setting=applied,
            chiller_power_w=chiller_power,
            tower_power_w=tower_power,
            pump_power_w=pump_power,
        )

    def safety_violations(self, state: CirculationState,
                          margin_c: float = 0.0) -> list[int]:
        """Indices of servers above the CPU's maximum operating temperature."""
        limit = self.cpu_model.max_operating_temp_c - margin_c
        return [int(i) for i in
                np.nonzero(state.cpu_temps_c > limit)[0]]

"""Hot-spot dynamics: chiller lag vs TEC rescue (Sec. II-B).

Warm water cooling's Achilles heel: when a server's load spikes, the CPU
can cross its temperature limit "in a few seconds, while the chiller
needs a relatively long time (e.g., several minutes) to cool the water".
The hybrid architecture H2P builds on (Jiang et al., ISCA'19) parks a TEC
on each CPU to bridge exactly that gap.

:class:`HotSpotScenario` plays a sudden utilisation spike through the
lumped transient network under three mitigation strategies:

* ``"none"`` — the loop keeps its warm set-point; the CPU rides the spike
  unprotected (quantifies the risk of plain warm-water cooling);
* ``"chiller"`` — the set-point drops immediately but the loop water only
  cools after the chiller's response lag (first-order approach);
* ``"tec"`` — the loop stays warm and the TEC fires within
  ``tec_response_s`` (sub-second), pumping heat straight into the
  coolant.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..constants import CPU_MAX_OPERATING_TEMP_C
from ..errors import ConfigurationError, PhysicalRangeError
from ..thermal.cpu_model import CoolingSetting, CpuThermalModel, cpu_power_w
from .chiller import Chiller
from .tec import ThermoelectricCooler

_STRATEGIES = ("none", "chiller", "tec")


@dataclass(frozen=True)
class HotSpotOutcome:
    """Time series of one hot-spot episode under one strategy."""

    strategy: str
    times_s: np.ndarray
    cpu_temp_c: np.ndarray
    coolant_temp_c: np.ndarray
    tec_power_w: np.ndarray

    @property
    def peak_cpu_temp_c(self) -> float:
        """Hottest point of the episode."""
        return float(self.cpu_temp_c.max())

    @property
    def violation(self) -> bool:
        """Whether the CPU crossed its maximum operating temperature."""
        return self.peak_cpu_temp_c > CPU_MAX_OPERATING_TEMP_C

    @property
    def time_above_limit_s(self) -> float:
        """Seconds spent above the limit (0 when never crossed)."""
        if len(self.times_s) < 2:
            return 0.0
        dt = float(self.times_s[1] - self.times_s[0])
        return float(np.sum(self.cpu_temp_c
                            > CPU_MAX_OPERATING_TEMP_C) * dt)

    @property
    def tec_energy_j(self) -> float:
        """Electrical energy the TEC spent during the episode."""
        if len(self.times_s) < 2:
            return 0.0
        dt = float(self.times_s[1] - self.times_s[0])
        return float(np.sum(self.tec_power_w) * dt)


@dataclass(frozen=True)
class HotSpotScenario:
    """A sudden load spike on one warm water-cooled server.

    Attributes
    ----------
    baseline_utilisation / spike_utilisation:
        Load before and during the spike.
    spike_start_s / spike_duration_s:
        When the spike begins and how long it lasts.
    setting:
        The warm-water cooling setting in force when the spike hits.
    cpu_model:
        Steady-state calibration used for the thermal resistances.
    cpu_capacity_j_per_k:
        Lumped die+plate capacity (sets the seconds-scale rise the paper
        warns about).
    chiller:
        Supplies the response lag of the ``"chiller"`` strategy.
    chiller_setpoint_drop_c:
        How far the chiller drops the supply once it reacts.
    tec:
        The Peltier module of the ``"tec"`` strategy.
    tec_response_s:
        TEC actuation delay (fine-grained and fast, Sec. II-B).
    """

    baseline_utilisation: float = 0.2
    spike_utilisation: float = 1.0
    spike_start_s: float = 60.0
    spike_duration_s: float = 240.0
    setting: CoolingSetting = field(default_factory=lambda: CoolingSetting(
        flow_l_per_h=50.0, inlet_temp_c=52.0))
    cpu_model: CpuThermalModel = field(default_factory=CpuThermalModel)
    cpu_capacity_j_per_k: float = 150.0
    chiller: Chiller = field(default_factory=Chiller)
    chiller_setpoint_drop_c: float = 10.0
    tec: ThermoelectricCooler = field(
        default_factory=ThermoelectricCooler)
    tec_response_s: float = 1.0

    def __post_init__(self) -> None:
        for name in ("baseline_utilisation", "spike_utilisation"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise PhysicalRangeError(
                    f"{name} must be in [0, 1], got {value}")
        if self.spike_start_s < 0 or self.spike_duration_s <= 0:
            raise PhysicalRangeError(
                "spike_start_s must be >= 0 and spike_duration_s > 0")
        if self.cpu_capacity_j_per_k <= 0:
            raise PhysicalRangeError("cpu_capacity_j_per_k must be > 0")
        if self.tec_response_s < 0:
            raise PhysicalRangeError("tec_response_s must be >= 0")

    # ------------------------------------------------------------------

    def _utilisation_at(self, t: float) -> float:
        in_spike = (self.spike_start_s <= t
                    < self.spike_start_s + self.spike_duration_s)
        return self.spike_utilisation if in_spike \
            else self.baseline_utilisation

    def _coolant_at(self, t: float, strategy: str) -> float:
        inlet = self.setting.inlet_temp_c
        if strategy != "chiller":
            return inlet
        reaction_time = self.spike_start_s + self.chiller.response_time_s
        if t <= reaction_time:
            return inlet
        # First-order approach to the dropped set-point after the lag.
        tau = max(self.chiller.response_time_s / 3.0, 1e-9)
        progress = 1.0 - np.exp(-(t - reaction_time) / tau)
        return inlet - self.chiller_setpoint_drop_c * progress

    def run(self, strategy: str, duration_s: float = 600.0,
            dt_s: float = 0.5) -> HotSpotOutcome:
        """Integrate the episode under one mitigation strategy.

        Parameters
        ----------
        strategy:
            ``"none"``, ``"chiller"`` or ``"tec"``.
        duration_s / dt_s:
            Episode length and integration step.

        Returns
        -------
        HotSpotOutcome
            CPU/coolant temperature and TEC power time series.
        """
        if strategy not in _STRATEGIES:
            raise ConfigurationError(
                f"strategy must be one of {_STRATEGIES}, got {strategy!r}")
        if duration_s <= 0 or dt_s <= 0:
            raise PhysicalRangeError(
                "duration_s and dt_s must both be > 0")

        flow = self.setting.flow_l_per_h
        resistance = self.cpu_model.thermal_resistance_k_per_w(flow)
        slope = self.cpu_model.slope(flow)

        n_steps = int(np.floor(duration_s / dt_s)) + 1
        times = np.arange(n_steps) * dt_s
        cpu = np.empty(n_steps)
        coolant = np.empty(n_steps)
        tec_power = np.zeros(n_steps)

        # Start from the pre-spike steady state.
        cpu[0] = self.cpu_model.cpu_temp_c(self.baseline_utilisation,
                                           self.setting)
        coolant[0] = self.setting.inlet_temp_c

        for i in range(1, n_steps):
            t = times[i]
            coolant[i] = self._coolant_at(t, strategy)
            power = cpu_power_w(self._utilisation_at(t))
            pumped = 0.0
            if (strategy == "tec"
                    and t >= self.spike_start_s + self.tec_response_s
                    and t < (self.spike_start_s + self.spike_duration_s
                             + self.tec_response_s)):
                hot_side = coolant[i] + 5.0
                cold_side = min(cpu[i - 1], hot_side)
                current = self.tec.optimal_current_a(cold_side, hot_side,
                                                     samples=24)
                pumped = max(0.0, self.tec.heat_pumped_w(
                    current, cold_side, hot_side))
                tec_power[i] = self.tec.electrical_power_w(
                    current, cold_side, hot_side)
            # Lumped balance around the steady-state law
            # T_eq = k * T_coolant + R * (P - Q_tec).
            equilibrium = (slope * coolant[i]
                           + resistance * max(0.0, power - pumped))
            tau = self.cpu_capacity_j_per_k * resistance
            cpu[i] = equilibrium + (cpu[i - 1] - equilibrium) * np.exp(
                -dt_s / tau)

        return HotSpotOutcome(
            strategy=strategy,
            times_s=times,
            cpu_temp_c=cpu,
            coolant_temp_c=coolant,
            tec_power_w=tec_power,
        )

    def compare(self, duration_s: float = 600.0,
                dt_s: float = 0.5) -> dict[str, HotSpotOutcome]:
        """Run all three strategies on the same episode."""
        return {strategy: self.run(strategy, duration_s, dt_s)
                for strategy in _STRATEGIES}

"""Coolant distribution unit (CDU).

The CDU separates the facility water system (FWS) from the technology
cooling system (TCS) with a liquid-to-liquid heat exchanger, and regulates
the TCS supply temperature and flow with valves and pumps (Fig. 1 and
Sec. II-A).  It is the actuator through which the Sec. V-B policy applies
its chosen cooling setting ``{f, T_warm_in}``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import PhysicalRangeError
from ..thermal.coldplate import CounterflowHeatExchanger
from ..thermal.cpu_model import CoolingSetting


@dataclass
class CoolantDistributionUnit:
    """A CDU serving one water circulation.

    Attributes
    ----------
    heat_exchanger:
        The liquid-liquid exchanger coupling TCS to FWS.
    min_supply_c / max_supply_c:
        Admissible band for the TCS supply temperature set-point.
    min_flow_l_per_h / max_flow_l_per_h:
        Admissible per-server flow band (prototype valves span 20-300 L/H).
    """

    heat_exchanger: CounterflowHeatExchanger = field(
        default_factory=CounterflowHeatExchanger)
    min_supply_c: float = 20.0
    max_supply_c: float = 60.0
    min_flow_l_per_h: float = 20.0
    max_flow_l_per_h: float = 300.0
    _setting: CoolingSetting | None = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if self.min_supply_c >= self.max_supply_c:
            raise PhysicalRangeError(
                "min_supply_c must be below max_supply_c")
        if not 0 < self.min_flow_l_per_h < self.max_flow_l_per_h:
            raise PhysicalRangeError(
                "flow band must satisfy 0 < min < max")

    @property
    def setting(self) -> CoolingSetting:
        """Currently applied cooling setting (defaults to mid-band)."""
        if self._setting is None:
            self._setting = CoolingSetting(
                flow_l_per_h=self.min_flow_l_per_h,
                inlet_temp_c=(self.min_supply_c + self.max_supply_c) / 2.0)
        return self._setting

    def clamp(self, setting: CoolingSetting) -> CoolingSetting:
        """Clamp a requested setting into the CDU's actuator range."""
        flow = min(max(setting.flow_l_per_h, self.min_flow_l_per_h),
                   self.max_flow_l_per_h)
        temp = min(max(setting.inlet_temp_c, self.min_supply_c),
                   self.max_supply_c)
        return CoolingSetting(flow_l_per_h=flow, inlet_temp_c=temp)

    def apply(self, setting: CoolingSetting) -> CoolingSetting:
        """Apply (and clamp) a new cooling setting; returns the applied one."""
        applied = self.clamp(setting)
        self._setting = applied
        return applied

    def reject_to_fws(self, tcs_return_c: float, fws_supply_c: float,
                      tcs_flow_l_per_h: float,
                      fws_flow_l_per_h: float) -> tuple[float, float]:
        """Transfer the TCS return heat into the FWS.

        Returns ``(heat_w, tcs_out_c)`` — the heat moved across the
        exchanger and the TCS temperature after the exchange (this becomes
        the loop supply once the chiller/tower trims it to set-point).
        """
        heat = self.heat_exchanger.transferred_heat_w(
            tcs_return_c, fws_supply_c, tcs_flow_l_per_h, fws_flow_l_per_h)
        tcs_out, _ = self.heat_exchanger.outlet_temps_c(
            tcs_return_c, fws_supply_c, tcs_flow_l_per_h, fws_flow_l_per_h)
        return heat, tcs_out

"""TEGs powering TECs (Sec. VI-C1).

The hybrid cooling architecture (Jiang et al., ISCA'19) spends extra
electricity on TECs to absorb hot spots.  Sec. VI-C1 observes a virtuous
coupling: a working TEC pumps CPU heat into the water *faster*, raising
the CPU outlet temperature and therefore the TEG output — and the TEG
output can in turn offset the TEC's electrical draw.

:class:`TegTecCoupling` quantifies that loop for one server at one
operating point.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..constants import NATURAL_WATER_TEMP_C
from ..cooling.tec import ThermoelectricCooler
from ..errors import PhysicalRangeError
from ..teg.module import TegModule, default_server_module
from ..thermal.cpu_model import CoolingSetting, CpuThermalModel
from ..units import litres_per_hour_to_kg_per_s
from ..constants import WATER_HEAT_CAPACITY_J_PER_KG_C


@dataclass(frozen=True)
class CouplingOutcome:
    """Result of one TEG-TEC coupling evaluation."""

    tec_power_w: float
    tec_heat_pumped_w: float
    outlet_rise_c: float
    generation_without_tec_w: float
    generation_with_tec_w: float

    @property
    def extra_generation_w(self) -> float:
        """TEG output gained because the TEC is running."""
        return self.generation_with_tec_w - self.generation_without_tec_w

    @property
    def self_power_fraction(self) -> float:
        """Share of the TEC's draw covered by the *extra* TEG output."""
        if self.tec_power_w <= 0:
            return 1.0
        return min(1.0, max(0.0, self.extra_generation_w / self.tec_power_w))

    @property
    def net_cost_w(self) -> float:
        """TEC draw net of the extra generation (the true overhead)."""
        return self.tec_power_w - self.extra_generation_w


@dataclass
class TegTecCoupling:
    """Evaluate the TEG-TEC interplay on one server."""

    cpu_model: CpuThermalModel = field(default_factory=CpuThermalModel)
    teg_module: TegModule = field(default_factory=default_server_module)
    tec: ThermoelectricCooler = field(default_factory=ThermoelectricCooler)
    cold_source_temp_c: float = NATURAL_WATER_TEMP_C

    def evaluate(self, utilisation: float, setting: CoolingSetting,
                 tec_current_a: float) -> CouplingOutcome:
        """Run one operating point with and without the TEC energised.

        Parameters
        ----------
        utilisation:
            CPU load.
        setting:
            Cooling setting of the circulation.
        tec_current_a:
            Drive current of the TEC (0 disables it).

        Returns
        -------
        CouplingOutcome
            TEC cost, outlet-water temperature rise and TEG outputs.
        """
        if tec_current_a < 0:
            raise PhysicalRangeError("TEC current must be >= 0")
        outlet_base = self.cpu_model.outlet_temp_c(utilisation, setting)
        generation_base = self.teg_module.generation_w(
            outlet_base, self.cold_source_temp_c, setting.flow_l_per_h)
        if tec_current_a == 0:
            return CouplingOutcome(
                tec_power_w=0.0,
                tec_heat_pumped_w=0.0,
                outlet_rise_c=0.0,
                generation_without_tec_w=generation_base,
                generation_with_tec_w=generation_base,
            )
        cpu_temp = self.cpu_model.cpu_temp_c(utilisation, setting)
        # Cold side of the TEC sits on the CPU lid; hot side on the plate,
        # a few degrees above the coolant.
        hot_side = setting.inlet_temp_c + 5.0
        cold_side = min(cpu_temp, hot_side)
        pumped = max(0.0, self.tec.heat_pumped_w(tec_current_a, cold_side,
                                                 hot_side))
        tec_power = self.tec.electrical_power_w(tec_current_a, cold_side,
                                                hot_side)
        # All the TEC's electrical input plus the pumped heat leaves
        # through the coolant, raising the outlet temperature.
        mass_flow = litres_per_hour_to_kg_per_s(setting.flow_l_per_h)
        capacity = mass_flow * WATER_HEAT_CAPACITY_J_PER_KG_C
        outlet_rise = tec_power / capacity if capacity > 0 else 0.0
        generation_with = self.teg_module.generation_w(
            outlet_base + outlet_rise, self.cold_source_temp_c,
            setting.flow_l_per_h)
        return CouplingOutcome(
            tec_power_w=tec_power,
            tec_heat_pumped_w=pumped,
            outlet_rise_c=outlet_rise,
            generation_without_tec_w=generation_base,
            generation_with_tec_w=generation_with,
        )

"""Potential applications of TEG-enabled H2P (Sec. VI-C).

* :mod:`repro.applications.lighting` — sizing LED lighting supplied by
  TEG modules (Sec. VI-C2);
* :mod:`repro.applications.tec_powering` — TEGs powering the TECs of the
  hybrid cooling architecture (Sec. VI-C1).
"""

from .lighting import LedLightingPlan, Led
from .tec_powering import TegTecCoupling, CouplingOutcome

__all__ = [
    "LedLightingPlan",
    "Led",
    "TegTecCoupling",
    "CouplingOutcome",
]

"""TEGs for lighting (Sec. VI-C2).

Lighting is ~1 % of datacenter energy.  An ordinary LED draws ~0.05 W at
20 mA; high-power LEDs draw 1-2 W.  The paper observes that the ~3+ W a
TEG module generates is "enough for supplying power for some of the LEDs
used in datacenters"; this module turns that remark into a sizing tool.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..errors import PhysicalRangeError


@dataclass(frozen=True)
class Led:
    """One LED lamp type.

    Attributes
    ----------
    power_w:
        Electrical draw (0.05 W ordinary, 1-2 W high-power; Sec. VI-C2).
    forward_voltage_v:
        Forward voltage (~3 V for white LEDs); with the module's output
        voltage this sets how many can be chained in series.
    luminous_flux_lm:
        Light output, for illuminance budgeting.
    """

    power_w: float = 0.05
    forward_voltage_v: float = 3.0
    luminous_flux_lm: float = 5.0

    def __post_init__(self) -> None:
        if self.power_w <= 0:
            raise PhysicalRangeError("LED power must be > 0")
        if self.forward_voltage_v <= 0:
            raise PhysicalRangeError("forward voltage must be > 0")
        if self.luminous_flux_lm < 0:
            raise PhysicalRangeError("luminous flux must be >= 0")


#: Ordinary indicator/strip LED (0.05 W @ 20 mA, Sec. VI-C2).
ORDINARY_LED = Led(power_w=0.05, forward_voltage_v=3.0, luminous_flux_lm=5.0)

#: High-power lighting LED (1 W class, Sec. VI-C2).
HIGH_POWER_LED = Led(power_w=1.0, forward_voltage_v=3.2,
                     luminous_flux_lm=110.0)


@dataclass(frozen=True)
class LedLightingPlan:
    """How much lighting one server's TEG module can carry.

    Attributes
    ----------
    led:
        The lamp type to drive.
    converter_efficiency:
        DC-DC conversion efficiency between the module and the LED string.
    """

    led: Led = ORDINARY_LED
    converter_efficiency: float = 0.90

    def __post_init__(self) -> None:
        if not 0.0 < self.converter_efficiency <= 1.0:
            raise PhysicalRangeError(
                "converter efficiency must be in (0, 1]")

    def leds_supported(self, generation_w: float) -> int:
        """Number of LEDs a given TEG output can power continuously."""
        if generation_w < 0:
            raise PhysicalRangeError("generation must be >= 0")
        usable = generation_w * self.converter_efficiency
        return int(math.floor(usable / self.led.power_w))

    def luminous_flux_lm(self, generation_w: float) -> float:
        """Total light output achievable from a TEG output."""
        return self.leds_supported(generation_w) * self.led.luminous_flux_lm

    def energy_saved_kwh_per_month(self, generation_w: float,
                                   duty_cycle: float = 1.0) -> float:
        """Grid energy displaced by TEG-powered lighting per month."""
        if not 0.0 <= duty_cycle <= 1.0:
            raise PhysicalRangeError("duty cycle must be in [0, 1]")
        supported_w = self.leds_supported(generation_w) * self.led.power_w
        return supported_w * duty_cycle * 720.0 / 1000.0

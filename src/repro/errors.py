"""Exception hierarchy for the H2P reproduction library.

All library-specific errors derive from :class:`ReproError` so that callers
can catch every failure mode of the package with a single ``except`` clause
while still being able to discriminate on the concrete subclass.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the ``repro`` package."""


class ConfigurationError(ReproError):
    """A configuration object or parameter set is inconsistent or invalid."""


class PhysicalRangeError(ReproError, ValueError):
    """A physical quantity is outside its admissible range.

    Raised, for example, when a negative flow rate, an absolute temperature
    below 0 K, or a utilisation outside ``[0, 1]`` is supplied.
    """


class CoolingFailureError(ReproError):
    """A CPU exceeded its maximum operating temperature during simulation.

    The simulator raises this only when configured with
    ``strict_safety=True``; otherwise the violation is recorded in the
    result object and the run continues (matching how the paper's testbed
    logs rather than halts).

    ``server_id`` / ``temperature_c`` / ``step_index`` identify the
    offending (server, interval) pair machine-readably so supervisors can
    react without parsing the message.
    """

    def __init__(self, message: str, *, server_id: int | None = None,
                 temperature_c: float | None = None,
                 step_index: int | None = None) -> None:
        super().__init__(message)
        self.server_id = server_id
        self.temperature_c = temperature_c
        self.step_index = step_index

    def __reduce__(self):
        # Default exception pickling replays ``cls(*args)``, which would
        # drop the keyword-only attributes when a process-pool worker or
        # a shard outcome carries this error back to the coordinator.
        return (self.__class__, (str(self),),
                {"server_id": self.server_id,
                 "temperature_c": self.temperature_c,
                 "step_index": self.step_index})


class FaultInjectionError(ReproError):
    """A fault specification or schedule is invalid or cannot be applied.

    Raised by :mod:`repro.faults` when a spec names an unknown fault kind,
    carries an out-of-range magnitude, or a schedule file does not parse.
    """


class JobExecutionError(ReproError):
    """A batch job failed permanently (all retries exhausted or timed out).

    Attributes
    ----------
    scheme / trace_name:
        The ``(scheme, trace)`` key of the failed job.
    attempts:
        How many times the job was attempted before giving up.
    elapsed_s:
        Wall-clock time spent on the job across all attempts.
    timed_out:
        True when the final failure was the ``REPRO_JOB_TIMEOUT``
        wall-clock budget, not an exception from the job itself.
    """

    def __init__(self, message: str, *, scheme: str | None = None,
                 trace_name: str | None = None, attempts: int = 1,
                 elapsed_s: float = 0.0, timed_out: bool = False) -> None:
        super().__init__(message)
        self.scheme = scheme
        self.trace_name = trace_name
        self.attempts = attempts
        self.elapsed_s = elapsed_s
        self.timed_out = timed_out

    def __reduce__(self):
        # See :meth:`CoolingFailureError.__reduce__`.
        return (self.__class__, (str(self),),
                {"scheme": self.scheme, "trace_name": self.trace_name,
                 "attempts": self.attempts, "elapsed_s": self.elapsed_s,
                 "timed_out": self.timed_out})


class TraceFormatError(ReproError):
    """A workload trace file or array does not have the expected layout."""


class ConvergenceError(ReproError):
    """A numerical routine (optimiser, integrator) failed to converge."""

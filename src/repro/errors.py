"""Exception hierarchy for the H2P reproduction library.

All library-specific errors derive from :class:`ReproError` so that callers
can catch every failure mode of the package with a single ``except`` clause
while still being able to discriminate on the concrete subclass.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the ``repro`` package."""


class ConfigurationError(ReproError):
    """A configuration object or parameter set is inconsistent or invalid."""


class PhysicalRangeError(ReproError, ValueError):
    """A physical quantity is outside its admissible range.

    Raised, for example, when a negative flow rate, an absolute temperature
    below 0 K, or a utilisation outside ``[0, 1]`` is supplied.
    """


class CoolingFailureError(ReproError):
    """A CPU exceeded its maximum operating temperature during simulation.

    The simulator raises this only when configured with
    ``strict_safety=True``; otherwise the violation is recorded in the
    result object and the run continues (matching how the paper's testbed
    logs rather than halts).

    ``server_id`` / ``temperature_c`` / ``step_index`` identify the
    offending (server, interval) pair machine-readably so supervisors can
    react without parsing the message.
    """

    def __init__(self, message: str, *, server_id: int | None = None,
                 temperature_c: float | None = None,
                 step_index: int | None = None) -> None:
        super().__init__(message)
        self.server_id = server_id
        self.temperature_c = temperature_c
        self.step_index = step_index

    def __reduce__(self):
        # Default exception pickling replays ``cls(*args)``, which would
        # drop the keyword-only attributes when a process-pool worker or
        # a shard outcome carries this error back to the coordinator.
        return (self.__class__, (str(self),),
                {"server_id": self.server_id,
                 "temperature_c": self.temperature_c,
                 "step_index": self.step_index})


class FaultInjectionError(ReproError):
    """A fault specification or schedule is invalid or cannot be applied.

    Raised by :mod:`repro.faults` when a spec names an unknown fault kind,
    carries an out-of-range magnitude, or a schedule file does not parse.
    """


class JobExecutionError(ReproError):
    """A batch job failed permanently (all retries exhausted or timed out).

    Attributes
    ----------
    scheme / trace_name:
        The ``(scheme, trace)`` key of the failed job.
    attempts:
        How many times the job was attempted before giving up.
    elapsed_s:
        Wall-clock time spent on the job across all attempts.
    timed_out:
        True when the final failure was the ``REPRO_JOB_TIMEOUT``
        wall-clock budget, not an exception from the job itself.
    """

    def __init__(self, message: str, *, scheme: str | None = None,
                 trace_name: str | None = None, attempts: int = 1,
                 elapsed_s: float = 0.0, timed_out: bool = False) -> None:
        super().__init__(message)
        self.scheme = scheme
        self.trace_name = trace_name
        self.attempts = attempts
        self.elapsed_s = elapsed_s
        self.timed_out = timed_out

    def __reduce__(self):
        # See :meth:`CoolingFailureError.__reduce__`.
        return (self.__class__, (str(self),),
                {"scheme": self.scheme, "trace_name": self.trace_name,
                 "attempts": self.attempts, "elapsed_s": self.elapsed_s,
                 "timed_out": self.timed_out})


class ShardExecutionError(JobExecutionError):
    """One shard of a sharded job failed permanently.

    Wraps the worker-side exception so the coordinator (and its
    telemetry events) always see *which* tile failed and where it ran:
    the shard index, its global ``[step_start:step_stop) x
    [server_start:server_stop)`` bounds, the attempt number, and the pid
    of the worker that executed the failing attempt.
    """

    def __init__(self, message: str, *, shard_index: int | None = None,
                 step_start: int | None = None,
                 step_stop: int | None = None,
                 server_start: int | None = None,
                 server_stop: int | None = None,
                 attempt: int = 1, worker_pid: int | None = None,
                 scheme: str | None = None, trace_name: str | None = None,
                 elapsed_s: float = 0.0) -> None:
        super().__init__(message, scheme=scheme, trace_name=trace_name,
                         attempts=attempt, elapsed_s=elapsed_s)
        self.shard_index = shard_index
        self.step_start = step_start
        self.step_stop = step_stop
        self.server_start = server_start
        self.server_stop = server_stop
        self.attempt = attempt
        self.worker_pid = worker_pid

    def __reduce__(self):
        # See :meth:`CoolingFailureError.__reduce__`.
        return (self.__class__, (str(self),),
                {"shard_index": self.shard_index,
                 "step_start": self.step_start,
                 "step_stop": self.step_stop,
                 "server_start": self.server_start,
                 "server_stop": self.server_stop,
                 "attempt": self.attempt, "attempts": self.attempts,
                 "worker_pid": self.worker_pid, "scheme": self.scheme,
                 "trace_name": self.trace_name,
                 "elapsed_s": self.elapsed_s,
                 "timed_out": self.timed_out})

    def context(self) -> dict:
        """The shard coordinates as a flat dict (for telemetry events)."""
        return {"shard_index": self.shard_index,
                "step_start": self.step_start,
                "step_stop": self.step_stop,
                "server_start": self.server_start,
                "server_stop": self.server_stop,
                "attempt": self.attempt,
                "worker_pid": self.worker_pid}


class CheckpointError(ReproError):
    """A checkpoint directory cannot be used for this run.

    Raised when a checkpoint manifest's format version is unknown, its
    run key does not match the run being (re)started, or the directory
    contents are structurally invalid.  Individually corrupt shard files
    are *not* fatal — they are discarded and recomputed.
    """


class CacheError(ReproError):
    """A result-cache directory cannot be used for this process.

    Raised when a cache manifest (or a cached entry) declares a format
    version newer than this build understands, or when the directory's
    manifest is structurally invalid.  Individually corrupt or
    truncated entries are *not* fatal — they are discarded and the
    result recomputed.
    """


class ResultIntegrityError(ReproError):
    """A merged sharded result violates a physical or structural invariant.

    Raised by the post-merge auditor (:func:`repro.core.shard.
    audit_merged_result`) before a merged result is returned: step count
    or time base wrong, non-finite series, out-of-range PRE/utilisation,
    or violations inconsistent with the recorded counts.  Carries the
    individual findings on ``issues``.
    """

    def __init__(self, message: str,
                 issues: tuple[str, ...] = ()) -> None:
        super().__init__(message)
        self.issues = tuple(issues)

    def __reduce__(self):
        return (self.__class__, (str(self), self.issues))


class TraceFormatError(ReproError):
    """A workload trace file or array does not have the expected layout."""


class ConvergenceError(ReproError):
    """A numerical routine (optimiser, integrator) failed to converge."""

"""Exception hierarchy for the H2P reproduction library.

All library-specific errors derive from :class:`ReproError` so that callers
can catch every failure mode of the package with a single ``except`` clause
while still being able to discriminate on the concrete subclass.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the ``repro`` package."""


class ConfigurationError(ReproError):
    """A configuration object or parameter set is inconsistent or invalid."""


class PhysicalRangeError(ReproError, ValueError):
    """A physical quantity is outside its admissible range.

    Raised, for example, when a negative flow rate, an absolute temperature
    below 0 K, or a utilisation outside ``[0, 1]`` is supplied.
    """


class CoolingFailureError(ReproError):
    """A CPU exceeded its maximum operating temperature during simulation.

    The simulator raises this only when configured with
    ``strict_safety=True``; otherwise the violation is recorded in the
    result object and the run continues (matching how the paper's testbed
    logs rather than halts).
    """

    def __init__(self, message: str, *, server_id: int | None = None,
                 temperature_c: float | None = None) -> None:
        super().__init__(message)
        self.server_id = server_id
        self.temperature_c = temperature_c


class TraceFormatError(ReproError):
    """A workload trace file or array does not have the expected layout."""


class ConvergenceError(ReproError):
    """A numerical routine (optimiser, integrator) failed to converge."""

"""Command-line interface for the H2P reproduction.

Installed as the ``h2p`` console script::

    h2p simulate --trace common --servers 200      # Fig. 14/15 style run
    h2p batch --servers 100 --workers 4 --check    # engine sweep + identity
    h2p design --servers 1000 --sigma 6            # Sec. V-A loop sizing
    h2p tco --generation 4.177 --cpus 100000       # Table I economics
    h2p trace --name drastic --out drastic.csv     # synthetic trace export
    h2p hotspot --inlet 52 --spike 1.0             # Sec. II-B episode

Every subcommand prints a plain-text report and exits 0 on success.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from . import __version__


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="h2p",
        description="Heat to Power (ISCA 2020) reproduction toolkit")
    parser.add_argument("--version", action="version",
                        version=f"h2p {__version__}")
    subparsers = parser.add_subparsers(dest="command", required=True)

    simulate = subparsers.add_parser(
        "simulate", help="trace-driven scheme comparison (Fig. 14/15)")
    simulate.add_argument("--trace", default="common",
                          choices=("drastic", "irregular", "common"))
    simulate.add_argument("--servers", type=int, default=200)
    simulate.add_argument("--circulation-size", type=int, default=20)
    simulate.add_argument("--seed", type=int, default=None)
    simulate.set_defaults(handler=_cmd_simulate)

    batch = subparsers.add_parser(
        "batch", help="batched (scheme x trace) sweep through the "
                      "simulation engine")
    batch.add_argument("--traces", nargs="+",
                       default=["drastic", "irregular", "common"],
                       choices=("drastic", "irregular", "common"))
    batch.add_argument("--schemes", nargs="+",
                       default=["original", "loadbalance"],
                       choices=("original", "loadbalance"))
    batch.add_argument("--servers", type=int, default=100)
    batch.add_argument("--workers", type=int, default=None,
                       help="parallel workers (default: REPRO_WORKERS "
                            "or the CPU count)")
    batch.add_argument("--check", action="store_true",
                       help="also run the first job serially and "
                            "verify bit-identity")
    batch.add_argument("--faults", default=None, metavar="SPEC.JSON",
                       help="attach a fault schedule (JSON file, see "
                            "docs/faults.md) to every job")
    batch.add_argument("--max-retries", type=int, default=0,
                       help="extra attempts per failed job "
                            "(default: 0)")
    batch.add_argument("--timeout", type=float, default=None,
                       metavar="SECONDS",
                       help="per-job wall-clock budget (default: "
                            "REPRO_JOB_TIMEOUT or none)")
    batch.add_argument("--mode", default=None,
                       choices=("kernel", "step", "loop"),
                       help="execution mode for every job (default: "
                            "kernel)")
    batch.add_argument("--profile", default=None, metavar="PATH",
                       help="dump batch + per-job metrics (wall times, "
                            "steps/sec, cache hit rate, kernel-phase "
                            "timings) as JSON to this path")
    batch.set_defaults(handler=_cmd_batch)

    design = subparsers.add_parser(
        "design", help="circulation-size optimisation (Sec. V-A)")
    design.add_argument("--servers", type=int, default=1000)
    design.add_argument("--mu", type=float, default=55.0)
    design.add_argument("--sigma", type=float, default=6.0)
    design.add_argument("--chiller-capex", type=float, default=20000.0)
    design.set_defaults(handler=_cmd_design)

    tco = subparsers.add_parser(
        "tco", help="TCO and break-even report (Table I / Sec. V-D)")
    tco.add_argument("--generation", type=float, default=4.177,
                     help="average per-CPU TEG output, watts")
    tco.add_argument("--cpus", type=int, default=100_000)
    tco.set_defaults(handler=_cmd_tco)

    trace = subparsers.add_parser(
        "trace", help="generate and inspect/export a synthetic trace")
    trace.add_argument("--name", default="common",
                       choices=("drastic", "irregular", "common"))
    trace.add_argument("--servers", type=int, default=100)
    trace.add_argument("--hours", type=float, default=24.0)
    trace.add_argument("--seed", type=int, default=None)
    trace.add_argument("--out", default=None,
                       help="write the trace as matrix CSV to this path")
    trace.add_argument("--classify", action="store_true",
                       help="run the workload classifier on the trace")
    trace.set_defaults(handler=_cmd_trace)

    reuse = subparsers.add_parser(
        "reuse", help="compare H2P vs district heating vs CCHP "
                      "(Sec. II-C)")
    reuse.add_argument("--climate", default="hangzhou",
                       choices=("hangzhou", "singapore", "stockholm"))
    reuse.add_argument("--servers", type=int, default=1000)
    reuse.set_defaults(handler=_cmd_reuse)

    audit = subparsers.add_parser(
        "audit", help="run the physical-consistency self-audits")
    audit.add_argument("--servers", type=int, default=60)
    audit.set_defaults(handler=_cmd_audit)

    experiment = subparsers.add_parser(
        "experiment", help="regenerate one paper experiment by id")
    experiment.add_argument("id", nargs="?", default=None,
                            help="experiment id (e.g. E-F14); omit to "
                                 "list all")
    experiment.set_defaults(handler=_cmd_experiment)

    fleet = subparsers.add_parser(
        "fleet", help="heterogeneous-fleet evaluation (Sec. VII)")
    fleet.add_argument("--servers", type=int, default=120)
    fleet.add_argument("--trace", default="common",
                       choices=("drastic", "irregular", "common"))
    fleet.set_defaults(handler=_cmd_fleet)

    seasonal = subparsers.add_parser(
        "seasonal", help="annual harvest profile (12 representative "
                         "days)")
    seasonal.add_argument("--servers", type=int, default=60)
    seasonal.add_argument("--climate", default="hangzhou",
                          choices=("hangzhou", "singapore",
                                   "stockholm"))
    seasonal.set_defaults(handler=_cmd_seasonal)

    hotspot = subparsers.add_parser(
        "hotspot", help="hot-spot episode comparison (Sec. II-B)")
    hotspot.add_argument("--inlet", type=float, default=52.0)
    hotspot.add_argument("--flow", type=float, default=50.0)
    hotspot.add_argument("--baseline", type=float, default=0.2)
    hotspot.add_argument("--spike", type=float, default=1.0)
    hotspot.set_defaults(handler=_cmd_hotspot)

    return parser


# ----------------------------------------------------------------------
# Handlers
# ----------------------------------------------------------------------

def _cmd_simulate(args: argparse.Namespace) -> int:
    from .core.config import teg_loadbalance, teg_original
    from .core.h2p import H2PSystem
    from .workloads.synthetic import trace_by_name

    kwargs = {} if args.seed is None else {"seed": args.seed}
    trace = trace_by_name(args.trace, n_servers=args.servers, **kwargs)
    overrides = dict(circulation_size=args.circulation_size)
    comparison = H2PSystem().compare(
        trace, teg_original(**overrides), teg_loadbalance(**overrides))
    print(f"trace {trace.name!r}: {trace.n_servers} servers, "
          f"{trace.n_steps} x {trace.interval_s / 60.0:.0f}-min steps")
    for result in (comparison.baseline, comparison.optimised):
        print(f"  {result.scheme:<16} avg {result.average_generation_w:6.3f} W"
              f"  peak {result.peak_generation_w:6.3f} W"
              f"  PRE {result.average_pre:6.1%}"
              f"  violations {result.total_safety_violations}")
    print(f"  improvement: {comparison.generation_improvement:.1%} "
          f"(paper: 13.08 % overall)")
    return 0


def _cmd_batch(args: argparse.Namespace) -> int:
    from .core.config import teg_loadbalance, teg_original
    from .core.engine import SimulationJob, run_batch
    from .core.simulator import DatacenterSimulator
    from .faults import FaultSchedule
    from .workloads.synthetic import trace_by_name

    schedule = None
    if args.faults is not None:
        schedule = FaultSchedule.from_json(args.faults)
        print(f"fault schedule: {len(schedule)} spec(s), "
              f"seed {schedule.seed} ({args.faults})")
    factories = {"original": teg_original, "loadbalance": teg_loadbalance}
    traces = [trace_by_name(name, n_servers=args.servers)
              for name in args.traces]
    jobs = [SimulationJob(trace=trace, config=factories[scheme](),
                          faults=schedule)
            for trace in traces for scheme in args.schemes]
    batch = run_batch(jobs, args.workers, mode=args.mode,
                      max_retries=args.max_retries,
                      job_timeout_s=args.timeout)
    print(f"{'scheme':<16} {'trace':<10} {'avg W':>7} {'PRE':>7} "
          f"{'steps/s':>8} {'cache':>6}")
    for result in batch.results:
        metrics = result.metrics
        line = (f"{result.scheme:<16} {result.trace_name:<10} "
                f"{result.average_generation_w:>7.3f} "
                f"{result.average_pre:>6.1%} "
                f"{metrics.steps_per_s:>8.0f} "
                f"{metrics.cache_hit_rate:>6.1%}")
        if result.degraded_steps:
            line += (f"  degraded {result.degraded_steps} steps, "
                     f"lost {result.total_lost_harvest_kwh:.3f} kWh")
        print(line)
    aggregate = batch.metrics
    print(f"batch: {aggregate.n_jobs} jobs via {aggregate.executor} "
          f"x{aggregate.n_workers} in {aggregate.wall_time_s:.2f} s "
          f"({aggregate.steps_per_s:.0f} steps/s, cache "
          f"{aggregate.cache_hit_rate:.1%})")
    if aggregate.retries or aggregate.timeouts:
        print(f"recovery: {aggregate.retries} retrie(s), "
              f"{aggregate.timeouts} timeout(s)")
    for failed in batch.failures:
        print(f"FAILED {failed.scheme} on {failed.trace_name}: "
              f"[{failed.error_type}] {failed.message} "
              f"({failed.attempts} attempt(s), "
              f"{failed.elapsed_s:.1f} s)")
    if args.profile:
        _write_batch_profile(args.profile, batch)
        print(f"profile written to {args.profile}")
    if args.check and batch.results:
        first = jobs[0]
        serial = DatacenterSimulator(first.trace, first.config,
                                     faults=first.faults).run()
        identical = serial.records == batch.results[0].records
        print(f"serial check: {'bit-identical' if identical else 'MISMATCH'}")
        if not identical:
            return 1
    return 0 if batch.ok else 1


def _write_batch_profile(path: str, batch) -> None:
    """Dump BatchMetrics + per-job EngineMetrics summaries as JSON."""
    import json

    profile = {
        "batch": batch.metrics.summary(),
        "jobs": [
            {
                "scheme": result.scheme,
                "trace": result.trace_name,
                **(result.metrics.summary()
                   if result.metrics is not None else {}),
            }
            for result in batch.results
        ],
        "failures": [
            {
                "scheme": failed.scheme,
                "trace": failed.trace_name,
                "error_type": failed.error_type,
                "message": failed.message,
                "attempts": failed.attempts,
                "elapsed_s": round(failed.elapsed_s, 4),
            }
            for failed in batch.failures
        ],
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(profile, handle, indent=2, sort_keys=True)
        handle.write("\n")


def _cmd_design(args: argparse.Namespace) -> int:
    from .cooling.chiller import Chiller
    from .cooling.circulation_design import CirculationDesignProblem

    problem = CirculationDesignProblem(
        total_servers=args.servers, temp_mu_c=args.mu,
        temp_sigma_c=args.sigma,
        chiller=Chiller(capacity_kw=500, capex_usd=args.chiller_capex))
    result = problem.optimise()
    print(f"{'n/circ':>8} {'E[dT] C':>9} {'total $/yr':>14}")
    shown = [n for n in (1, 5, 10, 20, 50, 100, 200, 500, args.servers)
             if n <= args.servers]
    for n in shown:
        try:
            cost = result.cost_for(n)
        except KeyError:
            cost = problem.total_cost_usd(n)
        marker = "  <- optimum" if n == result.best_n else ""
        print(f"{n:>8} {problem.expected_inlet_reduction_c(n):>9.2f} "
              f"{cost:>14,.0f}{marker}")
    print(f"optimal circulation size: {result.best_n} "
          f"(${result.best_cost_usd:,.0f}/year)")
    return 0


def _cmd_tco(args: argparse.Namespace) -> int:
    from .economics.breakeven import BreakEvenAnalysis
    from .economics.tco import TcoModel
    from .reliability import TegDegradationModel

    breakdown = TcoModel().breakdown(args.generation)
    analysis = BreakEvenAnalysis(n_cpus=args.cpus)
    print(f"average generation : {args.generation:.3f} W/CPU")
    print(f"TCO without H2P    : ${breakdown.tco_no_teg_usd:.2f}"
          f"/server/month")
    print(f"TCO with H2P       : ${breakdown.tco_h2p_usd:.2f}"
          f"/server/month")
    print(f"reduction          : {breakdown.reduction_fraction:.2%}")
    print(f"fleet              : {args.cpus:,} CPUs")
    print(f"annual savings     : "
          f"${breakdown.annual_savings_usd(args.cpus):,.0f}")
    print(f"daily energy       : "
          f"{analysis.daily_energy_kwh(args.generation):,.1f} kWh")
    ideal = analysis.break_even_days(args.generation)
    print(f"break-even (ideal) : {ideal:,.0f} days")
    if args.generation > 0:
        degraded = TegDegradationModel().degraded_break_even_days(
            args.generation,
            analysis.purchase_price_usd / (args.generation * args.cpus))
        print(f"break-even (faded) : {degraded:,.0f} days "
              f"(0.4 %/yr output fade)")
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from .workloads.loader import save_trace_csv
    from .workloads.synthetic import trace_by_name

    kwargs = dict(n_servers=args.servers,
                  duration_s=args.hours * 3600.0)
    if args.seed is not None:
        kwargs["seed"] = args.seed
    trace = trace_by_name(args.name, **kwargs)
    stats = trace.statistics()
    print(f"{trace!r}")
    print(f"statistics: {stats.describe()}")
    if args.classify:
        from .workloads.analysis import TraceClassifier

        explanation = TraceClassifier().explain(trace)
        label = explanation.pop("class")
        details = ", ".join(f"{k}={v}" for k, v in explanation.items())
        print(f"classified as: {label} ({details})")
    if args.out:
        save_trace_csv(trace, args.out)
        print(f"written to {args.out}")
    return 0


def _cmd_reuse(args: argparse.Namespace) -> int:
    from .environment import CLIMATES
    from .heatreuse.comparison import ReuseComparison

    comparison = ReuseComparison(n_servers=args.servers,
                                 climate=CLIMATES[args.climate])
    print(f"climate {args.climate}: {args.servers} servers shedding "
          f"{comparison.total_heat_kw:.0f} kW of warm-water heat")
    for option in comparison.all_options():
        print(f"  {option.name:<22} ${option.annual_value_usd:>10,.0f}"
              f"/year  (utilisation {option.utilisation:.0%}; "
              f"{option.notes})")
    return 0


def _cmd_audit(args: argparse.Namespace) -> int:
    import numpy as np

    from .cooling.loop import WaterCirculation
    from .core.h2p import H2PSystem
    from .thermal.cpu_model import CoolingSetting
    from .validation import (
        audit_circulation_state,
        audit_simulation_result,
        audit_teg_models,
    )
    from .workloads.synthetic import common_trace

    circulation = WaterCirculation(n_servers=8)
    state = circulation.evaluate(
        np.linspace(0.0, 1.0, 8),
        CoolingSetting(flow_l_per_h=100.0, inlet_temp_c=48.0))
    result = H2PSystem().evaluate(
        common_trace(n_servers=args.servers, duration_s=4 * 3600.0))
    reports = [
        audit_teg_models(),
        audit_circulation_state(circulation, state),
        audit_simulation_result(result),
    ]
    for report in reports:
        print(report)
    return 0 if all(report.ok for report in reports) else 1


def _cmd_hotspot(args: argparse.Namespace) -> int:
    from .constants import CPU_MAX_OPERATING_TEMP_C
    from .cooling.hotspot import HotSpotScenario
    from .thermal.cpu_model import CoolingSetting

    scenario = HotSpotScenario(
        baseline_utilisation=args.baseline,
        spike_utilisation=args.spike,
        setting=CoolingSetting(flow_l_per_h=args.flow,
                               inlet_temp_c=args.inlet))
    outcomes = scenario.compare()
    print(f"spike {args.baseline:.0%} -> {args.spike:.0%} at "
          f"{args.inlet:.0f} C inlet "
          f"(limit {CPU_MAX_OPERATING_TEMP_C} C)")
    for strategy in ("none", "chiller", "tec"):
        outcome = outcomes[strategy]
        verdict = "VIOLATION" if outcome.violation else "safe"
        print(f"  {strategy:<8} peak {outcome.peak_cpu_temp_c:6.1f} C  "
              f"above-limit {outcome.time_above_limit_s:6.1f} s  "
              f"TEC {outcome.tec_energy_j / 1000.0:6.1f} kJ  [{verdict}]")
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    from .experiments import list_experiments, run_experiment

    if args.id is None:
        for experiment_id, title in list_experiments():
            print(f"{experiment_id:<7} {title}")
        return 0
    outcome = run_experiment(args.id)
    print(outcome.describe())
    return 0


def _cmd_fleet(args: argparse.Namespace) -> int:
    from .fleet import FleetMix
    from .workloads.synthetic import trace_by_name

    trace = trace_by_name(args.trace, n_servers=args.servers)
    mix = FleetMix()
    outcomes = mix.run(trace)
    print(f"{'CPU model':<18} {'servers':>7} {'T_safe C':>9} "
          f"{'gen W/CPU':>10} {'violations':>10}")
    for outcome in outcomes:
        print(f"{outcome.spec.name:<18} {outcome.n_servers:>7} "
              f"{outcome.spec.safe_temp_c:>9.1f} "
              f"{outcome.generation_w:>10.3f} "
              f"{outcome.result.total_safety_violations:>10}")
    summary = FleetMix.aggregate(outcomes)
    print(f"fleet: {summary['fleet_generation_w']:.3f} W/CPU, "
          f"PRE {summary['fleet_pre']:.1%}")
    return 0


def _cmd_seasonal(args: argparse.Namespace) -> int:
    from .core.seasonal import SeasonalStudy, annual_summary
    from .environment import CLIMATES
    from .workloads.synthetic import common_trace

    trace = common_trace(n_servers=args.servers)
    study = SeasonalStudy(trace=trace,
                          wet_bulb=CLIMATES[args.climate])
    outcomes = study.run()
    print(f"{'month':<6} {'cold C':>7} {'wet bulb C':>11} "
          f"{'gen W/CPU':>10} {'PRE':>7}")
    for outcome in outcomes:
        print(f"{outcome.month:<6} {outcome.cold_source_c:>7.1f} "
              f"{outcome.wet_bulb_c:>11.1f} "
              f"{outcome.generation_w:>10.3f} "
              f"{outcome.result.average_pre:>6.1%}")
    summary = annual_summary(outcomes)
    print(f"annual mean {summary['generation_mean_w']:.2f} W/CPU, "
          f"swing {summary['seasonal_swing']:.0%} "
          f"(best {summary['best_month']}, worst "
          f"{summary['worst_month']})")
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = _build_parser()
    args = parser.parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":
    sys.exit(main())

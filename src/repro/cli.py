"""Command-line interface for the H2P reproduction.

Installed as the ``h2p`` console script::

    h2p simulate --trace common --servers 200      # Fig. 14/15 style run
    h2p batch --servers 100 --workers 4 --check    # engine sweep + identity
    h2p batch --telemetry out/ --trace-spans       # run with observability
    h2p design --servers 1000 --sigma 6            # Sec. V-A loop sizing
    h2p tco --generation 4.177 --cpus 100000       # Table I economics
    h2p trace --name drastic --out drastic.csv     # synthetic trace export
    h2p hotspot --inlet 52 --spike 1.0             # Sec. II-B episode

Every subcommand routes its output through a
:class:`repro.obs.Reporter`, so the global ``--quiet`` and ``--json``
flags behave consistently: the default is the classic plain-text
report, ``--quiet`` keeps only failure lines, and ``--json`` prints one
JSON document of structured results.  Exit code is 0 on success.

``h2p batch --telemetry DIR`` additionally records the run through
:mod:`repro.obs` and writes ``manifest.json``, ``events.jsonl`` and a
Prometheus ``metrics.prom`` snapshot into ``DIR`` (see
``docs/observability.md``).
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from . import __version__
from .obs import Reporter


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="h2p",
        description="Heat to Power (ISCA 2020) reproduction toolkit")
    parser.add_argument("--version", action="version",
                        version=f"h2p {__version__}")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress informational output (failure "
                             "lines still print)")
    parser.add_argument("--json", action="store_true",
                        help="print one JSON document of structured "
                             "results instead of text")
    subparsers = parser.add_subparsers(dest="command", required=True)

    simulate = subparsers.add_parser(
        "simulate", help="trace-driven scheme comparison (Fig. 14/15)")
    simulate.add_argument("--trace", default="common",
                          choices=("drastic", "irregular", "common"))
    simulate.add_argument("--servers", type=int, default=200)
    simulate.add_argument("--circulation-size", type=int, default=20)
    simulate.add_argument("--seed", type=int, default=None)
    simulate.set_defaults(handler=_cmd_simulate)

    batch = subparsers.add_parser(
        "batch", help="batched (scheme x trace) sweep through the "
                      "simulation engine")
    batch.add_argument("--traces", nargs="+",
                       default=["drastic", "irregular", "common"],
                       choices=("drastic", "irregular", "common"))
    batch.add_argument("--schemes", nargs="+",
                       default=["original", "loadbalance"],
                       choices=("original", "loadbalance", "static"))
    batch.add_argument("--servers", type=int, default=100)
    batch.add_argument("--workers", type=int, default=None,
                       help="parallel workers (default: REPRO_WORKERS "
                            "or the CPU count)")
    batch.add_argument("--check", action="store_true",
                       help="also run the first job serially and "
                            "verify bit-identity")
    batch.add_argument("--faults", default=None, metavar="SPEC.JSON",
                       help="attach a fault schedule (JSON file, see "
                            "docs/faults.md) to every job")
    batch.add_argument("--max-retries", type=int, default=0,
                       help="extra attempts per failed job "
                            "(default: 0)")
    batch.add_argument("--timeout", type=float, default=None,
                       metavar="SECONDS",
                       help="per-job wall-clock budget (default: "
                            "REPRO_JOB_TIMEOUT or none)")
    batch.add_argument("--mode", default=None,
                       choices=("kernel", "step", "loop"),
                       help="execution mode for every job (default: "
                            "kernel)")
    batch.add_argument("--prefer", default="process",
                       choices=("process", "thread", "serial"),
                       help="preferred executor (default: process, "
                            "with automatic degradation)")
    batch.add_argument("--shard", default=None, action="store_true",
                       help="force fleet-scale sharding of every job "
                            "(default: automatic above "
                            "%d trace cells)" % 2_000_000)
    batch.add_argument("--no-shard", dest="shard", action="store_false",
                       help="never shard, even above the automatic "
                            "threshold")
    batch.add_argument("--shard-servers", type=int, default=None,
                       metavar="N",
                       help="target shard width in servers (rounded "
                            "down to whole circulations; default: "
                            "REPRO_SHARD_SERVERS or 2500)")
    batch.add_argument("--shard-steps", type=int, default=None,
                       metavar="N",
                       help="shard time-window length in control "
                            "intervals (default: REPRO_SHARD_STEPS "
                            "or 2500)")
    batch.add_argument("--checkpoint", default=None, metavar="DIR",
                       help="persist completed shards/jobs into DIR "
                            "(crash-safe, content-keyed; see "
                            "docs/checkpoint.md); without --resume any "
                            "matching state in DIR is discarded and "
                            "the run starts fresh")
    batch.add_argument("--resume", action="store_true",
                       help="with --checkpoint: skip work already "
                            "completed in DIR by a previous "
                            "(interrupted) run of the same batch; "
                            "results are bit-identical to an "
                            "uninterrupted run")
    batch.add_argument("--cache", default=None, metavar="DIR",
                       help="serve repeated jobs from a "
                            "content-addressed result cache in DIR "
                            "(bit-identical to recompute; see "
                            "docs/cache.md; default: REPRO_CACHE / "
                            "REPRO_CACHE_DIR or off)")
    batch.add_argument("--no-cache", dest="cache", action="store_const",
                       const=False,
                       help="ignore REPRO_CACHE and run everything "
                            "fresh")
    batch.add_argument("--shard-autotune", default=None,
                       action="store_true",
                       help="probe the first shard and re-size the "
                            "rest for throughput (bit-identical; "
                            "default: REPRO_SHARD_AUTOTUNE or off); "
                            "skipped with --checkpoint")
    batch.add_argument("--shard-straggler", type=float, default=None,
                       metavar="SECONDS",
                       help="speculatively re-dispatch a shard that "
                            "has been running longer than this; first "
                            "completion wins (default: "
                            "REPRO_SHARD_STRAGGLER or off)")
    batch.add_argument("--telemetry", default=None, metavar="DIR",
                       help="record the run through repro.obs and "
                            "write manifest.json, events.jsonl and "
                            "metrics.prom into DIR (default: "
                            "REPRO_TELEMETRY_DIR or off); supersedes "
                            "the old --profile JSON dump")
    batch.add_argument("--trace-spans", action="store_true",
                       help="enable telemetry and print the "
                            "hierarchical span-timing tree after the "
                            "batch")
    batch.add_argument("--metrics-port", type=int, default=None,
                       metavar="PORT",
                       help="serve live GET /metrics (Prometheus text) "
                            "and GET /healthz on 127.0.0.1:PORT while "
                            "the batch runs (0 picks an ephemeral "
                            "port; default: REPRO_METRICS_PORT or "
                            "off); implies telemetry")
    batch.set_defaults(handler=_cmd_batch)

    design = subparsers.add_parser(
        "design", help="circulation-size optimisation (Sec. V-A)")
    design.add_argument("--servers", type=int, default=1000)
    design.add_argument("--mu", type=float, default=55.0)
    design.add_argument("--sigma", type=float, default=6.0)
    design.add_argument("--chiller-capex", type=float, default=20000.0)
    design.set_defaults(handler=_cmd_design)

    tco = subparsers.add_parser(
        "tco", help="TCO and break-even report (Table I / Sec. V-D)")
    tco.add_argument("--generation", type=float, default=4.177,
                     help="average per-CPU TEG output, watts")
    tco.add_argument("--cpus", type=int, default=100_000)
    tco.set_defaults(handler=_cmd_tco)

    trace = subparsers.add_parser(
        "trace", help="generate and inspect/export a synthetic trace")
    trace.add_argument("--name", default="common",
                       choices=("drastic", "irregular", "common"))
    trace.add_argument("--servers", type=int, default=100)
    trace.add_argument("--hours", type=float, default=24.0)
    trace.add_argument("--seed", type=int, default=None)
    trace.add_argument("--out", default=None,
                       help="write the trace as matrix CSV to this path")
    trace.add_argument("--classify", action="store_true",
                       help="run the workload classifier on the trace")
    trace.set_defaults(handler=_cmd_trace)

    reuse = subparsers.add_parser(
        "reuse", help="compare H2P vs district heating vs CCHP "
                      "(Sec. II-C)")
    reuse.add_argument("--climate", default="hangzhou",
                       choices=("hangzhou", "singapore", "stockholm"))
    reuse.add_argument("--servers", type=int, default=1000)
    reuse.set_defaults(handler=_cmd_reuse)

    audit = subparsers.add_parser(
        "audit", help="run the physical-consistency self-audits, or "
                      "diff two run manifests with --manifest")
    audit.add_argument("--servers", type=int, default=60)
    audit.add_argument("--manifest", nargs=2, default=None,
                       metavar=("A", "B"),
                       help="compare two manifest.json files: metric "
                            "totals (relative-tolerance aware) and "
                            "span-tree structure; exit 1 on drift")
    audit.add_argument("--tolerance", type=float, default=1e-6,
                       metavar="REL",
                       help="relative tolerance for float metric "
                            "comparisons in --manifest mode "
                            "(default: 1e-6)")
    audit.set_defaults(handler=_cmd_audit)

    experiment = subparsers.add_parser(
        "experiment", help="regenerate one paper experiment by id")
    experiment.add_argument("id", nargs="?", default=None,
                            help="experiment id (e.g. E-F14); omit to "
                                 "list all")
    experiment.set_defaults(handler=_cmd_experiment)

    fleet = subparsers.add_parser(
        "fleet", help="heterogeneous-fleet evaluation (Sec. VII)")
    fleet.add_argument("--servers", type=int, default=120)
    fleet.add_argument("--trace", default="common",
                       choices=("drastic", "irregular", "common"))
    fleet.set_defaults(handler=_cmd_fleet)

    seasonal = subparsers.add_parser(
        "seasonal", help="annual harvest profile (12 representative "
                         "days)")
    seasonal.add_argument("--servers", type=int, default=60)
    seasonal.add_argument("--climate", default="hangzhou",
                          choices=("hangzhou", "singapore",
                                   "stockholm"))
    seasonal.set_defaults(handler=_cmd_seasonal)

    hotspot = subparsers.add_parser(
        "hotspot", help="hot-spot episode comparison (Sec. II-B)")
    hotspot.add_argument("--inlet", type=float, default=52.0)
    hotspot.add_argument("--flow", type=float, default=50.0)
    hotspot.add_argument("--baseline", type=float, default=0.2)
    hotspot.add_argument("--spike", type=float, default=1.0)
    hotspot.set_defaults(handler=_cmd_hotspot)

    return parser


# ----------------------------------------------------------------------
# Handlers
# ----------------------------------------------------------------------

def _cmd_simulate(args: argparse.Namespace, reporter: Reporter) -> int:
    from .core.config import teg_loadbalance, teg_original
    from .core.h2p import H2PSystem
    from .workloads.synthetic import trace_by_name

    kwargs = {} if args.seed is None else {"seed": args.seed}
    trace = trace_by_name(args.trace, n_servers=args.servers, **kwargs)
    overrides = dict(circulation_size=args.circulation_size)
    comparison = H2PSystem().compare(
        trace, teg_original(**overrides), teg_loadbalance(**overrides))
    reporter.info(f"trace {trace.name!r}: {trace.n_servers} servers, "
                  f"{trace.n_steps} x {trace.interval_s / 60.0:.0f}-min "
                  f"steps")
    for result in (comparison.baseline, comparison.optimised):
        reporter.info(
            f"  {result.scheme:<16} avg {result.average_generation_w:6.3f} W"
            f"  peak {result.peak_generation_w:6.3f} W"
            f"  PRE {result.average_pre:6.1%}"
            f"  violations {result.total_safety_violations}")
    reporter.info(f"  improvement: {comparison.generation_improvement:.1%} "
                  f"(paper: 13.08 % overall)")
    reporter.result("comparison", comparison.summary())
    return 0


def _cmd_batch(args: argparse.Namespace, reporter: Reporter) -> int:
    from . import obs
    from .core.config import teg_loadbalance, teg_original, teg_static
    from .core.engine import BatchSimulationEngine, SimulationJob
    from .core.simulator import DatacenterSimulator
    from .errors import ConfigurationError
    from .faults import FaultSchedule
    from .workloads.synthetic import trace_by_name

    # Env validation happens up front: a malformed REPRO_TELEMETRY /
    # REPRO_TELEMETRY_DIR / REPRO_METRICS_PORT raises
    # ConfigurationError naming the variable before any job runs.
    telemetry_dir = obs.resolve_telemetry_dir(args.telemetry)
    metrics_port = obs.resolve_metrics_port(args.metrics_port)
    telemetry_on = (telemetry_dir is not None or args.trace_spans
                    or metrics_port is not None or obs.telemetry_enabled())

    schedule = None
    if args.faults is not None:
        schedule = FaultSchedule.from_json(args.faults)
        reporter.info(f"fault schedule: {len(schedule)} spec(s), "
                      f"seed {schedule.seed} ({args.faults})")
    factories = {"original": teg_original, "loadbalance": teg_loadbalance,
                 "static": teg_static}
    traces = [trace_by_name(name, n_servers=args.servers)
              for name in args.traces]
    jobs = [SimulationJob(trace=trace, config=factories[scheme](),
                          faults=schedule)
            for trace in traces for scheme in args.schemes]
    if args.resume and args.checkpoint is None:
        raise ConfigurationError("--resume requires --checkpoint DIR")
    engine = BatchSimulationEngine(args.workers, mode=args.mode,
                                   prefer=args.prefer,
                                   max_retries=args.max_retries,
                                   job_timeout_s=args.timeout,
                                   telemetry=telemetry_on,
                                   shard=args.shard,
                                   shard_servers=args.shard_servers,
                                   shard_steps=args.shard_steps,
                                   shard_straggler_s=args.shard_straggler,
                                   shard_autotune=args.shard_autotune,
                                   checkpoint=args.checkpoint,
                                   resume=args.resume,
                                   cache=args.cache,
                                   metrics_port=metrics_port)
    try:
        if engine.metrics_address is not None:
            # Printed before the run so scrapers can attach mid-flight
            # (the port may have been resolved from an ephemeral 0).
            reporter.info(f"live metrics: {engine.metrics_address}/metrics "
                          f"(health: {engine.metrics_address}/healthz)")
            reporter.result("metrics_url", engine.metrics_address)
            # Scrapers attach by parsing this line from a pipe: push it
            # through block buffering before the (long) run starts.
            reporter.stream.flush()
        batch = engine.run(jobs)
    finally:
        engine.close()
    reporter.info(f"{'scheme':<16} {'trace':<10} {'avg W':>7} {'PRE':>7} "
                  f"{'steps/s':>8} {'cache':>6}")
    for result in batch.results:
        metrics = result.metrics
        line = (f"{result.scheme:<16} {result.trace_name:<10} "
                f"{result.average_generation_w:>7.3f} "
                f"{result.average_pre:>6.1%} "
                f"{metrics.steps_per_s:>8.0f} "
                f"{metrics.cache_hit_rate:>6.1%}")
        if result.degraded_steps:
            line += (f"  degraded {result.degraded_steps} steps, "
                     f"lost {result.total_lost_harvest_kwh:.3f} kWh")
        reporter.info(line)
    aggregate = batch.metrics
    shard_note = (f", {aggregate.shards} shard(s)"
                  if aggregate.shards else "")
    reporter.info(f"batch: {aggregate.n_jobs} jobs via {aggregate.executor} "
                  f"x{aggregate.n_workers} in {aggregate.wall_time_s:.2f} s "
                  f"({aggregate.steps_per_s:.0f} steps/s, cache "
                  f"{aggregate.cache_hit_rate:.1%}{shard_note})")
    if aggregate.retries or aggregate.timeouts:
        reporter.info(f"recovery: {aggregate.retries} retrie(s), "
                      f"{aggregate.timeouts} timeout(s)")
    if aggregate.shards_resumed or aggregate.jobs_resumed:
        reporter.info(f"resumed from checkpoint: "
                      f"{aggregate.shards_resumed} shard(s), "
                      f"{aggregate.jobs_resumed} whole job(s)")
    if aggregate.result_cache_hits:
        reporter.info(f"served from cache: {aggregate.result_cache_hits}"
                      f"/{aggregate.n_jobs} job(s)")
    if aggregate.jobs_deduped:
        reporter.info(f"deduplicated within batch: "
                      f"{aggregate.jobs_deduped} job(s)")
    for failed in batch.failures:
        reporter.error(f"FAILED {failed.scheme} on {failed.trace_name}: "
                       f"[{failed.error_type}] {failed.message} "
                       f"({failed.attempts} attempt(s), "
                       f"{failed.elapsed_s:.1f} s)")
    reporter.result("batch", aggregate.summary())
    reporter.result("jobs", batch.summaries())
    reporter.result("failures", [
        {"scheme": failed.scheme, "trace": failed.trace_name,
         "error_type": failed.error_type, "message": failed.message,
         "attempts": failed.attempts,
         "elapsed_s": round(failed.elapsed_s, 4),
         "timed_out": failed.timed_out}
        for failed in batch.failures])

    if batch.telemetry is not None:
        if args.trace_spans:
            reporter.info(obs.render_span_tree(
                batch.telemetry.tracer.snapshot()))
        reporter.result(
            "telemetry",
            {"metrics": batch.telemetry.registry.snapshot().to_dict(),
             "n_events": len(batch.telemetry.events)})
        if telemetry_dir is not None:
            # Fold the console transcript into the event log so the
            # artefacts carry the full story of the run.
            batch.telemetry.events.extend(reporter.events.snapshot())
            command = ["h2p"] + list(getattr(args, "raw_argv", []))
            paths = obs.write_run_artifacts(
                telemetry_dir, batch.telemetry, command=command,
                batch=batch)
            reporter.result("telemetry_dir", str(telemetry_dir))
            reporter.info(f"telemetry written to {paths['manifest'].parent}")

    if args.check and batch.results:
        first = jobs[0]
        serial = DatacenterSimulator(first.trace, first.config,
                                     faults=first.faults).run()
        identical = serial.records == batch.results[0].records
        reporter.result("serial_check", bool(identical))
        if identical:
            reporter.info("serial check: bit-identical")
        else:
            reporter.error("serial check: MISMATCH")
            return 1
    return 0 if batch.ok else 1


def _cmd_design(args: argparse.Namespace, reporter: Reporter) -> int:
    from .cooling.chiller import Chiller
    from .cooling.circulation_design import CirculationDesignProblem

    problem = CirculationDesignProblem(
        total_servers=args.servers, temp_mu_c=args.mu,
        temp_sigma_c=args.sigma,
        chiller=Chiller(capacity_kw=500, capex_usd=args.chiller_capex))
    result = problem.optimise()
    reporter.info(f"{'n/circ':>8} {'E[dT] C':>9} {'total $/yr':>14}")
    shown = [n for n in (1, 5, 10, 20, 50, 100, 200, 500, args.servers)
             if n <= args.servers]
    for n in shown:
        try:
            cost = result.cost_for(n)
        except KeyError:
            cost = problem.total_cost_usd(n)
        marker = "  <- optimum" if n == result.best_n else ""
        reporter.info(f"{n:>8} {problem.expected_inlet_reduction_c(n):>9.2f} "
                      f"{cost:>14,.0f}{marker}")
    reporter.info(f"optimal circulation size: {result.best_n} "
                  f"(${result.best_cost_usd:,.0f}/year)")
    reporter.result("design", {"best_n": result.best_n,
                               "best_cost_usd": result.best_cost_usd})
    return 0


def _cmd_tco(args: argparse.Namespace, reporter: Reporter) -> int:
    from .economics.breakeven import BreakEvenAnalysis
    from .economics.tco import TcoModel
    from .reliability import TegDegradationModel

    breakdown = TcoModel().breakdown(args.generation)
    analysis = BreakEvenAnalysis(n_cpus=args.cpus)
    reporter.info(f"average generation : {args.generation:.3f} W/CPU")
    reporter.info(f"TCO without H2P    : ${breakdown.tco_no_teg_usd:.2f}"
                  f"/server/month")
    reporter.info(f"TCO with H2P       : ${breakdown.tco_h2p_usd:.2f}"
                  f"/server/month")
    reporter.info(f"reduction          : {breakdown.reduction_fraction:.2%}")
    reporter.info(f"fleet              : {args.cpus:,} CPUs")
    reporter.info(f"annual savings     : "
                  f"${breakdown.annual_savings_usd(args.cpus):,.0f}")
    reporter.info(f"daily energy       : "
                  f"{analysis.daily_energy_kwh(args.generation):,.1f} kWh")
    ideal = analysis.break_even_days(args.generation)
    reporter.info(f"break-even (ideal) : {ideal:,.0f} days")
    payload = {
        "generation_w": args.generation,
        "tco_no_teg_usd": breakdown.tco_no_teg_usd,
        "tco_h2p_usd": breakdown.tco_h2p_usd,
        "reduction_fraction": breakdown.reduction_fraction,
        "annual_savings_usd": breakdown.annual_savings_usd(args.cpus),
        "break_even_days": ideal,
    }
    if args.generation > 0:
        degraded = TegDegradationModel().degraded_break_even_days(
            args.generation,
            analysis.purchase_price_usd / (args.generation * args.cpus))
        reporter.info(f"break-even (faded) : {degraded:,.0f} days "
                      f"(0.4 %/yr output fade)")
        payload["break_even_days_faded"] = degraded
    reporter.result("tco", payload)
    return 0


def _cmd_trace(args: argparse.Namespace, reporter: Reporter) -> int:
    from .workloads.loader import save_trace_csv
    from .workloads.synthetic import trace_by_name

    kwargs = dict(n_servers=args.servers,
                  duration_s=args.hours * 3600.0)
    if args.seed is not None:
        kwargs["seed"] = args.seed
    trace = trace_by_name(args.name, **kwargs)
    stats = trace.statistics()
    reporter.info(f"{trace!r}")
    reporter.info(f"statistics: {stats.describe()}")
    reporter.result("trace", {"name": trace.name,
                              "servers": trace.n_servers,
                              "steps": trace.n_steps,
                              "statistics": stats.describe()})
    if args.classify:
        from .workloads.analysis import TraceClassifier

        explanation = TraceClassifier().explain(trace)
        label = explanation.pop("class")
        details = ", ".join(f"{k}={v}" for k, v in explanation.items())
        reporter.info(f"classified as: {label} ({details})")
        reporter.result("classification", {"class": label, **explanation})
    if args.out:
        save_trace_csv(trace, args.out)
        reporter.info(f"written to {args.out}")
        reporter.result("out", args.out)
    return 0


def _cmd_reuse(args: argparse.Namespace, reporter: Reporter) -> int:
    from .environment import CLIMATES
    from .heatreuse.comparison import ReuseComparison

    comparison = ReuseComparison(n_servers=args.servers,
                                 climate=CLIMATES[args.climate])
    reporter.info(f"climate {args.climate}: {args.servers} servers shedding "
                  f"{comparison.total_heat_kw:.0f} kW of warm-water heat")
    options = comparison.all_options()
    for option in options:
        reporter.info(f"  {option.name:<22} ${option.annual_value_usd:>10,.0f}"
                      f"/year  (utilisation {option.utilisation:.0%}; "
                      f"{option.notes})")
    reporter.result("reuse", [
        {"name": option.name,
         "annual_value_usd": option.annual_value_usd,
         "utilisation": option.utilisation}
        for option in options])
    return 0


def _cmd_audit(args: argparse.Namespace, reporter: Reporter) -> int:
    if args.manifest is not None:
        return _audit_manifests(args, reporter)

    import numpy as np

    from .cooling.loop import WaterCirculation
    from .core.h2p import H2PSystem
    from .thermal.cpu_model import CoolingSetting
    from .validation import (
        audit_circulation_state,
        audit_simulation_result,
        audit_teg_models,
    )
    from .workloads.synthetic import common_trace

    circulation = WaterCirculation(n_servers=8)
    state = circulation.evaluate(
        np.linspace(0.0, 1.0, 8),
        CoolingSetting(flow_l_per_h=100.0, inlet_temp_c=48.0))
    result = H2PSystem().evaluate(
        common_trace(n_servers=args.servers, duration_s=4 * 3600.0))
    reports = [
        audit_teg_models(),
        audit_circulation_state(circulation, state),
        audit_simulation_result(result),
    ]
    for report in reports:
        reporter.info(str(report))
    reporter.result("audits_ok", bool(all(report.ok for report in reports)))
    return 0 if all(report.ok for report in reports) else 1


def _audit_manifests(args: argparse.Namespace, reporter: Reporter) -> int:
    """``h2p audit --manifest A B``: diff two run manifests.

    Compares metric totals (relative-tolerance aware) and span-tree
    structure; timing fields are ignored by construction.  Exit code 1
    exactly when any drift beyond tolerance is found.
    """
    from . import obs
    from .errors import ConfigurationError

    path_a, path_b = args.manifest
    if args.tolerance < 0:
        raise ConfigurationError(
            f"--tolerance must be non-negative, got {args.tolerance}")
    diff = obs.diff_manifests(obs.load_manifest(path_a),
                              obs.load_manifest(path_b),
                              rel_tol=args.tolerance,
                              name_a=path_a, name_b=path_b)
    for line in diff.describe().splitlines():
        (reporter.info if diff.ok else reporter.error)(line)
    reporter.result("audit", diff.to_dict())
    return 0 if diff.ok else 1


def _cmd_hotspot(args: argparse.Namespace, reporter: Reporter) -> int:
    from .constants import CPU_MAX_OPERATING_TEMP_C
    from .cooling.hotspot import HotSpotScenario
    from .thermal.cpu_model import CoolingSetting

    scenario = HotSpotScenario(
        baseline_utilisation=args.baseline,
        spike_utilisation=args.spike,
        setting=CoolingSetting(flow_l_per_h=args.flow,
                               inlet_temp_c=args.inlet))
    outcomes = scenario.compare()
    reporter.info(f"spike {args.baseline:.0%} -> {args.spike:.0%} at "
                  f"{args.inlet:.0f} C inlet "
                  f"(limit {CPU_MAX_OPERATING_TEMP_C} C)")
    payload = {}
    for strategy in ("none", "chiller", "tec"):
        outcome = outcomes[strategy]
        verdict = "VIOLATION" if outcome.violation else "safe"
        reporter.info(f"  {strategy:<8} peak {outcome.peak_cpu_temp_c:6.1f} C  "
                      f"above-limit {outcome.time_above_limit_s:6.1f} s  "
                      f"TEC {outcome.tec_energy_j / 1000.0:6.1f} kJ  "
                      f"[{verdict}]")
        payload[strategy] = {"peak_cpu_temp_c": outcome.peak_cpu_temp_c,
                             "time_above_limit_s":
                                 outcome.time_above_limit_s,
                             "violation": outcome.violation}
    reporter.result("hotspot", payload)
    return 0


def _cmd_experiment(args: argparse.Namespace, reporter: Reporter) -> int:
    from .experiments import list_experiments, run_experiment

    if args.id is None:
        listing = list_experiments()
        for experiment_id, title in listing:
            reporter.info(f"{experiment_id:<7} {title}")
        reporter.result("experiments", [
            {"id": experiment_id, "title": title}
            for experiment_id, title in listing])
        return 0
    outcome = run_experiment(args.id)
    reporter.info(outcome.describe())
    reporter.result("experiment", {"id": args.id,
                                   "report": outcome.describe()})
    return 0


def _cmd_fleet(args: argparse.Namespace, reporter: Reporter) -> int:
    from .fleet import FleetMix
    from .workloads.synthetic import trace_by_name

    trace = trace_by_name(args.trace, n_servers=args.servers)
    mix = FleetMix()
    outcomes = mix.run(trace)
    reporter.info(f"{'CPU model':<18} {'servers':>7} {'T_safe C':>9} "
                  f"{'gen W/CPU':>10} {'violations':>10}")
    for outcome in outcomes:
        reporter.info(f"{outcome.spec.name:<18} {outcome.n_servers:>7} "
                      f"{outcome.spec.safe_temp_c:>9.1f} "
                      f"{outcome.generation_w:>10.3f} "
                      f"{outcome.result.total_safety_violations:>10}")
    summary = FleetMix.aggregate(outcomes)
    reporter.info(f"fleet: {summary['fleet_generation_w']:.3f} W/CPU, "
                  f"PRE {summary['fleet_pre']:.1%}")
    reporter.result("fleet", summary)
    return 0


def _cmd_seasonal(args: argparse.Namespace, reporter: Reporter) -> int:
    from .core.seasonal import SeasonalStudy, annual_summary
    from .environment import CLIMATES
    from .workloads.synthetic import common_trace

    trace = common_trace(n_servers=args.servers)
    study = SeasonalStudy(trace=trace,
                          wet_bulb=CLIMATES[args.climate])
    outcomes = study.run()
    reporter.info(f"{'month':<6} {'cold C':>7} {'wet bulb C':>11} "
                  f"{'gen W/CPU':>10} {'PRE':>7}")
    for outcome in outcomes:
        reporter.info(f"{outcome.month:<6} {outcome.cold_source_c:>7.1f} "
                      f"{outcome.wet_bulb_c:>11.1f} "
                      f"{outcome.generation_w:>10.3f} "
                      f"{outcome.result.average_pre:>6.1%}")
    summary = annual_summary(outcomes)
    reporter.info(f"annual mean {summary['generation_mean_w']:.2f} W/CPU, "
                  f"swing {summary['seasonal_swing']:.0%} "
                  f"(best {summary['best_month']}, worst "
                  f"{summary['worst_month']})")
    reporter.result("seasonal", summary)
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = _build_parser()
    raw_argv = list(argv) if argv is not None else sys.argv[1:]
    args = parser.parse_args(raw_argv)
    args.raw_argv = raw_argv
    reporter = Reporter(quiet=args.quiet, json_mode=args.json)
    code = args.handler(args, reporter)
    reporter.flush()
    return code


if __name__ == "__main__":
    sys.exit(main())

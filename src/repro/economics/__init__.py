"""Economics: TCO, reuse metrics and break-even analysis (Sec. V-C/V-D).

* :mod:`repro.economics.tco` — the Table I total-cost-of-ownership model;
* :mod:`repro.economics.metrics` — PRE (Eq. 19), ERE and PUE;
* :mod:`repro.economics.breakeven` — payback time of the TEG investment.
"""

from .tco import TcoModel, TcoBreakdown
from .metrics import (
    power_reusing_efficiency,
    energy_reuse_effectiveness,
    power_usage_effectiveness,
)
from .breakeven import BreakEvenAnalysis

__all__ = [
    "TcoModel",
    "TcoBreakdown",
    "power_reusing_efficiency",
    "energy_reuse_effectiveness",
    "power_usage_effectiveness",
    "BreakEvenAnalysis",
]

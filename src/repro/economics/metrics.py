"""Datacenter energy-efficiency metrics.

* **PRE** (power reusing efficiency, Eq. 19) — the paper's own metric:
  TEG generation over CPU consumption;
* **ERE** (energy reuse effectiveness, Green Grid) — Sec. II-C:
  ``(E_IT + E_Cooling + E_Power + E_Lighting - E_Reuse) / E_IT``;
* **PUE** (power usage effectiveness) — total facility energy over IT
  energy.
"""

from __future__ import annotations

from ..errors import PhysicalRangeError


def power_reusing_efficiency(generation_w: float,
                             cpu_consumption_w: float) -> float:
    """PRE = TEG generation / CPU consumption (paper Eq. 19).

    Parameters
    ----------
    generation_w:
        TEG output power (per CPU or cluster-wide — be consistent).
    cpu_consumption_w:
        CPU power consumption on the same basis.

    Returns
    -------
    float
        PRE as a fraction (paper: 0.128-0.162 under LoadBalance).
    """
    if generation_w < 0:
        raise PhysicalRangeError(
            f"generation must be >= 0, got {generation_w}")
    if cpu_consumption_w <= 0:
        raise PhysicalRangeError(
            f"CPU consumption must be > 0, got {cpu_consumption_w}")
    return generation_w / cpu_consumption_w


def energy_reuse_effectiveness(it_kwh: float, cooling_kwh: float,
                               power_kwh: float, lighting_kwh: float,
                               reuse_kwh: float) -> float:
    """ERE (Sec. II-C).  Values below PUE indicate effective reuse; going
    below 1.0 means more energy is reused than non-IT overhead consumed."""
    for name, value in (("it", it_kwh), ("cooling", cooling_kwh),
                        ("power", power_kwh), ("lighting", lighting_kwh),
                        ("reuse", reuse_kwh)):
        if value < 0:
            raise PhysicalRangeError(f"{name} energy must be >= 0")
    if it_kwh == 0:
        raise PhysicalRangeError("IT energy must be > 0")
    return (it_kwh + cooling_kwh + power_kwh + lighting_kwh
            - reuse_kwh) / it_kwh


def power_usage_effectiveness(it_kwh: float, cooling_kwh: float,
                              power_kwh: float,
                              lighting_kwh: float) -> float:
    """PUE = total facility energy / IT energy (>= 1 by construction)."""
    return energy_reuse_effectiveness(it_kwh, cooling_kwh, power_kwh,
                                      lighting_kwh, reuse_kwh=0.0)

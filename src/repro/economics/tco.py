"""Total cost of ownership (Table I, Eqs. 21-22).

The paper computes per-server monthly costs:

    TCO_noTEG = (DCInfraCapEx + ServCapEx) + (DCInfraOpEx + ServOpEx)
    TCO_H2P   = TCO_noTEG + TEGCapEx - TEGRev

with Table I values (21.26 + 31.25 + 7.63 + 1.56 = $61.70/server/month).
TEGRev follows from the measured average generation and the electricity
price; the paper reports TCO reductions of 0.49 % (*TEG_Original*) and
0.57 % (*TEG_LoadBalance*).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..constants import (
    DC_INFRA_CAPEX_USD,
    DC_INFRA_OPEX_USD,
    ELECTRICITY_PRICE_USD_PER_KWH,
    HOURS_PER_MONTH,
    SERVER_CAPEX_USD,
    SERVER_OPEX_USD,
    TEG_LIFESPAN_YEARS,
    TEG_UNIT_PRICE_USD,
    TEGS_PER_SERVER,
)
from ..errors import PhysicalRangeError


@dataclass(frozen=True)
class TcoBreakdown:
    """Per-server monthly TCO with and without H2P (USD/server/month)."""

    tco_no_teg_usd: float
    teg_capex_usd: float
    teg_revenue_usd: float

    @property
    def tco_h2p_usd(self) -> float:
        """Eq. 22: baseline plus TEG CapEx minus TEG revenue."""
        return self.tco_no_teg_usd + self.teg_capex_usd - self.teg_revenue_usd

    @property
    def monthly_saving_usd(self) -> float:
        """Per-server monthly saving from H2P (can be negative)."""
        return self.tco_no_teg_usd - self.tco_h2p_usd

    @property
    def reduction_fraction(self) -> float:
        """Relative TCO reduction (paper: up to 0.0057)."""
        return self.monthly_saving_usd / self.tco_no_teg_usd

    def annual_savings_usd(self, n_servers: int) -> float:
        """Fleet-level yearly saving (paper: ~$410k for 100k CPUs)."""
        if n_servers <= 0:
            raise PhysicalRangeError(
                f"n_servers must be > 0, got {n_servers}")
        return self.monthly_saving_usd * 12.0 * n_servers


@dataclass(frozen=True)
class TcoModel:
    """The Table I cost model.

    All money figures are USD per server per month unless noted.
    """

    dc_infra_capex: float = DC_INFRA_CAPEX_USD
    server_capex: float = SERVER_CAPEX_USD
    dc_infra_opex: float = DC_INFRA_OPEX_USD
    server_opex: float = SERVER_OPEX_USD
    tegs_per_server: int = TEGS_PER_SERVER
    teg_unit_price_usd: float = TEG_UNIT_PRICE_USD
    teg_lifespan_years: float = TEG_LIFESPAN_YEARS
    electricity_price_usd_per_kwh: float = ELECTRICITY_PRICE_USD_PER_KWH

    def __post_init__(self) -> None:
        for name in ("dc_infra_capex", "server_capex", "dc_infra_opex",
                     "server_opex", "teg_unit_price_usd"):
            if getattr(self, name) < 0:
                raise PhysicalRangeError(f"{name} must be >= 0")
        if self.tegs_per_server <= 0:
            raise PhysicalRangeError("tegs_per_server must be > 0")
        if self.teg_lifespan_years <= 0:
            raise PhysicalRangeError("teg_lifespan_years must be > 0")
        if self.electricity_price_usd_per_kwh <= 0:
            raise PhysicalRangeError("electricity price must be > 0")

    @property
    def tco_no_teg_usd(self) -> float:
        """Eq. 21 (Table I: $61.70/server/month)."""
        return (self.dc_infra_capex + self.server_capex
                + self.dc_infra_opex + self.server_opex)

    @property
    def teg_capex_usd_per_month(self) -> float:
        """TEG purchase amortised over the lifespan (Table I: $0.04)."""
        total = self.tegs_per_server * self.teg_unit_price_usd
        return total / (self.teg_lifespan_years * 12.0)

    def teg_revenue_usd_per_month(self, average_generation_w: float) -> float:
        """Electricity revenue of one server's TEG module per month.

        ``TEGRev = P_avg[kW] * 720h * price`` — Table I: $0.34 at 3.694 W
        and $0.39 at 4.177 W.
        """
        if average_generation_w < 0:
            raise PhysicalRangeError(
                f"generation must be >= 0, got {average_generation_w}")
        kwh = average_generation_w / 1000.0 * HOURS_PER_MONTH
        return kwh * self.electricity_price_usd_per_kwh

    def breakdown(self, average_generation_w: float) -> TcoBreakdown:
        """Full Eq. 21/22 breakdown for a measured average generation."""
        return TcoBreakdown(
            tco_no_teg_usd=self.tco_no_teg_usd,
            teg_capex_usd=self.teg_capex_usd_per_month,
            teg_revenue_usd=self.teg_revenue_usd_per_month(
                average_generation_w),
        )

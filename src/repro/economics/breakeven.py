"""Break-even analysis of the TEG investment (Sec. V-D).

The paper evaluates a 100,000-CPU cluster with 1,200,000 TEGs at $1 each:
at 4.177 W per CPU the daily revenue is 10,024.8 kWh * $0.13 = $1,303.2,
so the purchase pays back in ~920 days.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..constants import (
    ELECTRICITY_PRICE_USD_PER_KWH,
    TEG_UNIT_PRICE_USD,
    TEGS_PER_SERVER,
)
from ..errors import PhysicalRangeError


@dataclass(frozen=True)
class BreakEvenAnalysis:
    """Payback analysis of deploying TEGs on a CPU fleet.

    Attributes
    ----------
    n_cpus:
        Fleet size (paper: 100,000).
    tegs_per_cpu:
        TEGs per server (paper: 12).
    teg_unit_price_usd:
        Purchase price per TEG (paper: $1).
    electricity_price_usd_per_kwh:
        Tariff applied to the generated energy.
    """

    n_cpus: int = 100_000
    tegs_per_cpu: int = TEGS_PER_SERVER
    teg_unit_price_usd: float = TEG_UNIT_PRICE_USD
    electricity_price_usd_per_kwh: float = ELECTRICITY_PRICE_USD_PER_KWH

    def __post_init__(self) -> None:
        if self.n_cpus <= 0:
            raise PhysicalRangeError(f"n_cpus must be > 0, got {self.n_cpus}")
        if self.tegs_per_cpu <= 0:
            raise PhysicalRangeError("tegs_per_cpu must be > 0")
        if self.teg_unit_price_usd < 0:
            raise PhysicalRangeError("TEG price must be >= 0")
        if self.electricity_price_usd_per_kwh <= 0:
            raise PhysicalRangeError("electricity price must be > 0")

    @property
    def purchase_price_usd(self) -> float:
        """Up-front TEG purchase (paper: $1,200,000)."""
        return self.n_cpus * self.tegs_per_cpu * self.teg_unit_price_usd

    def daily_energy_kwh(self, average_generation_w: float) -> float:
        """Fleet-wide energy generated per day (paper: 10,024.8 kWh)."""
        if average_generation_w < 0:
            raise PhysicalRangeError(
                f"generation must be >= 0, got {average_generation_w}")
        return average_generation_w * self.n_cpus * 24.0 / 1000.0

    def daily_revenue_usd(self, average_generation_w: float) -> float:
        """Fleet-wide revenue per day (paper: $1,303.2)."""
        return (self.daily_energy_kwh(average_generation_w)
                * self.electricity_price_usd_per_kwh)

    def break_even_days(self, average_generation_w: float) -> float:
        """Days until the purchase is paid back (paper: ~920)."""
        revenue = self.daily_revenue_usd(average_generation_w)
        if revenue <= 0:
            return math.inf
        return self.purchase_price_usd / revenue

"""Rack-level DC power integration for TEG output.

Sec. VI-D argues H2P fits DC-supplied datacenters: racks already carry a
12/48 V bus with decentralised batteries.  This module assembles the
whole harvesting chain for one rack:

    TEG modules -> DC-DC converters -> rack bus -> hybrid buffer -> loads

where the loads are the rack's own ancillaries — LED lighting
(Sec. VI-C2) and, when hot spots fire, the TECs of the hybrid cooling
architecture (Sec. VI-C1).  The headline question it answers: *what
fraction of the rack's ancillary load can the TEGs carry?*
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .applications.lighting import LedLightingPlan, ORDINARY_LED
from .errors import ConfigurationError, PhysicalRangeError
from .storage.battery import Battery
from .storage.hybrid import HybridEnergyBuffer
from .storage.supercap import SuperCapacitor
from .teg.power_electronics import DcDcConverter


@dataclass(frozen=True)
class RackTelemetry:
    """Energy flows of one simulated rack over a run."""

    times_s: np.ndarray
    harvested_w: np.ndarray
    bus_w: np.ndarray
    load_w: np.ndarray
    served_w: np.ndarray
    grid_w: np.ndarray
    curtailed_w: np.ndarray
    exported_w: np.ndarray

    @property
    def self_powered_fraction(self) -> float:
        """Share of the rack's ancillary energy the TEGs covered."""
        total_load = float(self.load_w.sum())
        if total_load <= 0:
            return 1.0
        return float(self.served_w.sum()) / total_load

    @property
    def conversion_efficiency(self) -> float:
        """Bus energy over harvested energy (converter losses)."""
        harvested = float(self.harvested_w.sum())
        if harvested <= 0:
            return 0.0
        return float(self.bus_w.sum()) / harvested

    @property
    def curtailment_fraction(self) -> float:
        """Share of bus energy thrown away (buffer full, load met)."""
        bus = float(self.bus_w.sum())
        if bus <= 0:
            return 0.0
        return float(self.curtailed_w.sum()) / bus

    @property
    def exported_kwh(self) -> float:
        """Energy pushed onto the rack bus to offset server draw."""
        if len(self.times_s) < 2:
            return 0.0
        dt_h = float(self.times_s[1] - self.times_s[0]) / 3600.0
        return float(self.exported_w.sum()) * dt_h / 1000.0


@dataclass
class RackPowerSystem:
    """One rack's TEG harvesting chain.

    Attributes
    ----------
    n_servers:
        Servers (and TEG modules) in the rack.
    converter:
        Per-rack DC-DC stage between the series-connected modules and
        the bus (modules are paralleled after individual conversion; we
        model the aggregate).
    buffer:
        Hybrid storage smoothing generation against the load.
    lighting_w:
        Constant LED lighting load of the rack.
    module_voltage_v:
        Typical module output voltage at the operating point (clears the
        converter's start-up threshold when TEGs are series-stacked).
    """

    n_servers: int = 20
    converter: DcDcConverter = field(
        default_factory=lambda: DcDcConverter(rated_power_w=100.0))
    buffer: HybridEnergyBuffer = field(
        default_factory=lambda: HybridEnergyBuffer(
            battery=Battery(capacity_wh=100.0, soc=0.5,
                            max_charge_w=200.0, max_discharge_w=200.0),
            supercap=SuperCapacitor(capacity_wh=5.0, soc=0.5)))
    lighting_w: float = 15.0
    module_voltage_v: float = 8.0
    #: When True (the Sec. VI-D DC-bus deployment), surplus that the
    #: buffer cannot absorb offsets server draw on the shared bus rather
    #: than being curtailed.
    export_surplus: bool = True

    def __post_init__(self) -> None:
        if self.n_servers <= 0:
            raise PhysicalRangeError("n_servers must be > 0")
        if self.lighting_w < 0:
            raise PhysicalRangeError("lighting load must be >= 0")
        if self.module_voltage_v <= 0:
            raise PhysicalRangeError("module voltage must be > 0")

    def lighting_capacity(self) -> int:
        """How many ordinary LEDs the rack's lighting budget implies."""
        plan = LedLightingPlan(led=ORDINARY_LED,
                               converter_efficiency=1.0)
        return plan.leds_supported(self.lighting_w)

    def simulate(self, per_server_generation_w: np.ndarray,
                 interval_s: float,
                 tec_power_w: np.ndarray | None = None) -> RackTelemetry:
        """Run a generation profile against the rack's ancillary loads.

        Parameters
        ----------
        per_server_generation_w:
            Per-interval mean TEG output of one server (the simulator's
            ``generation_series_w``).
        interval_s:
            Interval length.
        tec_power_w:
            Optional per-interval rack-level TEC draw (hot-spot events);
            zero when omitted.

        Returns
        -------
        RackTelemetry
            Per-interval energy flows and the self-powered fraction.
        """
        generation = np.asarray(per_server_generation_w, dtype=float)
        if generation.ndim != 1 or generation.size == 0:
            raise PhysicalRangeError(
                "generation profile must be a non-empty 1-D array")
        if np.any(generation < 0):
            raise PhysicalRangeError("generation must be >= 0")
        if interval_s <= 0:
            raise PhysicalRangeError("interval must be > 0")
        if tec_power_w is None:
            tec = np.zeros_like(generation)
        else:
            tec = np.asarray(tec_power_w, dtype=float)
            if tec.shape != generation.shape:
                raise ConfigurationError(
                    "tec_power_w must match the generation profile")
            if np.any(tec < 0):
                raise PhysicalRangeError("TEC power must be >= 0")

        n = generation.size
        harvested = generation * self.n_servers
        bus = np.array([
            self.converter.output_power_w(float(p),
                                          self.module_voltage_v)
            for p in harvested])
        load = self.lighting_w + tec
        served = np.empty(n)
        grid = np.empty(n)
        curtailed = np.empty(n)
        exported = np.zeros(n)
        for i in range(n):
            supplied, deficit, wasted = self.buffer.step(
                float(bus[i]), float(load[i]), interval_s)
            served[i] = supplied
            grid[i] = deficit
            if self.export_surplus:
                exported[i] = wasted
                curtailed[i] = 0.0
            else:
                curtailed[i] = wasted
        return RackTelemetry(
            times_s=np.arange(n) * interval_s,
            harvested_w=harvested,
            bus_w=bus,
            load_w=load,
            served_w=served,
            grid_w=grid,
            curtailed_w=curtailed,
            exported_w=exported,
        )

"""Uncertainty quantification over the paper's fitted models.

Every headline number in the paper flows through a handful of fitted
coefficients: the TEG voltage/power fits (Eqs. 3/6), the CPU power model
(Eq. 20, "root mean square error less than 5 W") and the thermal
calibration.  This module propagates plausible uncertainty in those fits
through the full evaluation pipeline by Monte Carlo, producing
confidence intervals on per-CPU generation, PRE and the TCO reduction —
the error bars the paper itself does not report.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .constants import (
    TEG_PMAX_CONST_W,
    TEG_PMAX_LIN_W_PER_C,
    TEG_PMAX_QUAD_W_PER_C2,
    TEG_VOC_INTERCEPT_V,
    TEG_VOC_SLOPE_V_PER_C,
)
from .economics.tco import TcoModel
from .errors import PhysicalRangeError
from .teg.device import EmpiricalTegFit, TegDevice
from .teg.module import TegModule
from .thermal.cpu_model import CpuThermalModel, OutletDeltaModel
from .workloads.trace import WorkloadTrace


@dataclass(frozen=True)
class ParameterPriors:
    """Relative 1-sigma uncertainty on each calibrated coefficient.

    Defaults are conservative reading of the paper: a few percent on the
    TEG fits (clean bench measurements), ~5 W RMS on Eq. 20 translated
    into a ~6 % scale uncertainty, and ~5 % on the thermal-resistance
    calibration.
    """

    teg_quad_sigma: float = 0.03
    teg_slope_sigma: float = 0.03
    cpu_power_scale_sigma: float = 0.06
    thermal_resistance_sigma: float = 0.05
    outlet_delta_sigma: float = 0.08

    def __post_init__(self) -> None:
        for name in ("teg_quad_sigma", "teg_slope_sigma",
                     "cpu_power_scale_sigma",
                     "thermal_resistance_sigma", "outlet_delta_sigma"):
            value = getattr(self, name)
            if not 0.0 <= value < 0.5:
                raise PhysicalRangeError(
                    f"{name} must be in [0, 0.5), got {value}")


@dataclass(frozen=True)
class UncertaintyResult:
    """Monte Carlo samples of the headline metrics."""

    generation_w: np.ndarray
    pre: np.ndarray
    tco_reduction: np.ndarray

    def interval(self, metric: str,
                 confidence: float = 0.90) -> tuple[float, float]:
        """Central confidence interval of one metric."""
        if not 0.0 < confidence < 1.0:
            raise PhysicalRangeError(
                f"confidence must be in (0, 1), got {confidence}")
        samples = getattr(self, metric)
        tail = (1.0 - confidence) / 2.0 * 100.0
        return (float(np.percentile(samples, tail)),
                float(np.percentile(samples, 100.0 - tail)))

    def summary(self, confidence: float = 0.90) -> dict:
        """Medians and intervals for every metric."""
        out = {}
        for metric in ("generation_w", "pre", "tco_reduction"):
            samples = getattr(self, metric)
            low, high = self.interval(metric, confidence)
            out[metric] = {
                "median": float(np.median(samples)),
                "low": low,
                "high": high,
            }
        return out


@dataclass
class MonteCarloStudy:
    """Propagate coefficient uncertainty through the evaluation pipeline.

    To stay tractable, each draw perturbs the calibrated models and
    replays a *reduced* evaluation: the per-interval binding-utilisation
    pipeline on the supplied trace at a single representative
    circulation, exactly the arithmetic that produces Fig. 14's averages.
    """

    priors: ParameterPriors = field(default_factory=ParameterPriors)
    safe_temp_c: float = 62.0
    inlet_max_c: float = 54.5
    flow_l_per_h: float = 150.0
    cold_source_temp_c: float = 20.0
    circulation_size: int = 20
    seed: int = 0

    def _perturbed_models(self, rng: np.random.Generator,
                          ) -> tuple[CpuThermalModel, TegModule, float]:
        p = self.priors
        fit = EmpiricalTegFit(
            voc_slope_v_per_c=TEG_VOC_SLOPE_V_PER_C
            * (1.0 + rng.normal(0.0, p.teg_slope_sigma)),
            voc_intercept_v=TEG_VOC_INTERCEPT_V,
            pmax_quad_w_per_c2=TEG_PMAX_QUAD_W_PER_C2
            * (1.0 + rng.normal(0.0, p.teg_quad_sigma)),
            pmax_lin_w_per_c=TEG_PMAX_LIN_W_PER_C,
            pmax_const_w=TEG_PMAX_CONST_W,
        )
        module = TegModule(device=TegDevice(fit=fit))
        resistance_scale = 1.0 + rng.normal(
            0.0, p.thermal_resistance_sigma)
        outlet_scale = 1.0 + rng.normal(0.0, p.outlet_delta_sigma)
        base = CpuThermalModel()
        model = CpuThermalModel(
            r_min_k_per_w=base.r_min_k_per_w * max(0.2, resistance_scale),
            r_amp_k_per_w=base.r_amp_k_per_w * max(0.2, resistance_scale),
            outlet_model=OutletDeltaModel(
                base_delta_c=base.outlet_model.base_delta_c
                * max(0.2, outlet_scale),
                load_delta_c=base.outlet_model.load_delta_c
                * max(0.2, outlet_scale)),
        )
        power_scale = 1.0 + rng.normal(0.0, p.cpu_power_scale_sigma)
        return model, module, max(0.3, power_scale)

    def _evaluate_draw(self, trace: WorkloadTrace, model: CpuThermalModel,
                       module: TegModule,
                       power_scale: float) -> tuple[float, float]:
        """Mean generation and PRE of one perturbed pipeline replay."""
        size = min(self.circulation_size, trace.n_servers)
        utils = trace.utilisation[:, :size]
        binding = utils.max(axis=1)
        generation = np.empty(len(binding))
        consumption = np.empty(len(binding))
        for i, (u_max, row) in enumerate(zip(binding, utils)):
            inlet = min(self.inlet_max_c, model.inlet_for_cpu_temp(
                float(u_max), self.flow_l_per_h, self.safe_temp_c))
            from .thermal.cpu_model import CoolingSetting

            setting = CoolingSetting(flow_l_per_h=self.flow_l_per_h,
                                     inlet_temp_c=max(20.0, inlet))
            outlets = model.outlet_temp_c(row, setting)
            generation[i] = float(np.mean(module.generation_w(
                outlets, self.cold_source_temp_c, self.flow_l_per_h)))
            consumption[i] = float(np.mean(
                model.cpu_power_w(row))) * power_scale
        return float(generation.mean()), float(
            generation.sum() / consumption.sum())

    def run_improvement(self, trace: WorkloadTrace,
                        n_draws: int = 100) -> np.ndarray:
        """Monte Carlo samples of the balancing improvement.

        For each perturbed pipeline, evaluates both the ``max``-keyed
        (Original) and ``mean``-keyed (LoadBalance) variants and returns
        the relative generation improvement — testing whether the
        paper's headline "+13 %" conclusion survives fit uncertainty.
        """
        if n_draws <= 0:
            raise PhysicalRangeError(f"n_draws must be > 0, got {n_draws}")
        rng = np.random.default_rng(self.seed)
        improvements = np.empty(n_draws)
        size = min(self.circulation_size, trace.n_servers)
        utils = trace.utilisation[:, :size]
        for draw in range(n_draws):
            model, module, _ = self._perturbed_models(rng)
            gen = {}
            for key, binding_series in (
                    ("max", utils.max(axis=1)),
                    ("mean", np.repeat(utils.mean(axis=1)[:, None],
                                       size, axis=1).max(axis=1))):
                rows = utils if key == "max" else np.repeat(
                    utils.mean(axis=1)[:, None], size, axis=1)
                totals = np.empty(len(binding_series))
                for i, (binding, row) in enumerate(zip(binding_series,
                                                       rows)):
                    inlet = min(self.inlet_max_c,
                                model.inlet_for_cpu_temp(
                                    float(binding), self.flow_l_per_h,
                                    self.safe_temp_c))
                    from .thermal.cpu_model import CoolingSetting

                    setting = CoolingSetting(
                        flow_l_per_h=self.flow_l_per_h,
                        inlet_temp_c=max(20.0, inlet))
                    outlets = model.outlet_temp_c(row, setting)
                    totals[i] = float(np.mean(module.generation_w(
                        outlets, self.cold_source_temp_c,
                        self.flow_l_per_h)))
                gen[key] = float(totals.mean())
            improvements[draw] = (gen["mean"] - gen["max"]) / gen["max"]
        return improvements

    def run(self, trace: WorkloadTrace,
            n_draws: int = 100) -> UncertaintyResult:
        """Monte Carlo over ``n_draws`` perturbed pipelines.

        Parameters
        ----------
        trace:
            Evaluation workload (only the first ``circulation_size``
            servers are used per draw; pick a representative slice).
        n_draws:
            Number of Monte Carlo samples.

        Returns
        -------
        UncertaintyResult
            Samples of mean generation, PRE and TCO reduction.
        """
        if n_draws <= 0:
            raise PhysicalRangeError(f"n_draws must be > 0, got {n_draws}")
        rng = np.random.default_rng(self.seed)
        tco = TcoModel()
        generation = np.empty(n_draws)
        pre = np.empty(n_draws)
        reduction = np.empty(n_draws)
        for draw in range(n_draws):
            model, module, power_scale = self._perturbed_models(rng)
            generation[draw], pre[draw] = self._evaluate_draw(
                trace, model, module, power_scale)
            reduction[draw] = tco.breakdown(
                generation[draw]).reduction_fraction
        return UncertaintyResult(generation_w=generation, pre=pre,
                                 tco_reduction=reduction)

"""The experiment registry: every table/figure reproduction, runnable.

DESIGN.md indexes the paper's tables and figures by experiment id
(``E-F3`` … ``E-T1`` plus the ablations).  This module maps each id to a
self-contained callable that regenerates the experiment at a reduced,
laptop-friendly scale and returns a structured result::

    >>> from repro.experiments import run_experiment
    >>> outcome = run_experiment("E-T1")
    >>> outcome.metrics["break_even_days"]
    920.79...

The benchmark suite remains the authoritative, assertion-carrying
harness; this registry exists so users (and ``h2p experiment``) can
regenerate any experiment programmatically without pytest.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from .errors import ConfigurationError


@dataclass(frozen=True)
class ExperimentOutcome:
    """Result of one registry run."""

    experiment_id: str
    title: str
    metrics: dict
    series: dict = field(default_factory=dict)

    def describe(self) -> str:
        """A compact text rendering of the metrics."""
        lines = [f"{self.experiment_id}: {self.title}"]
        for key, value in self.metrics.items():
            if isinstance(value, float):
                lines.append(f"  {key} = {value:.4g}")
            else:
                lines.append(f"  {key} = {value}")
        return "\n".join(lines)


def _run_fig3() -> ExperimentOutcome:
    from .figures import fig3_data

    data = fig3_data(output_dt_s=10.0)
    return ExperimentOutcome(
        experiment_id="E-F3",
        title="TEG sandwiched under the CPU can hardly conduct heat",
        metrics={
            "cpu0_peak_c": float(data["cpu0_temp_c"].max()),
            "cpu1_peak_c": float(data["cpu1_temp_c"].max()),
            "teg_voltage_peak_v": float(data["teg_voltage_v"].max()),
        },
        series=data,
    )


def _run_fig7() -> ExperimentOutcome:
    from .figures import fig7_data

    data = fig7_data()
    at_20 = {flow: float(series[20])
             for flow, series in data["voltage_v"].items()}
    return ExperimentOutcome(
        experiment_id="E-F7",
        title="Voc of 6 series TEGs vs dT and flow rate",
        metrics={f"voc_at_dt20_{int(flow)}lph": v
                 for flow, v in at_20.items()},
        series=data,
    )


def _run_fig8() -> ExperimentOutcome:
    from .figures import fig8_data

    data = fig8_data()
    return ExperimentOutcome(
        experiment_id="E-F8",
        title="Voltage and power scaling with TEGs in series",
        metrics={
            "voc_12_at_dt25_v": float(data["voltage_v"][12][-1]),
            "pmax_12_at_dt25_w": float(data["power_w"][12][-1]),
        },
        series=data,
    )


def _run_fig9() -> ExperimentOutcome:
    from .figures import fig9_data

    data = fig9_data()
    all_values = np.concatenate(list(data["by_inlet"].values()))
    return ExperimentOutcome(
        experiment_id="E-F9",
        title="Outlet-inlet temperature rise",
        metrics={
            "delta_min_c": float(all_values.min()),
            "delta_max_c": float(all_values.max()),
        },
        series=data,
    )


def _run_fig10() -> ExperimentOutcome:
    from .figures import fig10_data

    data = fig10_data()
    return ExperimentOutcome(
        experiment_id="E-F10",
        title="CPU temperature and frequency vs utilisation",
        metrics={
            "frequency_plateau_ghz": float(data["frequency_ghz"][-1]),
            "temp_45c_full_load_c": float(data["temps_c"][45.0][-1]),
        },
        series=data,
    )


def _run_fig11() -> ExperimentOutcome:
    from .figures import fig11_data

    data = fig11_data()
    return ExperimentOutcome(
        experiment_id="E-F11",
        title="CPU temperature vs coolant temperature per flow",
        metrics={f"slope_{int(flow)}lph": s
                 for flow, s in data["slopes"].items()},
        series=data,
    )


def _run_fig13() -> ExperimentOutcome:
    from .figures import fig13_data

    data = fig13_data()
    return ExperimentOutcome(
        experiment_id="E-F13",
        title="A_max vs A_avg selection regions",
        metrics={
            "a_max_mean_inlet_c": float(
                data["a_max"]["inlet_temp_c"].mean()),
            "a_avg_mean_inlet_c": float(
                data["a_avg"]["inlet_temp_c"].mean()),
        },
        series=data,
    )


def _run_fig14(n_servers: int = 200) -> ExperimentOutcome:
    from .figures import fig14_15_data

    data = fig14_15_data(n_servers=n_servers)
    metrics = {}
    for name, entry in data.items():
        metrics[f"{name}_original_w"] = float(entry["original_w"].mean())
        metrics[f"{name}_loadbalance_w"] = float(
            entry["loadbalance_w"].mean())
    originals = [metrics[f"{n}_original_w"] for n in data]
    balanced = [metrics[f"{n}_loadbalance_w"] for n in data]
    metrics["improvement_pct"] = 100.0 * (
        float(np.mean(balanced)) / float(np.mean(originals)) - 1.0)
    return ExperimentOutcome(
        experiment_id="E-F14",
        title="Generation under three traces x two schemes",
        metrics=metrics,
        series=data,
    )


def _run_fig15(n_servers: int = 200) -> ExperimentOutcome:
    from .figures import fig14_15_data

    data = fig14_15_data(n_servers=n_servers)
    metrics = {}
    for name, entry in data.items():
        metrics[f"{name}_original_pre"] = entry["original_pre"]
        metrics[f"{name}_loadbalance_pre"] = entry["loadbalance_pre"]
    return ExperimentOutcome(
        experiment_id="E-F15",
        title="Power reusing efficiency per trace and scheme",
        metrics=metrics,
        series=data,
    )


def _run_table1() -> ExperimentOutcome:
    from .economics.breakeven import BreakEvenAnalysis
    from .economics.tco import TcoModel

    model = TcoModel()
    original = model.breakdown(3.694)
    balance = model.breakdown(4.177)
    analysis = BreakEvenAnalysis()
    return ExperimentOutcome(
        experiment_id="E-T1",
        title="Table I TCO and Sec. V-D break-even",
        metrics={
            "tco_no_teg_usd": model.tco_no_teg_usd,
            "reduction_original": original.reduction_fraction,
            "reduction_loadbalance": balance.reduction_fraction,
            "daily_revenue_usd": analysis.daily_revenue_usd(4.177),
            "break_even_days": analysis.break_even_days(4.177),
        },
    )


def _run_batch_engine(n_servers: int = 80) -> ExperimentOutcome:
    from .core.config import teg_loadbalance, teg_original
    from .core.engine import compare_batch
    from .core.simulator import DatacenterSimulator
    from .workloads.synthetic import trace_by_name

    traces = [trace_by_name(name, n_servers=n_servers)
              for name in ("drastic", "common")]
    configs = [teg_original(), teg_loadbalance()]
    batch = compare_batch(traces, configs)
    # Self-check: the engine must be bit-identical to the serial
    # simulator on one of the jobs.
    serial = DatacenterSimulator(traces[0], configs[0]).run()
    engine_result = batch.get(configs[0].name, traces[0].name)
    identical = serial.records == engine_result.records
    aggregate = batch.metrics
    return ExperimentOutcome(
        experiment_id="E-BATCH",
        title="Batch engine self-check (throughput + cache + identity)",
        metrics={
            "jobs": aggregate.n_jobs,
            "executor": aggregate.executor,
            "workers": aggregate.n_workers,
            "wall_time_s": aggregate.wall_time_s,
            "steps_per_s": aggregate.steps_per_s,
            "cache_hit_rate": aggregate.cache_hit_rate,
            "bit_identical_to_serial": identical,
        },
        series={"per_job": batch.summaries()},
    )


def _run_faults(n_servers: int = 60) -> ExperimentOutcome:
    """Fault-intensity sweep: recycled power vs injected fault severity.

    One schedule template (sensor noise + TEG open strings + a pump
    stall on circulation 0) is scaled from intensity 0 (healthy) to 1
    (severe) and replayed over the common trace.  The healthy point
    doubles as a regression anchor: it must match the fault-free run
    bit for bit.
    """
    from .core.config import teg_loadbalance
    from .core.engine import SimulationJob, run_batch
    from .faults import FaultSchedule, FaultSpec
    from .workloads.synthetic import common_trace

    trace = common_trace(n_servers=n_servers, duration_s=8 * 3600.0)
    config = teg_loadbalance()

    def schedule(intensity: float) -> FaultSchedule | None:
        if intensity <= 0:
            return None
        specs = [
            FaultSpec(kind="sensor_noise", magnitude=0.2 * intensity),
            FaultSpec(kind="teg_open_circuit",
                      magnitude=0.3 * intensity),
            FaultSpec(kind="chiller_excursion",
                      magnitude=8.0 * intensity),
        ]
        if intensity >= 0.75:
            specs.append(FaultSpec(kind="pump_stall",
                                   start_s=4 * 3600.0, circulation=0))
        return FaultSchedule(specs=tuple(specs), seed=29)

    intensities = [0.0, 0.25, 0.5, 0.75, 1.0]
    jobs = [SimulationJob(trace=trace, config=config,
                          faults=schedule(intensity))
            for intensity in intensities]
    batch = run_batch(jobs, n_workers=1)
    healthy = batch.results[0]
    metrics: dict = {
        "healthy_generation_w": healthy.average_generation_w,
    }
    generation = []
    lost = []
    degraded = []
    for intensity, result in zip(intensities, batch.results):
        generation.append(result.average_generation_w)
        lost.append(result.total_lost_harvest_kwh)
        degraded.append(result.degraded_steps)
        tag = f"{intensity:.2f}"
        metrics[f"generation_w_at_{tag}"] = result.average_generation_w
        metrics[f"lost_kwh_at_{tag}"] = result.total_lost_harvest_kwh
    metrics["worst_case_retention"] = (
        generation[-1] / generation[0] if generation[0] > 0 else 0.0)
    return ExperimentOutcome(
        experiment_id="E-FAULTS",
        title="Recycled power under injected fault intensity",
        metrics=metrics,
        series={
            "intensity": intensities,
            "generation_w": generation,
            "lost_harvest_kwh": lost,
            "degraded_steps": degraded,
        },
    )


def _run_circulation_design() -> ExperimentOutcome:
    from .cooling.circulation_design import CirculationDesignProblem

    problem = CirculationDesignProblem()
    result = problem.optimise(
        candidates=[1, 2, 5, 10, 20, 50, 100, 200, 500, 1000])
    return ExperimentOutcome(
        experiment_id="E-VA",
        title="Economical water-circulation design",
        metrics={
            "best_n": result.best_n,
            "best_cost_usd": result.best_cost_usd,
            "cost_n1_usd": result.cost_for(1),
            "cost_n1000_usd": result.cost_for(1000),
        },
        series={
            "candidate_n": result.candidate_n,
            "total_costs_usd": result.total_costs_usd,
        },
    )


_REGISTRY: dict[str, tuple[str, Callable[[], ExperimentOutcome]]] = {
    "E-F3": ("Fig. 3 placement transient", _run_fig3),
    "E-F7": ("Fig. 7 Voc vs dT and flow", _run_fig7),
    "E-F8": ("Fig. 8 series scaling", _run_fig8),
    "E-F9": ("Fig. 9 outlet delta", _run_fig9),
    "E-F10": ("Fig. 10 CPU temp vs utilisation", _run_fig10),
    "E-F11": ("Fig. 11 CPU temp vs coolant", _run_fig11),
    "E-F13": ("Fig. 13 selection regions", _run_fig13),
    "E-F14": ("Fig. 14 generation headline", _run_fig14),
    "E-F15": ("Fig. 15 PRE", _run_fig15),
    "E-T1": ("Table I + break-even", _run_table1),
    "E-VA": ("Sec. V-A circulation design", _run_circulation_design),
    "E-BATCH": ("Batch engine self-check", _run_batch_engine),
    "E-FAULTS": ("Fault-intensity vs recycled power", _run_faults),
}


def list_experiments() -> list[tuple[str, str]]:
    """All registered (id, short title) pairs, in paper order."""
    return [(key, value[0]) for key, value in _REGISTRY.items()]


def run_experiment(experiment_id: str) -> ExperimentOutcome:
    """Run one experiment by id (see :func:`list_experiments`)."""
    try:
        _, runner = _REGISTRY[experiment_id.upper()]
    except KeyError:
        valid = ", ".join(_REGISTRY)
        raise ConfigurationError(
            f"unknown experiment {experiment_id!r}; valid ids: {valid}"
        ) from None
    return runner()

"""Reliability models: CPU lifetime vs temperature and TEG ageing.

Two reliability questions hang over warm water cooling and H2P:

* **Does warm water shorten CPU life?**  Sec. II-B cites El-Sayed et
  al.'s finding that the effect of high temperature "is not so high",
  but Sec. V-A still derates to ``T_safe`` because "pro-longed operation
  at close to the maximum temperatures may cause CPU performance
  degradation and shorten the CPU lifespan".  We model the standard
  Arrhenius acceleration so the trade-off can be quantified.
* **How long do the TEGs really pay back?**  The TCO analysis assumes a
  25-year TEG life with constant output; commercial Bi2Te3 modules fade
  slowly (fractions of a percent per year with stable heat sources).
  :class:`TegDegradationModel` folds that fade into the revenue stream
  and corrects the break-even estimate.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from .constants import ELECTRICITY_PRICE_USD_PER_KWH
from .errors import PhysicalRangeError
from .units import celsius_to_kelvin

#: Boltzmann constant in eV/K.
BOLTZMANN_EV_PER_K = 8.617e-5


@dataclass(frozen=True)
class ArrheniusModel:
    """Thermally accelerated wear-out (electromigration class).

    ``AF(T) = exp(Ea/k * (1/T_ref - 1/T))`` — the acceleration factor of
    operating at ``T`` relative to the reference temperature.
    """

    activation_energy_ev: float = 0.7
    reference_temp_c: float = 60.0

    def __post_init__(self) -> None:
        if self.activation_energy_ev <= 0:
            raise PhysicalRangeError("activation energy must be > 0")

    def acceleration_factor(self, temp_c: float) -> float:
        """Wear acceleration at ``temp_c`` vs the reference (1.0 there)."""
        t_ref = celsius_to_kelvin(self.reference_temp_c)
        t = celsius_to_kelvin(temp_c)
        return math.exp(self.activation_energy_ev / BOLTZMANN_EV_PER_K
                        * (1.0 / t_ref - 1.0 / t))


@dataclass(frozen=True)
class CpuLifetimeModel:
    """CPU wear under a junction-temperature history.

    Attributes
    ----------
    base_lifetime_years:
        Expected lifetime at the reference temperature.
    arrhenius:
        The acceleration law.
    """

    base_lifetime_years: float = 7.0
    arrhenius: ArrheniusModel = ArrheniusModel()

    def __post_init__(self) -> None:
        if self.base_lifetime_years <= 0:
            raise PhysicalRangeError("base lifetime must be > 0")

    def lifetime_years_at(self, temp_c: float) -> float:
        """Expected lifetime under constant operation at ``temp_c``."""
        return (self.base_lifetime_years
                / self.arrhenius.acceleration_factor(temp_c))

    def effective_lifetime_years(self, temps_c: np.ndarray) -> float:
        """Lifetime under a temperature time series (Miner's rule).

        The mean acceleration factor over the history divides the base
        lifetime — equal time-weighted damage accumulation.
        """
        temps = np.asarray(temps_c, dtype=float)
        if temps.ndim != 1 or temps.size == 0:
            raise PhysicalRangeError(
                "temperature history must be a non-empty 1-D array")
        factors = np.array([self.arrhenius.acceleration_factor(float(t))
                            for t in temps])
        return self.base_lifetime_years / float(factors.mean())

    def derating_benefit(self, hot_temp_c: float,
                         safe_temp_c: float) -> float:
        """Lifetime multiplier bought by derating hot to safe.

        The Sec. V-A rationale for ``T_safe``: running at 62 °C instead
        of 78.9 °C multiplies the expected CPU life by this factor.
        """
        return (self.lifetime_years_at(safe_temp_c)
                / self.lifetime_years_at(hot_temp_c))


@dataclass(frozen=True)
class TegDegradationModel:
    """Slow output fade of a TEG module with constant heat sources.

    Attributes
    ----------
    fade_per_year:
        Fractional output loss per year (constant-source Bi2Te3 modules
        are specified at small fractions of a percent).
    lifetime_years:
        Hard end-of-life (the paper assumes >= 25 years).
    """

    fade_per_year: float = 0.004
    lifetime_years: float = 25.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.fade_per_year < 1.0:
            raise PhysicalRangeError("fade must be in [0, 1)")
        if self.lifetime_years <= 0:
            raise PhysicalRangeError("lifetime must be > 0")

    def output_factor(self, age_years: float) -> float:
        """Remaining output fraction at ``age_years`` (0 past EOL)."""
        if age_years < 0:
            raise PhysicalRangeError("age must be >= 0")
        if age_years >= self.lifetime_years:
            return 0.0
        return (1.0 - self.fade_per_year) ** age_years

    def lifetime_energy_kwh(self, initial_power_w: float) -> float:
        """Energy one module yields over its whole life, fade included."""
        if initial_power_w < 0:
            raise PhysicalRangeError("power must be >= 0")
        years = np.arange(math.ceil(self.lifetime_years))
        factors = np.array([self.output_factor(float(y) + 0.5)
                            for y in years])
        hours_per_year = 24.0 * 365.0
        return float(initial_power_w / 1000.0 * hours_per_year
                     * factors.sum())

    def degraded_break_even_days(
            self, initial_power_w: float, purchase_usd_per_watt_capacity:
            float, electricity_price_usd_per_kwh:
            float = ELECTRICITY_PRICE_USD_PER_KWH) -> float:
        """Break-even corrected for output fade.

        Parameters
        ----------
        initial_power_w:
            Day-one average output of the installed capacity.
        purchase_usd_per_watt_capacity:
            Purchase cost divided by day-one output (the paper's
            instance: $12 of TEGs per ~4.18 W -> ~$2.87/W).

        Returns
        -------
        float
            Days until cumulative (fading) revenue covers the purchase;
            ``inf`` if the module dies first.
        """
        if initial_power_w <= 0:
            return math.inf
        if purchase_usd_per_watt_capacity < 0:
            raise PhysicalRangeError("purchase cost must be >= 0")
        target_usd = purchase_usd_per_watt_capacity * initial_power_w
        revenue = 0.0
        for day in range(int(self.lifetime_years * 365.0)):
            factor = self.output_factor(day / 365.0)
            daily_kwh = initial_power_w * factor * 24.0 / 1000.0
            revenue += daily_kwh * electricity_price_usd_per_kwh
            if revenue >= target_usd:
                return float(day + 1)
        return math.inf

"""Content-addressed result cache with cross-run warm starts.

The ROADMAP's ``h2p serve`` north-star needs "results keyed on (config
hash, trace hash, scheme) so identical requests are free".  This module
provides that memoisation layer on top of the :class:`~repro.core.
checkpoint.RunKey` content identity from the checkpoint subsystem: a
:class:`ResultCache` directory maps a run's exact identity — trace
plane, full configuration, hardware models, fault schedule, execution
mode and shard plan — to its persisted :class:`~repro.core.results.
SimulationResult`, so repeating a sweep, regenerating a figure or
re-running ``h2p batch`` serves finished jobs from disk instead of
recomputing them.

Durability contract (shared with :mod:`repro.core.checkpoint`)
--------------------------------------------------------------
* **Atomic write-then-rename.**  Every entry is written to a temp file
  in the same directory, fsync'd, then :func:`os.replace`-d into place
  followed by a directory fsync; a crash mid-write leaves at most a
  stale ``.tmp-*`` file that the next open sweeps away.
* **Versioned format.**  The directory manifest (``cache.json``) and
  every entry record :data:`CACHE_SCHEMA` / :data:`CACHE_FORMAT_VERSION`;
  a newer version than this build understands raises
  :class:`~repro.errors.CacheError` instead of being misread.
* **Corruption is not fatal.**  An entry that fails to parse, fails its
  schema check or was truncated is unlinked, counted
  (``engine.cache.corrupt``) and the result recomputed.
* **Size-capped LRU.**  When ``REPRO_CACHE_MAX_BYTES`` (or the
  ``max_bytes`` argument) is set, the oldest-used entries are evicted
  after each store until the directory fits; hits refresh an entry's
  timestamp.

Bit-identity contract
---------------------
A cache hit returns records **byte-equal** to recomputing the run.
Columnar results round-trip their NumPy columns losslessly through an
``.npz`` container (zero copies on either side beyond the file I/O);
list-backed records round-trip through float64/int64 columns, which is
exact for the Python floats/ints they hold.  Violations, engine
metrics and telemetry snapshots ride along.  The key is conservative:
anything that *could* shape the numbers (mode, shard plan, decision
cache resolution, fault schedule) is part of the identity, so a hit can
never alias two runs that would diverge.

Warm starts
-----------
Beyond exact hits, the memoised cooling-decision state is persisted
under its own two-level content key so *near-miss* jobs start hot:

* **W1 (decision key)** covers everything that shapes the decisions
  themselves — trace plane, config minus its display name, hardware
  models.  A W1 match restores the saved decisions directly (re-tagged
  to the loading run's cache context).
* **W2 (binding key)** covers only what shapes the *sequence of
  binding utilisations* — trace plane, scheduler, circulation size and
  the policy's memoisation bucketing.  A W2 match with a W1 mismatch
  (same trace and scheduling, different TEG module or temperatures)
  replays the saved binding per bucket through the *current* policy:
  each bucket's representative binding is fed through
  ``policy.decide([binding])``, which both primes the policy memo and
  yields the decision a cold run would have produced for that bucket —
  single-element aggregation (max or mean) is exact in floating point,
  so the replayed decisions are bit-identical to a cold run's.

The warm path is an accelerator, never an oracle: it only ever installs
decisions the current policy itself produced (or, under a full W1
match, decisions proven identical by the content key), so warmed runs
keep the hard bit-identity guarantee.
"""

from __future__ import annotations

import io
import itertools
import json
import os
import pickle
import threading
from dataclasses import dataclass, fields as dataclass_fields
from pathlib import Path
from typing import TYPE_CHECKING, Any, Iterable

import numpy as np

from .. import obs
from ..errors import CacheError, ConfigurationError
from ..workloads.trace import WorkloadTrace
from .checkpoint import (RunKey, _fsync_directory, fingerprint, run_key,
                         trace_digest)
from .results import (STEP_COLUMNS, STEP_FLOAT_COLUMNS, STEP_INT_COLUMNS,
                      ColumnarSteps, SafetyViolation, SimulationResult,
                      StepRecord)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .shard import ShardSpec

__all__ = [
    "CACHE_DIR_ENV_VAR",
    "CACHE_ENV_VAR",
    "CACHE_FORMAT_VERSION",
    "CACHE_MAX_BYTES_ENV_VAR",
    "CACHE_SCHEMA",
    "ResultCache",
    "ResultCacheStats",
    "cache_enabled",
    "default_cache_dir",
    "resolve_cache_dir",
    "resolve_cache_max_bytes",
    "resolve_result_cache",
    "result_key",
    "warm_keys",
]

#: Identifies the on-disk layout; bump on incompatible changes.
CACHE_SCHEMA = "repro.core/cache/v1"
CACHE_FORMAT_VERSION = 1

#: Environment variable enabling the result cache by default.
CACHE_ENV_VAR = "REPRO_CACHE"

#: Environment variable naming the default cache directory.  Setting it
#: relocates the cache but does *not* enable it.
CACHE_DIR_ENV_VAR = "REPRO_CACHE_DIR"

#: Environment variable capping the cache size in bytes (LRU eviction).
CACHE_MAX_BYTES_ENV_VAR = "REPRO_CACHE_MAX_BYTES"

#: Manifest file name inside a cache directory.
MANIFEST_NAME = "cache.json"

#: Subdirectory holding one ``.npz`` per cached result.
RESULTS_DIR = "results"

#: Subdirectory holding warm-start decision snapshots.
WARM_DIR = "warm"

_TRUE_WORDS = ("1", "true", "yes", "on")
_FALSE_WORDS = ("0", "false", "no", "off")


# ----------------------------------------------------------------------
# Environment knobs
# ----------------------------------------------------------------------

def cache_enabled(explicit: bool | None = None) -> bool:
    """Whether the result cache is on: explicit > ``REPRO_CACHE`` > off.

    Raises
    ------
    ConfigurationError
        When ``REPRO_CACHE`` is set to something that is not a boolean
        word (``1/0``, ``true/false``, ``yes/no``, ``on/off``).
    """
    if explicit is not None:
        return bool(explicit)
    env = os.environ.get(CACHE_ENV_VAR)
    if env is None:
        return False
    word = env.strip().lower()
    if word in _TRUE_WORDS:
        return True
    if word in _FALSE_WORDS or word == "":
        return False
    raise ConfigurationError(
        f"{CACHE_ENV_VAR} must be one of "
        f"{'/'.join(_TRUE_WORDS + _FALSE_WORDS)}, got {env!r}")


def default_cache_dir() -> Path:
    """The per-user cache location (``$XDG_CACHE_HOME`` aware)."""
    base = os.environ.get("XDG_CACHE_HOME")
    root = Path(base) if base and base.strip() else Path.home() / ".cache"
    return root / "repro-h2p"


def resolve_cache_dir(explicit: str | os.PathLike | None = None) -> Path:
    """Cache directory: explicit > ``REPRO_CACHE_DIR`` > per-user default.

    Raises
    ------
    ConfigurationError
        When ``REPRO_CACHE_DIR`` is blank, or either source names an
        existing path that is not a directory.
    """
    if explicit is not None:
        path = Path(os.fspath(explicit))
    else:
        env = os.environ.get(CACHE_DIR_ENV_VAR)
        if env is None:
            return default_cache_dir()
        if not env.strip():
            raise ConfigurationError(
                f"{CACHE_DIR_ENV_VAR} must be a directory path, "
                f"got {env!r}")
        path = Path(env)
    if path.exists() and not path.is_dir():
        raise ConfigurationError(
            f"cache directory {str(path)!r} exists and is not a "
            f"directory ({CACHE_DIR_ENV_VAR})")
    return path


def resolve_cache_max_bytes(explicit: int | None = None) -> int | None:
    """Size cap: explicit > ``REPRO_CACHE_MAX_BYTES`` > unbounded."""
    if explicit is not None:
        if explicit <= 0:
            raise ConfigurationError(
                f"cache max_bytes must be positive, got {explicit}")
        return int(explicit)
    env = os.environ.get(CACHE_MAX_BYTES_ENV_VAR)
    if env is None or not env.strip():
        return None
    try:
        value = int(env)
    except ValueError:
        raise ConfigurationError(
            f"{CACHE_MAX_BYTES_ENV_VAR} must be an integer byte count, "
            f"got {env!r}") from None
    if value <= 0:
        raise ConfigurationError(
            f"{CACHE_MAX_BYTES_ENV_VAR} must be positive, got {env!r}")
    return value


def resolve_result_cache(cache=None, *,
                         max_bytes: int | None = None
                         ) -> "ResultCache | None":
    """Normalise the ``result_cache=`` argument every entry point takes.

    * :class:`ResultCache` — used as-is;
    * ``False`` — caching off, environment ignored;
    * ``None`` — on iff ``REPRO_CACHE`` enables it, at
      ``REPRO_CACHE_DIR`` (or the per-user default);
    * ``True`` — on, at ``REPRO_CACHE_DIR`` (or the default);
    * a path — on, at that directory.
    """
    if isinstance(cache, ResultCache):
        return cache
    if cache is False:
        return None
    if cache is None or cache is True:
        if not cache_enabled(True if cache is True else None):
            return None
        directory = resolve_cache_dir()
    else:
        directory = resolve_cache_dir(cache)
    return ResultCache(directory,
                       max_bytes=resolve_cache_max_bytes(max_bytes))


# ----------------------------------------------------------------------
# Content keys
# ----------------------------------------------------------------------

def result_key(trace: WorkloadTrace, config, cpu_model=None,
               teg_module=None, *, faults=None,
               cache_resolution: float | None = None,
               mode: str = "kernel",
               specs: "Iterable[ShardSpec] | None" = None,
               trace_hash: str | None = None) -> RunKey:
    """The cache identity of one run: :func:`~repro.core.checkpoint.
    run_key` extended with the execution mode (and shard plan via
    ``specs``) so a hit can never alias runs that could diverge."""
    return run_key(trace, config, cpu_model, teg_module, faults=faults,
                   cache_resolution=cache_resolution, specs=specs,
                   extra=(("mode", mode),), trace_hash=trace_hash)


def warm_keys(trace: WorkloadTrace, config, cpu_model=None,
              teg_module=None, *, aggregation: str = "max",
              policy_resolution: float | None = None,
              trace_hash: str | None = None) -> tuple[str, str]:
    """The two-level warm-start identity ``(w1, w2)`` of one run.

    ``w1`` pins everything that shapes the cooling *decisions* (config
    minus its display name, hardware models, trace plane): equal ``w1``
    means the saved decisions can be restored verbatim.  ``w2`` pins
    only what shapes the *binding-utilisation sequence* and its
    memoisation bucketing (trace plane, scheduler and its cap, control
    cadence, circulation size, policy kind, aggregation, bucket
    resolution): equal ``w2`` with different ``w1`` means the saved
    bindings can be replayed through the current policy.
    """
    digest = trace_hash if trace_hash is not None else trace_digest(trace)
    config_fields = {f.name: getattr(config, f.name)
                     for f in dataclass_fields(config)
                     if f.name != "name"}
    w1 = fingerprint("h2p-warm/decisions", digest, config_fields,
                     cpu_model, teg_module)
    w2 = fingerprint("h2p-warm/bindings", digest,
                     config_fields.get("scheduler"),
                     config_fields.get("threshold_cap"),
                     config_fields.get("control_interval_s"),
                     config_fields.get("circulation_size"),
                     config_fields.get("policy"),
                     aggregation, policy_resolution)
    return w1, w2


def _fs_slug(name: str, limit: int = 48) -> str:
    """A filesystem-safe rendering of a scheme/trace label."""
    cleaned = "".join(c if c.isalnum() or c in "._-" else "-"
                      for c in name).strip("-")
    return (cleaned or "run")[:limit]


# ----------------------------------------------------------------------
# Entry codec
# ----------------------------------------------------------------------

class _EntryMismatch(Exception):
    """A structurally valid entry that belongs to a different key."""


_WRITE_COUNTER = itertools.count()


def _atomic_write(path: Path, data: bytes) -> None:
    """Crash- *and* thread-safe write-then-rename.

    Same durability contract as :func:`repro.core.checkpoint.
    _atomic_write`, but the temp name embeds the thread id and a
    process-wide counter: a cache directory is shared between engine
    threads (e.g. two thread-pool workers finishing jobs with the same
    warm key), and pid-only temp names would let their writes collide.
    """
    tmp = path.with_name(
        f"{path.name}.tmp-{os.getpid()}-{threading.get_ident()}"
        f"-{next(_WRITE_COUNTER)}")
    with open(tmp, "wb") as handle:
        handle.write(data)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)
    _fsync_directory(path.parent)


def _sweep_stale_temp_files(directory: Path) -> None:
    """Remove ``.tmp-*`` leftovers of *crashed* writers (best effort).

    Unlike the checkpoint store — whose directory belongs to exactly
    one run — a cache directory is shared between live engines, worker
    processes and threads, any of which may be mid-write while a new
    one opens the store.  Temps are only swept when the pid embedded in
    their name is no longer alive (our own pid included: if the name
    says *us*, another of our threads owns it).
    """
    for leftover in directory.glob("*.tmp-*"):
        pid_word = leftover.name.rsplit(".tmp-", 1)[1].split("-", 1)[0]
        try:
            pid = int(pid_word)
        except ValueError:
            pid = None
        if pid is not None:
            if pid == os.getpid():
                continue
            try:
                os.kill(pid, 0)
            except ProcessLookupError:
                pass  # writer is gone: a genuine crash leftover
            except OSError:  # pragma: no cover - e.g. EPERM: alive
                continue
            else:
                continue  # writer still running
        try:
            leftover.unlink()
        except OSError:  # pragma: no cover - concurrent cleanup
            pass


def _encode_result(key: RunKey, result: SimulationResult) -> bytes:
    """Serialise one result to the versioned ``.npz`` payload."""
    records = result.records
    arrays: dict[str, np.ndarray] = {}
    if isinstance(records, ColumnarSteps):
        kind = "columnar"
        for name in STEP_COLUMNS:
            arrays[f"col_{name}"] = records.column(name)
    else:
        kind = "list"
        for name in STEP_FLOAT_COLUMNS:
            arrays[f"col_{name}"] = np.array(
                [getattr(r, name) for r in records], dtype=np.float64)
        for name in STEP_INT_COLUMNS:
            arrays[f"col_{name}"] = np.array(
                [getattr(r, name) for r in records], dtype=np.int64)
    violations = result.violations or ()
    arrays["viol_server_id"] = np.array(
        [v.server_id for v in violations], dtype=np.int64)
    arrays["viol_step_index"] = np.array(
        [v.step_index for v in violations], dtype=np.int64)
    arrays["viol_time_s"] = np.array(
        [v.time_s for v in violations], dtype=np.float64)
    arrays["viol_temperature_c"] = np.array(
        [v.temperature_c for v in violations], dtype=np.float64)
    if result.metrics is not None:
        arrays["pickle_metrics"] = np.frombuffer(
            pickle.dumps(result.metrics,
                         protocol=pickle.HIGHEST_PROTOCOL),
            dtype=np.uint8)
    if result.telemetry is not None:
        arrays["pickle_telemetry"] = np.frombuffer(
            pickle.dumps(result.telemetry,
                         protocol=pickle.HIGHEST_PROTOCOL),
            dtype=np.uint8)
    meta = {
        "schema": CACHE_SCHEMA,
        "version": CACHE_FORMAT_VERSION,
        "key": key.to_dict(),
        "scheme": result.scheme,
        "trace_name": result.trace_name,
        "n_servers": int(result.n_servers),
        # repr round-trips the float exactly (same convention as the
        # content hashes in checkpoint._canonical).
        "interval_s": repr(float(result.interval_s)),
        "records_kind": kind,
        "n_steps": len(records),
        "n_violations": len(violations),
    }
    arrays["meta"] = np.frombuffer(
        json.dumps(meta, sort_keys=True).encode(), dtype=np.uint8)
    buffer = io.BytesIO()
    np.savez(buffer, **arrays)
    return buffer.getvalue()


def _decode_result(raw: bytes, key: RunKey) -> SimulationResult:
    """Rebuild a result from an entry payload.

    Raises :class:`CacheError` for a valid entry in a newer format,
    :class:`_EntryMismatch` for a valid entry under a different key,
    and anything else (``ValueError``, ``KeyError``, zip errors ...)
    for corruption — the caller maps those to discard-and-recompute.
    """
    with np.load(io.BytesIO(raw), allow_pickle=False) as data:
        meta = json.loads(bytes(data["meta"].tobytes()).decode())
        if meta.get("schema") != CACHE_SCHEMA:
            raise ValueError(
                f"unexpected cache entry schema {meta.get('schema')!r}")
        version = int(meta["version"])
        if version > CACHE_FORMAT_VERSION:
            raise CacheError(
                f"cache entry format v{version} is newer than this "
                f"build understands (v{CACHE_FORMAT_VERSION})")
        if meta["key"] != key.to_dict():
            raise _EntryMismatch(key.short)

        columns = {name: data[f"col_{name}"] for name in STEP_COLUMNS}
        if meta["records_kind"] == "columnar":
            records: Any = ColumnarSteps(columns)
        else:
            n_steps = int(meta["n_steps"])
            records = [
                StepRecord(
                    **{name: float(columns[name][i])
                       for name in STEP_FLOAT_COLUMNS},
                    **{name: int(columns[name][i])
                       for name in STEP_INT_COLUMNS})
                for i in range(n_steps)
            ]
        n_violations = int(meta["n_violations"])
        violations = [
            SafetyViolation(
                server_id=int(data["viol_server_id"][i]),
                step_index=int(data["viol_step_index"][i]),
                time_s=float(data["viol_time_s"][i]),
                temperature_c=float(data["viol_temperature_c"][i]))
            for i in range(n_violations)
        ]
        metrics = None
        if "pickle_metrics" in data.files:
            metrics = pickle.loads(data["pickle_metrics"].tobytes())
        telemetry = None
        if "pickle_telemetry" in data.files:
            telemetry = pickle.loads(data["pickle_telemetry"].tobytes())
    return SimulationResult(
        scheme=meta["scheme"],
        trace_name=meta["trace_name"],
        n_servers=int(meta["n_servers"]),
        interval_s=float(meta["interval_s"]),
        records=records,
        metrics=metrics,
        violations=violations,
        telemetry=telemetry,
    )


# ----------------------------------------------------------------------
# The store
# ----------------------------------------------------------------------

@dataclass
class ResultCacheStats:
    """Lifetime counters of one :class:`ResultCache` instance."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    evictions: int = 0
    corrupt: int = 0


class ResultCache:
    """A content-addressed, crash-safe store of simulation results.

    Layout::

        <directory>/
            cache.json            # schema + format version
            results/<scheme>--<trace>--<short12>.npz
            warm/<w2-digest>.pkl  # warm-start decision snapshots

    Safe to share between processes: entries are written atomically and
    are immutable once named (the name embeds the content key), so
    concurrent readers/writers can at worst duplicate work, never
    corrupt each other.
    """

    def __init__(self, directory: str | os.PathLike, *,
                 max_bytes: int | None = None) -> None:
        if max_bytes is not None and max_bytes <= 0:
            raise ConfigurationError(
                f"cache max_bytes must be positive, got {max_bytes}")
        self.directory = Path(os.fspath(directory))
        self.max_bytes = max_bytes
        self.stats = ResultCacheStats()
        self._results_dir = self.directory / RESULTS_DIR
        self._warm_dir = self.directory / WARM_DIR
        self._results_dir.mkdir(parents=True, exist_ok=True)
        self._warm_dir.mkdir(parents=True, exist_ok=True)
        self._check_manifest()
        for folder in (self.directory, self._results_dir,
                       self._warm_dir):
            _sweep_stale_temp_files(folder)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"ResultCache({str(self.directory)!r}, "
                f"max_bytes={self.max_bytes})")

    # -- manifest ------------------------------------------------------

    def _check_manifest(self) -> None:
        path = self.directory / MANIFEST_NAME
        try:
            raw = path.read_text()
        except FileNotFoundError:
            _atomic_write(path, (json.dumps(
                {"schema": CACHE_SCHEMA,
                 "version": CACHE_FORMAT_VERSION},
                indent=2, sort_keys=True) + "\n").encode())
            return
        try:
            manifest = json.loads(raw)
        except json.JSONDecodeError as exc:
            raise CacheError(
                f"cache manifest {str(path)!r} is not valid JSON: "
                f"{exc}") from exc
        if (not isinstance(manifest, dict)
                or manifest.get("schema") != CACHE_SCHEMA
                or not isinstance(manifest.get("version"), int)):
            raise CacheError(
                f"{str(path)!r} is not a result-cache manifest "
                f"(expected schema {CACHE_SCHEMA!r})")
        if manifest["version"] > CACHE_FORMAT_VERSION:
            raise CacheError(
                f"cache directory {str(self.directory)!r} uses format "
                f"v{manifest['version']}, newer than this build "
                f"understands (v{CACHE_FORMAT_VERSION})")

    # -- result entries ------------------------------------------------

    def path_for(self, key: RunKey) -> Path:
        name = "--".join((_fs_slug(key.scheme),
                          _fs_slug(key.trace_name), key.short))
        return self._results_dir / f"{name}.npz"

    def load(self, key: RunKey) -> SimulationResult | None:
        """The cached result under ``key``, or ``None``.

        A hit refreshes the entry's LRU timestamp and flags the
        returned metrics with ``result_cache_hit`` so batch layers can
        account for served jobs.  Corrupt or truncated entries are
        unlinked and reported as misses.
        """
        path = self.path_for(key)
        try:
            raw = path.read_bytes()
        except FileNotFoundError:
            self._miss(key)
            return None
        try:
            result = _decode_result(raw, key)
        except CacheError:
            raise
        except _EntryMismatch:
            # A different run hashed to the same label; astronomically
            # unlikely (96-bit digests) but must read as a miss, and
            # the other run's entry must survive.
            self._miss(key)
            return None
        except Exception:
            path.unlink(missing_ok=True)
            self.stats.corrupt += 1
            obs.add("engine.cache.corrupt", 1,
                    labels={"scheme": key.scheme,
                            "trace": key.trace_name})
            obs.emit("engine.cache.corrupt", scheme=key.scheme,
                     trace=key.trace_name, path=path.name)
            self._miss(key)
            return None
        self.stats.hits += 1
        obs.add("engine.cache.hit", 1,
                labels={"scheme": key.scheme, "trace": key.trace_name})
        obs.emit("engine.cache.hit", scheme=key.scheme,
                 trace=key.trace_name, key=key.short)
        try:
            os.utime(path)
        except OSError:  # pragma: no cover - entry evicted under us
            pass
        if result.metrics is not None:
            result.metrics.result_cache_hit = True
        return result

    def _miss(self, key: RunKey) -> None:
        self.stats.misses += 1
        obs.add("engine.cache.miss", 1,
                labels={"scheme": key.scheme, "trace": key.trace_name})
        obs.emit("engine.cache.miss", scheme=key.scheme,
                 trace=key.trace_name, key=key.short)

    def store(self, key: RunKey, result: SimulationResult) -> None:
        """Persist ``result`` under ``key`` (atomic), then evict LRU."""
        data = _encode_result(key, result)
        _atomic_write(self.path_for(key), data)
        self.stats.stores += 1
        obs.add("engine.cache.store", 1,
                labels={"scheme": key.scheme, "trace": key.trace_name})
        obs.emit("engine.cache.store", scheme=key.scheme,
                 trace=key.trace_name, key=key.short, bytes=len(data))
        self._evict()

    # -- warm-start snapshots ------------------------------------------

    def warm_path(self, w2: str) -> Path:
        return self._warm_dir / f"{w2}.pkl"

    def load_warm(self, w2: str) -> dict | None:
        """The warm snapshot under binding key ``w2``, or ``None``.

        Returns the raw payload dict (``w1``, ``entries``); corrupt
        files are unlinked, newer-format files are left alone and
        simply not used.
        """
        path = self.warm_path(w2)
        try:
            raw = path.read_bytes()
        except FileNotFoundError:
            return None
        try:
            payload = pickle.loads(raw)
            if (not isinstance(payload, dict)
                    or payload.get("schema") != CACHE_SCHEMA
                    or not isinstance(payload.get("entries"), list)):
                raise ValueError("not a warm-start payload")
        except Exception:
            path.unlink(missing_ok=True)
            self.stats.corrupt += 1
            obs.add("engine.cache.corrupt", 1)
            obs.emit("engine.cache.corrupt", path=path.name,
                     entry_kind="warm")
            return None
        if int(payload.get("version", 0)) > CACHE_FORMAT_VERSION:
            return None
        try:
            os.utime(path)
        except OSError:  # pragma: no cover - evicted under us
            pass
        obs.add("engine.cache.warm_hit", 1)
        return payload

    def store_warm(self, w1: str, w2: str, entries: list) -> None:
        """Persist one warm snapshot: the decision-cache entries of a
        completed run, first-occurrence order preserved."""
        payload = {"schema": CACHE_SCHEMA,
                   "version": CACHE_FORMAT_VERSION,
                   "kind": "warm", "w1": w1, "entries": list(entries)}
        _atomic_write(self.warm_path(w2),
                      pickle.dumps(payload,
                                   protocol=pickle.HIGHEST_PROTOCOL))
        obs.add("engine.cache.warm_store", 1)
        self._evict()

    # -- eviction ------------------------------------------------------

    def _evict(self) -> None:
        """Unlink least-recently-used entries until under the cap."""
        if self.max_bytes is None:
            return
        entries = []
        for folder in (self._results_dir, self._warm_dir):
            for path in folder.iterdir():
                if ".tmp-" in path.name:  # another writer, mid-flight
                    continue
                try:
                    stat = path.stat()
                except OSError:  # pragma: no cover - raced unlink
                    continue
                entries.append((stat.st_mtime, stat.st_size, path))
        total = sum(size for _, size, _ in entries)
        if total <= self.max_bytes:
            return
        entries.sort()
        for _, size, path in entries:
            if total <= self.max_bytes:
                break
            try:
                path.unlink()
            except OSError:  # pragma: no cover - raced unlink
                continue
            total -= size
            self.stats.evictions += 1
            obs.add("engine.cache.evict", 1)
            obs.emit("engine.cache.evict", path=path.name, bytes=size)

"""Facility-level energy accounting: PUE and ERE for a simulated run.

Ties the Fig. 1 plant together: IT power (CPUs plus the rest of the
server), cooling power (chiller + tower + pumps from the simulation),
power-delivery losses (UPS/distribution), lighting — and the TEG output
as *reused* energy, yielding the ERE metric Sec. II-C motivates
("maximizing energy reuse enables the ratio less than 1").
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..economics.metrics import (
    energy_reuse_effectiveness,
    power_usage_effectiveness,
)
from ..errors import PhysicalRangeError
from .results import SimulationResult


@dataclass(frozen=True)
class FacilityReport:
    """Aggregated facility energy flows over one simulated run (kWh)."""

    it_kwh: float
    cooling_kwh: float
    power_delivery_kwh: float
    lighting_kwh: float
    reuse_kwh: float

    @property
    def pue(self) -> float:
        """Power usage effectiveness (ignores reuse)."""
        return power_usage_effectiveness(
            self.it_kwh, self.cooling_kwh, self.power_delivery_kwh,
            self.lighting_kwh)

    @property
    def ere(self) -> float:
        """Energy reuse effectiveness (credits the TEG output)."""
        return energy_reuse_effectiveness(
            self.it_kwh, self.cooling_kwh, self.power_delivery_kwh,
            self.lighting_kwh, self.reuse_kwh)

    @property
    def ere_gain(self) -> float:
        """How much the TEGs improved the facility metric (PUE − ERE)."""
        return self.pue - self.ere


@dataclass(frozen=True)
class FacilityModel:
    """Overheads that turn a cluster simulation into facility totals.

    Attributes
    ----------
    server_overhead_factor:
        IT power per server divided by CPU power (memory, disks, fans,
        VRs; ~1.6 for the 2-socket class the paper measures).
    power_delivery_loss:
        Fraction of IT+cooling power lost in UPS/distribution (Sec. VI-D
        notes DC distribution can shrink this).
    lighting_fraction:
        Lighting as a fraction of IT power ("representing 1 %",
        Sec. VI-C2).
    """

    server_overhead_factor: float = 1.6
    power_delivery_loss: float = 0.06
    lighting_fraction: float = 0.01

    def __post_init__(self) -> None:
        if self.server_overhead_factor < 1.0:
            raise PhysicalRangeError(
                "server_overhead_factor must be >= 1 (CPU included)")
        if not 0.0 <= self.power_delivery_loss < 1.0:
            raise PhysicalRangeError(
                "power_delivery_loss must be in [0, 1)")
        if self.lighting_fraction < 0.0:
            raise PhysicalRangeError("lighting_fraction must be >= 0")

    def assess(self, result: SimulationResult) -> FacilityReport:
        """Roll a simulation result up into facility energy flows."""
        hours = result.interval_s / 3600.0
        cpu_kw = (np.array([r.cpu_power_per_cpu_w for r in result.records])
                  * result.n_servers / 1000.0)
        it_kw = cpu_kw * self.server_overhead_factor
        cooling_kw = np.array([
            (r.chiller_power_w + r.tower_power_w + r.pump_power_w) / 1000.0
            for r in result.records])
        delivery_kw = (it_kw + cooling_kw) * self.power_delivery_loss
        lighting_kw = it_kw * self.lighting_fraction
        reuse_kw = (np.array([r.generation_per_cpu_w
                              for r in result.records])
                    * result.n_servers / 1000.0)
        return FacilityReport(
            it_kwh=float(it_kw.sum() * hours),
            cooling_kwh=float(cooling_kw.sum() * hours),
            power_delivery_kwh=float(delivery_kw.sum() * hours),
            lighting_kwh=float(lighting_kw.sum() * hours),
            reuse_kwh=float(reuse_kw.sum() * hours),
        )

"""Trace-driven datacenter simulator (the engine behind Fig. 14/15).

The simulator partitions the cluster into water circulations, then steps
through the trace at the control interval.  Each interval, per
circulation:

1. the workload scheduler rebalances the utilisation vector (Sec. V-B2);
2. the cooling policy picks the setting ``{f, T_warm_in}`` (Sec. V-B1);
3. the circulation model evaluates CPU temperatures, outlet temperatures,
   TEG generation and facility power;
4. cluster-level aggregates are recorded.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .. import obs
from ..control.cooling_policy import conservative_setting
from ..cooling.loop import CirculationState, WaterCirculation
from ..errors import ConfigurationError, CoolingFailureError
from ..faults import FaultRuntime, FaultSchedule, plausible_readings
from ..teg.module import TegModule, default_server_module
from ..thermal.cpu_model import CpuThermalModel
from ..workloads.trace import WorkloadTrace
from .config import SimulationConfig
from .results import SafetyViolation, SimulationResult, StepRecord


@dataclass
class DatacenterSimulator:
    """Simulate one scheme over one trace.

    Attributes
    ----------
    trace:
        Utilisation trace (time x servers).  Its interval should match the
        config's control interval; coarser traces are used as-is and finer
        ones should be resampled by the caller.
    config:
        The scheme to evaluate.
    cpu_model / teg_module:
        Shared hardware models (defaults: the paper-calibrated ones).
    """

    trace: WorkloadTrace
    config: SimulationConfig = field(default_factory=SimulationConfig)
    cpu_model: CpuThermalModel = field(default_factory=CpuThermalModel)
    teg_module: TegModule = field(default_factory=default_server_module)
    #: Optional fault schedule; ``None`` keeps the nominal, bit-exact
    #: code path.  See :mod:`repro.faults` and ``docs/faults.md``.
    faults: FaultSchedule | None = None
    #: Global frame of this simulator when its trace is one shard of a
    #: larger cluster (:mod:`repro.core.shard`): local step ``i`` is
    #: global step ``step_offset + i`` and local server ``j`` is global
    #: server ``server_offset + j``.  The offsets feed timestamps,
    #: violation identities, error messages and the fault runtime's
    #: deterministic RNG keys, so a shard reproduces exactly the slice
    #: of the unsharded run it covers.  Both are 0 for a whole-cluster
    #: simulator, which keeps every existing path bit-identical.
    step_offset: int = 0
    server_offset: int = 0

    def __post_init__(self) -> None:
        if self.trace.n_servers < self.config.circulation_size:
            raise ConfigurationError(
                f"trace has {self.trace.n_servers} servers but a single "
                f"circulation needs {self.config.circulation_size}")
        self._scheduler = self.config.build_scheduler()
        self._policy = self.config.build_policy(self.cpu_model,
                                                self.teg_module)
        self._groups = self._partition_servers()
        self._circulations = [
            WaterCirculation(
                n_servers=len(group),
                cpu_model=self.cpu_model,
                teg_module=self.teg_module,
                cold_source_temp_c=self.config.cold_source_temp_c,
                wet_bulb_c=self.config.wet_bulb_c,
            )
            for group in self._groups
        ]
        self._fault_runtime = (
            None if self.faults is None or not len(self.faults)
            else FaultRuntime(self.faults, self.trace.n_servers,
                              len(self._groups)))
        self._violation_log: list[SafetyViolation] = []

    def _partition_servers(self) -> list[np.ndarray]:
        """Split server columns into contiguous circulation groups.

        A trailing group smaller than ``circulation_size`` is kept (it
        simply gets its own, underpopulated circulation).
        """
        size = self.config.circulation_size
        indices = np.arange(self.trace.n_servers)
        return [indices[start:start + size]
                for start in range(0, self.trace.n_servers, size)]

    @property
    def n_circulations(self) -> int:
        """Number of water circulations in the cluster."""
        return len(self._groups)

    def _check_trace_width(self) -> None:
        """Guard against a trace narrower than the partitioned cluster.

        The simulator partitions server columns at construction time; if
        the trace is later replaced (the dataclass is mutable) with one
        that has fewer servers than the groups expect, stepping would
        fail deep inside NumPy with a bare ``IndexError``.  Surface the
        misconfiguration explicitly instead.
        """
        expected = sum(len(group) for group in self._groups)
        if self.trace.n_servers != expected:
            raise ConfigurationError(
                f"trace has {self.trace.n_servers} servers but the "
                f"simulator was partitioned for {expected}; rebuild the "
                f"simulator instead of swapping the trace")

    def run(self) -> SimulationResult:
        """Replay the whole trace and return cluster aggregates.

        Raises
        ------
        ConfigurationError
            When the trace no longer matches the server partitioning the
            simulator was built with (e.g. it was swapped for a narrower
            one after construction).
        CoolingFailureError
            Only when ``config.strict_safety`` is set and a CPU exceeds
            its maximum operating temperature.
        """
        self._check_trace_width()
        self._violation_log = []
        result = SimulationResult(
            scheme=self.config.name,
            trace_name=self.trace.name,
            n_servers=self.trace.n_servers,
            interval_s=self.trace.interval_s,
        )
        with obs.span("sim.run"):
            for step_index in range(self.trace.n_steps):
                result.append(self._run_step(step_index))
        result.violations = self._violation_log
        self._record_telemetry(result)
        return result

    def _record_telemetry(self, result: SimulationResult) -> None:
        """Fold the finished run into the current telemetry session.

        A no-op when no :mod:`repro.obs` session is installed (one
        context-variable read), so the nominal path costs nothing with
        telemetry off.  Purely observational — never touches ``result``
        records, so bit-identity across execution paths is preserved.
        """
        if obs.current() is None:
            return
        obs.record_result(result,
                          circulation_size=self.config.circulation_size)
        if self._fault_runtime is None:
            return
        duration_s = self.trace.n_steps * self.trace.interval_s
        activations = self._fault_runtime.activation_events(duration_s)
        obs.add("faults.activations", len(activations),
                labels={"scheme": self.config.name,
                        "trace": self.trace.name})
        for payload in activations:
            obs.emit("fault.activation", scheme=self.config.name,
                     trace=self.trace.name, **payload)

    def _decide(self, scheduled: np.ndarray):
        """Pick the cooling setting for one circulation's scheduled load.

        Split out so :mod:`repro.core.engine` can interpose its memoised
        decision cache without touching the step semantics.
        """
        return self._policy.decide(scheduled)

    def _run_step(self, step_index: int) -> StepRecord:
        if self._fault_runtime is not None:
            return self._run_step_faulted(step_index)
        step_utils = self.trace.step(step_index)
        states = []
        for group, circulation in zip(self._groups, self._circulations):
            raw_utils = step_utils[group]
            scheduled = self._scheduler.schedule(raw_utils)
            decision = self._decide(scheduled)
            states.append(circulation.evaluate(scheduled, decision.setting))
        return self._aggregate_step(step_index, step_utils, states)

    def _run_step_faulted(self, step_index: int) -> StepRecord:
        """One control interval under an active fault schedule.

        Per circulation the controller sees *sensed* (possibly
        corrupted) utilisations; implausible readings or a tripped pump
        stall make it fall back to the conservative safe setting instead
        of crashing.  A healthy shadow evaluation prices the harvest
        lost to the faults — but only on intervals where at least one
        fault is active: with nothing active every runtime hook is the
        identity, the control-path state *is* the healthy state and the
        lost harvest is exactly zero, so the shadow is skipped and
        fault-free spans of a schedule cost one evaluation per
        circulation instead of two.
        """
        runtime = self._fault_runtime
        time_s = (self.step_offset + step_index) * self.trace.interval_s
        step_utils = self.trace.step(step_index)
        active_faults = runtime.active_count(time_s)
        states = []
        degraded = 0
        lost_w = 0.0
        for circ_index, (group, circulation) in enumerate(
                zip(self._groups, self._circulations)):
            scheduled = self._scheduler.schedule(step_utils[group])

            # Healthy shadow: what the plant would harvest fault-free.
            if active_faults:
                nominal_decision = self._decide(scheduled)
                nominal_state = circulation.evaluate(
                    scheduled, nominal_decision.setting)

            # Control path: decide on what the sensors *read*.  Sensor
            # noise is keyed on the *global* step index so a time shard
            # draws the same series the unsharded run would.
            readings = runtime.sense(scheduled,
                                     self.step_offset + step_index,
                                     circ_index, time_s)
            tripped = runtime.pump_stalled(time_s, circ_index)
            if tripped or not plausible_readings(readings):
                setting = conservative_setting(self._policy)
                degraded += 1
            else:
                setting = self._decide(
                    np.clip(readings, 0.0, 1.0)).setting

            # Physical path: the loop delivers what the faults allow.
            applied = circulation.cdu.apply(setting)
            applied = runtime.apply_pump(applied, time_s, circ_index)
            state = circulation.evaluate(
                scheduled, applied, clamp_setting=False,
                cold_source_temp_c=runtime.cold_source_temp_c(
                    circulation.cold_source_temp_c, time_s, circ_index),
                teg_output_factor=runtime.teg_output_factor(
                    time_s, circ_index, group))
            if active_faults:
                lost_w += max(0.0, nominal_state.total_generation_w
                              - state.total_generation_w)
            states.append(state)
        return self._aggregate_step(
            step_index, step_utils, states,
            degraded_circulations=degraded, lost_harvest_w=lost_w,
            active_faults=active_faults)

    def _aggregate_step(self, step_index: int, step_utils: np.ndarray,
                        states: list[CirculationState], *,
                        degraded_circulations: int = 0,
                        lost_harvest_w: float = 0.0,
                        active_faults: int = 0) -> StepRecord:
        """Fold per-circulation states into one cluster-level record.

        Accumulation happens in circulation order with plain float adds —
        the engine's vectorised path funnels through this same method so
        both paths are bit-identical.
        """
        total_generation = 0.0
        total_cpu_power = 0.0
        total_chiller = 0.0
        total_tower = 0.0
        total_pump = 0.0
        violations = 0
        max_cpu_temp = -np.inf
        inlet_sum = 0.0
        flow_sum = 0.0
        time_s = (self.step_offset + step_index) * self.trace.interval_s

        for group, circulation, state in zip(self._groups,
                                             self._circulations, states):
            total_generation += state.total_generation_w
            total_cpu_power += state.total_cpu_power_w
            total_chiller += state.chiller_power_w
            total_tower += state.tower_power_w
            total_pump += state.pump_power_w
            max_cpu_temp = max(max_cpu_temp, state.max_cpu_temp_c)
            inlet_sum += state.setting.inlet_temp_c * len(group)
            flow_sum += state.setting.flow_l_per_h * len(group)
            step_violations = circulation.safety_violations(state)
            violations += len(step_violations)
            if step_violations and self.config.strict_safety:
                raise CoolingFailureError(
                    f"CPU over temperature at t={time_s:.0f}s in "
                    f"circulation starting at server "
                    f"{int(group[0]) + self.server_offset}",
                    server_id=(int(group[step_violations[0]])
                               + self.server_offset),
                    temperature_c=float(state.cpu_temps_c[
                        step_violations[0]]),
                    step_index=self.step_offset + step_index,
                )
            # Non-strict path: log every offending (server, interval)
            # pair, not just the count (post-mortems need identities).
            for offender in step_violations:
                self._violation_log.append(SafetyViolation(
                    server_id=int(group[offender]) + self.server_offset,
                    step_index=self.step_offset + step_index,
                    time_s=time_s,
                    temperature_c=float(state.cpu_temps_c[offender]),
                ))

        n = self.trace.n_servers
        return StepRecord(
            time_s=time_s,
            mean_utilisation=float(step_utils.mean()),
            max_utilisation=float(step_utils.max()),
            generation_per_cpu_w=total_generation / n,
            cpu_power_per_cpu_w=total_cpu_power / n,
            mean_inlet_temp_c=inlet_sum / n,
            mean_flow_l_per_h=flow_sum / n,
            max_cpu_temp_c=float(max_cpu_temp),
            chiller_power_w=total_chiller,
            tower_power_w=total_tower,
            pump_power_w=total_pump,
            safety_violations=violations,
            degraded_circulations=degraded_circulations,
            lost_harvest_w=lost_harvest_w,
            active_faults=active_faults,
        )


def compare_schemes(trace: WorkloadTrace, baseline: SimulationConfig,
                    optimised: SimulationConfig,
                    cpu_model: CpuThermalModel | None = None,
                    teg_module: TegModule | None = None,
                    mode: str | None = None,
                    result_cache=None):
    """Run two schemes on the same trace and return a comparison.

    Convenience wrapper used by the Fig. 14/15 benchmarks.  ``mode``
    selects the execution path: ``None`` (default) runs the serial
    :class:`DatacenterSimulator`; ``"kernel"``, ``"step"`` or ``"loop"``
    route through :func:`repro.core.engine.simulate` with that engine
    mode.  Every path is bit-identical, so the comparison is too.

    ``result_cache`` (see :mod:`repro.core.cache`) memoises each
    scheme's result on disk: repeating a comparison — or sharing one
    scheme between comparisons — serves the finished runs from the
    cache.  The serial path keys its entries as engine ``"loop"`` runs
    key themselves conservatively apart, so a serial-cached entry is
    never served to an engine caller or vice versa.
    """
    from .cache import resolve_result_cache, result_key
    from .results import SchemeComparison

    cpu_model = cpu_model or CpuThermalModel()
    teg_module = teg_module or default_server_module()
    if mode is None:
        store = resolve_result_cache(result_cache)

        def run_serial(config: SimulationConfig):
            key = None
            if store is not None and type(trace) is WorkloadTrace:
                key = result_key(trace, config, cpu_model, teg_module,
                                 cache_resolution=None, mode="loop")
                cached = store.load(key)
                if cached is not None:
                    return cached
            result = DatacenterSimulator(
                trace, config, cpu_model, teg_module).run()
            if key is not None:
                store.store(key, result)
            return result

        base_result = run_serial(baseline)
        opt_result = run_serial(optimised)
    else:
        from .engine import simulate

        base_result = simulate(trace, baseline, cpu_model, teg_module,
                               mode=mode, result_cache=result_cache)
        opt_result = simulate(trace, optimised, cpu_model, teg_module,
                              mode=mode, result_cache=result_cache)
    return SchemeComparison(baseline=base_result, optimised=opt_result)

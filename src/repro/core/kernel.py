"""Whole-trace simulation kernel: the time dimension as NumPy planes.

PR 1 vectorised *within* a control interval; this module removes the
per-step Python loop entirely.  For a fault-free run the simulation is
a pure function of the trace, so the kernel:

1. **decides** — builds the scheduled ``(steps x servers)`` utilisation
   plane, computes every ``(step, circulation)`` cell's binding
   utilisation, dedupes cells through the cooling-decision cache's own
   quantisation, and calls the policy once per unique key (primed in
   first-occurrence order, so a shared memoising policy sees exactly
   the serial call sequence);
2. **evaluates** — groups cells by their clamped cooling setting and
   runs the thermal/TEG model entry points over gathered 1-D batches,
   scattering results into ``(steps x servers)`` planes;
3. **reduces** — per-circulation sums/maxima over contiguous column
   blocks, plus the facility split (chiller fraction, tower, pump) as
   per-cell array arithmetic with the serial expression order;
4. **folds** — accumulates circulation columns into per-step cluster
   totals in circulation order (sequential adds, like the serial
   ``_aggregate_step``) and emits a columnar result.

Bit-identity
------------
Every array expression mirrors the serial arithmetic exactly:
elementwise model calls are order-independent; per-circulation
``sum/mean/max(axis=1)`` over a contiguous block is bit-identical to the
serial 1-D reductions (same pairwise blocking); the cluster fold adds
circulation columns sequentially; and capacity / strict-safety errors
are replayed at the earliest offending cell in serial evaluation order.
``tests/core/test_kernel.py`` and the golden fixtures enforce this.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from .. import obs
from ..control.scheduling import IdealBalancer, NoScheduler
from ..errors import CoolingFailureError
from ..thermal.hydraulics import loop_pump_power_w
from .results import ColumnarSteps, SafetyViolation, SimulationResult

__all__ = ["KernelTimings", "run_whole_trace"]


@dataclass
class KernelTimings:
    """Wall time spent in each kernel phase (attached to EngineMetrics)."""

    decide_s: float = 0.0
    evaluate_s: float = 0.0
    reduce_s: float = 0.0
    fold_s: float = 0.0

    @property
    def total_s(self) -> float:
        """Total kernel time across all four phases."""
        return self.decide_s + self.evaluate_s + self.reduce_s + self.fold_s

    def summary(self) -> dict:
        """Phase timings as a plain dictionary (for tables/JSON)."""
        return {
            "decide_s": round(self.decide_s, 4),
            "evaluate_s": round(self.evaluate_s, 4),
            "reduce_s": round(self.reduce_s, 4),
            "fold_s": round(self.fold_s, 4),
            "total_s": round(self.total_s, 4),
        }


def _scheduled_plane(sim, raw: np.ndarray) -> np.ndarray:
    """The whole-trace scheduled utilisation plane ``U[step, server]``.

    ``NoScheduler`` and ``IdealBalancer`` (the paper's two schemes) are
    computed as array expressions; any other scheduler falls back to a
    per-cell call so data-dependent balancers stay bit-faithful.
    """
    n_steps = raw.shape[0]
    plane = np.empty_like(raw)
    scheduler = sim._scheduler
    for group in sim._groups:
        start, stop = int(group[0]), int(group[0]) + group.size
        block = raw[:, start:stop]
        if type(scheduler) is NoScheduler:
            plane[:, start:stop] = block
        elif type(scheduler) is IdealBalancer:
            means = block.mean(axis=1)
            plane[:, start:stop] = np.repeat(means[:, None], group.size,
                                             axis=1)
        else:
            for step in range(n_steps):
                plane[step, start:stop] = scheduler.schedule(block[step])
    return plane


def _decide_cells(sim, plane: np.ndarray):
    """Cooling decisions for every ``(step, circulation)`` cell.

    Returns ``(setting_id, applied_settings)``: a ``(steps x circs)``
    array of indices into the deduplicated list of clamped settings.
    Unique ``(binding bucket, group size)`` keys are decided once, in
    first-occurrence order, through ``sim._decide`` — so the decision
    cache and any memoising policy are primed with exactly the vectors
    (and in exactly the order) the serial loop would have used, and
    duplicate cells are accounted as cache hits.
    """
    groups = sim._groups
    n_steps = plane.shape[0]
    n_circs = len(groups)
    cells = n_steps * n_circs
    policy = sim._policy
    aggregation = getattr(policy, "aggregation", "max")

    bindings = np.empty((n_steps, n_circs))
    for index, group in enumerate(groups):
        start, stop = int(group[0]), int(group[0]) + group.size
        block = plane[:, start:stop]
        bindings[:, index] = (block.mean(axis=1) if aggregation == "avg"
                              else block.max(axis=1))

    resolution = getattr(policy, "cache_resolution", None)
    if resolution:
        # Same bucketing as the policy memo and the decision cache:
        # np.rint and round() both round half to even.
        keys = np.rint(bindings / resolution)
    else:
        keys = bindings
    sizes = np.array([group.size for group in groups], dtype=float)
    pairs = np.column_stack((keys.ravel(),
                             np.broadcast_to(sizes, (n_steps,
                                                     n_circs)).ravel()))
    uniq, inverse = np.unique(pairs, axis=0, return_inverse=True)
    inverse = inverse.ravel()
    # First occurrence per unique key, guaranteed (np.unique's
    # return_index does not promise first occurrences for axis-based
    # calls); priming must follow the serial cell order.
    first_cell = np.full(len(uniq), cells, dtype=np.int64)
    np.minimum.at(first_cell, inverse, np.arange(cells))

    cdu = sim._circulations[0].cdu
    decisions = [None] * len(uniq)
    for uid in np.argsort(first_cell, kind="stable"):
        step, circ = divmod(int(first_cell[uid]), n_circs)
        group = groups[circ]
        vector = plane[step, int(group[0]):int(group[0]) + group.size]
        decisions[uid] = sim._decide(vector)
    cache = getattr(sim, "_cache", None)
    if cache is not None:
        # The serial loop would have looked every cell up; duplicates
        # were served by construction, so they count as hits.
        cache.stats.hits += cells - len(uniq)

    setting_index: dict[tuple[float, float], int] = {}
    applied_settings = []
    uid_to_sid = np.empty(len(uniq), dtype=np.intp)
    for uid, decision in enumerate(decisions):
        applied = cdu.clamp(decision.setting)
        key = (applied.flow_l_per_h, applied.inlet_temp_c)
        sid = setting_index.get(key)
        if sid is None:
            sid = setting_index[key] = len(applied_settings)
            applied_settings.append(applied)
        uid_to_sid[uid] = sid
    setting_id = uid_to_sid[inverse].reshape(n_steps, n_circs)
    return setting_id, applied_settings


def _raise_earliest_error(sim, chiller_heat, tower_heat,
                          cpu_temp_plane, interval_s: float) -> None:
    """Replay the first error the serial loop would have raised.

    Serial ordering inside one step: every circulation's *evaluation*
    (chiller capacity check, then tower capacity check, per circulation
    in order) runs before the step's aggregation (strict-safety check,
    per circulation in order).  Across steps, the earliest step wins.
    """
    groups = sim._groups
    n_circs = len(groups)
    circulations = sim._circulations

    chiller_cap = np.array([c.chiller.capacity_kw
                            for c in circulations]) * 1000.0
    tower_cap = np.array([c.tower.max_heat_kw
                          for c in circulations]) * 1000.0
    capacity_mask = ((chiller_heat > chiller_cap[None, :])
                     | (tower_heat > tower_cap[None, :]))
    capacity_cells = np.nonzero(capacity_mask.ravel())[0]
    capacity_step = (int(capacity_cells[0]) // n_circs
                     if capacity_cells.size else None)

    violation_step = None
    if sim.config.strict_safety:
        limit = sim.cpu_model.max_operating_temp_c
        violating = np.nonzero((cpu_temp_plane > limit).ravel())[0]
        if violating.size:
            violation_step = int(violating[0]) // cpu_temp_plane.shape[1]

    if capacity_step is not None and (violation_step is None
                                      or capacity_step <= violation_step):
        step, circ = divmod(int(capacity_cells[0]), n_circs)
        circulation = circulations[circ]
        heat = float(chiller_heat[step, circ])
        if heat > circulation.chiller.capacity_kw * 1000.0:
            circulation.chiller.electricity_w_for_heat(heat)
        circulation.tower.electricity_w_for_heat(
            float(tower_heat[step, circ]))
        raise AssertionError(
            "capacity cell did not raise")  # pragma: no cover
    if violation_step is not None:
        flat = int(violating[0])
        step, server = divmod(flat, cpu_temp_plane.shape[1])
        circ = next(index for index, group in enumerate(groups)
                    if group[0] <= server <= group[-1])
        group = groups[circ]
        time_s = step * interval_s
        raise CoolingFailureError(
            f"CPU over temperature at t={time_s:.0f}s in "
            f"circulation starting at server {group[0]}",
            server_id=int(server),
            temperature_c=float(cpu_temp_plane[step, server]),
            step_index=step,
        )


def run_whole_trace(sim) -> SimulationResult:
    """Replay the full trace of a fault-free simulator as NumPy kernels.

    ``sim`` is a (engine-cached) :class:`DatacenterSimulator`; its
    scheduler, policy, partitioning, circulations and decision hook are
    reused so the output — including the exception raised on a chiller /
    tower capacity breach or a strict-safety violation — is bit-identical
    to ``sim.run()``'s serial loop.  Phase timings are stored on
    ``sim.kernel_timings``.
    """
    timings = KernelTimings()
    sim.kernel_timings = timings
    trace = sim.trace
    raw = trace.utilisation
    n_steps, n_servers = raw.shape
    groups = sim._groups
    n_circs = len(groups)
    circulations = sim._circulations
    interval_s = trace.interval_s

    # Phase 1 — schedule + decide (cache-deduplicated).
    clock = time.perf_counter()
    with obs.span("kernel.decide"):
        plane = _scheduled_plane(sim, raw)
        setting_id, applied_settings = _decide_cells(sim, plane)
    timings.decide_s = time.perf_counter() - clock

    # Phase 2 — evaluate the thermal/TEG models per unique setting.
    clock = time.perf_counter()
    with obs.span("kernel.evaluate"):
        cpu_model = sim.cpu_model
        teg_module = sim.teg_module
        cold_source_c = sim.config.cold_source_temp_c
        flat_utils = plane.reshape(-1)
        cpu_temp = np.empty(flat_utils.size)
        cpu_power = np.empty(flat_utils.size)
        teg_power = np.empty(flat_utils.size)
        for sid, applied in enumerate(applied_settings):
            mask = setting_id == sid
            chunks = []
            for circ in range(n_circs):
                steps_at = np.nonzero(mask[:, circ])[0]
                if steps_at.size:
                    chunks.append((steps_at[:, None] * n_servers
                                   + groups[circ][None, :]).ravel())
            if not chunks:
                continue
            gathered = (np.concatenate(chunks) if len(chunks) > 1
                        else chunks[0])
            batch = flat_utils[gathered]
            outlets = cpu_model.outlet_temp_c(batch, applied)
            cpu_temp[gathered] = cpu_model.cpu_temp_c(batch, applied)
            cpu_power[gathered] = cpu_model.cpu_power_w(batch)
            teg_power[gathered] = teg_module.generation_w(
                outlets, cold_source_c, applied.flow_l_per_h)
        cpu_temp_plane = cpu_temp.reshape(n_steps, n_servers)
        cpu_power_plane = cpu_power.reshape(n_steps, n_servers)
        teg_power_plane = teg_power.reshape(n_steps, n_servers)
    timings.evaluate_s = time.perf_counter() - clock

    # Phase 3 — per-circulation reductions and facility accounting.
    clock = time.perf_counter()
    with obs.span("kernel.reduce"):
        generation_c = np.empty((n_steps, n_circs))
        heat_c = np.empty((n_steps, n_circs))
        max_temp_c = np.empty((n_steps, n_circs))
        for index, group in enumerate(groups):
            start, stop = int(group[0]), int(group[0]) + group.size
            generation_c[:, index] = teg_power_plane[:, start:stop].sum(
                axis=1)
            heat_c[:, index] = cpu_power_plane[:, start:stop].sum(axis=1)
            max_temp_c[:, index] = cpu_temp_plane[:, start:stop].max(axis=1)

        tower = circulations[0].tower
        wet_bulb_c = circulations[0].wet_bulb_c
        coldest_c = tower.coldest_supply_c(wet_bulb_c)
        fraction_by_sid = np.array([
            0.0 if applied.inlet_temp_c >= coldest_c
            else min(1.0, (coldest_c - applied.inlet_temp_c) / 10.0)
            for applied in applied_settings])
        inlet_by_sid = np.array([applied.inlet_temp_c
                                 for applied in applied_settings])
        flow_by_sid = np.array([applied.flow_l_per_h
                                for applied in applied_settings])
        pump_by_sid = np.array([
            loop_pump_power_w(circulations[0].pipe_segments,
                              applied.flow_l_per_h, applied.inlet_temp_c)
            for applied in applied_settings])

        chiller_heat = heat_c * fraction_by_sid[setting_id]
        tower_heat = heat_c - chiller_heat
        _raise_earliest_error(sim, chiller_heat, tower_heat,
                              cpu_temp_plane, interval_s)
        chiller_power_c = chiller_heat / circulations[0].chiller.cop
        tower_power_c = tower_heat / 1000.0 * tower.fan_power_w_per_kw
        sizes = np.array([group.size for group in groups])
        pump_power_c = sizes[None, :] * pump_by_sid[setting_id]
        inlet_cell = inlet_by_sid[setting_id]
        flow_cell = flow_by_sid[setting_id]
    timings.reduce_s = time.perf_counter() - clock

    # Phase 4 — fold circulations into per-step cluster aggregates, in
    # circulation order with sequential adds (the serial accumulation).
    clock = time.perf_counter()
    with obs.span("kernel.fold"):
        total_generation = np.zeros(n_steps)
        total_cpu_power = np.zeros(n_steps)
        total_chiller = np.zeros(n_steps)
        total_tower = np.zeros(n_steps)
        total_pump = np.zeros(n_steps)
        inlet_sum = np.zeros(n_steps)
        flow_sum = np.zeros(n_steps)
        max_cpu_temp = np.full(n_steps, -np.inf)
        for index, group in enumerate(groups):
            total_generation += generation_c[:, index]
            total_cpu_power += heat_c[:, index]
            total_chiller += chiller_power_c[:, index]
            total_tower += tower_power_c[:, index]
            total_pump += pump_power_c[:, index]
            np.maximum(max_cpu_temp, max_temp_c[:, index], out=max_cpu_temp)
            inlet_sum += inlet_cell[:, index] * group.size
            flow_sum += flow_cell[:, index] * group.size

        limit = cpu_model.max_operating_temp_c
        violation_plane = cpu_temp_plane > limit
        violation_steps, violation_servers = np.nonzero(violation_plane)
        sim._violation_log = [
            SafetyViolation(
                server_id=int(server),
                step_index=int(step),
                time_s=float(step * interval_s),
                temperature_c=float(cpu_temp_plane[step, server]),
            )
            for step, server in zip(violation_steps, violation_servers)]

        records = ColumnarSteps({
            "time_s": np.arange(n_steps) * interval_s,
            "mean_utilisation": raw.mean(axis=1),
            "max_utilisation": raw.max(axis=1),
            "generation_per_cpu_w": total_generation / n_servers,
            "cpu_power_per_cpu_w": total_cpu_power / n_servers,
            "mean_inlet_temp_c": inlet_sum / n_servers,
            "mean_flow_l_per_h": flow_sum / n_servers,
            "max_cpu_temp_c": max_cpu_temp,
            "chiller_power_w": total_chiller,
            "tower_power_w": total_tower,
            "pump_power_w": total_pump,
            "safety_violations": violation_plane.sum(axis=1),
            "degraded_circulations": np.zeros(n_steps, dtype=np.int64),
            "lost_harvest_w": np.zeros(n_steps),
            "active_faults": np.zeros(n_steps, dtype=np.int64),
        })
        result = SimulationResult(
            scheme=sim.config.name,
            trace_name=trace.name,
            n_servers=n_servers,
            interval_s=interval_s,
            records=records,
        )
        result.violations = sim._violation_log
    timings.fold_s = time.perf_counter() - clock
    return result

"""Whole-trace simulation kernel: the time dimension as NumPy planes.

PR 1 vectorised *within* a control interval; this module removes the
per-step Python loop entirely.  For a fault-free run the simulation is
a pure function of the trace, so the kernel:

1. **decides** — builds the scheduled ``(steps x servers)`` utilisation
   plane, computes every ``(step, circulation)`` cell's binding
   utilisation, dedupes cells through the cooling-decision cache's own
   quantisation, and calls the policy once per unique key (primed in
   first-occurrence order, so a shared memoising policy sees exactly
   the serial call sequence);
2. **evaluates** — groups cells by their clamped cooling setting and
   runs the thermal/TEG model entry points over gathered 1-D batches,
   scattering results into ``(steps x servers)`` planes;
3. **reduces** — per-circulation sums/maxima over contiguous column
   blocks, plus the facility split (chiller fraction, tower, pump) as
   per-cell array arithmetic with the serial expression order;
4. **folds** — accumulates circulation columns into per-step cluster
   totals in circulation order (sequential adds, like the serial
   ``_aggregate_step``) and emits a columnar result.

Phases 1–3 are exposed separately as :func:`run_kernel_columns` (their
output, a :class:`KernelColumns`, is per-``(step, circulation)``) and
phase 4 as :func:`fold_columns`, because the fleet-scale sharding layer
(:mod:`repro.core.shard`) runs 1–3 on rectangular trace tiles, stitches
the tiles' columns back into whole-cluster planes, and replays the fold
once over the full-length columns — the only order that keeps the merge
bit-identical (float addition is not associative, so summing per-shard
subtotals would not be).

Bit-identity
------------
Every array expression mirrors the serial arithmetic exactly:
elementwise model calls are order-independent; per-circulation
``sum/mean/max(axis=1)`` over a contiguous block is bit-identical to the
serial 1-D reductions (same pairwise blocking); the cluster fold adds
circulation columns sequentially; and capacity / strict-safety errors
are replayed at the earliest offending cell in serial evaluation order.
``tests/core/test_kernel.py`` and the golden fixtures enforce this.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field

import numpy as np

from .. import obs
from ..control.scheduling import IdealBalancer, NoScheduler
from ..errors import CoolingFailureError, PhysicalRangeError
from ..thermal.hydraulics import loop_pump_power_w
from .results import ColumnarSteps, SafetyViolation, SimulationResult

__all__ = [
    "KERNEL_BATCH_ENV_VAR",
    "KernelColumns",
    "KernelError",
    "KernelTimings",
    "fold_columns",
    "run_kernel_columns",
    "run_whole_trace",
]

#: Set to ``0`` to disable the vectorised batch-decision path and run
#: the scalar per-uid decide loop instead — the escape hatch for
#: third-party debugging and the A/B lever the pipeline benchmark
#: uses.  Both paths are bit-identical.
KERNEL_BATCH_ENV_VAR = "REPRO_KERNEL_BATCH"


@dataclass
class KernelTimings:
    """Wall time spent in each kernel phase (attached to EngineMetrics)."""

    decide_s: float = 0.0
    evaluate_s: float = 0.0
    reduce_s: float = 0.0
    fold_s: float = 0.0

    @property
    def total_s(self) -> float:
        """Total kernel time across all four phases."""
        return self.decide_s + self.evaluate_s + self.reduce_s + self.fold_s

    def summary(self) -> dict:
        """Phase timings as a plain dictionary (for tables/JSON)."""
        return {
            "decide_s": round(self.decide_s, 4),
            "evaluate_s": round(self.evaluate_s, 4),
            "reduce_s": round(self.reduce_s, 4),
            "fold_s": round(self.fold_s, 4),
            "total_s": round(self.total_s, 4),
        }


@dataclass(frozen=True)
class KernelError:
    """The earliest error of a kernel run, in serial evaluation order.

    ``step`` / ``circ`` are *local* indices into the kernel's own trace;
    the sharding merge translates them into the global frame to pick the
    globally-earliest error across shards.  ``phase`` encodes the serial
    intra-step ordering: every circulation's *evaluation* (capacity
    checks, phase 0) runs before the step's *aggregation* (strict-safety
    check, phase 1), so on equal steps the lower phase raised first.
    The carried ``exception`` already has its message and attributes in
    the simulator's global frame (via ``step_offset``/``server_offset``).
    """

    exception: Exception
    phase: int
    step: int
    circ: int


@dataclass
class KernelColumns:
    """Pre-fold kernel output: per-``(step, circulation)`` planes.

    Everything phase 4 needs to fold into per-step cluster aggregates —
    and everything the sharding merge needs to stitch tiles from
    different shards back into whole-cluster planes before that fold.
    All plane arrays have shape ``(n_steps, n_circs)``; ``sizes`` has
    one entry per circulation; ``violations`` carry cluster-global
    server/step identities.
    """

    generation_c: np.ndarray
    heat_c: np.ndarray
    chiller_power_c: np.ndarray
    tower_power_c: np.ndarray
    pump_power_c: np.ndarray
    max_temp_c: np.ndarray
    inlet_cell: np.ndarray
    flow_cell: np.ndarray
    sizes: np.ndarray
    violation_counts: np.ndarray
    violations: list = field(default_factory=list)
    error: KernelError | None = None


def _scheduled_plane(sim, raw: np.ndarray) -> np.ndarray:
    """The whole-trace scheduled utilisation plane ``U[step, server]``.

    ``NoScheduler`` and ``IdealBalancer`` (the paper's two schemes) are
    computed as array expressions; any other scheduler falls back to a
    per-cell call so data-dependent balancers stay bit-faithful.
    """
    n_steps = raw.shape[0]
    plane = np.empty_like(raw)
    scheduler = sim._scheduler
    for group in sim._groups:
        start, stop = int(group[0]), int(group[0]) + group.size
        block = raw[:, start:stop]
        if type(scheduler) is NoScheduler:
            plane[:, start:stop] = block
        elif type(scheduler) is IdealBalancer:
            means = block.mean(axis=1)
            plane[:, start:stop] = np.repeat(means[:, None], group.size,
                                             axis=1)
        else:
            for step in range(n_steps):
                plane[step, start:stop] = scheduler.schedule(block[step])
    return plane


def _batched_decisions(sim, plane: np.ndarray, bindings: np.ndarray,
                       sizes: np.ndarray, first_cell: np.ndarray,
                       order: np.ndarray, n_circs: int) -> list | None:
    """All unique decisions through the vectorised batch path, or ``None``.

    Returns decisions in priming (first-occurrence) order, i.e. aligned
    with ``order``.  Falls back — returning ``None`` so the caller runs
    the scalar per-uid loop — when:

    * the simulator or its policy does not implement the batch protocol
      (third-party policies keep working through ``sim._decide``);
    * ``REPRO_KERNEL_BATCH=0`` disables the path (an escape hatch and
      the A/B lever the pipeline benchmark uses);
    * the plane contains values outside ``[0, 1]`` (or NaN) — the serial
      path raises on the first offending *vector*, inside the policy,
      so the scalar loop must run to reproduce that exact error.

    The representative binding for each unique cell is read back from
    the precomputed ``bindings`` plane: row reductions of a C-contiguous
    block are bit-equal to reducing the cell's 1-D vector, so the value
    handed to the cache equals what :meth:`CoolingDecisionCache.decide`
    would have computed from the full vector.
    """
    decide_batch = getattr(sim, "_decide_batch", None)
    policy = getattr(sim, "_policy", None)
    if decide_batch is None or policy is None:
        return None
    if not callable(getattr(policy, "decide_batch", None)):
        return None
    if os.environ.get(KERNEL_BATCH_ENV_VAR, "").strip() == "0":
        return None
    if plane.size == 0:
        return None
    lo, hi = plane.min(), plane.max()
    if not (lo >= 0.0 and hi <= 1.0):  # NaN compares false: falls back
        return None
    cell = first_cell[order]
    steps, circs = np.divmod(cell, n_circs)
    rep_bindings = bindings[steps, circs]
    rep_sizes = sizes[circs]
    with obs.span("kernel.decide_batch"):
        decisions = decide_batch(rep_bindings, rep_sizes)
    obs.add("engine.kernel.batched_decisions", len(decisions))
    return decisions


def _decide_cells(sim, plane: np.ndarray):
    """Cooling decisions for every ``(step, circulation)`` cell.

    Returns ``(setting_id, applied_settings)``: a ``(steps x circs)``
    array of indices into the deduplicated list of clamped settings.
    Unique ``(binding bucket, group size)`` keys are decided once, in
    first-occurrence order, through ``sim._decide`` — so the decision
    cache and any memoising policy are primed with exactly the vectors
    (and in exactly the order) the serial loop would have used, and
    duplicate cells are accounted as cache hits.
    """
    groups = sim._groups
    n_steps = plane.shape[0]
    n_circs = len(groups)
    cells = n_steps * n_circs
    policy = sim._policy
    aggregation = getattr(policy, "aggregation", "max")

    bindings = np.empty((n_steps, n_circs))
    for index, group in enumerate(groups):
        start, stop = int(group[0]), int(group[0]) + group.size
        block = plane[:, start:stop]
        bindings[:, index] = (block.mean(axis=1) if aggregation == "avg"
                              else block.max(axis=1))

    resolution = getattr(policy, "cache_resolution", None)
    if resolution:
        # Same bucketing as the policy memo and the decision cache:
        # np.rint and round() both round half to even.
        keys = np.rint(bindings / resolution)
    else:
        keys = bindings
    sizes = np.array([group.size for group in groups], dtype=float)
    first_cell = None
    if resolution and keys.size:
        # Quantised buckets are small integers: encode (bucket, size)
        # into one int64 and deduplicate in 1-D, which is an order of
        # magnitude faster than the row-wise unique below and — because
        # the encoding is monotone in (bucket, size) — yields the same
        # unique order, the same inverse and the same first cells.
        # NaN/inf/overflowing buckets compare false and fall through.
        if float(np.abs(keys).max()) < 2.0**31:
            usizes, size_code = np.unique(sizes.astype(np.int64),
                                          return_inverse=True)
            codes = (keys.astype(np.int64) * len(usizes)
                     + size_code.ravel()).ravel()
            # 1-D unique promises first-occurrence indices.
            _, first_cell, inverse = np.unique(
                codes, return_index=True, return_inverse=True)
            inverse = inverse.ravel()
            first_cell = first_cell.astype(np.int64)
            n_uniq = len(first_cell)
    if first_cell is None:
        pairs = np.column_stack((keys.ravel(),
                                 np.broadcast_to(sizes, (n_steps,
                                                         n_circs)).ravel()))
        uniq, inverse = np.unique(pairs, axis=0, return_inverse=True)
        inverse = inverse.ravel()
        n_uniq = len(uniq)
        # First occurrence per unique key, guaranteed (np.unique's
        # return_index does not promise first occurrences for axis-based
        # calls); priming must follow the serial cell order.
        first_cell = np.full(n_uniq, cells, dtype=np.int64)
        np.minimum.at(first_cell, inverse, np.arange(cells))

    cdu = sim._circulations[0].cdu
    decisions = [None] * n_uniq
    order = np.argsort(first_cell, kind="stable")
    batched = _batched_decisions(sim, plane, bindings, sizes, first_cell,
                                 order, n_circs)
    if batched is not None:
        for uid, decision in zip(order, batched):
            decisions[int(uid)] = decision
    else:
        for uid in order:
            step, circ = divmod(int(first_cell[uid]), n_circs)
            group = groups[circ]
            vector = plane[step, int(group[0]):int(group[0]) + group.size]
            decisions[uid] = sim._decide(vector)
    cache = getattr(sim, "_cache", None)
    if cache is not None:
        # The serial loop would have looked every cell up; duplicates
        # were served by construction, so they count as hits.
        cache.stats.hits += cells - n_uniq
    obs.add("engine.kernel.decide_cells", cells)
    obs.add("engine.kernel.unique_decisions", n_uniq)

    setting_index: dict[tuple[float, float], int] = {}
    applied_settings = []
    uid_to_sid = np.empty(n_uniq, dtype=np.intp)
    for uid, decision in enumerate(decisions):
        applied = cdu.clamp(decision.setting)
        key = (applied.flow_l_per_h, applied.inlet_temp_c)
        sid = setting_index.get(key)
        if sid is None:
            sid = setting_index[key] = len(applied_settings)
            applied_settings.append(applied)
        uid_to_sid[uid] = sid
    setting_id = uid_to_sid[inverse].reshape(n_steps, n_circs)
    return setting_id, applied_settings


def _earliest_error(sim, chiller_heat, tower_heat,
                    cpu_temp_plane, interval_s: float) -> KernelError | None:
    """The first error the serial loop would have raised, or ``None``.

    Serial ordering inside one step: every circulation's *evaluation*
    (chiller capacity check, then tower capacity check, per circulation
    in order) runs before the step's aggregation (strict-safety check,
    per circulation in order).  Across steps, the earliest step wins.
    The error is *captured*, not raised, so a shard can report it to
    the merge, which decides whether this shard's error is the globally
    earliest one.
    """
    groups = sim._groups
    n_circs = len(groups)
    circulations = sim._circulations

    chiller_cap = np.array([c.chiller.capacity_kw
                            for c in circulations]) * 1000.0
    tower_cap = np.array([c.tower.max_heat_kw
                          for c in circulations]) * 1000.0
    capacity_mask = ((chiller_heat > chiller_cap[None, :])
                     | (tower_heat > tower_cap[None, :]))
    capacity_cells = np.nonzero(capacity_mask.ravel())[0]
    capacity_step = (int(capacity_cells[0]) // n_circs
                     if capacity_cells.size else None)

    violating = np.empty(0, dtype=np.int64)
    violation_step = None
    if sim.config.strict_safety:
        limit = sim.cpu_model.max_operating_temp_c
        violating = np.nonzero((cpu_temp_plane > limit).ravel())[0]
        if violating.size:
            violation_step = int(violating[0]) // cpu_temp_plane.shape[1]

    if capacity_step is not None and (violation_step is None
                                      or capacity_step <= violation_step):
        step, circ = divmod(int(capacity_cells[0]), n_circs)
        circulation = circulations[circ]
        heat = float(chiller_heat[step, circ])
        try:
            if heat > circulation.chiller.capacity_kw * 1000.0:
                circulation.chiller.electricity_w_for_heat(heat)
            circulation.tower.electricity_w_for_heat(
                float(tower_heat[step, circ]))
        except PhysicalRangeError as exc:
            return KernelError(exception=exc, phase=0, step=step, circ=circ)
        raise AssertionError(
            "capacity cell did not raise")  # pragma: no cover
    if violation_step is not None:
        flat = int(violating[0])
        step, server = divmod(flat, cpu_temp_plane.shape[1])
        circ = next(index for index, group in enumerate(groups)
                    if group[0] <= server <= group[-1])
        group = groups[circ]
        time_s = (sim.step_offset + step) * interval_s
        exc = CoolingFailureError(
            f"CPU over temperature at t={time_s:.0f}s in "
            f"circulation starting at server "
            f"{int(group[0]) + sim.server_offset}",
            server_id=int(server) + sim.server_offset,
            temperature_c=float(cpu_temp_plane[step, server]),
            step_index=sim.step_offset + step,
        )
        return KernelError(exception=exc, phase=1, step=step, circ=circ)
    return None


def run_kernel_columns(sim) -> KernelColumns:
    """Phases 1–3 for ``sim``'s whole trace: per-circulation columns.

    ``sim`` is a (engine-cached) :class:`DatacenterSimulator`; its
    scheduler, policy, partitioning, circulations and decision hook are
    reused so the columns — including the captured exception of a
    chiller / tower capacity breach or a strict-safety violation — are
    bit-identical to what ``sim.run()``'s serial loop computes.  Phase
    timings are stored on a fresh ``sim.kernel_timings`` (the caller
    adds ``fold_s`` after :func:`fold_columns`).

    Violation records and error attributes are emitted in the
    simulator's global frame (``step_offset`` / ``server_offset``), so
    a shard's columns can be merged without rewriting them.
    """
    timings = KernelTimings()
    sim.kernel_timings = timings
    trace = sim.trace
    raw = trace.utilisation
    n_steps, n_servers = raw.shape
    groups = sim._groups
    n_circs = len(groups)
    circulations = sim._circulations
    interval_s = trace.interval_s

    # Phase 1 — schedule + decide (cache-deduplicated).
    clock = time.perf_counter()
    with obs.span("kernel.decide"):
        plane = _scheduled_plane(sim, raw)
        setting_id, applied_settings = _decide_cells(sim, plane)
    timings.decide_s = time.perf_counter() - clock

    # Phase 2 — evaluate the thermal/TEG models per unique setting.
    clock = time.perf_counter()
    with obs.span("kernel.evaluate"):
        cpu_model = sim.cpu_model
        teg_module = sim.teg_module
        cold_source_c = sim.config.cold_source_temp_c
        flat_utils = plane.reshape(-1)
        cpu_temp = np.empty(flat_utils.size)
        cpu_power = np.empty(flat_utils.size)
        teg_power = np.empty(flat_utils.size)
        for sid, applied in enumerate(applied_settings):
            mask = setting_id == sid
            chunks = []
            for circ in range(n_circs):
                steps_at = np.nonzero(mask[:, circ])[0]
                if steps_at.size:
                    chunks.append((steps_at[:, None] * n_servers
                                   + groups[circ][None, :]).ravel())
            if not chunks:
                continue
            gathered = (np.concatenate(chunks) if len(chunks) > 1
                        else chunks[0])
            batch = flat_utils[gathered]
            outlets = cpu_model.outlet_temp_c(batch, applied)
            cpu_temp[gathered] = cpu_model.cpu_temp_c(batch, applied)
            cpu_power[gathered] = cpu_model.cpu_power_w(batch)
            teg_power[gathered] = teg_module.generation_w(
                outlets, cold_source_c, applied.flow_l_per_h)
        cpu_temp_plane = cpu_temp.reshape(n_steps, n_servers)
        cpu_power_plane = cpu_power.reshape(n_steps, n_servers)
        teg_power_plane = teg_power.reshape(n_steps, n_servers)
    timings.evaluate_s = time.perf_counter() - clock

    # Phase 3 — per-circulation reductions and facility accounting.
    clock = time.perf_counter()
    with obs.span("kernel.reduce"):
        generation_c = np.empty((n_steps, n_circs))
        heat_c = np.empty((n_steps, n_circs))
        max_temp_c = np.empty((n_steps, n_circs))
        for index, group in enumerate(groups):
            start, stop = int(group[0]), int(group[0]) + group.size
            generation_c[:, index] = teg_power_plane[:, start:stop].sum(
                axis=1)
            heat_c[:, index] = cpu_power_plane[:, start:stop].sum(axis=1)
            max_temp_c[:, index] = cpu_temp_plane[:, start:stop].max(axis=1)

        tower = circulations[0].tower
        wet_bulb_c = circulations[0].wet_bulb_c
        coldest_c = tower.coldest_supply_c(wet_bulb_c)
        fraction_by_sid = np.array([
            0.0 if applied.inlet_temp_c >= coldest_c
            else min(1.0, (coldest_c - applied.inlet_temp_c) / 10.0)
            for applied in applied_settings])
        inlet_by_sid = np.array([applied.inlet_temp_c
                                 for applied in applied_settings])
        flow_by_sid = np.array([applied.flow_l_per_h
                                for applied in applied_settings])
        pump_by_sid = np.array([
            loop_pump_power_w(circulations[0].pipe_segments,
                              applied.flow_l_per_h, applied.inlet_temp_c)
            for applied in applied_settings])

        chiller_heat = heat_c * fraction_by_sid[setting_id]
        tower_heat = heat_c - chiller_heat
        # Power splits are safe arithmetic even past a capacity breach,
        # so compute them unconditionally; the merge discards them when
        # an error wins.
        chiller_power_c = chiller_heat / circulations[0].chiller.cop
        tower_power_c = tower_heat / 1000.0 * tower.fan_power_w_per_kw
        sizes = np.array([group.size for group in groups])
        pump_power_c = sizes[None, :] * pump_by_sid[setting_id]
        inlet_cell = inlet_by_sid[setting_id]
        flow_cell = flow_by_sid[setting_id]

        error = _earliest_error(sim, chiller_heat, tower_heat,
                                cpu_temp_plane, interval_s)
        violations: list[SafetyViolation] = []
        violation_counts = np.zeros(n_steps, dtype=np.int64)
        if error is None:
            limit = cpu_model.max_operating_temp_c
            violation_plane = cpu_temp_plane > limit
            violation_counts = violation_plane.sum(axis=1)
            violation_steps, violation_servers = np.nonzero(violation_plane)
            violations = [
                SafetyViolation(
                    server_id=int(server) + sim.server_offset,
                    step_index=int(step) + sim.step_offset,
                    time_s=float((step + sim.step_offset) * interval_s),
                    temperature_c=float(cpu_temp_plane[step, server]),
                )
                for step, server in zip(violation_steps, violation_servers)]
    timings.reduce_s = time.perf_counter() - clock

    return KernelColumns(
        generation_c=generation_c,
        heat_c=heat_c,
        chiller_power_c=chiller_power_c,
        tower_power_c=tower_power_c,
        pump_power_c=pump_power_c,
        max_temp_c=max_temp_c,
        inlet_cell=inlet_cell,
        flow_cell=flow_cell,
        sizes=sizes,
        violation_counts=violation_counts,
        violations=violations,
        error=error,
    )


def fold_columns(columns: KernelColumns, n_servers: int) -> dict:
    """Phase 4: fold circulation columns into per-step cluster columns.

    Sequential adds in circulation order over *full-length* columns —
    exactly the serial ``_aggregate_step`` accumulation.  The sharding
    merge calls this once on stitched whole-cluster columns rather than
    summing per-shard subtotals, because float addition is not
    associative and only this order reproduces the unsharded fold bit
    for bit.
    """
    n_steps, n_circs = columns.heat_c.shape
    total_generation = np.zeros(n_steps)
    total_cpu_power = np.zeros(n_steps)
    total_chiller = np.zeros(n_steps)
    total_tower = np.zeros(n_steps)
    total_pump = np.zeros(n_steps)
    inlet_sum = np.zeros(n_steps)
    flow_sum = np.zeros(n_steps)
    max_cpu_temp = np.full(n_steps, -np.inf)
    for index in range(n_circs):
        size = int(columns.sizes[index])
        total_generation += columns.generation_c[:, index]
        total_cpu_power += columns.heat_c[:, index]
        total_chiller += columns.chiller_power_c[:, index]
        total_tower += columns.tower_power_c[:, index]
        total_pump += columns.pump_power_c[:, index]
        np.maximum(max_cpu_temp, columns.max_temp_c[:, index],
                   out=max_cpu_temp)
        inlet_sum += columns.inlet_cell[:, index] * size
        flow_sum += columns.flow_cell[:, index] * size
    return {
        "generation_per_cpu_w": total_generation / n_servers,
        "cpu_power_per_cpu_w": total_cpu_power / n_servers,
        "mean_inlet_temp_c": inlet_sum / n_servers,
        "mean_flow_l_per_h": flow_sum / n_servers,
        "max_cpu_temp_c": max_cpu_temp,
        "chiller_power_w": total_chiller,
        "tower_power_w": total_tower,
        "pump_power_w": total_pump,
    }


def run_whole_trace(sim) -> SimulationResult:
    """Replay the full trace of a fault-free simulator as NumPy kernels.

    ``sim`` is a (engine-cached) :class:`DatacenterSimulator`; its
    scheduler, policy, partitioning, circulations and decision hook are
    reused so the output — including the exception raised on a chiller /
    tower capacity breach or a strict-safety violation — is bit-identical
    to ``sim.run()``'s serial loop.  Phase timings are stored on
    ``sim.kernel_timings``.
    """
    columns = run_kernel_columns(sim)
    if columns.error is not None:
        raise columns.error.exception
    timings = sim.kernel_timings
    trace = sim.trace
    raw = trace.utilisation
    n_steps, n_servers = raw.shape
    interval_s = trace.interval_s

    # Phase 4 — fold circulations into per-step cluster aggregates, in
    # circulation order with sequential adds (the serial accumulation).
    clock = time.perf_counter()
    with obs.span("kernel.fold"):
        sim._violation_log = columns.violations
        records = ColumnarSteps({
            "time_s": (sim.step_offset + np.arange(n_steps)) * interval_s,
            "mean_utilisation": raw.mean(axis=1),
            "max_utilisation": raw.max(axis=1),
            **fold_columns(columns, n_servers),
            "safety_violations": columns.violation_counts,
            "degraded_circulations": np.zeros(n_steps, dtype=np.int64),
            "lost_harvest_w": np.zeros(n_steps),
            "active_faults": np.zeros(n_steps, dtype=np.int64),
        })
        result = SimulationResult(
            scheme=sim.config.name,
            trace_name=trace.name,
            n_servers=n_servers,
            interval_s=interval_s,
            records=records,
        )
        result.violations = sim._violation_log
    timings.fold_s = time.perf_counter() - clock
    return result

"""The top-level H2P system facade.

:class:`H2PSystem` is the entry point a downstream user starts from: it
wires the calibrated hardware models together and exposes one-call access
to the paper's main workflows — evaluating a trace under a scheme,
reproducing the Original-vs-LoadBalance comparison, sizing TEG modules
and computing the economics.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..constants import NATURAL_WATER_TEMP_C
from ..economics.metrics import power_reusing_efficiency
from ..economics.tco import TcoModel, TcoBreakdown
from ..teg.module import TegModule, default_server_module
from ..thermal.cpu_model import CoolingSetting, CpuThermalModel
from ..workloads.trace import WorkloadTrace
from .config import SimulationConfig, teg_loadbalance, teg_original
from .results import SchemeComparison, SimulationResult
from .simulator import DatacenterSimulator, compare_schemes


@dataclass
class H2PSystem:
    """A warm water-cooled datacenter retrofitted with H2P.

    Attributes
    ----------
    cpu_model:
        Calibrated CPU thermal model (prototype: Xeon E5-2650 V3).
    teg_module:
        Per-server TEG module (prototype: 12x SP 1848-27145).
    cold_source_temp_c:
        Natural-water temperature at the TEG cold side.
    """

    cpu_model: CpuThermalModel = field(default_factory=CpuThermalModel)
    teg_module: TegModule = field(default_factory=default_server_module)
    cold_source_temp_c: float = NATURAL_WATER_TEMP_C

    # ------------------------------------------------------------------
    # Point evaluations
    # ------------------------------------------------------------------

    def server_generation_w(self, utilisation: float,
                            setting: CoolingSetting) -> float:
        """TEG output of one server at a load and cooling setting."""
        outlet = self.cpu_model.outlet_temp_c(utilisation, setting)
        return self.teg_module.generation_w(
            outlet, self.cold_source_temp_c, setting.flow_l_per_h)

    def server_pre(self, utilisation: float,
                   setting: CoolingSetting) -> float:
        """PRE (Eq. 19) of one server at a load and cooling setting."""
        generation = self.server_generation_w(utilisation, setting)
        consumption = self.cpu_model.cpu_power_w(utilisation)
        return power_reusing_efficiency(generation, consumption)

    def is_safe(self, utilisation: float, setting: CoolingSetting) -> bool:
        """Whether the CPU stays below its maximum operating temperature."""
        return self.cpu_model.is_safe(utilisation, setting)

    # ------------------------------------------------------------------
    # Trace-driven evaluation (Sec. V-C)
    # ------------------------------------------------------------------

    def evaluate(self, trace: WorkloadTrace,
                 config: SimulationConfig | None = None) -> SimulationResult:
        """Run one scheme over a trace (defaults to *TEG_Original*)."""
        config = config or teg_original()
        simulator = DatacenterSimulator(trace, config, self.cpu_model,
                                        self.teg_module)
        return simulator.run()

    def compare(self, trace: WorkloadTrace,
                baseline: SimulationConfig | None = None,
                optimised: SimulationConfig | None = None,
                result_cache=None) -> SchemeComparison:
        """The paper's headline comparison on one trace (Fig. 14).

        ``result_cache`` forwards to :func:`~repro.core.simulator.
        compare_schemes` (see :mod:`repro.core.cache`).
        """
        return compare_schemes(
            trace,
            baseline or teg_original(),
            optimised or teg_loadbalance(),
            self.cpu_model,
            self.teg_module,
            result_cache=result_cache,
        )

    # ------------------------------------------------------------------
    # Economics (Sec. V-D)
    # ------------------------------------------------------------------

    def tco(self, average_generation_w: float,
            model: TcoModel | None = None) -> TcoBreakdown:
        """TCO breakdown for a measured average per-CPU generation."""
        model = model or TcoModel()
        return model.breakdown(average_generation_w)

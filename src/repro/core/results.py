"""Result containers for the trace-driven evaluation.

:class:`SimulationResult` stores per-step cluster aggregates (generation,
CPU power, temperatures, chosen settings) and derives the paper's headline
metrics: average/peak per-CPU generation (Fig. 14) and PRE (Fig. 15).
:class:`SchemeComparison` packages the Original-vs-LoadBalance contrast.

Two backing stores exist for the per-step records:

* the serial simulator appends :class:`StepRecord` objects to a plain
  list, one per control interval;
* the engine's whole-trace kernel produces a :class:`ColumnarSteps`
  struct-of-arrays store — one NumPy column per record field — and
  materialises :class:`StepRecord` views lazily on indexing/iteration.

Both satisfy the same sequence API and compare equal element-wise, so
callers (and the bit-identity tests) never need to care which one they
hold; time-series properties read columns directly when available.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from ..errors import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..obs import TelemetrySnapshot
    from .engine import EngineMetrics


@dataclass(frozen=True)
class SafetyViolation:
    """One (server, interval) pair observed above the CPU limit.

    Recorded by the non-strict simulator path for *every* violation so
    post-mortems can see which servers overheated and when, not just a
    count.  ``time_s`` is the start of the offending control interval.
    """

    server_id: int
    step_index: int
    time_s: float
    temperature_c: float


@dataclass(frozen=True)
class StepRecord:
    """Cluster-level aggregates of one control interval.

    ``degraded_circulations`` / ``lost_harvest_w`` / ``active_faults``
    are the fault-injection accounting (all zero on a healthy run):
    circulations that fell back to the conservative safe cooling setting
    this interval, cluster-wide TEG output lost to faults versus the
    healthy plant, and fault specs active during the interval.
    """

    time_s: float
    mean_utilisation: float
    max_utilisation: float
    generation_per_cpu_w: float
    cpu_power_per_cpu_w: float
    mean_inlet_temp_c: float
    mean_flow_l_per_h: float
    max_cpu_temp_c: float
    chiller_power_w: float
    tower_power_w: float
    pump_power_w: float
    safety_violations: int
    degraded_circulations: int = 0
    lost_harvest_w: float = 0.0
    active_faults: int = 0

    @property
    def pre(self) -> float:
        """Power reusing efficiency of this step (Eq. 19)."""
        if self.cpu_power_per_cpu_w <= 0:
            return 0.0
        return self.generation_per_cpu_w / self.cpu_power_per_cpu_w


#: Column layout of :class:`ColumnarSteps`: every :class:`StepRecord`
#: field, split by the Python type its lazy views materialise.
STEP_FLOAT_COLUMNS = (
    "time_s", "mean_utilisation", "max_utilisation",
    "generation_per_cpu_w", "cpu_power_per_cpu_w", "mean_inlet_temp_c",
    "mean_flow_l_per_h", "max_cpu_temp_c", "chiller_power_w",
    "tower_power_w", "pump_power_w", "lost_harvest_w",
)
STEP_INT_COLUMNS = ("safety_violations", "degraded_circulations",
                    "active_faults")
STEP_COLUMNS = STEP_FLOAT_COLUMNS + STEP_INT_COLUMNS


class ColumnarSteps(Sequence):
    """Struct-of-arrays backing store for per-step records.

    The whole-trace kernel computes every :class:`StepRecord` field as a
    length-``n_steps`` NumPy column; this container keeps those columns
    and materialises :class:`StepRecord` objects only when indexed, so
    the kernel never pays a per-step Python allocation while the
    list-of-records API (indexing, slicing, iteration, equality against
    a plain list) keeps working unchanged.
    """

    __slots__ = ("_columns", "_n", "_cache")

    def __init__(self, columns: dict) -> None:
        missing = [name for name in STEP_COLUMNS if name not in columns]
        if missing:
            raise ConfigurationError(
                f"columnar step store is missing columns: {missing}")
        self._columns = {}
        self._n = None
        for name in STEP_COLUMNS:
            column = np.asarray(columns[name])
            if self._n is None:
                self._n = column.shape[0]
            elif column.shape != (self._n,):
                raise ConfigurationError(
                    f"column {name!r} has shape {column.shape}, "
                    f"expected ({self._n},)")
            column = column.copy() if not column.flags.owndata else column
            column.setflags(write=False)
            self._columns[name] = column
        self._cache: dict[int, StepRecord] = {}

    def column(self, name: str) -> np.ndarray:
        """The read-only NumPy column backing one record field."""
        try:
            return self._columns[name]
        except KeyError:
            raise ConfigurationError(
                f"no step column named {name!r}") from None

    def __len__(self) -> int:
        return self._n

    def _record(self, index: int) -> StepRecord:
        cached = self._cache.get(index)
        if cached is None:
            fields = {name: float(self._columns[name][index])
                      for name in STEP_FLOAT_COLUMNS}
            fields.update({name: int(self._columns[name][index])
                           for name in STEP_INT_COLUMNS})
            cached = self._cache[index] = StepRecord(**fields)
        return cached

    def __getitem__(self, index):
        if isinstance(index, slice):
            return [self._record(i) for i in range(*index.indices(self._n))]
        if index < 0:
            index += self._n
        if not 0 <= index < self._n:
            raise IndexError("step index out of range")
        return self._record(index)

    def __eq__(self, other) -> bool:
        if isinstance(other, ColumnarSteps):
            return self._n == other._n and all(
                np.array_equal(self._columns[name], other._columns[name])
                for name in STEP_COLUMNS)
        if isinstance(other, (list, tuple)):
            return len(other) == self._n and all(
                self._record(i) == record
                for i, record in enumerate(other))
        return NotImplemented

    def __ne__(self, other) -> bool:
        equal = self.__eq__(other)
        if equal is NotImplemented:
            return equal
        return not equal

    def __repr__(self) -> str:
        return f"ColumnarSteps(n_steps={self._n})"

    def __reduce__(self):
        # Pickle the raw columns (process-pool workers return results);
        # the lazy record cache is rebuilt on demand.
        return (ColumnarSteps, (dict(self._columns),))


@dataclass
class SimulationResult:
    """All step records of one scheme over one trace.

    ``metrics`` is attached by :mod:`repro.core.engine` runs (wall time,
    steps/sec, cooling-cache hit rate); it is observational only and is
    excluded from equality so serial and engine results that agree on
    every record compare equal.
    """

    scheme: str
    trace_name: str
    n_servers: int
    interval_s: float
    records: "list[StepRecord] | ColumnarSteps" = field(
        default_factory=list)
    metrics: "EngineMetrics | None" = field(default=None, repr=False,
                                            compare=False)
    #: Every (server, interval) temperature violation observed by the
    #: non-strict simulator path, in step order.  Observational like
    #: ``metrics``: excluded from equality.
    violations: list[SafetyViolation] = field(default_factory=list,
                                              repr=False, compare=False)
    #: Per-job telemetry delta (:mod:`repro.obs`): attached by
    #: :func:`repro.core.engine.simulate` when telemetry is enabled so
    #: worker-process sessions ride back to the batch layer through the
    #: existing pickle path.  Observational: excluded from equality.
    telemetry: "TelemetrySnapshot | None" = field(default=None, repr=False,
                                                 compare=False)

    def append(self, record: StepRecord) -> None:
        """Add one control interval's aggregates.

        Only list-backed results grow incrementally; a columnar
        (kernel-produced) result is complete by construction.
        """
        if isinstance(self.records, ColumnarSteps):
            raise ConfigurationError(
                "cannot append to a columnar (kernel-produced) result")
        self.records.append(record)

    def _series(self, attribute: str) -> np.ndarray:
        if not len(self.records):
            raise ConfigurationError("result has no records yet")
        if isinstance(self.records, ColumnarSteps):
            return self.records.column(attribute)
        return np.array([getattr(record, attribute)
                         for record in self.records])

    # ------------------------------------------------------------------
    # Time series (Fig. 14 curves)
    # ------------------------------------------------------------------

    @property
    def times_s(self) -> np.ndarray:
        """Start time of every record."""
        return self._series("time_s")

    @property
    def generation_series_w(self) -> np.ndarray:
        """Per-CPU TEG generation over time (the Fig. 14 power curve)."""
        return self._series("generation_per_cpu_w")

    @property
    def utilisation_series(self) -> np.ndarray:
        """Cluster-mean utilisation over time (the Fig. 14 load curve)."""
        return self._series("mean_utilisation")

    @property
    def max_cpu_temp_series_c(self) -> np.ndarray:
        """Hottest CPU per step (what the safety audit checks)."""
        return self._series("max_cpu_temp_c")

    @property
    def pre_series(self) -> np.ndarray:
        """PRE over time (Fig. 15)."""
        if isinstance(self.records, ColumnarSteps):
            generation = self.records.column("generation_per_cpu_w")
            cpu_power = self.records.column("cpu_power_per_cpu_w")
            out = np.zeros(len(self.records))
            positive = cpu_power > 0
            out[positive] = generation[positive] / cpu_power[positive]
            return out
        return np.array([record.pre for record in self.records])

    # ------------------------------------------------------------------
    # Headline metrics
    # ------------------------------------------------------------------

    @property
    def average_generation_w(self) -> float:
        """Mean per-CPU generation over the run (paper's headline)."""
        return float(self.generation_series_w.mean())

    @property
    def peak_generation_w(self) -> float:
        """Peak per-CPU generation over the run."""
        return float(self.generation_series_w.max())

    @property
    def average_cpu_power_w(self) -> float:
        """Mean per-CPU power consumption over the run."""
        return float(self._series("cpu_power_per_cpu_w").mean())

    @property
    def average_pre(self) -> float:
        """Run-level PRE: total generation over total CPU energy (Eq. 19)."""
        generation = self.generation_series_w.sum()
        consumption = self._series("cpu_power_per_cpu_w").sum()
        if consumption <= 0:
            return 0.0
        return float(generation / consumption)

    @property
    def total_generation_kwh(self) -> float:
        """Cluster-wide generated energy over the run."""
        per_cpu_w = self.generation_series_w
        return float(per_cpu_w.sum() * self.n_servers * self.interval_s
                     / 3600.0 / 1000.0)

    @property
    def total_safety_violations(self) -> int:
        """Count of (server, interval) pairs above the CPU limit."""
        return int(self._series("safety_violations").sum())

    # ------------------------------------------------------------------
    # Degraded-mode accounting (fault injection)
    # ------------------------------------------------------------------

    @property
    def degraded_steps(self) -> int:
        """Intervals in which at least one circulation ran degraded."""
        return int(np.count_nonzero(
            self._series("degraded_circulations")))

    @property
    def total_lost_harvest_kwh(self) -> float:
        """Cluster-wide TEG energy lost to faults over the run."""
        lost_w = self._series("lost_harvest_w")
        return float(lost_w.sum() * self.interval_s / 3600.0 / 1000.0)

    @property
    def anti_correlation(self) -> float:
        """Pearson correlation between utilisation and generation.

        The paper observes that "when the CPU utilization is high, the
        corresponding power generation capacity of H2P is low"; this should
        be negative.
        """
        utils = self.utilisation_series
        gen = self.generation_series_w
        if utils.std() == 0 or gen.std() == 0:
            return 0.0
        return float(np.corrcoef(utils, gen)[0, 1])

    def summary(self) -> dict:
        """Headline metrics as a plain dictionary (for tables/JSON)."""
        summary = {
            "scheme": self.scheme,
            "trace": self.trace_name,
            "servers": self.n_servers,
            "steps": len(self.records),
            "avg_generation_w": round(self.average_generation_w, 3),
            "peak_generation_w": round(self.peak_generation_w, 3),
            "avg_cpu_power_w": round(self.average_cpu_power_w, 2),
            "pre": round(self.average_pre, 4),
            "total_generation_kwh": round(self.total_generation_kwh, 2),
            "safety_violations": self.total_safety_violations,
        }
        if self.degraded_steps or self.total_lost_harvest_kwh:
            summary["degraded_steps"] = self.degraded_steps
            summary["lost_harvest_kwh"] = round(
                self.total_lost_harvest_kwh, 3)
        return summary


@dataclass(frozen=True)
class SchemeComparison:
    """Original-vs-LoadBalance contrast for one trace (Fig. 14/15)."""

    baseline: SimulationResult
    optimised: SimulationResult

    def __post_init__(self) -> None:
        if self.baseline.trace_name != self.optimised.trace_name:
            raise ConfigurationError(
                "compared results must come from the same trace, got "
                f"{self.baseline.trace_name!r} vs "
                f"{self.optimised.trace_name!r}")

    @property
    def generation_improvement(self) -> float:
        """Relative gain in average generation (paper: ~13.08 % overall)."""
        base = self.baseline.average_generation_w
        if base <= 0:
            return float("inf")
        return (self.optimised.average_generation_w - base) / base

    @property
    def pre_improvement(self) -> float:
        """Absolute PRE gain of the optimised scheme."""
        return self.optimised.average_pre - self.baseline.average_pre

    def summary(self) -> dict:
        """Side-by-side headline numbers."""
        return {
            "trace": self.baseline.trace_name,
            "baseline": self.baseline.summary(),
            "optimised": self.optimised.summary(),
            "generation_improvement_pct": round(
                100.0 * self.generation_improvement, 2),
            "pre_improvement": round(self.pre_improvement, 4),
        }

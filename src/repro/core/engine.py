"""Batch execution engine for (scheme x trace) simulation sweeps.

Every headline result of the paper (Fig. 14/15, Table I, the ablations)
re-runs :class:`~repro.core.simulator.DatacenterSimulator` once per
scheme per trace.  This module turns that hot path into a batch API:

* :class:`SimulationJob` names one (trace, config) pair to evaluate;
* :class:`BatchSimulationEngine` fans a list of jobs out over a process
  pool (``concurrent.futures``), degrading gracefully to threads or a
  serial loop when processes are unavailable, with a ``REPRO_WORKERS``
  environment override;
* inside each job the step loop is *vectorised*: circulations sharing a
  cooling setting are evaluated as one NumPy batch instead of per-group
  Python calls, and cooling decisions are memoised by
  :class:`CoolingDecisionCache`;
* :class:`EngineMetrics` (wall time per phase, steps/sec, cache hit
  rate) is attached to every :class:`~repro.core.results.SimulationResult`
  so benchmarks can assert speedups.

Bit-identity
------------
Engine results are **bit-identical** to the serial
``DatacenterSimulator.run`` path:

* all per-server quantities (CPU temperature, outlet temperature, CPU
  power, TEG power) are elementwise NumPy computations, so evaluating a
  gathered multi-circulation batch yields exactly the per-circulation
  values;
* per-circulation sums and the cluster-level accumulation reuse the
  simulator's own :meth:`DatacenterSimulator._aggregate_step`, in the
  same circulation order;
* the decision cache only serves hits that provably reproduce what the
  policy itself would return (see :class:`CoolingDecisionCache`).

The golden and determinism tests in ``tests/core/test_engine.py``
enforce this equivalence.
"""

from __future__ import annotations

import atexit
import os
import pickle
import signal
import time
import uuid
import weakref
from concurrent.futures import (
    FIRST_COMPLETED,
    BrokenExecutor,
    Future,
    ThreadPoolExecutor,
    wait,
)
from contextlib import nullcontext
from dataclasses import dataclass, field, replace
from multiprocessing import shared_memory
from pathlib import Path
from typing import Iterable, Sequence

import numpy as np

from .. import obs
from ..cooling.loop import CirculationState
from ..errors import (
    ConfigurationError,
    JobExecutionError,
    ShardExecutionError,
)
from ..faults import FaultSchedule
from ..teg.module import TegModule
from ..thermal.cpu_model import CpuThermalModel
from ..thermal.hydraulics import loop_pump_power_w
from ..workloads.trace import WorkloadTrace
from .cache import ResultCache, resolve_result_cache, result_key, warm_keys
from .config import SimulationConfig
from .kernel import KernelTimings, run_whole_trace
from .results import SimulationResult
from .simulator import DatacenterSimulator

#: Environment variable overriding the engine's worker count.
#: ``0`` or ``1`` force the serial in-process path.
WORKERS_ENV_VAR = "REPRO_WORKERS"

#: Environment variable setting the per-job wall-clock budget (seconds).
#: Enforced on pooled executors; see ``docs/engine.md`` for the exact
#: guarantees per executor kind.
JOB_TIMEOUT_ENV_VAR = "REPRO_JOB_TIMEOUT"

#: Environment variable setting the shard straggler deadline (seconds):
#: a dispatched shard that has been *running* this long is speculatively
#: re-dispatched once; first completion wins, the loser is cancelled.
SHARD_STRAGGLER_ENV_VAR = "REPRO_SHARD_STRAGGLER"

#: How often the batch layer polls in-flight futures for completion,
#: timeouts and pool breakage.
_POLL_INTERVAL_S = 0.05

#: Default utilisation quantisation of the cooling-decision cache,
#: matching :class:`~repro.control.cooling_policy.LookupSpacePolicy`.
DEFAULT_CACHE_RESOLUTION = 0.005

#: Execution modes of one job, fastest first.  All are bit-identical:
#:
#: * ``"kernel"`` — whole-trace NumPy pipeline (no per-step Python loop);
#: * ``"step"``   — PR 1's per-step loop, vectorised within each step;
#: * ``"loop"``   — the serial per-circulation loop with cached decisions.
#:
#: Jobs carrying a fault schedule always step through the simulator's
#: fault-aware serial loop, whatever mode was requested.
EXECUTION_MODES = ("kernel", "step", "loop")


def resolve_mode(mode: str | None, vectorised: bool = True) -> str:
    """Normalise the (mode, legacy ``vectorised`` flag) pair.

    ``mode`` wins when given; otherwise ``vectorised=True`` selects the
    kernel pipeline and ``vectorised=False`` the serial cached loop.
    """
    if mode is None:
        return "kernel" if vectorised else "loop"
    if mode not in EXECUTION_MODES:
        raise ConfigurationError(
            f"mode must be one of {EXECUTION_MODES}, got {mode!r}")
    return mode


# ----------------------------------------------------------------------
# Cooling-decision cache
# ----------------------------------------------------------------------

@dataclass
class CacheStats:
    """Hit/miss counters of one :class:`CoolingDecisionCache`."""

    hits: int = 0
    misses: int = 0

    @property
    def lookups(self) -> int:
        """Total number of ``decide`` calls answered."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (0 when unused)."""
        if not self.lookups:
            return 0.0
        return self.hits / self.lookups


class CoolingDecisionCache:
    """Memoised cooling-setting decisions across steps and circulations.

    The ``control.cooling_policy`` / ``control.lookup_space`` search is
    the dominant per-decision cost and highly repetitive across steps:
    the decision depends only on the *binding* utilisation (the max or
    mean of the circulation's utilisation vector), which revisits the
    same quantised values over and over.

    Keys are derived from the quantised utilisation vector together with
    the cold-source temperature and the policy identity (the ``context``
    tuple).  Hits are guaranteed bit-identical to calling the policy:

    * for :class:`~repro.control.cooling_policy.LookupSpacePolicy` (it
      exposes ``cache_resolution``) the key uses the same quantised
      binding bucket the policy's own memo uses, so any colliding vector
      would be answered with the identical cached decision by the policy
      itself;
    * for policies without an internal memo (analytic, static) the key
      carries the *exact* binding utilisation, and the decision is a
      pure function of it.
    """

    def __init__(self, resolution: float = DEFAULT_CACHE_RESOLUTION) -> None:
        if resolution <= 0:
            raise ConfigurationError(
                f"cache resolution must be > 0, got {resolution}")
        self.resolution = resolution
        self.stats = CacheStats()
        self._store: dict = {}

    def __len__(self) -> int:
        return len(self._store)

    def decide(self, policy, utilisations: np.ndarray, context: tuple = ()):
        """Return ``policy.decide(utilisations)``, memoised.

        Parameters
        ----------
        policy:
            Any cooling policy keyed on a binding utilisation through an
            ``aggregation`` attribute (``"max"`` or ``"avg"``).
        utilisations:
            The scheduled per-server utilisation vector.
        context:
            Hashable policy/environment identity (policy kind, cold
            source temperature, safe temperature, ...) so one cache can
            serve several simulations without cross-talk.
        """
        utils = np.asarray(utilisations, dtype=float)
        aggregation = getattr(policy, "aggregation", "max")
        if aggregation == "avg":
            binding = float(utils.mean())
        else:
            binding = float(utils.max())
        policy_resolution = getattr(policy, "cache_resolution", None)
        if policy_resolution:
            # Same bucketing (and same round()) as the policy's memo.
            binding_key = round(binding / policy_resolution)
        else:
            binding_key = binding
        key = (context, aggregation, utils.size, binding_key)
        cached = self._store.get(key)
        if cached is not None:
            self.stats.hits += 1
            return cached
        decision = policy.decide(utils)
        self._store[key] = decision
        self.stats.misses += 1
        return decision

    def decide_batch(self, policy, bindings: np.ndarray,
                     sizes: np.ndarray, context: tuple = ()) -> list:
        """Memoised decisions for pre-aggregated ``(binding, size)`` pairs.

        The batched counterpart of :meth:`decide` for callers (the
        columnar kernel) that have already reduced each utilisation
        vector to its binding value.  ``bindings[i]`` must be bit-equal
        to the aggregation :meth:`decide` would compute from the full
        vector, and ``sizes[i]`` is that vector's length; the cache key
        is then identical to the scalar path's.  Misses are answered by
        one ``policy.decide_batch`` call and inserted in input order, so
        the store's insertion order (which the warm-start exporter
        consumes) matches a scalar-loop replay exactly.

        Callers must ensure the pairs map to *distinct* cache keys (the
        kernel's unique-cell dedup guarantees this); duplicate keys
        within one batch would each be counted and computed as a miss.
        """
        aggregation = getattr(policy, "aggregation", "max")
        policy_resolution = getattr(policy, "cache_resolution", None)
        decisions: list = [None] * len(bindings)
        miss_at: list[int] = []
        miss_keys: list[tuple] = []
        miss_bindings: list[float] = []
        for i, raw in enumerate(bindings):
            binding = float(raw)
            if policy_resolution:
                binding_key = round(binding / policy_resolution)
            else:
                binding_key = binding
            key = (context, aggregation, int(sizes[i]), binding_key)
            cached = self._store.get(key)
            if cached is not None:
                self.stats.hits += 1
                decisions[i] = cached
            else:
                miss_at.append(i)
                miss_keys.append(key)
                miss_bindings.append(binding)
        if miss_at:
            computed = policy.decide_batch(miss_bindings)
            for i, key, decision in zip(miss_at, miss_keys, computed):
                decisions[i] = decision
                self._store[key] = decision
                self.stats.misses += 1
        return decisions


# ----------------------------------------------------------------------
# Metrics
# ----------------------------------------------------------------------

@dataclass
class EngineMetrics:
    """Observability attached to engine-produced results.

    Attributes
    ----------
    setup_time_s / step_time_s / wall_time_s:
        Wall time spent building the simulator (policy, lookup space,
        circulations), stepping the trace, and in total.
    n_steps / steps_per_s:
        Steps replayed and throughput of the stepping phase.
    cache_hits / cache_misses / cache_hit_rate:
        Cooling-decision cache counters for this run.
    mode:
        Execution mode actually used (see :data:`EXECUTION_MODES`;
        fault-carrying jobs report ``"loop"``).
    vectorised:
        Whether an array-batched path (``"kernel"`` or ``"step"``) ran;
        kept for backward compatibility with ``mode``.
    kernel:
        Per-phase wall times of the whole-trace kernel
        (decide/evaluate/reduce/fold); ``None`` outside kernel mode.
    executor / n_workers:
        How the batch layer ran this job (``"process"``, ``"thread"``
        or ``"serial"``); filled in by :class:`BatchSimulationEngine`.
    retries:
        How many failed attempts preceded the one that produced this
        result (0 on a first-try success); filled in by the batch layer.
    n_shards:
        How many shards this job was split into (0 when it ran whole;
        see :mod:`repro.core.shard`).
    shards_resumed:
        How many of those shards were loaded from a checkpoint
        directory instead of computed (see
        :mod:`repro.core.checkpoint`).
    """

    setup_time_s: float = 0.0
    step_time_s: float = 0.0
    wall_time_s: float = 0.0
    n_steps: int = 0
    steps_per_s: float = 0.0
    cache_hits: int = 0
    cache_misses: int = 0
    cache_hit_rate: float = 0.0
    mode: str = "kernel"
    vectorised: bool = True
    kernel: KernelTimings | None = None
    executor: str = "serial"
    n_workers: int = 1
    retries: int = 0
    n_shards: int = 0
    shards_resumed: int = 0
    #: Whether this result was served from the content-addressed result
    #: cache (:mod:`repro.core.cache`) instead of being computed.
    result_cache_hit: bool = False

    def summary(self) -> dict:
        """Headline metrics as a plain dictionary (for tables/JSON)."""
        summary = {
            "wall_time_s": round(self.wall_time_s, 4),
            "steps_per_s": round(self.steps_per_s, 1),
            "cache_hit_rate": round(self.cache_hit_rate, 4),
            "mode": self.mode,
            "vectorised": self.vectorised,
            "executor": self.executor,
            "n_workers": self.n_workers,
            "retries": self.retries,
        }
        if self.n_shards:
            summary["shards"] = self.n_shards
        if self.shards_resumed:
            summary["shards_resumed"] = self.shards_resumed
        if self.result_cache_hit:
            summary["result_cache_hit"] = True
        if self.kernel is not None:
            summary["kernel"] = self.kernel.summary()
        return summary


@dataclass(frozen=True)
class BatchMetrics:
    """Aggregate metrics of one :meth:`BatchSimulationEngine.run` call.

    ``retries`` counts failed attempts that were retried, ``timeouts``
    counts jobs killed by the wall-clock budget, and ``n_failed`` counts
    jobs that exhausted their attempts (each has a matching
    :class:`FailedJob` record on the :class:`BatchResult`).
    """

    wall_time_s: float
    n_jobs: int
    n_workers: int
    executor: str
    total_steps: int
    steps_per_s: float
    cache_hits: int
    cache_misses: int
    retries: int = 0
    timeouts: int = 0
    n_failed: int = 0
    #: Total shards dispatched across all sharded jobs (0 = none).
    shards: int = 0
    #: Shards loaded from a checkpoint directory instead of computed.
    shards_resumed: int = 0
    #: Whole (non-sharded) jobs answered from a checkpointed result.
    jobs_resumed: int = 0
    #: Jobs served from the content-addressed result cache.
    result_cache_hits: int = 0
    #: Jobs whose cache lookup missed (and were then computed).
    result_cache_misses: int = 0
    #: Duplicate jobs answered by fanning out another job's result.
    jobs_deduped: int = 0

    @property
    def cache_hit_rate(self) -> float:
        """Aggregate cooling-cache hit rate across all jobs."""
        lookups = self.cache_hits + self.cache_misses
        if not lookups:
            return 0.0
        return self.cache_hits / lookups

    def summary(self) -> dict:
        """Headline metrics as a plain dictionary (for tables/JSON)."""
        summary = {
            "jobs": self.n_jobs,
            "executor": self.executor,
            "workers": self.n_workers,
            "wall_time_s": round(self.wall_time_s, 3),
            "steps_per_s": round(self.steps_per_s, 1),
            "cache_hit_rate": round(self.cache_hit_rate, 4),
            "retries": self.retries,
            "timeouts": self.timeouts,
            "failed": self.n_failed,
        }
        if self.shards:
            summary["shards"] = self.shards
        if self.shards_resumed:
            summary["shards_resumed"] = self.shards_resumed
        if self.jobs_resumed:
            summary["jobs_resumed"] = self.jobs_resumed
        if self.result_cache_hits or self.result_cache_misses:
            summary["result_cache_hits"] = self.result_cache_hits
            summary["result_cache_misses"] = self.result_cache_misses
        if self.jobs_deduped:
            summary["jobs_deduped"] = self.jobs_deduped
        return summary


# ----------------------------------------------------------------------
# Jobs
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class SimulationJob:
    """One (scheme x trace) pair to evaluate.

    ``cpu_model`` / ``teg_module`` default to the simulator's
    paper-calibrated hardware when omitted; heterogeneous-fleet sweeps
    pass per-slice models.  ``faults`` attaches an optional
    :class:`~repro.faults.FaultSchedule`; jobs without one keep the
    bit-exact nominal path.
    """

    trace: WorkloadTrace
    config: SimulationConfig
    cpu_model: CpuThermalModel | None = None
    teg_module: TegModule | None = None
    faults: FaultSchedule | None = None

    @property
    def key(self) -> tuple[str, str]:
        """``(scheme, trace)`` label used to index batch results."""
        return (self.config.name, self.trace.name)


class _CachedVectorisedSimulator(DatacenterSimulator):
    """A :class:`DatacenterSimulator` with memoised, batched stepping.

    The scheduler, policy, partitioning and aggregation all come from
    the parent class; what changes depends on the execution mode:

    * every mode routes cooling decisions through a
      :class:`CoolingDecisionCache`;
    * ``"step"`` batches the per-server thermal/TEG evaluation across
      all circulations that chose the same (clamped) cooling setting;
    * ``"kernel"`` skips the step loop entirely and runs the
      whole-trace pipeline of :mod:`repro.core.kernel`.
    """

    def __init__(self, trace: WorkloadTrace, config: SimulationConfig,
                 cpu_model: CpuThermalModel | None = None,
                 teg_module: TegModule | None = None,
                 cache: CoolingDecisionCache | None = None,
                 vectorised: bool = True,
                 mode: str | None = None,
                 faults: FaultSchedule | None = None,
                 step_offset: int = 0,
                 server_offset: int = 0) -> None:
        kwargs = {}
        if cpu_model is not None:
            kwargs["cpu_model"] = cpu_model
        if teg_module is not None:
            kwargs["teg_module"] = teg_module
        super().__init__(trace, config, faults=faults,
                         step_offset=step_offset,
                         server_offset=server_offset, **kwargs)
        # `is None` check: an empty cache is falsy (it has __len__).
        self._cache = cache if cache is not None else CoolingDecisionCache()
        # Fault injection needs the parent's fault-aware serial step
        # (degraded fallback, shadow accounting); decisions stay cached.
        mode = resolve_mode(mode, vectorised)
        if mode == "kernel" and type(trace) is not WorkloadTrace:
            # Trace subclasses may override step(); the whole-trace
            # kernel reads the utilisation plane directly and would
            # silently bypass them, so drop to the per-step path.
            mode = "step"
        self._mode = "loop" if self._fault_runtime is not None else mode
        self._vectorised = self._mode in ("kernel", "step")
        self.kernel_timings: KernelTimings | None = None
        self._context = (config.name, config.policy, config.scheduler,
                         config.cold_source_temp_c, config.safe_temp_c)

    @property
    def cache(self) -> CoolingDecisionCache:
        """The cooling-decision cache backing this simulator."""
        return self._cache

    @property
    def mode(self) -> str:
        """Execution mode actually in effect (fault jobs force "loop")."""
        return self._mode

    def _decide(self, scheduled: np.ndarray):
        return self._cache.decide(self._policy, scheduled, self._context)

    def _decide_batch(self, bindings: np.ndarray, sizes: np.ndarray) -> list:
        """Batched :meth:`_decide` over pre-aggregated bindings.

        The columnar kernel calls this with one ``(binding, size)``
        pair per unique decision cell; see
        :meth:`CoolingDecisionCache.decide_batch` for the contract.
        """
        return self._cache.decide_batch(self._policy, bindings, sizes,
                                        self._context)

    def run(self) -> SimulationResult:
        if self._mode != "kernel":
            return super().run()
        self._check_trace_width()
        self._violation_log = []
        result = run_whole_trace(self)
        self._record_telemetry(result)
        return result

    def _run_step(self, step_index: int):
        if self._mode != "step":
            return super()._run_step(step_index)
        step_utils = self.trace.step(step_index)

        # Phase 1 — schedule and decide per circulation (cache-assisted).
        scheduled_groups = []
        applied_settings = []
        for group, circulation in zip(self._groups, self._circulations):
            scheduled = self._scheduler.schedule(step_utils[group])
            decision = self._decide(scheduled)
            scheduled_groups.append(scheduled)
            applied_settings.append(circulation.cdu.apply(decision.setting))

        # Phase 2 — batched per-server evaluation.  All model entry
        # points are elementwise over utilisation, so evaluating the
        # gathered batch yields exactly the per-circulation values.
        n = self.trace.n_servers
        sched_all = np.empty(n)
        cpu_temps = np.empty(n)
        outlet_temps = np.empty(n)
        cpu_powers = np.empty(n)
        teg_powers = np.empty(n)
        for group, scheduled in zip(self._groups, scheduled_groups):
            sched_all[group] = scheduled

        by_setting: dict[tuple[float, float], list[int]] = {}
        for index, applied in enumerate(applied_settings):
            by_setting.setdefault(
                (applied.flow_l_per_h, applied.inlet_temp_c),
                []).append(index)
        for members in by_setting.values():
            applied = applied_settings[members[0]]
            if len(members) == 1:
                indices = self._groups[members[0]]
            else:
                indices = np.concatenate(
                    [self._groups[m] for m in members])
            batch = sched_all[indices]
            outlets = self.cpu_model.outlet_temp_c(batch, applied)
            cpu_temps[indices] = self.cpu_model.cpu_temp_c(batch, applied)
            outlet_temps[indices] = outlets
            cpu_powers[indices] = self.cpu_model.cpu_power_w(batch)
            teg_powers[indices] = self.teg_module.generation_w(
                outlets, self.config.cold_source_temp_c,
                applied.flow_l_per_h)

        # Phase 3 — per-circulation facility accounting, then fold with
        # the serial aggregation (same order, same arithmetic).
        states = []
        for group, circulation, applied, scheduled in zip(
                self._groups, self._circulations, applied_settings,
                scheduled_groups):
            group_powers = cpu_powers[group]
            captured_heat_w = float(np.sum(group_powers))
            tower_heat, chiller_heat = circulation.tower.split_with_chiller(
                captured_heat_w, applied.inlet_temp_c,
                circulation.wet_bulb_c)
            states.append(CirculationState(
                utilisations=scheduled,
                cpu_temps_c=cpu_temps[group],
                outlet_temps_c=outlet_temps[group],
                cpu_powers_w=group_powers,
                teg_powers_w=teg_powers[group],
                setting=applied,
                chiller_power_w=circulation.chiller.electricity_w_for_heat(
                    chiller_heat),
                tower_power_w=circulation.tower.electricity_w_for_heat(
                    tower_heat),
                pump_power_w=circulation.n_servers * loop_pump_power_w(
                    circulation.pipe_segments, applied.flow_l_per_h,
                    applied.inlet_temp_c),
            ))
        return self._aggregate_step(step_index, step_utils, states)


def simulate(trace: WorkloadTrace, config: SimulationConfig,
             cpu_model: CpuThermalModel | None = None,
             teg_module: TegModule | None = None, *,
             vectorised: bool = True,
             mode: str | None = None,
             cache: CoolingDecisionCache | None = None,
             cache_resolution: float = DEFAULT_CACHE_RESOLUTION,
             faults: FaultSchedule | None = None,
             telemetry: bool | None = None,
             result_cache=None,
             ) -> SimulationResult:
    """Run one scheme over one trace through the engine's fast path.

    Returns a :class:`SimulationResult` that is bit-identical to
    ``DatacenterSimulator(trace, config, ...).run()`` but carries
    :class:`EngineMetrics` (phase wall times, steps/sec, cache stats,
    kernel-phase timings).  ``mode`` picks the execution path (see
    :data:`EXECUTION_MODES`; default ``"kernel"``, or ``"loop"`` when
    ``vectorised=False``).  Attaching a ``faults`` schedule switches
    stepping to the simulator's fault-aware serial loop (decisions stay
    cached); without one the output is unchanged down to the bit.

    ``telemetry`` (explicit, else ``REPRO_TELEMETRY``) records the run
    into a *private* :class:`repro.obs.Telemetry` session and attaches
    its frozen :class:`~repro.obs.TelemetrySnapshot` to
    ``result.telemetry`` — worker processes pickle that snapshot back to
    the batch layer.  Telemetry is purely observational: records are
    bit-identical with it on or off.

    ``result_cache`` (a :class:`~repro.core.cache.ResultCache`, a
    directory, ``True``/``False``, or ``None`` to consult
    ``REPRO_CACHE``) memoises the whole run on disk: a content-key hit
    returns the persisted result — bit-identical records — without
    simulating, a miss stores the computed result, and the run's
    cooling-decision state is saved as a warm-start snapshot for
    near-miss runs (see ``docs/cache.md``).
    """
    started = time.perf_counter()
    if cache is None:
        cache = CoolingDecisionCache(resolution=cache_resolution)
    store = resolve_result_cache(result_cache)
    key = None
    has_faults = faults is not None and len(faults) > 0
    if store is not None and type(trace) is WorkloadTrace:
        effective_mode = "loop" if has_faults else resolve_mode(
            mode, vectorised)
        key = result_key(trace, config, cpu_model, teg_module,
                         faults=faults if has_faults else None,
                         cache_resolution=cache.resolution,
                         mode=effective_mode)
        cached = store.load(key)
        if cached is not None:
            return cached
    local = obs.Telemetry() if obs.telemetry_enabled(telemetry) else None
    context = obs.session(local) if local is not None else nullcontext()
    hits_before, misses_before = cache.stats.hits, cache.stats.misses
    with context:
        with obs.span("engine.simulate"):
            with obs.span("engine.setup"):
                simulator = _CachedVectorisedSimulator(
                    trace, config, cpu_model, teg_module, cache=cache,
                    vectorised=vectorised, mode=mode, faults=faults)
                warmed = None
                if key is not None and not has_faults:
                    warmed = _warm_restore(store, simulator, trace,
                                           config, cpu_model, teg_module)
            setup_done = time.perf_counter()
            result = simulator.run()
            finished = time.perf_counter()
        if local is not None:
            # Deltas, not absolutes: the cache may be shared across
            # calls, and batch aggregation must sum per-job work only.
            labels = {"scheme": config.name, "trace": trace.name}
            obs.add("engine.cache.hits", cache.stats.hits - hits_before,
                    labels=labels)
            obs.add("engine.cache.misses",
                    cache.stats.misses - misses_before, labels=labels)
    step_time = finished - setup_done
    result.metrics = EngineMetrics(
        setup_time_s=setup_done - started,
        step_time_s=step_time,
        wall_time_s=finished - started,
        n_steps=trace.n_steps,
        steps_per_s=trace.n_steps / step_time if step_time > 0 else 0.0,
        cache_hits=cache.stats.hits,
        cache_misses=cache.stats.misses,
        cache_hit_rate=cache.stats.hit_rate,
        mode=simulator.mode,
        vectorised=simulator._vectorised,
        kernel=simulator.kernel_timings,
    )
    if local is not None:
        result.telemetry = local.snapshot()
    if key is not None:
        store.store(key, result)
        if not has_faults and warmed != "direct":
            _warm_save(store, simulator, trace, config, cpu_model,
                       teg_module)
    return result


def _warm_restore(store: ResultCache, simulator, trace, config,
                  cpu_model, teg_module, *,
                  trace_hash: str | None = None) -> str | None:
    """Prime a simulator's decision cache from a warm-start snapshot.

    Returns ``"direct"`` when the snapshot's decision key (W1) matched
    and the saved decisions were installed verbatim (re-tagged to this
    run's cache context), ``"replay"`` when only the binding key (W2)
    matched and each saved bucket's representative binding was replayed
    through the *current* policy, or ``None`` when nothing usable was
    found.  Either path installs exactly the decisions a cold run would
    compute, so warmed runs stay bit-identical (see ``docs/cache.md``).
    """
    policy = simulator._policy
    resolution = getattr(policy, "cache_resolution", None)
    if not resolution:
        return None
    aggregation = getattr(policy, "aggregation", "max")
    w1, w2 = warm_keys(trace, config, cpu_model, teg_module,
                       aggregation=aggregation,
                       policy_resolution=resolution,
                       trace_hash=trace_hash)
    payload = store.load_warm(w2)
    if payload is None:
        return None
    context = simulator._context
    cache_store = simulator._cache._store
    if payload.get("w1") == w1:
        for agg, size, binding_key, decision in payload["entries"]:
            cache_store.setdefault((context, agg, size, binding_key),
                                   decision)
        return "direct"
    for agg, size, binding_key, decision in payload["entries"]:
        cache_key = (context, agg, size, binding_key)
        if cache_key in cache_store:
            continue
        # Replay the bucket's representative binding through the
        # current policy.  A single-element vector aggregates (max or
        # mean) to exactly that binding, so this both primes the
        # policy's own memo and yields the decision a cold run would
        # compute for the bucket — the engine-cache key must carry the
        # *saved* vector size, hence the manual insert.
        replayed = policy.decide(
            np.asarray([decision.binding_utilisation]))
        cache_store[cache_key] = replayed
    return "replay"


def _warm_save(store: ResultCache, simulator, trace, config,
               cpu_model, teg_module, *,
               trace_hash: str | None = None) -> None:
    """Persist a completed run's decision-cache state as a warm snapshot.

    Entries are filtered to this run's cache context (one shared cache
    may serve several configs) and stored context-free in
    first-occurrence order, so a replay re-derives the policy memo in
    the same order a cold run would fill it.
    """
    policy = simulator._policy
    resolution = getattr(policy, "cache_resolution", None)
    if not resolution:
        return
    context = simulator._context
    entries = [(agg, size, binding_key, decision)
               for (ctx, agg, size, binding_key), decision
               in simulator._cache._store.items() if ctx == context]
    if not entries:
        return
    aggregation = getattr(policy, "aggregation", "max")
    w1, w2 = warm_keys(trace, config, cpu_model, teg_module,
                       aggregation=aggregation,
                       policy_resolution=resolution,
                       trace_hash=trace_hash)
    store.store_warm(w1, w2, entries)


def _execute_job(job: SimulationJob, mode: str,
                 cache_resolution: float,
                 telemetry: bool = False,
                 cache_dir=None) -> SimulationResult:
    """Worker entry point (module-level so process pools can pickle it).

    ``telemetry`` and ``cache_dir`` are resolved once by the batch
    layer and passed explicitly so all executors behave identically
    regardless of how environment variables propagate to workers
    (``cache_dir=None`` means caching stays off even if the worker's
    environment would enable it).  In-process executors pass the
    engine's shared :class:`~repro.core.cache.ResultCache` instance
    rather than a directory string, so all threads write through one
    store.
    """
    return simulate(job.trace, job.config, job.cpu_model, job.teg_module,
                    mode=mode,
                    cache_resolution=cache_resolution,
                    faults=job.faults,
                    telemetry=telemetry,
                    result_cache=cache_dir if cache_dir else False)


# ----------------------------------------------------------------------
# Zero-copy trace dispatch (process pools)
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class SharedTraceRef:
    """Handle to a trace plane living in ``multiprocessing.shared_memory``.

    The handle is what a process-pool job pickles instead of the
    ``(steps x servers)`` array: segment name, shape/dtype to rebuild
    the NumPy view, and the trace metadata.  The segment is owned by the
    :class:`BatchSimulationEngine` that created it and stays alive until
    the engine is closed (see ``docs/engine.md`` for the contract).

    ``row_start:row_stop`` / ``col_start:col_stop`` select a rectangular
    window of the plane (``None`` stops mean "to the end"): a shard of a
    fleet-scale trace ships the *same* segment name with different
    window bounds, so worker payload size stays independent of both the
    trace length and the shard count, and the worker maps the segment
    exactly once however many windows of it it is asked to run.
    """

    shm_name: str
    shape: tuple[int, int]
    dtype: str
    interval_s: float
    name: str
    row_start: int = 0
    row_stop: int | None = None
    col_start: int = 0
    col_stop: int | None = None


#: Name prefix of every shared-memory segment this package creates.
#: The owning pid is embedded right after it
#: (``repro-shm-{pid}-{token}``) so the reaper can tell a crashed run's
#: orphan from a live run's segment without guessing.
SEGMENT_PREFIX = "repro-shm-"

#: Every live registry in this process; the janitor (atexit + SIGTERM)
#: closes whatever is still here when the coordinator dies, so segments
#: cannot outlive it on any exit path short of SIGKILL.
_LIVE_REGISTRIES: "weakref.WeakSet[_SharedTraceRegistry]" = weakref.WeakSet()

_JANITOR_INSTALLED = False


def _close_live_registries() -> None:
    """Unlink every segment still owned by this process (best effort).

    Forked workers inherit ``_LIVE_REGISTRIES`` (and the SIGTERM
    handler) from the coordinator; the owner-pid check keeps a dying
    worker from unlinking segments the coordinator is still serving.
    """
    for registry in list(_LIVE_REGISTRIES):
        if registry.owner_pid != os.getpid():
            continue
        try:
            registry.close()
        except Exception:  # pragma: no cover - dying anyway
            pass


def _install_segment_janitor() -> None:
    """One-time atexit + SIGTERM hook that unlinks owned segments.

    The SIGTERM handler chains to whatever handler was installed before
    it (or re-raises the default disposition), so embedding
    applications keep their own shutdown behaviour.  Installing from a
    non-main thread silently keeps the atexit half only — CPython
    forbids signal handlers elsewhere.
    """
    global _JANITOR_INSTALLED
    if _JANITOR_INSTALLED:
        return
    _JANITOR_INSTALLED = True
    atexit.register(_close_live_registries)
    try:
        previous = signal.getsignal(signal.SIGTERM)

        def _on_sigterm(signum, frame):
            _close_live_registries()
            if callable(previous):
                previous(signum, frame)
            else:
                signal.signal(signal.SIGTERM, signal.SIG_DFL)
                os.kill(os.getpid(), signal.SIGTERM)

        signal.signal(signal.SIGTERM, _on_sigterm)
    except (ValueError, OSError):  # pragma: no cover - non-main thread
        pass


def _pid_alive(pid: int) -> bool:
    """Whether ``pid`` exists (signal-0 probe; EPERM counts as alive)."""
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:  # pragma: no cover - other-user process
        return True
    except OSError:  # pragma: no cover - exotic platform
        return True
    return True


def reap_orphaned_segments(directory: str | os.PathLike = "/dev/shm"
                           ) -> list[str]:
    """Unlink ``repro``-tagged segments whose owning process is dead.

    SIGKILL (OOM killer, ``kill -9``) gives the janitor no chance to
    run, so a crashed coordinator can leave its trace segments behind.
    Their names embed the owner pid; any segment whose pid no longer
    exists is an orphan and is removed.  Segments of live processes —
    including this one — are never touched.  Returns the names reaped.
    """
    root = Path(directory)
    if not root.is_dir():  # pragma: no cover - non-POSIX-shm platform
        return []
    reaped = []
    for path in root.glob(SEGMENT_PREFIX + "*"):
        tail = path.name[len(SEGMENT_PREFIX):]
        try:
            pid = int(tail.split("-", 1)[0])
        except ValueError:
            continue
        if pid == os.getpid() or _pid_alive(pid):
            continue
        try:
            path.unlink()
        except OSError:  # pragma: no cover - concurrent reaper
            continue
        reaped.append(path.name)
    return reaped


class _SharedTraceRegistry:
    """Owner-side registry of shared-memory trace segments.

    One engine owns one registry.  ``ref_for`` uploads a trace's plane
    into a fresh segment on first sight (keyed by object identity — the
    registry keeps a strong reference, so a key can never be recycled
    while its entry lives) and returns the same :class:`SharedTraceRef`
    for every job that reuses the trace.  ``close`` unmaps and unlinks
    every segment; workers that still hold a mapping keep it until they
    drop it (POSIX unlink semantics), so no copy is ever torn out from
    under a running job.

    Segments are named ``repro-shm-{pid}-{token}`` and every registry
    joins the module janitor (atexit + SIGTERM), so normal and
    signalled exits unlink them; only SIGKILL can orphan one, and
    :func:`reap_orphaned_segments` picks those up on the next run.
    """

    def __init__(self) -> None:
        self._entries: dict[int, tuple[WorkloadTrace,
                                       shared_memory.SharedMemory,
                                       SharedTraceRef]] = {}
        #: Scratch segments (shard column blocks) keyed by name; same
        #: pid-stamped naming and janitor coverage as trace segments,
        #: but released per job rather than living engine-long.
        self._scratch: dict[str, shared_memory.SharedMemory] = {}
        #: Only this pid may unlink the registry's segments — a forked
        #: worker inherits the object but never owns it.
        self.owner_pid = os.getpid()
        _LIVE_REGISTRIES.add(self)
        _install_segment_janitor()

    def __len__(self) -> int:
        return len(self._entries)

    @staticmethod
    def _create_segment(size: int) -> shared_memory.SharedMemory:
        """A fresh segment with a ``repro``-tagged, pid-stamped name."""
        for _ in range(8):
            name = f"{SEGMENT_PREFIX}{os.getpid()}-{uuid.uuid4().hex[:8]}"
            try:
                return shared_memory.SharedMemory(name=name, create=True,
                                                  size=size)
            except FileExistsError:  # pragma: no cover - token collision
                continue
        # Eight collisions means something is squatting on the
        # namespace; an anonymous name still works, it just cannot be
        # reaped after a SIGKILL.
        return shared_memory.SharedMemory(  # pragma: no cover
            create=True, size=size)

    def ref_for(self, trace: WorkloadTrace) -> SharedTraceRef:
        """The (possibly freshly uploaded) shared handle for ``trace``."""
        entry = self._entries.get(id(trace))
        if entry is not None:
            return entry[2]
        matrix = trace.utilisation
        block = self._create_segment(matrix.nbytes)
        try:
            np.ndarray(matrix.shape, dtype=matrix.dtype,
                       buffer=block.buf)[:] = matrix
            ref = SharedTraceRef(
                shm_name=block.name,
                shape=matrix.shape,
                dtype=str(matrix.dtype),
                interval_s=trace.interval_s,
                name=trace.name,
            )
            self._entries[id(trace)] = (trace, block, ref)
        except BaseException:
            # The upload died between create and registration: unlink
            # now or nobody ever will.
            try:
                block.close()
            except OSError:  # pragma: no cover - already unmapped
                pass
            try:
                block.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass
            raise
        return ref

    def scratch_block(self, nbytes: int) -> shared_memory.SharedMemory:
        """A janitor-covered scratch segment of ``nbytes``.

        Same pid-stamped naming (and therefore reaping and janitor
        coverage) as trace segments; the caller releases it with
        :meth:`release_scratch` when the job that filled it is merged,
        or :meth:`close` sweeps whatever is left.
        """
        block = self._create_segment(nbytes)
        self._scratch[block.name] = block
        return block

    def release_scratch(self, block: shared_memory.SharedMemory) -> None:
        """Unmap and unlink one scratch segment (idempotent).

        Workers still holding a mapping keep it until they drop it
        (POSIX unlink semantics), so a straggling speculative shard can
        finish writing harmlessly.  A still-exported coordinator-side
        view makes the unmap fail quietly; the unlink still runs, so
        the segment cannot outlive the process either way.
        """
        self._scratch.pop(block.name, None)
        try:
            block.close()
        except (OSError, BufferError):  # pragma: no cover - live views
            pass
        if os.getpid() != self.owner_pid:
            return
        try:
            block.unlink()
        except FileNotFoundError:  # pragma: no cover - already gone
            pass

    def close(self) -> None:
        """Unmap and unlink every owned segment (idempotent).

        A process that merely inherited the registry across ``fork``
        unmaps but never unlinks — the segments still belong to the
        coordinator.
        """
        unlink = os.getpid() == self.owner_pid
        while self._scratch:
            _, block = self._scratch.popitem()
            try:
                block.close()
            except (OSError, BufferError):  # pragma: no cover - live views
                pass
            if not unlink:
                continue
            try:
                block.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass
        while self._entries:
            _, (_, block, _) = self._entries.popitem()
            try:
                block.close()
            except OSError:  # pragma: no cover - already unmapped
                pass
            if not unlink:
                continue
            try:
                block.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass


#: Per-worker cache of attached shared-memory segments, keyed by segment
#: name: one ``(SharedMemory, full plane)`` pair per segment for the
#: worker process's lifetime, however many windows of it are dispatched.
_WORKER_BLOCKS: dict[str, tuple[shared_memory.SharedMemory,
                                np.ndarray]] = {}

#: Per-worker cache of wrapped trace (windows), keyed by the full ref —
#: window bounds included — so validating and wrapping happens once per
#: distinct window and every subsequent job ships only the ref.
_WORKER_TRACES: dict[SharedTraceRef, WorkloadTrace] = {}


def _trace_from_ref(ref: SharedTraceRef) -> WorkloadTrace:
    """Attach (or reuse) the shared trace window named by ``ref``."""
    trace = _WORKER_TRACES.get(ref)
    if trace is not None:
        return trace
    entry = _WORKER_BLOCKS.get(ref.shm_name)
    if entry is None:
        # Attaching re-registers the segment with the resource tracker
        # the worker shares with the engine's process; registration is
        # set-idempotent, and the engine's own unlink balances it, so no
        # unregister dance is needed here.
        block = shared_memory.SharedMemory(name=ref.shm_name)
        matrix = np.ndarray(ref.shape, dtype=np.dtype(ref.dtype),
                            buffer=block.buf)
        entry = _WORKER_BLOCKS[ref.shm_name] = (block, matrix)
    block, matrix = entry
    view = matrix[ref.row_start:ref.row_stop, ref.col_start:ref.col_stop]
    trace = WorkloadTrace.from_shared(view, ref.interval_s,
                                      name=ref.name, block=block)
    _WORKER_TRACES[ref] = trace
    return trace


@dataclass(frozen=True)
class _JobPayload:
    """What a process-pool job actually pickles: config + trace handle.

    Everything except the trace rides along as-is (configs and hardware
    models are tiny); the trace plane itself is referenced by a
    :class:`SharedTraceRef`, so payload size is independent of trace
    length — the property the zero-copy dispatch tests pin down.
    ``WorkloadTrace`` *subclasses* can carry behaviour (an overridden
    ``step``, say) that a rebuilt plain trace would lose, so those are
    pickled whole via ``trace`` instead of going through shared memory.
    """

    trace_ref: SharedTraceRef | None
    config: SimulationConfig
    cpu_model: CpuThermalModel | None
    teg_module: TegModule | None
    faults: FaultSchedule | None
    mode: str
    cache_resolution: float
    trace: WorkloadTrace | None = None
    #: Resolved by the engine before dispatch so worker processes need
    #: no environment propagation to agree on whether to record.
    telemetry: bool = False
    #: Result-cache directory, resolved by the engine before dispatch
    #: (``None`` keeps caching off in the worker whatever its env says).
    cache_dir: str | None = None


def _execute_payload(payload: _JobPayload) -> SimulationResult:
    """Process-worker entry point for shared-memory dispatched jobs."""
    if payload.trace is not None:
        trace = payload.trace
    else:
        trace = _trace_from_ref(payload.trace_ref)
    return simulate(trace, payload.config, payload.cpu_model,
                    payload.teg_module, mode=payload.mode,
                    cache_resolution=payload.cache_resolution,
                    faults=payload.faults,
                    telemetry=payload.telemetry,
                    result_cache=(payload.cache_dir if payload.cache_dir
                                  else False))


# ----------------------------------------------------------------------
# Batch layer
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class FailedJob:
    """Structured record of one job the batch could not complete.

    Attributes
    ----------
    scheme / trace_name:
        The job's ``(scheme, trace)`` label.
    error_type / message:
        Class name and text of the last failure (for a worker crash this
        is the pool's ``BrokenProcessPool``-style error; the batch keeps
        running either way).
    attempts:
        Execution attempts consumed, including the first one.
    elapsed_s:
        Wall-clock time spent on this job across all attempts.
    timed_out:
        Whether the final attempt was killed by the ``REPRO_JOB_TIMEOUT``
        wall-clock budget (timeouts are terminal; they are not retried).
    """

    scheme: str
    trace_name: str
    error_type: str
    message: str
    attempts: int = 1
    elapsed_s: float = 0.0
    timed_out: bool = False

    @property
    def key(self) -> tuple[str, str]:
        """``(scheme, trace)`` label matching :attr:`SimulationJob.key`."""
        return (self.scheme, self.trace_name)

    def to_error(self) -> JobExecutionError:
        """Re-package the record as a raisable :class:`JobExecutionError`."""
        return JobExecutionError(
            f"job ({self.scheme!r}, {self.trace_name!r}) failed after "
            f"{self.attempts} attempt(s): [{self.error_type}] {self.message}",
            scheme=self.scheme, trace_name=self.trace_name,
            attempts=self.attempts, elapsed_s=self.elapsed_s,
            timed_out=self.timed_out)


@dataclass
class BatchResult:
    """Results and aggregate metrics of one batch run.

    ``results`` holds every job that completed, in submission order;
    ``failures`` holds a :class:`FailedJob` record for every job that
    did not.  A crashed or timed-out job never aborts the batch — check
    :attr:`ok` (or ``metrics.n_failed``) before trusting completeness.
    """

    results: list[SimulationResult]
    metrics: BatchMetrics
    failures: list[FailedJob] = field(default_factory=list)
    #: The batch-level :class:`repro.obs.Telemetry` session (``None``
    #: when telemetry was off): every worker snapshot merged, plus the
    #: engine's own counters, spans and events.  The CLI renders run
    #: artefacts (manifest, events, Prometheus snapshot) from it.
    telemetry: "obs.Telemetry | None" = field(default=None, repr=False,
                                              compare=False)

    @property
    def ok(self) -> bool:
        """True when every submitted job produced a result."""
        return not self.failures

    def get(self, scheme: str, trace_name: str) -> SimulationResult:
        """Look one result up by its (scheme, trace) label.

        Raises
        ------
        JobExecutionError
            When the job ran but failed (the :class:`FailedJob` record
            is re-packaged with its attempt/timeout details).
        ConfigurationError
            When no job with that label was submitted at all.
        """
        for result in self.results:
            if (result.scheme, result.trace_name) == (scheme, trace_name):
                return result
        for failed in self.failures:
            if failed.key == (scheme, trace_name):
                raise failed.to_error()
        raise ConfigurationError(
            f"no result for scheme {scheme!r} on trace {trace_name!r}")

    def summaries(self) -> list[dict]:
        """Per-job headline summaries plus engine metrics."""
        out = []
        for result in self.results:
            summary = result.summary()
            if result.metrics is not None:
                summary["engine"] = result.metrics.summary()
            out.append(summary)
        return out


def resolve_workers(n_workers: int | None, n_jobs: int) -> int:
    """Worker count for a batch: explicit > ``REPRO_WORKERS`` > default.

    The default is one worker per job capped at the CPU count; the
    result is always at least 1 (``0`` forces the serial path).

    Raises
    ------
    ConfigurationError
        When ``REPRO_WORKERS`` is set to a non-integer or negative
        value.
    """
    if n_workers is None:
        env = os.environ.get(WORKERS_ENV_VAR)
        if env is not None:
            try:
                n_workers = int(env)
            except ValueError:
                raise ConfigurationError(
                    f"{WORKERS_ENV_VAR} must be an integer, "
                    f"got {env!r}") from None
            if n_workers < 0:
                raise ConfigurationError(
                    f"{WORKERS_ENV_VAR} must be >= 0, got {n_workers}")
        else:
            n_workers = min(n_jobs, os.cpu_count() or 1)
    return max(1, min(n_workers, max(n_jobs, 1)))


def resolve_job_timeout(timeout_s: float | None = None) -> float | None:
    """Per-job wall-clock budget: explicit > ``REPRO_JOB_TIMEOUT`` > none.

    Returns ``None`` when no timeout is configured.

    Raises
    ------
    ConfigurationError
        When ``REPRO_JOB_TIMEOUT`` is set to a non-numeric or
        non-positive value (an explicit non-positive argument raises
        too).
    """
    if timeout_s is None:
        env = os.environ.get(JOB_TIMEOUT_ENV_VAR)
        if env is None:
            return None
        try:
            timeout_s = float(env)
        except ValueError:
            raise ConfigurationError(
                f"{JOB_TIMEOUT_ENV_VAR} must be a number of seconds, "
                f"got {env!r}") from None
        if timeout_s <= 0:
            raise ConfigurationError(
                f"{JOB_TIMEOUT_ENV_VAR} must be > 0, got {env!r}")
        return timeout_s
    if timeout_s <= 0:
        raise ConfigurationError(
            f"job timeout must be > 0 seconds, got {timeout_s}")
    return timeout_s


def resolve_shard_straggler(deadline_s: float | None = None
                            ) -> float | None:
    """Straggler deadline: explicit > ``REPRO_SHARD_STRAGGLER`` > none.

    Returns ``None`` when speculative re-dispatch is off.

    Raises
    ------
    ConfigurationError
        When ``REPRO_SHARD_STRAGGLER`` (or an explicit argument) is
        non-numeric or non-positive.
    """
    if deadline_s is None:
        env = os.environ.get(SHARD_STRAGGLER_ENV_VAR)
        if env is None:
            return None
        try:
            deadline_s = float(env)
        except ValueError:
            raise ConfigurationError(
                f"{SHARD_STRAGGLER_ENV_VAR} must be a number of "
                f"seconds, got {env!r}") from None
        if deadline_s <= 0:
            raise ConfigurationError(
                f"{SHARD_STRAGGLER_ENV_VAR} must be > 0, got {env!r}")
        return deadline_s
    if deadline_s <= 0:
        raise ConfigurationError(
            f"shard straggler deadline must be > 0 seconds, "
            f"got {deadline_s}")
    return deadline_s


@dataclass
class _JobState:
    """Book-keeping for one job while the batch executes it."""

    index: int
    job: SimulationJob
    attempts: int = 0
    retries: int = 0
    started_at: float | None = None
    #: When the current attempt's future was first observed running
    #: (``None`` while queued); the timeout clock starts here so time
    #: spent waiting for a worker is never billed against the job.
    running_since: float | None = None

    def failed(self, exc: BaseException) -> FailedJob:
        """Package the terminal exception as a :class:`FailedJob`."""
        elapsed = (0.0 if self.started_at is None
                   else time.perf_counter() - self.started_at)
        return FailedJob(
            scheme=self.job.config.name,
            trace_name=self.job.trace.name,
            error_type=type(exc).__name__,
            message=str(exc),
            attempts=self.attempts,
            elapsed_s=elapsed,
        )

    def timed_out(self, timeout_s: float) -> FailedJob:
        """Package a wall-clock timeout as a :class:`FailedJob`."""
        elapsed = (0.0 if self.started_at is None
                   else time.perf_counter() - self.started_at)
        return FailedJob(
            scheme=self.job.config.name,
            trace_name=self.job.trace.name,
            error_type="TimeoutError",
            message=(f"job exceeded the {timeout_s:g}s wall-clock budget "
                     f"({JOB_TIMEOUT_ENV_VAR})"),
            attempts=self.attempts,
            elapsed_s=elapsed,
            timed_out=True,
        )


def _fs_slug(name: str, limit: int = 48) -> str:
    """A filesystem-safe rendering of a scheme/trace label."""
    cleaned = "".join(c if c.isalnum() or c in "._-" else "-"
                      for c in name).strip("-")
    return (cleaned or "run")[:limit]


class _CheckpointingResults(dict):
    """A results map that persists whole-job results as they land.

    The serial and pooled paths both assign ``results[sub] = result``
    the moment a job completes; routing that through this dict means a
    coordinator crash one job into a 50-job batch still leaves the
    finished jobs' results on disk, whatever executor ran them.
    """

    def __init__(self, stores: "dict[int, object]") -> None:
        super().__init__()
        self._stores = stores

    def __setitem__(self, sub: int, result) -> None:
        super().__setitem__(sub, result)
        store = self._stores.get(sub)
        if store is not None:
            store.save_result(result)


class BatchSimulationEngine:
    """Run many (scheme x trace) simulations through one API.

    Parameters
    ----------
    n_workers:
        Parallel workers; ``None`` defers to ``REPRO_WORKERS`` or the
        CPU count.  ``1`` runs serially in-process.
    vectorised:
        Legacy switch between the fastest array path and the serial
        cached loop; superseded by ``mode`` (results are bit-identical
        either way).
    mode:
        Execution mode inside each job — ``"kernel"`` (default),
        ``"step"`` or ``"loop"``; see :data:`EXECUTION_MODES`.
    cache_resolution:
        Utilisation quantisation of each job's decision cache.
    prefer:
        ``"process"`` (default), ``"thread"`` or ``"serial"``.  Process
        pools that cannot start (sandboxes, exotic platforms) degrade
        automatically: process -> thread -> serial.
    max_retries:
        Extra attempts per job after the first one fails (crashed
        worker or raised exception).  Backoff between attempts doubles
        from ``retry_backoff_s``.  Timeouts are terminal: a job killed
        by the wall-clock budget is never retried.
    retry_backoff_s:
        Base sleep before attempt ``k``'s retry:
        ``retry_backoff_s * 2**(k-1)`` seconds.
    job_timeout_s:
        Per-job wall-clock budget in seconds; ``None`` defers to
        ``REPRO_JOB_TIMEOUT`` (unset means no timeout).  Enforced on
        pooled executors only — the serial path cannot pre-empt a job
        (see ``docs/engine.md``).
    telemetry:
        Record every run into :mod:`repro.obs`; ``None`` defers to
        ``REPRO_TELEMETRY`` (unset means off).  Each job records into a
        private session whose snapshot rides back on its result; the
        batch merges them all into ``BatchResult.telemetry`` alongside
        engine-level counters (``engine.jobs.*``), the ``engine.batch``
        span and batch/job lifecycle events.  See
        ``docs/observability.md``.
    shard:
        Fleet-scale sharding of individual jobs (see
        :mod:`repro.core.shard` and ``docs/engine.md``).  ``None``
        (default) auto-shards a kernel job once its trace plane reaches
        ``AUTO_SHARD_MIN_CELLS`` cells — or whenever a shard size is
        given explicitly or via the environment; ``True`` forces
        sharding; ``False`` disables it.
    shard_servers / shard_steps:
        Target shard tile size (servers wide, steps long); ``None``
        defers to ``REPRO_SHARD_SERVERS`` / ``REPRO_SHARD_STEPS``, else
        the defaults.  The engine validates these against each job's
        trace **before** dispatch: non-positive values or values
        exceeding the trace dimensions raise ``ConfigurationError`` on
        the coordinator, never a worker-side crash.
    shard_straggler_s:
        Deadline in seconds after which a *running* shard is
        speculatively re-dispatched (once); the first copy to finish
        wins and the loser is cancelled or its result discarded.
        ``None`` defers to ``REPRO_SHARD_STRAGGLER`` (unset means off).
        Results are unaffected — shards are deterministic — only tail
        latency is.
    shard_autotune:
        Re-plan a sharded job's remaining tiles from its first tile's
        measured throughput: the first shard runs as a probe, and the
        rest of the plane is re-tiled with wider (never narrower) time
        windows sized for :data:`AUTOTUNE_TARGET_SHARD_S` seconds each,
        keeping at least a pool's worth of tiles.  Results stay
        bit-identical (tiling never affects the arithmetic — the parity
        suite pins this); only the shard count, and with it
        ``EngineMetrics.n_shards``, becomes throughput-dependent, which
        is why it defaults off.  ``None`` defers to
        ``REPRO_SHARD_AUTOTUNE`` (unset means off).  Ignored for
        fault-carrying jobs (their windows run sequentially), resumed
        checkpoints (saved tiles pin the plan), and explicitly sized
        plans.
    checkpoint:
        Root directory for durable checkpoint state (see
        :mod:`repro.core.checkpoint` and ``docs/checkpoint.md``).  Each
        job gets a content-keyed subdirectory; sharded jobs persist
        every completed shard as it finishes, whole jobs persist their
        result.  ``None`` (default) disables checkpointing.
    resume:
        With ``checkpoint`` set: ``True`` (default) loads completed
        work from a matching checkpoint and raises
        :class:`~repro.errors.CheckpointError` when the directory
        belongs to a different run; ``False`` wipes per-job state and
        starts fresh.

    Lifetime
    --------
    An engine owns two long-lived resources: the shared executor pool
    (reused across :meth:`run` calls — repeated batches do not re-fork
    workers) and the shared-memory trace segments uploaded for process
    dispatch.  :meth:`close` releases both; the engine is also a context
    manager, and a garbage-collected engine cleans its segments up via a
    finalizer.  :func:`run_batch` closes its throwaway engine for you.
    """

    def __init__(self, n_workers: int | None = None, *,
                 vectorised: bool = True,
                 mode: str | None = None,
                 cache_resolution: float = DEFAULT_CACHE_RESOLUTION,
                 prefer: str = "process",
                 max_retries: int = 0,
                 retry_backoff_s: float = 0.1,
                 job_timeout_s: float | None = None,
                 telemetry: bool | None = None,
                 shard: bool | None = None,
                 shard_servers: int | None = None,
                 shard_steps: int | None = None,
                 shard_straggler_s: float | None = None,
                 shard_autotune: bool | None = None,
                 checkpoint: "str | os.PathLike | None" = None,
                 resume: bool = True,
                 cache=None,
                 metrics_port: int | None = None) -> None:
        if prefer not in ("process", "thread", "serial"):
            raise ConfigurationError(
                f"prefer must be 'process', 'thread' or 'serial', "
                f"got {prefer!r}")
        if max_retries < 0:
            raise ConfigurationError(
                f"max_retries must be >= 0, got {max_retries}")
        if retry_backoff_s < 0:
            raise ConfigurationError(
                f"retry_backoff_s must be >= 0, got {retry_backoff_s}")
        if job_timeout_s is not None and job_timeout_s <= 0:
            raise ConfigurationError(
                f"job timeout must be > 0 seconds, got {job_timeout_s}")
        if shard_straggler_s is not None and shard_straggler_s <= 0:
            raise ConfigurationError(
                f"shard straggler deadline must be > 0 seconds, "
                f"got {shard_straggler_s}")
        for label, value in (("shard_servers", shard_servers),
                             ("shard_steps", shard_steps)):
            if value is not None and value <= 0:
                raise ConfigurationError(
                    f"{label} must be > 0, got {value}")
        from .shard import resolve_shard_autotune

        self.shard = shard
        self.shard_servers = shard_servers
        self.shard_steps = shard_steps
        self.shard_straggler_s = shard_straggler_s
        self.shard_autotune = resolve_shard_autotune(shard_autotune)
        self.checkpoint = (None if checkpoint is None
                           else Path(os.fspath(checkpoint)))
        self.resume = resume
        #: Trace plane digests keyed by object identity (strong ref kept
        #: alongside, so an id can never be recycled while cached).
        self._trace_digests: dict[int, tuple[WorkloadTrace, str]] = {}
        self.n_workers = n_workers
        self.vectorised = vectorised
        self.mode = resolve_mode(mode, vectorised)
        self.cache_resolution = cache_resolution
        self.prefer = prefer
        self.max_retries = max_retries
        self.retry_backoff_s = retry_backoff_s
        self.job_timeout_s = job_timeout_s
        # Resolved once up front (explicit > REPRO_TELEMETRY > off) so a
        # malformed environment fails here, not inside a worker, and all
        # executors agree on whether jobs record.
        self.metrics_port = obs.resolve_metrics_port(metrics_port)
        if self.metrics_port is not None and telemetry is None:
            # A scrape endpoint without a session would serve nothing.
            telemetry = True
        self.telemetry = obs.telemetry_enabled(telemetry)
        #: Live scrape endpoint (``/metrics`` + ``/healthz``).  Bound
        #: eagerly so callers can report the resolved address before the
        #: first run; each ``run()`` re-binds it to that run's session.
        self._health = obs.RunHealth()
        self._live_server = (obs.LiveTelemetryServer(port=self.metrics_port)
                             if self.metrics_port is not None else None)
        if self._live_server is not None:
            self._live_server.bind(None, self._health)
        # Same treatment for the result cache (explicit > REPRO_CACHE):
        # workers receive the resolved directory, never the env.
        self.result_cache = resolve_result_cache(cache)
        self._cache_dir = (str(self.result_cache.directory)
                           if self.result_cache is not None else None)
        self._shared_traces = _SharedTraceRegistry()
        self._executor = None
        self._executor_kind: str | None = None
        self._executor_workers = 0
        #: How many shared pools this engine has created — stays at 1
        #: across repeated ``run`` calls of the same kind (the reuse the
        #: executor-persistence tests pin down).
        self.executor_launches = 0
        self._finalizer = weakref.finalize(self, self._shared_traces.close)

    # -- lifetime ------------------------------------------------------

    @property
    def metrics_address(self) -> str | None:
        """``http://host:port`` of the live scrape endpoint (or None)."""
        return (self._live_server.url
                if self._live_server is not None else None)

    def close(self) -> None:
        """Release the persistent executor and shared trace segments.

        Idempotent; the engine degrades to creating a fresh pool if it
        is (unusually) run again after closing.
        """
        if self._live_server is not None:
            self._live_server.close()
            self._live_server = None
        self._drop_executor(wait=True)
        self._shared_traces.close()
        self._finalizer.detach()

    def __enter__(self) -> "BatchSimulationEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- executors -----------------------------------------------------

    def _ensure_executor(self, kind: str, workers: int):
        """The persistent shared pool, recreated only when unsuitable."""
        if (self._executor is not None and self._executor_kind == kind
                and self._executor_workers >= workers):
            return self._executor
        self._drop_executor(wait=True)
        if kind == "process":
            from concurrent.futures import ProcessPoolExecutor

            executor = ProcessPoolExecutor(max_workers=workers)
        else:
            executor = ThreadPoolExecutor(max_workers=workers)
        self._executor = executor
        self._executor_kind = kind
        self._executor_workers = workers
        self.executor_launches += 1
        return executor

    def _drop_executor(self, wait: bool = False) -> None:
        """Discard the persistent pool (gracefully or by killing it)."""
        if self._executor is None:
            return
        executor, kind = self._executor, self._executor_kind
        self._executor = None
        self._executor_kind = None
        self._executor_workers = 0
        if wait:
            executor.shutdown(wait=True)
        else:
            self._kill_executor(executor, kind)

    @property
    def _budget(self) -> int:
        """Total attempts allowed per job (first try + retries)."""
        return 1 + self.max_retries

    def _backoff(self, attempts: int) -> None:
        """Sleep before the retry following failed attempt ``attempts``."""
        if self.retry_backoff_s > 0:
            time.sleep(self.retry_backoff_s * 2 ** (attempts - 1))

    def _emit_job_event(self, kind: str, state: _JobState,
                        exc: BaseException | None = None) -> None:
        """Record one job lifecycle event into the batch session.

        Called on the coordinating thread only, where the batch-level
        session (if any) is installed; a no-op with telemetry off.
        Terminal failure kinds also advance the ``/healthz`` progress.
        """
        data = {"scheme": state.job.config.name,
                "trace": state.job.trace.name,
                "attempt": state.attempts}
        if exc is not None:
            data["error_type"] = type(exc).__name__
            data["error"] = str(exc)
        if kind in ("job.failed", "job.timeout"):
            self._health.job_done(failed=True)
        obs.emit(kind, **data)

    def _payload(self, job: SimulationJob) -> _JobPayload:
        """Zero-copy payload: the job with its trace swapped for a ref.

        Trace subclasses are pickled whole — rebuilding them from a bare
        plane in the worker would strip their overridden behaviour.
        """
        if type(job.trace) is WorkloadTrace:
            trace_ref, trace = self._shared_traces.ref_for(job.trace), None
        else:
            trace_ref, trace = None, job.trace
        return _JobPayload(
            trace_ref=trace_ref,
            config=job.config,
            cpu_model=job.cpu_model,
            teg_module=job.teg_module,
            faults=job.faults,
            mode=self.mode,
            cache_resolution=self.cache_resolution,
            trace=trace,
            telemetry=self.telemetry,
            cache_dir=self._cache_dir,
        )

    def _submit(self, executor, kind: str, job: SimulationJob) -> Future:
        if kind == "process":
            return executor.submit(_execute_payload, self._payload(job))
        return executor.submit(_execute_job, job, self.mode,
                               self.cache_resolution, self.telemetry,
                               self.result_cache)

    @staticmethod
    def _kill_executor(executor, kind: str) -> None:
        """Tear a pool down without waiting on hung workers.

        Process workers are terminated outright (a hung worker would
        otherwise block shutdown and interpreter exit).  Thread workers
        cannot be killed in CPython; the pool is abandoned and a truly
        hung thread may delay interpreter exit — documented in
        ``docs/engine.md``.
        """
        # Snapshot the worker processes *before* shutdown: the executor
        # clears its ``_processes`` map on shutdown even with
        # ``wait=False``, which would leave a hung worker unkillable.
        processes = []
        if kind == "process":
            processes = list((getattr(executor, "_processes", None)
                              or {}).values())
        executor.shutdown(wait=False, cancel_futures=True)
        for process in processes:
            if process.is_alive():
                process.terminate()
        for process in processes:
            process.join(timeout=1.0)
            if process.is_alive():
                process.kill()

    def _run_serial(self, jobs: Sequence[SimulationJob],
                    results: "dict[int, SimulationResult] | None" = None):
        """In-process execution with retry; no timeout enforcement."""
        results = {} if results is None else results
        failures: dict[int, FailedJob] = {}
        stats = {"retries": 0, "timeouts": 0}
        for index, job in enumerate(jobs):
            state = _JobState(index=index, job=job,
                              started_at=time.perf_counter())
            while True:
                state.attempts += 1
                try:
                    result = _execute_job(job, self.mode,
                                          self.cache_resolution,
                                          self.telemetry,
                                          self.result_cache)
                except Exception as exc:
                    if state.attempts < self._budget:
                        stats["retries"] += 1
                        state.retries += 1
                        self._emit_job_event("job.retry", state, exc)
                        self._backoff(state.attempts)
                        continue
                    failures[index] = state.failed(exc)
                    self._emit_job_event("job.failed", state, exc)
                    break
                if result.metrics is not None:
                    result.metrics.retries = state.retries
                results[index] = result
                self._health.job_done()
                break
        return results, failures, stats

    def _run_pool(self, jobs: Sequence[SimulationJob], workers: int,
                  kind: str, timeout_s: float | None,
                  results: "dict[int, SimulationResult] | None" = None):
        """Pooled execution: shared pool fast path, isolated recovery.

        All jobs start on one shared pool.  When that pool can no
        longer attribute failures to a single job — a worker crash
        breaks a process pool as a whole, and a wall-clock timeout
        forces a teardown — every unfinished job is re-run in its own
        single-worker pool, so crashes and timeouts land on exactly the
        job that caused them.
        """
        if kind == "process":
            from concurrent.futures import ProcessPoolExecutor

            executor_cls = ProcessPoolExecutor
            # Pre-flight the pickling so unpicklable jobs degrade to the
            # thread pool instead of surfacing as per-job failures.
            # Process jobs ship a _JobPayload — config plus shared-memory
            # trace handle — never the trace array itself.
            pickle.dumps([self._payload(job) for job in jobs])
        else:
            executor_cls = ThreadPoolExecutor

        results = {} if results is None else results
        failures: dict[int, FailedJob] = {}
        stats = {"retries": 0, "timeouts": 0}
        states = {index: _JobState(index=index, job=job)
                  for index, job in enumerate(jobs)}

        executor = self._ensure_executor(kind, workers)
        clean = False
        try:
            leftovers = self._drain_shared(
                executor, kind, states, results, failures, stats,
                timeout_s)
            clean = not leftovers
        finally:
            if not clean:
                # Broken/timed-out pools are killed and forgotten; a
                # clean pool stays alive for the next run() call.
                self._drop_executor()
        for index in leftovers:
            self._run_isolated(executor_cls, kind, states[index],
                               results, failures, stats, timeout_s)
        return results, failures, stats

    def _drain_shared(self, executor, kind: str,
                      states: dict[int, _JobState],
                      results: dict[int, SimulationResult],
                      failures: dict[int, FailedJob],
                      stats: dict[str, int],
                      timeout_s: float | None) -> list[int]:
        """Run every job on the shared pool; return unfinished indices.

        A non-empty return means the pool is no longer trustworthy
        (broken, or torn down after a timeout) and the listed jobs must
        be re-run in isolation.  Attempts consumed by pool-wide
        breakage are not charged to innocent jobs.
        """
        futures: dict[Future, int] = {}
        now = time.perf_counter()
        for index, state in states.items():
            state.started_at = now
            futures[self._submit(executor, kind, state.job)] = index

        while futures:
            done, _ = wait(futures, timeout=_POLL_INTERVAL_S,
                           return_when=FIRST_COMPLETED)
            for future in done:
                index = futures.pop(future)
                state = states[index]
                state.attempts += 1
                state.running_since = None
                try:
                    result = future.result()
                except BrokenExecutor:
                    # Pool-wide breakage: blame cannot be pinned on this
                    # future specifically.  Un-charge the attempt and
                    # redo everything unfinished in isolation.
                    state.attempts -= 1
                    return [index] + [futures.pop(f)
                                      for f in list(futures)]
                except Exception as exc:
                    if state.attempts < self._budget:
                        stats["retries"] += 1
                        state.retries += 1
                        self._emit_job_event("job.retry", state, exc)
                        self._backoff(state.attempts)
                        try:
                            futures[self._submit(executor, kind,
                                                 state.job)] = index
                        except BrokenExecutor:
                            return [index] + [futures.pop(f)
                                              for f in list(futures)]
                    else:
                        failures[index] = state.failed(exc)
                        self._emit_job_event("job.failed", state, exc)
                else:
                    if result.metrics is not None:
                        result.metrics.retries = state.retries
                    results[index] = result
                    self._health.job_done()
            if timeout_s is None:
                continue
            now = time.perf_counter()
            for future, index in list(futures.items()):
                state = states[index]
                if state.running_since is None and future.running():
                    state.running_since = now
                if (state.running_since is not None
                        and now - state.running_since >= timeout_s):
                    # Terminal: the hung worker makes the shared pool
                    # unusable, so fail this job and move the rest to
                    # isolated execution.
                    state.attempts += 1
                    stats["timeouts"] += 1
                    failures[index] = state.timed_out(timeout_s)
                    self._emit_job_event("job.timeout", state)
                    futures.pop(future)
                    return [futures.pop(f) for f in list(futures)]
        return []

    def _run_isolated(self, executor_cls, kind: str, state: _JobState,
                      results: dict[int, SimulationResult],
                      failures: dict[int, FailedJob],
                      stats: dict[str, int],
                      timeout_s: float | None) -> None:
        """Run one job in its own single-worker pool, with retry.

        Isolation makes failure attribution exact: a crash or hang can
        only come from this job, and terminating the pool's worker
        cannot take other jobs down with it.
        """
        if state.started_at is None:
            state.started_at = time.perf_counter()
        while True:
            state.attempts += 1
            verdict, payload = self._attempt_isolated(
                executor_cls, kind, state.job, timeout_s)
            if verdict == "ok":
                if payload.metrics is not None:
                    payload.metrics.retries = state.retries
                results[state.index] = payload
                self._health.job_done()
                return
            if verdict == "timeout":
                stats["timeouts"] += 1
                failures[state.index] = state.timed_out(timeout_s)
                self._emit_job_event("job.timeout", state)
                return
            if state.attempts < self._budget:
                stats["retries"] += 1
                state.retries += 1
                self._emit_job_event("job.retry", state, payload)
                self._backoff(state.attempts)
                continue
            failures[state.index] = state.failed(payload)
            self._emit_job_event("job.failed", state, payload)
            return

    def _attempt_isolated(self, executor_cls, kind: str,
                          job: SimulationJob, timeout_s: float | None):
        """One attempt on a fresh single-worker pool.

        Returns ``("ok", result)``, ``("error", exception)`` — a worker
        crash surfaces here as its ``BrokenExecutor`` subclass and is
        retryable — or ``("timeout", None)`` after killing the worker.
        """
        executor = executor_cls(max_workers=1)
        future = self._submit(executor, kind, job)
        deadline = None
        while True:
            done, _ = wait([future], timeout=_POLL_INTERVAL_S)
            if done:
                try:
                    result = future.result()
                except Exception as exc:
                    self._kill_executor(executor, kind)
                    return ("error", exc)
                executor.shutdown(wait=False)
                return ("ok", result)
            if timeout_s is None:
                continue
            now = time.perf_counter()
            if deadline is None and future.running():
                deadline = now + timeout_s
            if deadline is not None and now >= deadline:
                self._kill_executor(executor, kind)
                return ("timeout", None)

    # -- sharded jobs --------------------------------------------------

    def _shard_plan(self, job: SimulationJob,
                    shard_servers: int | None,
                    shard_steps: int | None):
        """Shard specs for one job, or ``None`` to run it whole.

        Validation is coordinator-side by design (the satellite fix of
        the sharding PR): a knob that is non-positive or exceeds the
        job's trace dimensions raises :class:`ConfigurationError` here,
        before anything is dispatched to a worker.
        """
        from .shard import (
            AUTO_SHARD_MIN_CELLS,
            DEFAULT_SHARD_SERVERS,
            DEFAULT_SHARD_STEPS,
            SHARD_SERVERS_ENV_VAR,
            SHARD_STEPS_ENV_VAR,
            plan_shards,
        )

        if self.shard is False:
            return None
        trace = job.trace
        if type(trace) is not WorkloadTrace:
            # Subclasses can carry behaviour (an overridden step());
            # window views would strip it, exactly like the kernel and
            # the zero-copy dispatch, so such jobs run whole.
            return None
        has_faults = job.faults is not None and len(job.faults) > 0
        if not has_faults and self.mode != "kernel":
            # "step"/"loop" exist to cross-check the kernel; sharding
            # only accelerates the kernel and fault paths.
            return None
        if trace.n_servers < job.config.circulation_size:
            # The unsharded path raises the proper ConfigurationError.
            return None
        explicit = shard_servers is not None or shard_steps is not None
        cells = trace.n_steps * trace.n_servers
        if (not self.shard and not explicit
                and cells < AUTO_SHARD_MIN_CELLS):
            return None
        if shard_servers is not None and shard_servers > trace.n_servers:
            raise ConfigurationError(
                f"shard_servers / {SHARD_SERVERS_ENV_VAR} is "
                f"{shard_servers} but trace {trace.name!r} has only "
                f"{trace.n_servers} servers")
        if shard_steps is not None and shard_steps > trace.n_steps:
            raise ConfigurationError(
                f"shard_steps / {SHARD_STEPS_ENV_VAR} is {shard_steps} "
                f"but trace {trace.name!r} has only {trace.n_steps} "
                f"steps")
        servers = (shard_servers if shard_servers is not None
                   else min(DEFAULT_SHARD_SERVERS, trace.n_servers))
        steps = (shard_steps if shard_steps is not None
                 else min(DEFAULT_SHARD_STEPS, trace.n_steps))
        if has_faults:
            servers = None  # masks span the cluster: time-only shards
        specs = plan_shards(trace.n_steps, trace.n_servers,
                            job.config.circulation_size,
                            shard_servers=servers, shard_steps=steps)
        if len(specs) <= 1:
            return None
        return specs

    # -- checkpointing -------------------------------------------------

    def _trace_hash(self, trace: WorkloadTrace) -> str:
        """Content digest of ``trace``, hashed at most once per engine."""
        from .checkpoint import trace_digest

        entry = self._trace_digests.get(id(trace))
        if entry is None:
            entry = (trace, trace_digest(trace))
            self._trace_digests[id(trace)] = entry
        return entry[1]

    def _content_key(self, job: SimulationJob, specs):
        """The result-cache / dedup identity of one job.

        Matches the key a worker's :func:`simulate` derives for the
        same job (same mode resolution, same decision-cache
        resolution), so a result stored by a worker is found by the
        coordinator on the next run and vice versa.  Trace subclasses
        can carry behaviour the plane digest cannot see, so they key on
        object identity — good enough for within-batch dedup, never
        persisted.
        """
        has_faults = job.faults is not None and len(job.faults) > 0
        if type(job.trace) is WorkloadTrace:
            trace_hash = self._trace_hash(job.trace)
        else:
            trace_hash = f"id:{id(job.trace)}"
        if has_faults:
            mode = "loop"
        else:
            mode = "kernel" if specs is not None else self.mode
        return result_key(job.trace, job.config, job.cpu_model,
                          job.teg_module,
                          faults=job.faults if has_faults else None,
                          cache_resolution=self.cache_resolution,
                          mode=mode, specs=specs,
                          trace_hash=trace_hash)

    def _job_store(self, job: SimulationJob, specs):
        """The per-job checkpoint store under the engine's root.

        Each job owns a subdirectory named after its scheme, trace and
        the 12-hex content key, so two different runs can never collide
        in one root — a key mismatch simply lands in a different
        directory.  ``specs`` is the job's shard plan (``None`` runs
        whole and checkpoints at job granularity).
        """
        from .checkpoint import CheckpointStore, run_key

        has_faults = job.faults is not None and len(job.faults) > 0
        key = run_key(
            job.trace, job.config, job.cpu_model, job.teg_module,
            faults=job.faults if has_faults else None,
            cache_resolution=self.cache_resolution,
            specs=specs,
            extra=() if specs is not None else (("mode", self.mode),),
            trace_hash=self._trace_hash(job.trace))
        name = "--".join((_fs_slug(job.config.name),
                          _fs_slug(job.trace.name), key.short))
        kind = ("fault" if has_faults
                else "kernel" if specs is not None else "whole")
        return CheckpointStore(
            self.checkpoint / name, key,
            n_shards=len(specs) if specs is not None else 0,
            kind=kind, resume=self.resume)

    def _shard_retry(self, job: SimulationJob, spec, attempt: int,
                     exc: BaseException) -> bool:
        """Record one shard failure; True when it should be retried.

        The emitted event always carries the shard's coordinates,
        attempt number and (when the worker wrapped it as a
        :class:`~repro.errors.ShardExecutionError`) the worker pid.
        """
        if isinstance(exc, ShardExecutionError):
            exc.attempt = attempt
            context = dict(exc.context())
        else:
            context = {"shard_index": spec.index,
                       "step_start": spec.step_start,
                       "step_stop": spec.step_stop,
                       "server_start": spec.server_start,
                       "server_stop": spec.server_stop,
                       "attempt": attempt, "worker_pid": None}
        retrying = attempt <= self.max_retries
        obs.emit("shard.retry" if retrying else "shard.failed",
                 scheme=job.config.name, trace=job.trace.name,
                 error_type=type(exc).__name__, error=str(exc),
                 **context)
        if retrying:
            obs.add("engine.shards.retried", 1)
        return retrying

    def _run_sharded_job(self, job: SimulationJob, specs,
                         kind: str, workers: int,
                         store=None) -> SimulationResult:
        """Stream one job's shards through a fold-as-they-land pipeline.

        Process executors ship :class:`~repro.core.shard._ShardPayload`
        objects — a windowed :class:`SharedTraceRef` plus the spec and
        the :func:`~repro.core.shard.prime_decisions` cache — so
        payload size is independent of trace length and shard count.
        Instead of collecting every outcome and merging behind a
        barrier, a :class:`~repro.core.shard.StreamingMerge` folds each
        shard into preallocated whole-cluster columns the moment it
        completes; on the process pool (without checkpointing) workers
        write their plane tiles straight into a shared column block, so
        results come back zero-copy too.  A broken pool degrades to
        running the remaining shards in-process (the merge cannot
        tolerate holes); per-shard failures honour ``max_retries``.
        Fault-carrying jobs run their time windows sequentially
        in-process: their cooling decisions key on sensor readings,
        which only the serial window order can prime bit-identically.
        The per-job wall-clock budget is **not** enforced on sharded
        jobs (documented in ``docs/engine.md``); shards that run past
        the straggler deadline are speculatively re-dispatched instead.

        With a ``store``, every completed shard is persisted the moment
        it lands and already-persisted shards are never re-dispatched,
        so a resumed run is bit-identical to an uninterrupted one (see
        ``docs/checkpoint.md``).  Checkpointed jobs keep the pickled
        column return (saved shards must be self-contained) and are
        never autotuned (saved tiles pin the plan).
        """
        from .shard import (
            COLUMN_PLANES,
            ShardColumnRef,
            StreamingMerge,
            run_shard,
        )

        started = time.perf_counter()
        has_faults = job.faults is not None and len(job.faults) > 0
        job_labels = {"scheme": job.config.name, "trace": job.trace.name}
        obs.emit("shard.dispatch", scheme=job.config.name,
                 trace=job.trace.name, shards=len(specs),
                 executor="sequential" if has_faults else kind)
        obs.add("engine.shards.dispatched", len(specs), labels=job_labels)
        # With a live scrape endpoint attached, fold shard telemetry
        # straight into the batch session as each shard lands, so a
        # mid-run GET /metrics sees repro_shard_* series accumulate.
        live_sink = obs.current() if self._live_server is not None else None

        if has_faults:
            merge = StreamingMerge(job.trace, job.config, kind="fault",
                                   telemetry_sink=live_sink)
            shared = CoolingDecisionCache(resolution=self.cache_resolution)
            policy = None
            for spec in specs:
                saved = (store.load_shard(spec.index)
                         if store is not None else None)
                if saved is not None:
                    outcome = saved["outcome"]
                    # Restore the path-dependent state the next window
                    # needs: the shared cache as it stood after this
                    # window, and the policy instance it handed on.
                    if saved.get("cache_store") is not None:
                        shared._store = dict(saved["cache_store"])
                    if outcome.policy is not None:
                        policy = outcome.policy
                    merge.add(outcome)
                    self._health.shard_done()
                    continue
                tile = job.trace.window(spec.step_start, spec.step_stop,
                                        spec.server_start,
                                        spec.server_stop)
                attempt = 0
                while True:
                    try:
                        outcome = run_shard(
                            tile, spec, job.config, job.cpu_model,
                            job.teg_module, faults=job.faults,
                            cache_resolution=self.cache_resolution,
                            cache=shared, policy=policy,
                            telemetry=self.telemetry)
                        break
                    except Exception as exc:
                        attempt += 1
                        if not self._shard_retry(job, spec, attempt,
                                                 exc):
                            raise
                        self._backoff(attempt)
                policy = outcome.policy
                if store is not None:
                    store.save_shard(spec.index, outcome,
                                     cache_store=dict(shared._store))
                merge.add(outcome)
                self._health.shard_done()
            return self._finish_sharded(job, merge, started, store=store)

        # Zero-copy column return: workers write plane tiles into one
        # shared whole-cluster block instead of pickling them back.
        # Off with a checkpoint store (saved shards must carry their
        # own columns) and off-pool (nothing to ship).  Without shared
        # memory the merge simply allocates its planes locally.
        column_block = None
        column_ref = None
        block_planes = None
        if kind == "process" and store is None:
            n_steps = job.trace.n_steps
            n_circs = -(-job.trace.n_servers
                        // job.config.circulation_size)
            shape = (len(COLUMN_PLANES), n_steps, n_circs)
            try:
                column_block = self._shared_traces.scratch_block(
                    int(np.prod(shape)) * np.dtype(np.float64).itemsize)
            except OSError:  # pragma: no cover - no POSIX shm
                column_block = None
            else:
                block_planes = np.ndarray(shape, dtype=np.float64,
                                          buffer=column_block.buf)
                column_ref = ShardColumnRef(shm_name=column_block.name,
                                            n_steps=n_steps,
                                            n_circs=n_circs)
        merge = StreamingMerge(job.trace, job.config, kind="kernel",
                               plane_block=block_planes,
                               telemetry_sink=live_sink)
        del block_planes
        try:
            return self._drain_shards(job, specs, kind, workers, merge,
                                      column_ref, started, store)
        finally:
            if column_block is not None:
                merge.release_planes()
                self._shared_traces.release_scratch(column_block)

    def _drain_shards(self, job: SimulationJob, specs, kind: str,
                      workers: int, merge, column_ref,
                      started: float, store=None) -> SimulationResult:
        """Kernel-shard dispatch loop: resume, probe, submit, fold."""
        from .shard import (
            _ShardPayload,
            _execute_shard_payload,
            clone_cache,
            primed_or_warm,
            run_shard,
        )

        done = [False] * len(specs)
        if store is not None:
            for spec in specs:
                saved = store.load_shard(spec.index)
                if saved is not None:
                    merge.add(saved["outcome"])
                    self._health.shard_done()
                    done[spec.index] = True
        missing = [index for index in range(len(specs))
                   if not done[index]]
        if not missing:
            # Fully resumed: skip the pre-pass entirely — no shard
            # will run, so nothing needs the primed cache.
            return self._finish_sharded(job, merge, started, store=store)

        primed = primed_or_warm(job.trace, job.config, job.cpu_model,
                                job.teg_module,
                                cache_resolution=self.cache_resolution,
                                result_cache=self.result_cache,
                                trace_hash=(self._trace_hash(job.trace)
                                            if self.result_cache is not None
                                            else None))

        def run_local(spec):
            tile = job.trace.window(spec.step_start, spec.step_stop,
                                    spec.server_start, spec.server_stop)
            return run_shard(tile, spec, job.config, job.cpu_model,
                             job.teg_module,
                             cache_resolution=self.cache_resolution,
                             cache=clone_cache(primed),
                             telemetry=self.telemetry)

        if (self.shard_autotune and store is None and len(specs) > 1
                and len(missing) == len(specs)):
            planned = len(specs)
            specs = self._autotune_shards(job, specs, merge, run_local,
                                          workers)
            # The probe already folded one tile; re-base /healthz on
            # the replanned denominator.
            self._health.add_shards(1 + len(specs) - planned)
            self._health.shard_done()
            done = [False] * len(specs)
            missing = list(range(len(specs)))
            if not missing:
                return self._finish_sharded(job, merge, started,
                                            store=store)

        straggler_s = resolve_shard_straggler(self.shard_straggler_s)
        if kind in ("process", "thread"):
            try:
                executor = self._ensure_executor(kind, workers)
                if kind == "process":
                    base_ref = self._shared_traces.ref_for(job.trace)
                    payloads = [
                        _ShardPayload(
                            trace_ref=replace(
                                base_ref,
                                row_start=spec.step_start,
                                row_stop=spec.step_stop,
                                col_start=spec.server_start,
                                col_stop=spec.server_stop),
                            spec=spec, config=job.config,
                            cpu_model=job.cpu_model,
                            teg_module=job.teg_module, faults=None,
                            cache_resolution=self.cache_resolution,
                            decisions=primed,
                            telemetry=self.telemetry,
                            column_ref=column_ref)
                        for spec in specs]

                    def submit(index):
                        return executor.submit(_execute_shard_payload,
                                               payloads[index])
                else:
                    def submit(index):
                        return executor.submit(run_local, specs[index])

                futures: dict[Future, int] = {}
                attempts = {index: 0 for index in missing}
                running_since: dict[Future, float] = {}
                speculated: set[int] = set()
                for index in missing:
                    futures[submit(index)] = index
                try:
                    while futures:
                        completed, _ = wait(
                            futures,
                            timeout=(_POLL_INTERVAL_S
                                     if straggler_s is not None
                                     else None),
                            return_when=FIRST_COMPLETED)
                        for future in completed:
                            index = futures.pop(future)
                            running_since.pop(future, None)
                            if future.cancelled() or done[index]:
                                # A speculative duplicate lost the
                                # race; its twin's result already
                                # landed.
                                continue
                            try:
                                outcome = future.result()
                            except BrokenExecutor:
                                raise
                            except Exception as exc:
                                attempts[index] += 1
                                if not self._shard_retry(
                                        job, specs[index],
                                        attempts[index], exc):
                                    raise
                                self._backoff(attempts[index])
                                futures[submit(index)] = index
                            else:
                                done[index] = True
                                if store is not None:
                                    store.save_shard(index, outcome)
                                merge.add(outcome)
                                self._health.shard_done()
                                for twin, twin_index in list(
                                        futures.items()):
                                    if twin_index == index:
                                        twin.cancel()
                        if straggler_s is None:
                            continue
                        now = time.perf_counter()
                        for future, index in list(futures.items()):
                            if future not in running_since:
                                if future.running():
                                    running_since[future] = now
                                continue
                            if (index in speculated
                                    or done[index]
                                    or now - running_since[future]
                                    < straggler_s):
                                continue
                            # One speculative copy per shard: slow is
                            # retried, but a systematically slow shard
                            # must not fork-bomb the pool.
                            speculated.add(index)
                            obs.add("engine.shards.speculated", 1,
                                    labels={"scheme": job.config.name,
                                            "trace": job.trace.name})
                            self._health.straggler()
                            obs.emit(
                                "shard.straggler",
                                scheme=job.config.name,
                                trace=job.trace.name,
                                shard=specs[index].index,
                                deadline_s=straggler_s,
                                running_s=round(
                                    now - running_since[future], 3))
                            futures[submit(index)] = index
                except BaseException:
                    for future in futures:
                        future.cancel()
                    raise
            except (BrokenExecutor, OSError):
                # The pool died mid-flight (or could not start): it is
                # untrustworthy, and the merge needs every shard — run
                # whatever is missing in-process.
                self._drop_executor()
        for index, spec in enumerate(specs):
            if not done[index]:
                outcome = run_local(spec)
                done[index] = True
                if store is not None:
                    store.save_shard(index, outcome)
                merge.add(outcome)
                self._health.shard_done()
        return self._finish_sharded(job, merge, started, store=store)

    def _autotune_shards(self, job: SimulationJob, specs, merge,
                         run_local, workers: int):
        """Probe the first tile, then re-tile the rest for throughput.

        Runs ``specs[0]`` in-process, folds it into ``merge``, and
        re-plans every remaining tile with a step window sized so one
        tile takes about
        :data:`~repro.core.shard.AUTOTUNE_TARGET_SHARD_S` seconds at
        the measured cells/s — never narrower than planned, and halved
        back while fewer tiles than pool workers would remain.  Tiling
        never affects the arithmetic (the shard parity suite pins
        this), so only the shard count changes.  Returns the remaining
        specs, re-indexed after the probe.
        """
        from .shard import AUTOTUNE_TARGET_SHARD_S, ShardSpec

        first = specs[0]
        clock = time.perf_counter()
        outcome = run_local(first)
        probe_s = time.perf_counter() - clock
        merge.add(outcome)
        rest = list(specs[1:])
        width = first.n_steps
        rate = first.n_cells / probe_s if probe_s > 0 else 0.0
        widest = max(spec.n_servers for spec in specs)
        ideal = (int(rate * AUTOTUNE_TARGET_SHARD_S // widest)
                 if rate > 0 and widest > 0 else 0)

        # The remaining region, as contiguous step ranges per server
        # block (the probe consumed the head of the first block).
        blocks: dict[tuple, list] = {}
        for spec in rest:
            key = (spec.server_start, spec.server_stop,
                   spec.circ_start, spec.circ_stop)
            blocks.setdefault(key, []).append(spec)

        def n_tiles(step_width):
            return sum(
                -(-(max(s.step_stop for s in olds)
                    - min(s.step_start for s in olds)) // step_width)
                for olds in blocks.values())

        target_tiles = min(workers, len(rest))
        new_width = max(width, ideal)
        while new_width > width and n_tiles(new_width) < target_tiles:
            new_width = max(width, new_width // 2)
        if new_width <= width:
            return rest
        replanned = []
        for key in sorted(blocks):
            olds = blocks[key]
            lo = min(s.step_start for s in olds)
            hi = max(s.step_stop for s in olds)
            server_start, server_stop, circ_start, circ_stop = key
            for step_start in range(lo, hi, new_width):
                replanned.append(ShardSpec(
                    index=first.index + 1 + len(replanned),
                    step_start=step_start,
                    step_stop=min(step_start + new_width, hi),
                    server_start=server_start,
                    server_stop=server_stop,
                    circ_start=circ_start,
                    circ_stop=circ_stop))
        obs.add("engine.shards.autotuned", 1)
        obs.emit("shard.autotune", scheme=job.config.name,
                 trace=job.trace.name, probe_s=round(probe_s, 4),
                 cells_per_s=round(rate, 1), step_width=new_width,
                 planned_width=width, shards_planned=len(specs),
                 shards_executed=1 + len(replanned))
        return replanned

    def _finish_sharded(self, job: SimulationJob, merge,
                        started: float, store=None) -> SimulationResult:
        """Finalise one sharded job's streaming merge; attach metrics.

        The finalise runs the post-merge invariant auditor (see
        :func:`repro.core.shard.audit_merged_result`) before the result
        escapes, so a buggy resume or a corrupted shard can never leak
        a physically impossible result into downstream tables.
        """
        result = merge.result()
        snapshot = merge.telemetry_snapshot()
        if snapshot is not None:
            result.telemetry = snapshot
        wall = time.perf_counter() - started
        cache_hits = merge.cache_hits
        cache_misses = merge.cache_misses
        lookups = cache_hits + cache_misses
        has_faults = job.faults is not None and len(job.faults) > 0
        resumed = len(store.loaded) if store is not None else 0
        result.metrics = EngineMetrics(
            wall_time_s=wall,
            step_time_s=wall,
            n_steps=job.trace.n_steps,
            steps_per_s=(job.trace.n_steps / wall if wall > 0 else 0.0),
            cache_hits=cache_hits,
            cache_misses=cache_misses,
            cache_hit_rate=cache_hits / lookups if lookups else 0.0,
            mode="loop" if has_faults else "kernel",
            vectorised=not has_faults,
            kernel=merge.timings,
            n_shards=merge.n_added,
            shards_resumed=resumed,
        )
        obs.add("engine.shards.completed", merge.n_added,
                labels={"scheme": job.config.name,
                        "trace": job.trace.name})
        obs.emit("shard.merge", scheme=job.config.name,
                 trace=job.trace.name, shards=merge.n_added,
                 resumed=resumed, wall_time_s=round(wall, 4))
        return result

    def run(self, jobs: Iterable[SimulationJob]) -> BatchResult:
        """Execute every job; return partial results plus failures.

        Results come back in submission order.  A job that crashes its
        worker, raises, or exceeds the wall-clock budget becomes a
        :class:`FailedJob` record on the returned :class:`BatchResult`
        — it never aborts the batch or takes other jobs' results with
        it.

        With telemetry on, the whole batch runs under one
        :mod:`repro.obs` session: per-job worker snapshots are merged
        into it, engine-level counters and lifecycle events are added,
        and the live session is attached as ``BatchResult.telemetry``.
        """
        jobs = list(jobs)
        if not jobs:
            raise ConfigurationError("batch must contain at least one job")
        for job in jobs:
            if not isinstance(job, SimulationJob):
                raise ConfigurationError(
                    f"jobs must be SimulationJob instances, got "
                    f"{type(job).__name__}")
        batch_telemetry = obs.Telemetry() if self.telemetry else None
        if self._live_server is not None:
            # Point the scrape endpoint at this run's live session so a
            # mid-run GET /metrics sees counters as they accumulate.
            self._live_server.bind(batch_telemetry, self._health)
        context = (obs.session(batch_telemetry)
                   if batch_telemetry is not None else nullcontext())
        try:
            with context:
                with obs.span("engine.batch"):
                    batch = self._run_validated(jobs, batch_telemetry)
        except BaseException:
            self._health.finish("failed")
            raise
        self._health.finish()
        batch.telemetry = batch_telemetry
        return batch

    def _run_validated(self, jobs: list[SimulationJob],
                       batch_telemetry: "obs.Telemetry | None"
                       ) -> BatchResult:
        """Execute a validated job list (under the batch session).

        Jobs that shard (see :meth:`_shard_plan`) are peeled off the
        normal dispatch: the worker count is resolved against the total
        unit count (whole jobs + shards), the remaining jobs run
        through the usual serial/pool machinery, and each sharded job
        is then fanned out over the same persistent executor and merged
        back into a single result in place.
        """
        from .shard import (
            SHARD_SERVERS_ENV_VAR,
            SHARD_STEPS_ENV_VAR,
            resolve_shard_size,
        )

        reaped = reap_orphaned_segments()
        if reaped:
            obs.add("engine.shm.reaped", len(reaped))
            obs.emit("shm.reap", segments=len(reaped))

        shard_servers = resolve_shard_size(self.shard_servers,
                                           SHARD_SERVERS_ENV_VAR)
        shard_steps = resolve_shard_size(self.shard_steps,
                                         SHARD_STEPS_ENV_VAR)
        plans = {}
        for index, job in enumerate(jobs):
            specs = self._shard_plan(job, shard_servers, shard_steps)
            if specs is not None:
                plans[index] = specs
        total_shards = sum(len(specs) for specs in plans.values())

        # Checkpointing: one content-keyed store per job.  Whole jobs
        # with a saved result are answered from disk before any worker
        # is resolved; sharded jobs resume shard-by-shard inside
        # _run_sharded_job.
        stores: dict[int, object] = {}
        resumed_results: dict[int, SimulationResult] = {}
        if self.checkpoint is not None:
            for index, job in enumerate(jobs):
                stores[index] = self._job_store(job, plans.get(index))
            for index in range(len(jobs)):
                if index in plans:
                    continue
                cached = stores[index].load_result()
                if cached is not None:
                    resumed_results[index] = cached

        # Result cache: sharded jobs are pre-checked here, before any
        # shard plan is primed or dispatched (whole jobs check inside
        # simulate() in their worker, which also gives them warm
        # starts).  A hit drops the job's plan entirely.
        cache_keys: dict[int, object] = {}
        cache_results: dict[int, SimulationResult] = {}
        if self.result_cache is not None:
            for index, job in enumerate(jobs):
                if index in resumed_results or index not in plans:
                    continue
                if type(job.trace) is not WorkloadTrace:
                    continue
                key = self._content_key(job, plans[index])
                cache_keys[index] = key
                cached = self.result_cache.load(key)
                if cached is not None:
                    cache_results[index] = cached
                    plans.pop(index)

        # Within-batch dedup: identical (trace, config, models, faults,
        # mode/plan) jobs execute once; duplicates fan the
        # representative's result out at collection time.
        dup_of: dict[int, int] = {}
        seen_keys: dict = {}
        for index, job in enumerate(jobs):
            if index in resumed_results or index in cache_results:
                continue
            dedup_key = self._content_key(job, plans.get(index))
            rep = seen_keys.setdefault(dedup_key, index)
            if rep != index:
                dup_of[index] = rep
                plans.pop(index, None)
        if dup_of:
            obs.add("engine.jobs.deduped", len(dup_of))
        total_shards = sum(len(specs) for specs in plans.values())

        normal = [index for index in range(len(jobs))
                  if index not in plans and index not in resumed_results
                  and index not in cache_results and index not in dup_of]
        n_units = len(normal) + total_shards
        self._health.begin(jobs_total=len(jobs), shards_total=total_shards)
        for _ in resumed_results:
            self._health.job_done()
        for _ in cache_results:
            self._health.job_done()
        workers = resolve_workers(self.n_workers, n_units)
        timeout_s = resolve_job_timeout(self.job_timeout_s)
        obs.emit("batch.start", n_jobs=len(jobs), mode=self.mode,
                 workers=workers, prefer=self.prefer,
                 shards=total_shards, resumed=len(resumed_results),
                 deduped=len(dup_of), cache_hits=len(cache_results))
        started = time.perf_counter()
        executor = self.prefer
        outcome = None
        normal_jobs = [jobs[index] for index in normal]
        sub_stores = {sub: stores[index]
                      for sub, index in enumerate(normal)
                      if index in stores}
        sink = _CheckpointingResults(sub_stores) if sub_stores else None
        if workers <= 1 or self.prefer == "serial" or n_units == 1:
            executor = "serial"
            outcome = self._run_serial(normal_jobs, sink)
        elif normal_jobs:
            kinds = (["process", "thread"] if self.prefer == "process"
                     else ["thread"])
            for kind in kinds:
                try:
                    outcome = self._run_pool(normal_jobs, workers, kind,
                                             timeout_s, sink)
                    executor = kind
                    break
                except Exception:  # pool unavailable: degrade gracefully
                    continue
            if outcome is None:
                executor = "serial"
                outcome = self._run_serial(normal_jobs, sink)
        else:
            outcome = ({}, {}, {"retries": 0, "timeouts": 0})
        sub_results, sub_failures, stats = outcome
        results_map = {normal[sub]: result
                       for sub, result in sub_results.items()}
        results_map.update(resumed_results)
        failures_map = {normal[sub]: failed
                        for sub, failed in sub_failures.items()}
        for index, specs in plans.items():
            state = _JobState(index=index, job=jobs[index],
                              started_at=time.perf_counter())
            state.attempts = 1
            try:
                results_map[index] = self._run_sharded_job(
                    jobs[index], specs, executor, workers,
                    store=stores.get(index))
            except Exception as exc:
                failures_map[index] = state.failed(exc)
                self._emit_job_event("job.failed", state, exc)
            else:
                self._health.job_done()
                if index in cache_keys:
                    self.result_cache.store(cache_keys[index],
                                            results_map[index])
        results_map.update(cache_results)
        for index, rep in dup_of.items():
            # Duplicates share the representative's result object (or
            # its failure record) — the content key proved them the
            # same run.
            if rep in results_map:
                results_map[index] = results_map[rep]
                self._health.job_done()
            elif rep in failures_map:
                failures_map[index] = failures_map[rep]
                self._health.job_done(failed=True)
        wall = time.perf_counter() - started
        if executor == "serial":
            workers = 1

        results = [results_map[i] for i in sorted(results_map)]
        failures = [failures_map[i] for i in sorted(failures_map)]
        total_steps = 0
        cache_hits = 0
        cache_misses = 0
        shards_resumed = 0
        result_cache_hits = 0
        for index in sorted(results_map):
            metrics = results_map[index].metrics
            if metrics is None:
                continue
            if index in resumed_results:
                # A result answered from the checkpoint keeps the
                # metrics of the run that computed it; nothing here
                # executed, so nothing is re-labelled or re-counted.
                continue
            if index in dup_of:
                # Shares its representative's result object — counted
                # once, under the representative's index.
                continue
            if metrics.result_cache_hit:
                # Same contract as checkpoint-resumed jobs: the metrics
                # describe the run that computed the entry.
                result_cache_hits += 1
                continue
            metrics.executor = executor
            metrics.n_workers = workers
            total_steps += metrics.n_steps
            cache_hits += metrics.cache_hits
            cache_misses += metrics.cache_misses
            shards_resumed += metrics.shards_resumed
        cache_eligible = 0
        if self.result_cache is not None:
            cache_eligible = sum(
                1 for index, job in enumerate(jobs)
                if index not in resumed_results and index not in dup_of
                and type(job.trace) is WorkloadTrace)
        batch = BatchResult(
            results=results,
            failures=failures,
            metrics=BatchMetrics(
                wall_time_s=wall,
                n_jobs=len(jobs),
                n_workers=workers,
                executor=executor,
                total_steps=total_steps,
                steps_per_s=total_steps / wall if wall > 0 else 0.0,
                cache_hits=cache_hits,
                cache_misses=cache_misses,
                retries=stats["retries"],
                timeouts=stats["timeouts"],
                n_failed=len(failures),
                shards=total_shards,
                shards_resumed=shards_resumed,
                jobs_resumed=len(resumed_results),
                result_cache_hits=result_cache_hits,
                result_cache_misses=max(
                    0, cache_eligible - result_cache_hits),
                jobs_deduped=len(dup_of),
            ),
        )
        if batch_telemetry is not None:
            for index in sorted(results_map):
                if index in resumed_results or index in dup_of:
                    # A checkpoint-answered job's snapshot records the
                    # run that computed it, not this one; a duplicate
                    # shares its representative's snapshot.
                    continue
                metrics = results_map[index].metrics
                if metrics is not None and metrics.result_cache_hit:
                    # A cache-served job's snapshot likewise records
                    # the original run.
                    continue
                if results_map[index].telemetry is not None:
                    batch_telemetry.merge_snapshot(
                        results_map[index].telemetry)
            registry = batch_telemetry.registry
            registry.counter("engine.jobs.submitted").inc(len(jobs))
            registry.counter("engine.jobs.completed").inc(len(results))
            registry.counter("engine.jobs.failed").inc(len(failures))
            registry.counter("engine.jobs.retries").inc(stats["retries"])
            registry.counter("engine.jobs.timeouts").inc(stats["timeouts"])
            if resumed_results:
                registry.counter("engine.jobs.resumed").inc(
                    len(resumed_results))
            if self.result_cache is not None:
                # Serial/thread workers and the coordinator's sharded
                # pre-checks already counted themselves through the
                # live session; process workers could not.  Top the
                # labelled counters up to the authoritative BatchMetrics
                # totals, per (scheme, trace) series, so the manifest
                # always agrees with them.
                per_key: dict[tuple[str, str], list[int]] = {}
                for index, job in enumerate(jobs):
                    if index in resumed_results or index in dup_of:
                        continue
                    if type(job.trace) is not WorkloadTrace:
                        continue
                    per_key.setdefault(
                        (job.config.name, job.trace.name),
                        []).append(index)
                for (scheme, trace_name), indices in per_key.items():
                    hits = sum(
                        1 for index in indices
                        if index in results_map
                        and results_map[index].metrics is not None
                        and results_map[index].metrics.result_cache_hit)
                    labels = {"scheme": scheme, "trace": trace_name}
                    for name, target in (
                            ("engine.cache.hit", hits),
                            ("engine.cache.miss", len(indices) - hits)):
                        counter = registry.counter(name, labels)
                        if target > counter.value:
                            counter.inc(target - counter.value)
            obs.emit("batch.end", **batch.metrics.summary())
        return batch


def run_batch(jobs: Iterable[SimulationJob],
              n_workers: int | None = None, *,
              vectorised: bool = True,
              mode: str | None = None,
              prefer: str = "process",
              max_retries: int = 0,
              retry_backoff_s: float = 0.1,
              job_timeout_s: float | None = None,
              telemetry: bool | None = None,
              shard: bool | None = None,
              shard_servers: int | None = None,
              shard_steps: int | None = None,
              shard_straggler_s: float | None = None,
              shard_autotune: bool | None = None,
              checkpoint: "str | os.PathLike | None" = None,
              resume: bool = True,
              cache=None,
              metrics_port: int | None = None) -> BatchResult:
    """One-call convenience wrapper around :class:`BatchSimulationEngine`.

    The engine (and with it the persistent executor and any shared-memory
    trace segments) is torn down before returning; hold a
    :class:`BatchSimulationEngine` yourself to amortise pool start-up
    across several batches.  With ``telemetry`` on, the merged session
    survives on ``BatchResult.telemetry``.
    """
    engine = BatchSimulationEngine(n_workers, vectorised=vectorised,
                                   mode=mode,
                                   prefer=prefer, max_retries=max_retries,
                                   retry_backoff_s=retry_backoff_s,
                                   job_timeout_s=job_timeout_s,
                                   telemetry=telemetry,
                                   shard=shard,
                                   shard_servers=shard_servers,
                                   shard_steps=shard_steps,
                                   shard_straggler_s=shard_straggler_s,
                                   shard_autotune=shard_autotune,
                                   checkpoint=checkpoint,
                                   resume=resume,
                                   cache=cache,
                                   metrics_port=metrics_port)
    try:
        return engine.run(jobs)
    finally:
        engine.close()


def compare_batch(traces: Sequence[WorkloadTrace],
                  configs: Sequence[SimulationConfig],
                  n_workers: int | None = None, *,
                  cpu_model: CpuThermalModel | None = None,
                  teg_module: TegModule | None = None,
                  vectorised: bool = True,
                  mode: str | None = None,
                  prefer: str = "process",
                  cache=None,
                  metrics_port: int | None = None) -> BatchResult:
    """Run the full cross product of ``traces`` x ``configs`` as one batch."""
    jobs = [SimulationJob(trace=trace, config=config, cpu_model=cpu_model,
                          teg_module=teg_module)
            for trace in traces for config in configs]
    return run_batch(jobs, n_workers, vectorised=vectorised, mode=mode,
                     prefer=prefer, cache=cache, metrics_port=metrics_port)


__all__ = [
    "WORKERS_ENV_VAR",
    "JOB_TIMEOUT_ENV_VAR",
    "SHARD_STRAGGLER_ENV_VAR",
    "SEGMENT_PREFIX",
    "DEFAULT_CACHE_RESOLUTION",
    "EXECUTION_MODES",
    "CacheStats",
    "CoolingDecisionCache",
    "EngineMetrics",
    "KernelTimings",
    "BatchMetrics",
    "SimulationJob",
    "FailedJob",
    "BatchResult",
    "BatchSimulationEngine",
    "ResultCache",
    "SharedTraceRef",
    "simulate",
    "run_batch",
    "compare_batch",
    "resolve_mode",
    "resolve_workers",
    "resolve_job_timeout",
    "resolve_shard_straggler",
    "reap_orphaned_segments",
]

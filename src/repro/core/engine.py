"""Batch execution engine for (scheme x trace) simulation sweeps.

Every headline result of the paper (Fig. 14/15, Table I, the ablations)
re-runs :class:`~repro.core.simulator.DatacenterSimulator` once per
scheme per trace.  This module turns that hot path into a batch API:

* :class:`SimulationJob` names one (trace, config) pair to evaluate;
* :class:`BatchSimulationEngine` fans a list of jobs out over a process
  pool (``concurrent.futures``), degrading gracefully to threads or a
  serial loop when processes are unavailable, with a ``REPRO_WORKERS``
  environment override;
* inside each job the step loop is *vectorised*: circulations sharing a
  cooling setting are evaluated as one NumPy batch instead of per-group
  Python calls, and cooling decisions are memoised by
  :class:`CoolingDecisionCache`;
* :class:`EngineMetrics` (wall time per phase, steps/sec, cache hit
  rate) is attached to every :class:`~repro.core.results.SimulationResult`
  so benchmarks can assert speedups.

Bit-identity
------------
Engine results are **bit-identical** to the serial
``DatacenterSimulator.run`` path:

* all per-server quantities (CPU temperature, outlet temperature, CPU
  power, TEG power) are elementwise NumPy computations, so evaluating a
  gathered multi-circulation batch yields exactly the per-circulation
  values;
* per-circulation sums and the cluster-level accumulation reuse the
  simulator's own :meth:`DatacenterSimulator._aggregate_step`, in the
  same circulation order;
* the decision cache only serves hits that provably reproduce what the
  policy itself would return (see :class:`CoolingDecisionCache`).

The golden and determinism tests in ``tests/core/test_engine.py``
enforce this equivalence.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from ..cooling.loop import CirculationState
from ..errors import ConfigurationError
from ..teg.module import TegModule
from ..thermal.cpu_model import CpuThermalModel
from ..thermal.hydraulics import loop_pump_power_w
from ..workloads.trace import WorkloadTrace
from .config import SimulationConfig
from .results import SimulationResult
from .simulator import DatacenterSimulator

#: Environment variable overriding the engine's worker count.
#: ``0`` or ``1`` force the serial in-process path.
WORKERS_ENV_VAR = "REPRO_WORKERS"

#: Default utilisation quantisation of the cooling-decision cache,
#: matching :class:`~repro.control.cooling_policy.LookupSpacePolicy`.
DEFAULT_CACHE_RESOLUTION = 0.005


# ----------------------------------------------------------------------
# Cooling-decision cache
# ----------------------------------------------------------------------

@dataclass
class CacheStats:
    """Hit/miss counters of one :class:`CoolingDecisionCache`."""

    hits: int = 0
    misses: int = 0

    @property
    def lookups(self) -> int:
        """Total number of ``decide`` calls answered."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (0 when unused)."""
        if not self.lookups:
            return 0.0
        return self.hits / self.lookups


class CoolingDecisionCache:
    """Memoised cooling-setting decisions across steps and circulations.

    The ``control.cooling_policy`` / ``control.lookup_space`` search is
    the dominant per-decision cost and highly repetitive across steps:
    the decision depends only on the *binding* utilisation (the max or
    mean of the circulation's utilisation vector), which revisits the
    same quantised values over and over.

    Keys are derived from the quantised utilisation vector together with
    the cold-source temperature and the policy identity (the ``context``
    tuple).  Hits are guaranteed bit-identical to calling the policy:

    * for :class:`~repro.control.cooling_policy.LookupSpacePolicy` (it
      exposes ``cache_resolution``) the key uses the same quantised
      binding bucket the policy's own memo uses, so any colliding vector
      would be answered with the identical cached decision by the policy
      itself;
    * for policies without an internal memo (analytic, static) the key
      carries the *exact* binding utilisation, and the decision is a
      pure function of it.
    """

    def __init__(self, resolution: float = DEFAULT_CACHE_RESOLUTION) -> None:
        if resolution <= 0:
            raise ConfigurationError(
                f"cache resolution must be > 0, got {resolution}")
        self.resolution = resolution
        self.stats = CacheStats()
        self._store: dict = {}

    def __len__(self) -> int:
        return len(self._store)

    def decide(self, policy, utilisations: np.ndarray, context: tuple = ()):
        """Return ``policy.decide(utilisations)``, memoised.

        Parameters
        ----------
        policy:
            Any cooling policy keyed on a binding utilisation through an
            ``aggregation`` attribute (``"max"`` or ``"avg"``).
        utilisations:
            The scheduled per-server utilisation vector.
        context:
            Hashable policy/environment identity (policy kind, cold
            source temperature, safe temperature, ...) so one cache can
            serve several simulations without cross-talk.
        """
        utils = np.asarray(utilisations, dtype=float)
        aggregation = getattr(policy, "aggregation", "max")
        if aggregation == "avg":
            binding = float(utils.mean())
        else:
            binding = float(utils.max())
        policy_resolution = getattr(policy, "cache_resolution", None)
        if policy_resolution:
            # Same bucketing (and same round()) as the policy's memo.
            binding_key = round(binding / policy_resolution)
        else:
            binding_key = binding
        key = (context, aggregation, utils.size, binding_key)
        cached = self._store.get(key)
        if cached is not None:
            self.stats.hits += 1
            return cached
        decision = policy.decide(utils)
        self._store[key] = decision
        self.stats.misses += 1
        return decision


# ----------------------------------------------------------------------
# Metrics
# ----------------------------------------------------------------------

@dataclass
class EngineMetrics:
    """Observability attached to engine-produced results.

    Attributes
    ----------
    setup_time_s / step_time_s / wall_time_s:
        Wall time spent building the simulator (policy, lookup space,
        circulations), stepping the trace, and in total.
    n_steps / steps_per_s:
        Steps replayed and throughput of the stepping phase.
    cache_hits / cache_misses / cache_hit_rate:
        Cooling-decision cache counters for this run.
    vectorised:
        Whether the NumPy-batched step loop was used.
    executor / n_workers:
        How the batch layer ran this job (``"process"``, ``"thread"``
        or ``"serial"``); filled in by :class:`BatchSimulationEngine`.
    """

    setup_time_s: float = 0.0
    step_time_s: float = 0.0
    wall_time_s: float = 0.0
    n_steps: int = 0
    steps_per_s: float = 0.0
    cache_hits: int = 0
    cache_misses: int = 0
    cache_hit_rate: float = 0.0
    vectorised: bool = True
    executor: str = "serial"
    n_workers: int = 1

    def summary(self) -> dict:
        """Headline metrics as a plain dictionary (for tables/JSON)."""
        return {
            "wall_time_s": round(self.wall_time_s, 4),
            "steps_per_s": round(self.steps_per_s, 1),
            "cache_hit_rate": round(self.cache_hit_rate, 4),
            "vectorised": self.vectorised,
            "executor": self.executor,
            "n_workers": self.n_workers,
        }


@dataclass(frozen=True)
class BatchMetrics:
    """Aggregate metrics of one :meth:`BatchSimulationEngine.run` call."""

    wall_time_s: float
    n_jobs: int
    n_workers: int
    executor: str
    total_steps: int
    steps_per_s: float
    cache_hits: int
    cache_misses: int

    @property
    def cache_hit_rate(self) -> float:
        """Aggregate cooling-cache hit rate across all jobs."""
        lookups = self.cache_hits + self.cache_misses
        if not lookups:
            return 0.0
        return self.cache_hits / lookups

    def summary(self) -> dict:
        """Headline metrics as a plain dictionary (for tables/JSON)."""
        return {
            "jobs": self.n_jobs,
            "executor": self.executor,
            "workers": self.n_workers,
            "wall_time_s": round(self.wall_time_s, 3),
            "steps_per_s": round(self.steps_per_s, 1),
            "cache_hit_rate": round(self.cache_hit_rate, 4),
        }


# ----------------------------------------------------------------------
# Jobs
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class SimulationJob:
    """One (scheme x trace) pair to evaluate.

    ``cpu_model`` / ``teg_module`` default to the simulator's
    paper-calibrated hardware when omitted; heterogeneous-fleet sweeps
    pass per-slice models.
    """

    trace: WorkloadTrace
    config: SimulationConfig
    cpu_model: CpuThermalModel | None = None
    teg_module: TegModule | None = None

    @property
    def key(self) -> tuple[str, str]:
        """``(scheme, trace)`` label used to index batch results."""
        return (self.config.name, self.trace.name)


class _CachedVectorisedSimulator(DatacenterSimulator):
    """A :class:`DatacenterSimulator` with memoised, batched stepping.

    The scheduler, policy, partitioning and aggregation all come from
    the parent class; only two things change:

    * cooling decisions go through a :class:`CoolingDecisionCache`;
    * the per-server thermal/TEG evaluation is batched across all
      circulations that chose the same (clamped) cooling setting.
    """

    def __init__(self, trace: WorkloadTrace, config: SimulationConfig,
                 cpu_model: CpuThermalModel | None = None,
                 teg_module: TegModule | None = None,
                 cache: CoolingDecisionCache | None = None,
                 vectorised: bool = True) -> None:
        kwargs = {}
        if cpu_model is not None:
            kwargs["cpu_model"] = cpu_model
        if teg_module is not None:
            kwargs["teg_module"] = teg_module
        super().__init__(trace, config, **kwargs)
        # `is None` check: an empty cache is falsy (it has __len__).
        self._cache = cache if cache is not None else CoolingDecisionCache()
        self._vectorised = vectorised
        self._context = (config.name, config.policy, config.scheduler,
                         config.cold_source_temp_c, config.safe_temp_c)

    @property
    def cache(self) -> CoolingDecisionCache:
        """The cooling-decision cache backing this simulator."""
        return self._cache

    def _decide(self, scheduled: np.ndarray):
        return self._cache.decide(self._policy, scheduled, self._context)

    def _run_step(self, step_index: int):
        if not self._vectorised:
            return super()._run_step(step_index)
        step_utils = self.trace.step(step_index)

        # Phase 1 — schedule and decide per circulation (cache-assisted).
        scheduled_groups = []
        applied_settings = []
        for group, circulation in zip(self._groups, self._circulations):
            scheduled = self._scheduler.schedule(step_utils[group])
            decision = self._decide(scheduled)
            scheduled_groups.append(scheduled)
            applied_settings.append(circulation.cdu.apply(decision.setting))

        # Phase 2 — batched per-server evaluation.  All model entry
        # points are elementwise over utilisation, so evaluating the
        # gathered batch yields exactly the per-circulation values.
        n = self.trace.n_servers
        sched_all = np.empty(n)
        cpu_temps = np.empty(n)
        outlet_temps = np.empty(n)
        cpu_powers = np.empty(n)
        teg_powers = np.empty(n)
        for group, scheduled in zip(self._groups, scheduled_groups):
            sched_all[group] = scheduled

        by_setting: dict[tuple[float, float], list[int]] = {}
        for index, applied in enumerate(applied_settings):
            by_setting.setdefault(
                (applied.flow_l_per_h, applied.inlet_temp_c),
                []).append(index)
        for members in by_setting.values():
            applied = applied_settings[members[0]]
            if len(members) == 1:
                indices = self._groups[members[0]]
            else:
                indices = np.concatenate(
                    [self._groups[m] for m in members])
            batch = sched_all[indices]
            outlets = self.cpu_model.outlet_temp_c(batch, applied)
            cpu_temps[indices] = self.cpu_model.cpu_temp_c(batch, applied)
            outlet_temps[indices] = outlets
            cpu_powers[indices] = self.cpu_model.cpu_power_w(batch)
            teg_powers[indices] = self.teg_module.generation_w(
                outlets, self.config.cold_source_temp_c,
                applied.flow_l_per_h)

        # Phase 3 — per-circulation facility accounting, then fold with
        # the serial aggregation (same order, same arithmetic).
        states = []
        for group, circulation, applied, scheduled in zip(
                self._groups, self._circulations, applied_settings,
                scheduled_groups):
            group_powers = cpu_powers[group]
            captured_heat_w = float(np.sum(group_powers))
            tower_heat, chiller_heat = circulation.tower.split_with_chiller(
                captured_heat_w, applied.inlet_temp_c,
                circulation.wet_bulb_c)
            states.append(CirculationState(
                utilisations=scheduled,
                cpu_temps_c=cpu_temps[group],
                outlet_temps_c=outlet_temps[group],
                cpu_powers_w=group_powers,
                teg_powers_w=teg_powers[group],
                setting=applied,
                chiller_power_w=circulation.chiller.electricity_w_for_heat(
                    chiller_heat),
                tower_power_w=circulation.tower.electricity_w_for_heat(
                    tower_heat),
                pump_power_w=circulation.n_servers * loop_pump_power_w(
                    circulation.pipe_segments, applied.flow_l_per_h,
                    applied.inlet_temp_c),
            ))
        return self._aggregate_step(step_index, step_utils, states)


def simulate(trace: WorkloadTrace, config: SimulationConfig,
             cpu_model: CpuThermalModel | None = None,
             teg_module: TegModule | None = None, *,
             vectorised: bool = True,
             cache: CoolingDecisionCache | None = None,
             cache_resolution: float = DEFAULT_CACHE_RESOLUTION,
             ) -> SimulationResult:
    """Run one scheme over one trace through the engine's fast path.

    Returns a :class:`SimulationResult` that is bit-identical to
    ``DatacenterSimulator(trace, config, ...).run()`` but carries
    :class:`EngineMetrics` (phase wall times, steps/sec, cache stats).
    """
    started = time.perf_counter()
    if cache is None:
        cache = CoolingDecisionCache(resolution=cache_resolution)
    simulator = _CachedVectorisedSimulator(
        trace, config, cpu_model, teg_module, cache=cache,
        vectorised=vectorised)
    setup_done = time.perf_counter()
    result = simulator.run()
    finished = time.perf_counter()
    step_time = finished - setup_done
    result.metrics = EngineMetrics(
        setup_time_s=setup_done - started,
        step_time_s=step_time,
        wall_time_s=finished - started,
        n_steps=trace.n_steps,
        steps_per_s=trace.n_steps / step_time if step_time > 0 else 0.0,
        cache_hits=cache.stats.hits,
        cache_misses=cache.stats.misses,
        cache_hit_rate=cache.stats.hit_rate,
        vectorised=vectorised,
    )
    return result


def _execute_job(job: SimulationJob, vectorised: bool,
                 cache_resolution: float) -> SimulationResult:
    """Worker entry point (module-level so process pools can pickle it)."""
    return simulate(job.trace, job.config, job.cpu_model, job.teg_module,
                    vectorised=vectorised,
                    cache_resolution=cache_resolution)


# ----------------------------------------------------------------------
# Batch layer
# ----------------------------------------------------------------------

@dataclass
class BatchResult:
    """Results and aggregate metrics of one batch run."""

    results: list[SimulationResult]
    metrics: BatchMetrics

    def get(self, scheme: str, trace_name: str) -> SimulationResult:
        """Look one result up by its (scheme, trace) label."""
        for result in self.results:
            if (result.scheme, result.trace_name) == (scheme, trace_name):
                return result
        raise ConfigurationError(
            f"no result for scheme {scheme!r} on trace {trace_name!r}")

    def summaries(self) -> list[dict]:
        """Per-job headline summaries plus engine metrics."""
        out = []
        for result in self.results:
            summary = result.summary()
            if result.metrics is not None:
                summary["engine"] = result.metrics.summary()
            out.append(summary)
        return out


def resolve_workers(n_workers: int | None, n_jobs: int) -> int:
    """Worker count for a batch: explicit > ``REPRO_WORKERS`` > default.

    The default is one worker per job capped at the CPU count; the
    result is always at least 1.
    """
    if n_workers is None:
        env = os.environ.get(WORKERS_ENV_VAR)
        if env is not None:
            try:
                n_workers = int(env)
            except ValueError:
                raise ConfigurationError(
                    f"{WORKERS_ENV_VAR} must be an integer, "
                    f"got {env!r}") from None
        else:
            n_workers = min(n_jobs, os.cpu_count() or 1)
    return max(1, min(n_workers, max(n_jobs, 1)))


class BatchSimulationEngine:
    """Run many (scheme x trace) simulations through one API.

    Parameters
    ----------
    n_workers:
        Parallel workers; ``None`` defers to ``REPRO_WORKERS`` or the
        CPU count.  ``1`` runs serially in-process.
    vectorised:
        Use the NumPy-batched step loop (results are bit-identical
        either way; vectorised is faster).
    cache_resolution:
        Utilisation quantisation of each job's decision cache.
    prefer:
        ``"process"`` (default), ``"thread"`` or ``"serial"``.  Process
        pools that cannot start (sandboxes, exotic platforms) degrade
        automatically: process -> thread -> serial.
    """

    def __init__(self, n_workers: int | None = None, *,
                 vectorised: bool = True,
                 cache_resolution: float = DEFAULT_CACHE_RESOLUTION,
                 prefer: str = "process") -> None:
        if prefer not in ("process", "thread", "serial"):
            raise ConfigurationError(
                f"prefer must be 'process', 'thread' or 'serial', "
                f"got {prefer!r}")
        self.n_workers = n_workers
        self.vectorised = vectorised
        self.cache_resolution = cache_resolution
        self.prefer = prefer

    # -- executors -----------------------------------------------------

    def _run_serial(self, jobs: Sequence[SimulationJob]
                    ) -> list[SimulationResult]:
        return [_execute_job(job, self.vectorised, self.cache_resolution)
                for job in jobs]

    def _run_pool(self, jobs: Sequence[SimulationJob], workers: int,
                  kind: str) -> list[SimulationResult]:
        if kind == "process":
            from concurrent.futures import ProcessPoolExecutor

            executor_cls = ProcessPoolExecutor
        else:
            executor_cls = ThreadPoolExecutor
        with executor_cls(max_workers=workers) as pool:
            return list(pool.map(
                _execute_job, jobs,
                [self.vectorised] * len(jobs),
                [self.cache_resolution] * len(jobs)))

    def run(self, jobs: Iterable[SimulationJob]) -> BatchResult:
        """Execute every job and return results in submission order."""
        jobs = list(jobs)
        if not jobs:
            raise ConfigurationError("batch must contain at least one job")
        for job in jobs:
            if not isinstance(job, SimulationJob):
                raise ConfigurationError(
                    f"jobs must be SimulationJob instances, got "
                    f"{type(job).__name__}")
        workers = resolve_workers(self.n_workers, len(jobs))
        started = time.perf_counter()
        executor = self.prefer
        if workers <= 1 or self.prefer == "serial" or len(jobs) == 1:
            executor = "serial"
            results = self._run_serial(jobs)
        else:
            attempts = (["process", "thread"] if self.prefer == "process"
                        else ["thread"])
            results = None
            for kind in attempts:
                try:
                    results = self._run_pool(jobs, workers, kind)
                    executor = kind
                    break
                except Exception:  # pool unavailable: degrade gracefully
                    continue
            if results is None:
                executor = "serial"
                results = self._run_serial(jobs)
        wall = time.perf_counter() - started
        if executor == "serial":
            workers = 1

        total_steps = 0
        cache_hits = 0
        cache_misses = 0
        for result in results:
            metrics = result.metrics
            if metrics is None:
                continue
            metrics.executor = executor
            metrics.n_workers = workers
            total_steps += metrics.n_steps
            cache_hits += metrics.cache_hits
            cache_misses += metrics.cache_misses
        return BatchResult(
            results=results,
            metrics=BatchMetrics(
                wall_time_s=wall,
                n_jobs=len(jobs),
                n_workers=workers,
                executor=executor,
                total_steps=total_steps,
                steps_per_s=total_steps / wall if wall > 0 else 0.0,
                cache_hits=cache_hits,
                cache_misses=cache_misses,
            ),
        )


def run_batch(jobs: Iterable[SimulationJob],
              n_workers: int | None = None, *,
              vectorised: bool = True,
              prefer: str = "process") -> BatchResult:
    """One-call convenience wrapper around :class:`BatchSimulationEngine`."""
    engine = BatchSimulationEngine(n_workers, vectorised=vectorised,
                                   prefer=prefer)
    return engine.run(jobs)


def compare_batch(traces: Sequence[WorkloadTrace],
                  configs: Sequence[SimulationConfig],
                  n_workers: int | None = None, *,
                  cpu_model: CpuThermalModel | None = None,
                  teg_module: TegModule | None = None,
                  vectorised: bool = True,
                  prefer: str = "process") -> BatchResult:
    """Run the full cross product of ``traces`` x ``configs`` as one batch."""
    jobs = [SimulationJob(trace=trace, config=config, cpu_model=cpu_model,
                          teg_module=teg_module)
            for trace in traces for config in configs]
    return run_batch(jobs, n_workers, vectorised=vectorised, prefer=prefer)


__all__ = [
    "WORKERS_ENV_VAR",
    "DEFAULT_CACHE_RESOLUTION",
    "CacheStats",
    "CoolingDecisionCache",
    "EngineMetrics",
    "BatchMetrics",
    "SimulationJob",
    "BatchResult",
    "BatchSimulationEngine",
    "simulate",
    "run_batch",
    "compare_batch",
    "resolve_workers",
]

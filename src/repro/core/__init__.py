"""Core: the H2P system facade and the trace-driven datacenter simulator.

* :mod:`repro.core.config` — simulation/scheme configuration, including
  the paper's two evaluated schemes (*TEG_Original*, *TEG_LoadBalance*);
* :mod:`repro.core.results` — result containers and scheme comparison;
* :mod:`repro.core.simulator` — the time-stepped cluster simulator that
  produces Fig. 14 / Fig. 15;
* :mod:`repro.core.engine` — the parallel batch execution layer (many
  (scheme x trace) runs through one API, cached and vectorised);
* :mod:`repro.core.shard` — fleet-scale sharded execution: one huge
  trace split into circulation-block x time-window tiles, dispatched
  over the engine's executor and merged back bit-identically;
* :mod:`repro.core.h2p` — the top-level :class:`H2PSystem` facade a
  downstream user starts from.
"""

from .config import (SimulationConfig, teg_original,
                     teg_loadbalance, teg_static)
from .results import (
    ColumnarSteps,
    SafetyViolation,
    SimulationResult,
    StepRecord,
    SchemeComparison,
)
from .simulator import DatacenterSimulator
from .engine import (
    EXECUTION_MODES,
    BatchResult,
    BatchSimulationEngine,
    CoolingDecisionCache,
    EngineMetrics,
    FailedJob,
    KernelTimings,
    SharedTraceRef,
    SimulationJob,
    compare_batch,
    reap_orphaned_segments,
    run_batch,
    simulate,
)
from .shard import (
    ShardOutcome,
    ShardSpec,
    audit_merged_result,
    merge_shard_outcomes,
    plan_shards,
    run_shard,
    simulate_sharded,
)
from .checkpoint import CheckpointStore, RunKey, run_key, trace_digest
from .cache import (ResultCache, ResultCacheStats, resolve_result_cache,
                    result_key, warm_keys)
from .h2p import H2PSystem
from .facility import FacilityModel, FacilityReport
from .seasonal import SeasonalStudy, MonthOutcome, annual_summary

__all__ = [
    "SimulationConfig",
    "teg_original",
    "teg_loadbalance",
    "teg_static",
    "SimulationResult",
    "StepRecord",
    "ColumnarSteps",
    "SafetyViolation",
    "SchemeComparison",
    "DatacenterSimulator",
    "BatchSimulationEngine",
    "BatchResult",
    "SimulationJob",
    "FailedJob",
    "EngineMetrics",
    "KernelTimings",
    "SharedTraceRef",
    "EXECUTION_MODES",
    "CoolingDecisionCache",
    "ShardSpec",
    "ShardOutcome",
    "plan_shards",
    "run_shard",
    "merge_shard_outcomes",
    "audit_merged_result",
    "simulate_sharded",
    "CheckpointStore",
    "RunKey",
    "run_key",
    "trace_digest",
    "ResultCache",
    "ResultCacheStats",
    "resolve_result_cache",
    "result_key",
    "warm_keys",
    "reap_orphaned_segments",
    "simulate",
    "run_batch",
    "compare_batch",
    "H2PSystem",
    "FacilityModel",
    "FacilityReport",
    "SeasonalStudy",
    "MonthOutcome",
    "annual_summary",
]

"""Simulation configuration and the paper's evaluated schemes.

A :class:`SimulationConfig` bundles every knob of the trace-driven
evaluation: how servers are grouped into circulations, which workload
scheduler runs, which cooling policy chooses the setting, and the safety
envelope.  The two schemes the paper compares are provided as factories:

* :func:`teg_original` — cooling-setting adjustment only, keyed on the
  hottest server of each circulation;
* :func:`teg_loadbalance` — the same plus ideal workload balancing, keyed
  on the circulation average.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Sequence

from ..constants import (
    CPU_SAFE_TEMP_C,
    EVAL_CONTROL_INTERVAL_S,
    NATURAL_WATER_TEMP_C,
)
from ..control.cooling_policy import (
    AnalyticPolicy,
    CoolingPolicy,
    LookupSpacePolicy,
    StaticPolicy,
)
from ..control.lookup_space import LookupSpace
from ..control.scheduling import (
    IdealBalancer,
    NoScheduler,
    ThresholdBalancer,
    WorkloadScheduler,
)
from ..errors import ConfigurationError
from ..teg.module import TegModule, default_server_module
from ..thermal.cpu_model import CoolingSetting, CpuThermalModel

_SCHEDULERS = ("none", "ideal", "threshold")
_POLICIES = ("lookup", "analytic", "static")


@dataclass(frozen=True)
class SimulationConfig:
    """Everything needed to run one evaluation scheme over a trace.

    Attributes
    ----------
    name:
        Scheme label used in result tables ("TEG_Original", ...).
    circulation_size:
        Servers per water circulation (Sec. V-A; the evaluation groups
        the 1,000-server cluster into circulations of this size).  The
        default of 20 corresponds to one rack per CDU loop and calibrates
        the Fig. 14 headline numbers.
    control_interval_s:
        How often the cooling setting is re-decided (paper: 5 minutes).
    scheduler:
        ``"none"`` | ``"ideal"`` | ``"threshold"`` — the workload
        scheduling strategy.
    policy:
        ``"lookup"`` (the paper's Step 1-3 space search) | ``"analytic"``
        (model inversion) | ``"static"`` (fixed setting baseline).
    safe_temp_c:
        ``T_safe`` the policies hold the binding CPU at.
    cold_source_temp_c:
        Natural-water temperature on the TEG cold side.
    wet_bulb_c:
        Ambient wet-bulb temperature seen by the cooling towers.
    inlet_min_c / inlet_max_c:
        Admissible inlet set-point band of the CDU.
    flow_candidates_l_per_h:
        Flow rates the policies may choose from.
    threshold_cap:
        Cap of the threshold balancer (only used when
        ``scheduler == "threshold"``).
    static_setting:
        Fixed setting for the static policy.
    strict_safety:
        If True the simulator raises on any CPU temperature violation
        instead of recording it.
    """

    name: str = "TEG_Original"
    circulation_size: int = 20
    control_interval_s: float = EVAL_CONTROL_INTERVAL_S
    scheduler: str = "none"
    policy: str = "lookup"
    safe_temp_c: float = CPU_SAFE_TEMP_C
    cold_source_temp_c: float = NATURAL_WATER_TEMP_C
    wet_bulb_c: float = 18.0
    inlet_min_c: float = 20.0
    inlet_max_c: float = 54.5
    flow_candidates_l_per_h: Sequence[float] = (
        20.0, 50.0, 100.0, 150.0)
    threshold_cap: float = 0.5
    static_setting: CoolingSetting = field(
        default_factory=lambda: CoolingSetting(flow_l_per_h=50.0,
                                               inlet_temp_c=45.0))
    strict_safety: bool = False

    def __post_init__(self) -> None:
        if self.circulation_size <= 0:
            raise ConfigurationError(
                f"circulation_size must be > 0, got {self.circulation_size}")
        if self.scheduler not in _SCHEDULERS:
            raise ConfigurationError(
                f"scheduler must be one of {_SCHEDULERS}, "
                f"got {self.scheduler!r}")
        if self.policy not in _POLICIES:
            raise ConfigurationError(
                f"policy must be one of {_POLICIES}, got {self.policy!r}")
        if self.control_interval_s <= 0:
            raise ConfigurationError("control_interval_s must be > 0")
        if self.inlet_min_c >= self.inlet_max_c:
            raise ConfigurationError(
                "inlet_min_c must be below inlet_max_c")
        if not self.flow_candidates_l_per_h:
            raise ConfigurationError("flow_candidates must not be empty")

    # ------------------------------------------------------------------
    # Component factories
    # ------------------------------------------------------------------

    def build_scheduler(self) -> WorkloadScheduler:
        """Instantiate the configured workload scheduler."""
        if self.scheduler == "none":
            return NoScheduler()
        if self.scheduler == "ideal":
            return IdealBalancer()
        return ThresholdBalancer(cap=self.threshold_cap)

    def build_policy(self, model: CpuThermalModel,
                     teg_module: TegModule | None = None,
                     space: LookupSpace | None = None) -> CoolingPolicy:
        """Instantiate the configured cooling policy.

        Parameters
        ----------
        model:
            The CPU thermal model the policies consult.
        teg_module:
            Per-server TEG module (defaults to the paper's 12-TEG module).
        space:
            Pre-built lookup space to share across circulations; one is
            built on demand when omitted (lookup policy only).
        """
        import numpy as np

        teg_module = teg_module or default_server_module()
        aggregation = self.build_scheduler().policy_aggregation
        if self.policy == "static":
            return StaticPolicy(setting=self.static_setting, model=model,
                                teg_module=teg_module,
                                cold_source_temp_c=self.cold_source_temp_c,
                                aggregation=aggregation)
        if self.policy == "analytic":
            return AnalyticPolicy(
                model=model, teg_module=teg_module,
                cold_source_temp_c=self.cold_source_temp_c,
                safe_temp_c=self.safe_temp_c,
                aggregation=aggregation,
                flow_candidates=tuple(self.flow_candidates_l_per_h),
                inlet_min_c=self.inlet_min_c,
                inlet_max_c=self.inlet_max_c)
        if space is None:
            space = LookupSpace(
                model=model,
                flow_grid=np.asarray(self.flow_candidates_l_per_h),
                inlet_grid=np.linspace(self.inlet_min_c, self.inlet_max_c,
                                       36))
        return LookupSpacePolicy(
            space=space, teg_module=teg_module,
            cold_source_temp_c=self.cold_source_temp_c,
            safe_temp_c=self.safe_temp_c,
            aggregation=aggregation)


def teg_original(**overrides) -> SimulationConfig:
    """The paper's *TEG_Original* scheme: cooling adjustment, no scheduling."""
    config = SimulationConfig(name="TEG_Original", scheduler="none",
                              policy="lookup")
    return replace(config, **overrides) if overrides else config


def teg_loadbalance(**overrides) -> SimulationConfig:
    """The paper's *TEG_LoadBalance* scheme: adjustment + ideal balancing."""
    config = SimulationConfig(name="TEG_LoadBalance", scheduler="ideal",
                              policy="lookup")
    return replace(config, **overrides) if overrides else config


def teg_static(**overrides) -> SimulationConfig:
    """The no-adjustment baseline: fixed warm-water setting, no scheduling.

    The harvest floor both paper schemes are measured against — useful
    as the third column in scheme sweeps (``h2p batch --schemes static
    original loadbalance``).
    """
    config = SimulationConfig(name="TEG_Static", scheduler="none",
                              policy="static")
    return replace(config, **overrides) if overrides else config

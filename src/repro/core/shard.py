"""Fleet-scale sharded simulation: split, run, and merge bit-identically.

The paper's Google trace is 12.5k servers for a month (~8,900 control
intervals); one kernel invocation over that plane is a double-digit-GB
working set and a single-core job.  Cooling decisions are per
circulation and the facility split is per-``(step, circulation)`` cell,
so the plane factors cleanly into **rectangular tiles**: blocks of whole
circulations times bounded time windows.  This module

* plans the tiling (:func:`plan_shards` — server boundaries always land
  on circulation boundaries, time windows may be ragged at the end),
* runs kernel phases 1–3 on one tile (:func:`run_shard`, returning a
  :class:`ShardOutcome` of per-circulation columns), and
* stitches the tiles back into whole-cluster columns and replays the
  phase-4 fold once over them (:func:`merge_shard_outcomes`).

Bit-identity
------------
The merge is **bit-identical** to the unsharded kernel because nothing
numeric is ever combined *across* shards:

* every ``(step, circulation)`` cell is computed exactly once, by
  exactly the arithmetic the unsharded kernel would use (the scheduled
  plane, decisions, model batches and per-circulation reductions of a
  tile depend only on that tile's cells);
* the cluster fold (:func:`repro.core.kernel.fold_columns`) runs once,
  on the stitched full-length columns, in circulation order — the same
  sequential float adds as unsharded (summing per-shard subtotals would
  not be, since float addition is not associative);
* violations and errors are emitted in the global frame by the shard
  itself (``step_offset`` / ``server_offset``) and the globally earliest
  error is selected by the serial evaluation order ``(step, phase,
  circulation)``.

One subtlety breaks naive tiling: a memoising policy
(:class:`~repro.control.cooling_policy.LookupSpacePolicy`) derives a
quantised bucket's decision from the **exact** binding utilisation that
first lands in the bucket, so decisions are path-dependent on priming
order — and a shard's tile-local first occurrences need not match the
global serial ones.  :func:`prime_decisions` therefore replays kernel
phase 1 over the *full* plane on the coordinator, priming one decision
cache in global first-occurrence order; every shard runs against (a
clone of) that cache, so all shard-side lookups hit and the policy is
never consulted out of order.  The primed store is bounded by the
policy's quantisation (a few hundred entries), keeping worker payloads
independent of trace length.

Fault-carrying runs shard by **time only**: fault masks are drawn once
over the whole cluster and sensor-noise RNG streams are keyed on global
step indices, so a time window replays exactly its slice of the
unsharded fault run, and merging is plain record concatenation.
Decisions in a fault run key on noisy sensor readings that no pre-pass
can enumerate, so fault windows execute **sequentially in time order**,
sharing one decision cache and one policy instance — reproducing the
serial priming sequence exactly.

``tests/core/test_shard_parity.py`` enforces all of this, golden
fixtures and hypothesis property tests included.
"""

from __future__ import annotations

import os
import time
from contextlib import nullcontext
from dataclasses import dataclass, field, replace
from typing import Sequence

import numpy as np

from .. import obs
from ..errors import (
    ConfigurationError,
    CoolingFailureError,
    PhysicalRangeError,
    ResultIntegrityError,
    ShardExecutionError,
)
from ..control.scheduling import NoScheduler
from ..faults import FaultSchedule
from ..teg.module import TegModule
from ..thermal.cpu_model import CpuThermalModel
from ..workloads.trace import WorkloadTrace
from .config import SimulationConfig
from .cache import ResultCache, resolve_result_cache, result_key
from .engine import (
    DEFAULT_CACHE_RESOLUTION,
    CacheStats,
    CoolingDecisionCache,
    EngineMetrics,
    SharedTraceRef,
    _CachedVectorisedSimulator,
    _trace_from_ref,
    _warm_restore,
    _warm_save,
)
from .kernel import (
    KernelColumns,
    _decide_cells,
    _scheduled_plane,
    fold_columns,
    run_kernel_columns,
)
from .results import ColumnarSteps, SimulationResult

__all__ = [
    "AUTO_SHARD_MIN_CELLS",
    "DEFAULT_SHARD_SERVERS",
    "DEFAULT_SHARD_STEPS",
    "SHARD_SERVERS_ENV_VAR",
    "SHARD_STEPS_ENV_VAR",
    "ShardError",
    "ShardOutcome",
    "ShardSpec",
    "audit_merged_result",
    "clone_cache",
    "merge_shard_outcomes",
    "plan_shards",
    "prime_decisions",
    "primed_or_warm",
    "resolve_shard_size",
    "run_shard",
    "simulate_sharded",
]

#: Environment variables overriding the shard tile size (servers wide,
#: steps long).  Explicit engine arguments win over the environment.
SHARD_SERVERS_ENV_VAR = "REPRO_SHARD_SERVERS"
SHARD_STEPS_ENV_VAR = "REPRO_SHARD_STEPS"

#: A kernel job auto-shards once its plane reaches this many cells
#: (steps x servers) — about the point where splitting pays for the
#: merge.  12.5k x 8,900 is ~111M cells, 55 default tiles.
AUTO_SHARD_MIN_CELLS = 2_000_000

#: Default tile dimensions when auto-sharding (clamped to the trace).
DEFAULT_SHARD_SERVERS = 2500
DEFAULT_SHARD_STEPS = 2500


@dataclass(frozen=True)
class ShardSpec:
    """One rectangular tile of a ``(steps x servers)`` trace plane.

    ``server_start:server_stop`` always covers whole circulations
    ``circ_start:circ_stop`` of the *global* partitioning (the planner
    guarantees it), so a shard's circulation columns slot directly into
    the stitched whole-cluster arrays.
    """

    index: int
    step_start: int
    step_stop: int
    server_start: int
    server_stop: int
    circ_start: int
    circ_stop: int

    @property
    def n_steps(self) -> int:
        """Time-window length of the tile."""
        return self.step_stop - self.step_start

    @property
    def n_servers(self) -> int:
        """Server width of the tile."""
        return self.server_stop - self.server_start

    @property
    def n_circs(self) -> int:
        """Whole circulations covered by the tile."""
        return self.circ_stop - self.circ_start

    @property
    def n_cells(self) -> int:
        """Trace cells (steps x servers) the tile covers."""
        return self.n_steps * self.n_servers


@dataclass(frozen=True)
class ShardError:
    """The earliest error one shard would have raised, in global frame.

    ``order`` reproduces the serial raise order across shards: earliest
    step first; within a step every circulation's evaluation (capacity
    checks, phase 0) precedes the aggregation (strict safety, phase 1);
    within a phase, circulations raise in index order.
    """

    exception: Exception
    phase: int
    step: int
    circ: int

    @property
    def order(self) -> tuple[int, int, int]:
        """Sort key ``(step, phase, circ)`` of the serial raise order."""
        return (self.step, self.phase, self.circ)


@dataclass
class ShardOutcome:
    """What one executed shard ships back to the merge.

    Kernel shards carry ``columns`` (pre-fold per-circulation planes,
    violations already in the global frame); fault shards carry the
    serial loop's ``records`` list instead.  ``error`` is set when the
    shard's slice of the run would have raised — the merge decides
    whether it is the globally earliest one.
    """

    spec: ShardSpec
    columns: KernelColumns | None = None
    records: list = field(default_factory=list)
    violations: list = field(default_factory=list)
    error: ShardError | None = None
    cache_hits: int = 0
    cache_misses: int = 0
    n_cells: int = 0
    telemetry: "obs.TelemetrySnapshot | None" = None
    #: The policy instance a fault shard decided with — the sequential
    #: fault orchestration carries it into the next time window so a
    #: memoising policy replays the serial priming sequence.  Kernel
    #: shards leave it ``None`` (they run off a pre-primed cache).
    policy: object = field(default=None, repr=False, compare=False)


def resolve_shard_size(explicit: int | None, env_var: str) -> int | None:
    """One shard dimension: explicit > environment > ``None`` (unset).

    Raises
    ------
    ConfigurationError
        When the explicit value or the environment variable is
        non-positive or not an integer.
    """
    if explicit is not None:
        if explicit <= 0:
            raise ConfigurationError(
                f"shard size must be > 0, got {explicit}")
        return int(explicit)
    env = os.environ.get(env_var)
    if env is None:
        return None
    try:
        value = int(env)
    except ValueError:
        raise ConfigurationError(
            f"{env_var} must be an integer, got {env!r}") from None
    if value <= 0:
        raise ConfigurationError(f"{env_var} must be > 0, got {value}")
    return value


def plan_shards(n_steps: int, n_servers: int, circulation_size: int,
                shard_servers: int | None = None,
                shard_steps: int | None = None) -> list[ShardSpec]:
    """Tile a ``(n_steps x n_servers)`` plane along both dimensions.

    ``shard_servers`` / ``shard_steps`` are *targets*: the server target
    is rounded **down** to whole circulations (never below one), both
    are clamped to the trace, and ``None`` leaves that dimension
    unsplit.  The last tile of either dimension may be ragged.  Tiles
    are ordered server-block-major, time-window-minor, and cover every
    cell exactly once.

    Raises
    ------
    ConfigurationError
        On non-positive dimensions or targets.
    """
    if n_steps <= 0 or n_servers <= 0:
        raise ConfigurationError(
            f"trace plane must be non-empty, got "
            f"{n_steps} x {n_servers}")
    if circulation_size <= 0:
        raise ConfigurationError(
            f"circulation_size must be > 0, got {circulation_size}")
    for label, value in (("shard_servers", shard_servers),
                         ("shard_steps", shard_steps)):
        if value is not None and value <= 0:
            raise ConfigurationError(
                f"{label} must be > 0, got {value}")

    # Global circulation partitioning (trailing ragged group kept),
    # mirroring DatacenterSimulator._partition_servers.
    n_circs = -(-n_servers // circulation_size)
    if shard_servers is None:
        circs_per_shard = n_circs
    else:
        circs_per_shard = max(
            1, min(shard_servers, n_servers) // circulation_size)
    step_width = (n_steps if shard_steps is None
                  else min(shard_steps, n_steps))

    specs: list[ShardSpec] = []
    for circ_start in range(0, n_circs, circs_per_shard):
        circ_stop = min(circ_start + circs_per_shard, n_circs)
        server_start = circ_start * circulation_size
        server_stop = min(circ_stop * circulation_size, n_servers)
        for step_start in range(0, n_steps, step_width):
            specs.append(ShardSpec(
                index=len(specs),
                step_start=step_start,
                step_stop=min(step_start + step_width, n_steps),
                server_start=server_start,
                server_stop=server_stop,
                circ_start=circ_start,
                circ_stop=circ_stop,
            ))
    return specs


def prime_decisions(trace: WorkloadTrace, config: SimulationConfig,
                    cpu_model: CpuThermalModel | None = None,
                    teg_module: TegModule | None = None, *,
                    cache_resolution: float = DEFAULT_CACHE_RESOLUTION
                    ) -> CoolingDecisionCache | None:
    """Every cooling decision of ``trace``, primed in serial order.

    A memoising policy (``LookupSpacePolicy`` exposes
    ``cache_resolution``) derives a quantised bucket's decision from the
    *exact* binding utilisation that first lands in the bucket — so its
    decisions are path-dependent on priming order, and a shard's
    tile-local first occurrences need not match the global serial ones.
    This pre-pass replays kernel phase 1 (schedule + decide) over the
    full plane, priming one :class:`CoolingDecisionCache` with every
    ``(bucket, group size)`` key in global first-occurrence order.  A
    shard running against this cache answers every decision lookup from
    the store and never consults the policy, restoring bit-identity.

    Returns ``None`` for pure policies (analytic, static — no internal
    memo): their decisions are pure functions of the exact binding, so
    shard-local computation is already bit-identical and an exact-key
    table could grow with the trace.  The primed store is bounded by
    the policy's quantisation (a few hundred entries), independent of
    trace length.  Stats are reset before returning — shards account
    their own lookups.
    """
    return primed_or_warm(trace, config, cpu_model, teg_module,
                          cache_resolution=cache_resolution)


def primed_or_warm(trace: WorkloadTrace, config: SimulationConfig,
                   cpu_model: CpuThermalModel | None = None,
                   teg_module: TegModule | None = None, *,
                   cache_resolution: float = DEFAULT_CACHE_RESOLUTION,
                   result_cache: ResultCache | None = None,
                   trace_hash: str | None = None
                   ) -> CoolingDecisionCache | None:
    """:func:`prime_decisions` with a cross-run warm start.

    With a ``result_cache``, the decision pre-pass first tries the
    cache's warm-start store (see ``docs/cache.md``): a snapshot saved
    by an earlier run over the same trace and scheduling either
    restores the decisions verbatim (matching decision key) or replays
    each bucket's representative binding through the current policy —
    both reproduce exactly the cache :func:`prime_decisions` would
    build, at a fraction of the full-plane cost.  A cold prime saves
    its snapshot for the next run.  Without a ``result_cache`` this is
    exactly :func:`prime_decisions`.
    """
    sim = _CachedVectorisedSimulator(
        trace, config, cpu_model, teg_module,
        cache=CoolingDecisionCache(resolution=cache_resolution),
        mode="kernel")
    if not getattr(sim._policy, "cache_resolution", None):
        return None
    restored = None
    if result_cache is not None:
        restored = _warm_restore(result_cache, sim, trace, config,
                                 cpu_model, teg_module,
                                 trace_hash=trace_hash)
    if restored is None:
        raw = trace.utilisation
        # NoScheduler leaves the plane untouched; skip the full-plane
        # copy (at fleet scale it is the size of the trace itself).
        plane = (raw if type(sim._scheduler) is NoScheduler
                 else _scheduled_plane(sim, raw))
        _decide_cells(sim, plane)
    if result_cache is not None and restored != "direct":
        # Cold primes publish their snapshot; replays refresh it under
        # the current decision key so the next same-config run restores
        # directly.
        _warm_save(result_cache, sim, trace, config, cpu_model,
                   teg_module, trace_hash=trace_hash)
    cache = sim._cache
    cache.stats = CacheStats()
    return cache


def clone_cache(primed: CoolingDecisionCache | None
                ) -> CoolingDecisionCache | None:
    """A private copy of a primed cache (store shared-by-value, fresh stats).

    Concurrent shards must not share one mutable stats object; the store
    itself is tiny (see :func:`prime_decisions`) and never grows on a
    shard — every lookup hits — so a shallow dict copy suffices.
    """
    if primed is None:
        return None
    clone = CoolingDecisionCache(resolution=primed.resolution)
    clone._store = dict(primed._store)
    return clone


def run_shard(tile: WorkloadTrace, spec: ShardSpec,
              config: SimulationConfig,
              cpu_model: CpuThermalModel | None = None,
              teg_module: TegModule | None = None, *,
              faults: FaultSchedule | None = None,
              cache_resolution: float = DEFAULT_CACHE_RESOLUTION,
              cache: CoolingDecisionCache | None = None,
              policy: object = None,
              telemetry: bool = False) -> ShardOutcome:
    """Execute one tile and return its mergeable :class:`ShardOutcome`.

    ``tile`` is the windowed trace (``trace.window(...)`` on the
    coordinator, or a sliced shared-memory view in a worker); ``spec``
    places it in the global plane.  Kernel tiles run phases 1–3 of
    :mod:`repro.core.kernel` with the simulator's global offsets set, so
    violations and errors come back already in cluster coordinates.
    Fault tiles must span the full server width (masks are drawn over
    the whole cluster) and step the fault-aware serial loop.

    ``cache`` supplies the decision cache to run against — for kernel
    tiles a :func:`prime_decisions` pre-pass (required for bit-identity
    under memoising policies), for fault windows the shared cache the
    sequential orchestration carries across windows; ``None`` builds a
    fresh one (bit-exact only for pure policies or single-tile plans).
    ``policy`` injects the shared policy instance of a sequential fault
    run; the instance actually used rides back on the outcome.  Cache
    hit/miss counters on the outcome are deltas, so shared caches
    account correctly.

    With ``telemetry`` on, the shard records into a private
    :mod:`repro.obs` session whose snapshot rides back on the outcome —
    the same contract worker jobs already follow.
    """
    if (tile.n_steps, tile.n_servers) != (spec.n_steps, spec.n_servers):
        raise ConfigurationError(
            f"tile is {tile.n_steps} x {tile.n_servers} but shard "
            f"{spec.index} expects {spec.n_steps} x {spec.n_servers}")
    if faults is not None and spec.server_start != 0:
        raise ConfigurationError(
            "fault-carrying runs shard by time only: fault masks are "
            "drawn over the whole cluster, so a shard starting at "
            f"server {spec.server_start} cannot replay them")

    shard_config = config
    if spec.n_servers < config.circulation_size:
        # A tile holding only the global trailing ragged circulation:
        # partition it as the single underpopulated group it is.  The
        # decision-cache key carries the vector size, so the narrowed
        # config cannot alias a full circulation's decisions.
        shard_config = replace(config, circulation_size=spec.n_servers)

    local = obs.Telemetry() if telemetry else None
    outcome = ShardOutcome(spec=spec, n_cells=spec.n_cells)
    if cache is None:
        cache = CoolingDecisionCache(resolution=cache_resolution)
    hits_before = cache.stats.hits
    misses_before = cache.stats.misses
    with obs.session(local) if local is not None else nullcontext():
        with obs.span("engine.shard"):
            obs.add("shard.cells", spec.n_cells)
            try:
                if faults is not None:
                    _run_fault_shard(tile, spec, shard_config, cpu_model,
                                     teg_module, faults, cache, policy,
                                     outcome)
                else:
                    _run_kernel_shard(tile, spec, shard_config, cpu_model,
                                      teg_module, cache, outcome)
            except (ConfigurationError, ShardExecutionError):
                raise
            except Exception as exc:
                # Never let a shard failure surface as a bare exception:
                # the coordinator (and its telemetry) must always see
                # which tile failed and in which worker.  Simulation
                # errors (cooling failure, capacity breach) are already
                # captured as ``outcome.error`` by the helpers above —
                # anything landing here is unexpected.
                raise ShardExecutionError(
                    f"shard {spec.index} (steps [{spec.step_start}, "
                    f"{spec.step_stop}), servers [{spec.server_start}, "
                    f"{spec.server_stop})) failed in worker pid "
                    f"{os.getpid()}: [{type(exc).__name__}] {exc}",
                    shard_index=spec.index,
                    step_start=spec.step_start,
                    step_stop=spec.step_stop,
                    server_start=spec.server_start,
                    server_stop=spec.server_stop,
                    worker_pid=os.getpid()) from exc
        outcome.cache_hits = cache.stats.hits - hits_before
        outcome.cache_misses = cache.stats.misses - misses_before
        if local is not None:
            obs.add("engine.cache.hits", outcome.cache_hits)
            obs.add("engine.cache.misses", outcome.cache_misses)
    if local is not None:
        outcome.telemetry = local.snapshot()
    return outcome


def _run_kernel_shard(tile, spec, config, cpu_model, teg_module, cache,
                      outcome) -> None:
    """Kernel phases 1–3 over one tile, offsets in the global frame."""
    sim = _CachedVectorisedSimulator(
        tile, config, cpu_model, teg_module, cache=cache, mode="kernel",
        step_offset=spec.step_start, server_offset=spec.server_start)
    columns = run_kernel_columns(sim)
    outcome.columns = columns
    outcome.violations = columns.violations
    if columns.error is not None:
        outcome.error = ShardError(
            exception=columns.error.exception,
            phase=columns.error.phase,
            step=spec.step_start + columns.error.step,
            circ=spec.circ_start + columns.error.circ,
        )


def _run_fault_shard(tile, spec, config, cpu_model, teg_module, faults,
                     cache, policy, outcome) -> None:
    """The fault-aware serial loop over one full-width time window."""
    sim = _CachedVectorisedSimulator(
        tile, config, cpu_model, teg_module, cache=cache, mode="loop",
        faults=faults, step_offset=spec.step_start)
    if policy is not None:
        # Sequential fault windows share one policy so a memoising
        # policy's buckets are primed in the serial call order.
        sim._policy = policy
    outcome.policy = sim._policy
    try:
        result = sim.run()
    except CoolingFailureError as exc:
        # step_index is already global (the simulator applied its
        # offset); windows are disjoint in time, so this key orders
        # correctly against every other shard's error.
        outcome.error = ShardError(exception=exc, phase=1,
                                   step=exc.step_index, circ=0)
    except PhysicalRangeError as exc:
        # Capacity breaches carry no step; the window start preserves
        # the across-window order (one error per disjoint window).
        outcome.error = ShardError(exception=exc, phase=0,
                                   step=spec.step_start, circ=0)
    else:
        outcome.records = list(result.records)
        outcome.violations = list(result.violations)


def audit_merged_result(trace: WorkloadTrace, config: SimulationConfig,
                        result: SimulationResult) -> None:
    """Invariant audit of a merged result; raises on any finding.

    A stitching bug (a tile written to the wrong rows, a lost window, a
    double-counted circulation) would corrupt results silently — the
    merge is pure array surgery with no arithmetic to fail.  This
    auditor re-derives the invariants every correctly merged run must
    satisfy and refuses to return a result that breaks one:

    * **step count** — exactly one record per trace step;
    * **time base** — ``t_k == k * interval_s`` bit-exactly, strictly
      increasing (a shuffled or duplicated window cannot pass);
    * **energy-balance closure** — generation within ``[0, CPU power]``
      (PRE in ``[0, 1]``), facility powers finite and non-negative,
      every series finite (from
      :func:`repro.validation.audit_simulation_result`);
    * **violation consistency** — the per-step violation counts sum to
      the number of recorded :class:`SafetyViolation` objects, and no
      over-limit temperature goes unrecorded.

    Raises
    ------
    ResultIntegrityError
        Carrying every finding on ``issues``.
    """
    from ..validation import audit_simulation_result

    issues: list[str] = []
    n_steps = trace.n_steps
    if len(result.records) != n_steps:
        issues.append(f"merged result has {len(result.records)} records "
                      f"for a {n_steps}-step trace")
    else:
        expected = np.arange(n_steps) * trace.interval_s
        if not np.array_equal(result.times_s, expected):
            issues.append("time base is not exactly "
                          "k * interval_s per step")
        for name in ("chiller_power_w", "tower_power_w",
                     "pump_power_w"):
            series = result._series(name)
            if not np.all(np.isfinite(series)):
                issues.append(f"non-finite {name} series")
            elif np.any(series < 0):
                issues.append(f"negative {name}")
        recorded = len(result.violations)
        counted = result.total_safety_violations
        if recorded != counted:
            issues.append(f"{counted} violations counted per step but "
                          f"{recorded} violation records attached")
        issues.extend(audit_simulation_result(result).issues)
    if issues:
        raise ResultIntegrityError(
            f"merged result for {config.name!r} on {trace.name!r} "
            f"failed {len(issues)} integrity check(s): "
            + "; ".join(issues), issues=tuple(issues))


def merge_shard_outcomes(trace: WorkloadTrace, config: SimulationConfig,
                         outcomes: Sequence[ShardOutcome], *,
                         audit: bool = True) -> SimulationResult:
    """Stitch shard outcomes back into one whole-cluster result.

    Raises the globally earliest shard error (serial raise order) when
    any shard reported one.  Kernel outcomes are stitched column-wise
    and folded once; fault outcomes (time windows) are concatenated in
    window order.  Either way the result is bit-identical to running
    the trace unsharded, and (unless ``audit=False``) the merged result
    must pass :func:`audit_merged_result` before it is returned.
    """
    if not outcomes:
        raise ConfigurationError("cannot merge zero shard outcomes")
    errors = [o.error for o in outcomes if o.error is not None]
    if errors:
        raise min(errors, key=lambda e: e.order).exception

    n_steps, n_servers = trace.n_steps, trace.n_servers
    interval_s = trace.interval_s
    ordered = sorted(outcomes, key=lambda o: (o.spec.server_start,
                                              o.spec.step_start))
    if ordered[0].columns is None:
        # Fault path: full-width time windows; plain concatenation in
        # window order replays the serial append order exactly.
        records: list = []
        violations: list = []
        for outcome in ordered:
            records.extend(outcome.records)
            violations.extend(outcome.violations)
        result = SimulationResult(
            scheme=config.name, trace_name=trace.name,
            n_servers=n_servers, interval_s=interval_s, records=records)
        result.violations = violations
        if audit:
            audit_merged_result(trace, config, result)
        return result

    n_circs = max(o.spec.circ_stop for o in ordered)
    plane = lambda: np.empty((n_steps, n_circs))  # noqa: E731
    merged = KernelColumns(
        generation_c=plane(), heat_c=plane(), chiller_power_c=plane(),
        tower_power_c=plane(), pump_power_c=plane(), max_temp_c=plane(),
        inlet_cell=plane(), flow_cell=plane(),
        sizes=np.empty(n_circs, dtype=np.int64),
        violation_counts=np.zeros(n_steps, dtype=np.int64),
    )
    for outcome in ordered:
        spec, columns = outcome.spec, outcome.columns
        rows = slice(spec.step_start, spec.step_stop)
        cols = slice(spec.circ_start, spec.circ_stop)
        merged.generation_c[rows, cols] = columns.generation_c
        merged.heat_c[rows, cols] = columns.heat_c
        merged.chiller_power_c[rows, cols] = columns.chiller_power_c
        merged.tower_power_c[rows, cols] = columns.tower_power_c
        merged.pump_power_c[rows, cols] = columns.pump_power_c
        merged.max_temp_c[rows, cols] = columns.max_temp_c
        merged.inlet_cell[rows, cols] = columns.inlet_cell
        merged.flow_cell[rows, cols] = columns.flow_cell
        merged.sizes[cols] = columns.sizes
        # Integer counts: addition is exact and order-free.
        merged.violation_counts[rows] += columns.violation_counts
        merged.violations.extend(outcome.violations)

    # The unsharded kernel emits violations in row-major (step, server)
    # order; shard violations are already globally identified, so a
    # sort restores exactly that order.
    merged.violations.sort(key=lambda v: (v.step_index, v.server_id))

    raw = trace.utilisation
    records = ColumnarSteps({
        "time_s": np.arange(n_steps) * interval_s,
        "mean_utilisation": raw.mean(axis=1),
        "max_utilisation": raw.max(axis=1),
        **fold_columns(merged, n_servers),
        "safety_violations": merged.violation_counts,
        "degraded_circulations": np.zeros(n_steps, dtype=np.int64),
        "lost_harvest_w": np.zeros(n_steps),
        "active_faults": np.zeros(n_steps, dtype=np.int64),
    })
    result = SimulationResult(
        scheme=config.name, trace_name=trace.name, n_servers=n_servers,
        interval_s=interval_s, records=records)
    result.violations = merged.violations
    if audit:
        audit_merged_result(trace, config, result)
    return result


def _merged_telemetry(outcomes: Sequence[ShardOutcome]):
    """One :class:`repro.obs.TelemetrySnapshot` over all shard sessions."""
    telemetry = obs.Telemetry()
    merged_any = False
    for outcome in outcomes:
        if outcome.telemetry is not None:
            telemetry.merge_snapshot(outcome.telemetry)
            merged_any = True
    return telemetry.snapshot() if merged_any else None


def simulate_sharded(trace: WorkloadTrace, config: SimulationConfig,
                     cpu_model: CpuThermalModel | None = None,
                     teg_module: TegModule | None = None, *,
                     shard_servers: int | None = None,
                     shard_steps: int | None = None,
                     faults: FaultSchedule | None = None,
                     cache_resolution: float = DEFAULT_CACHE_RESOLUTION,
                     telemetry: bool | None = None,
                     checkpoint: "str | os.PathLike | None" = None,
                     resume: bool = True,
                     result_cache=None) -> SimulationResult:
    """Split → run → merge one trace in-process (the reference path).

    Bit-identical to ``simulate(trace, config, ...)``; the parity suite
    pins that down.  The batch engine dispatches the same shards over
    its executor instead — this function is the executable
    specification the engine path is tested against, and a convenient
    way to bound peak memory on a single core.

    ``checkpoint`` names a directory in which every completed shard is
    persisted as it finishes (atomic write-then-rename, content-keyed
    manifest — see :mod:`repro.core.checkpoint`).  A rerun against the
    same directory with ``resume=True`` (the default) skips completed
    shards and produces results bit-identical to an uninterrupted run,
    fault windows included: each saved window carries the shared
    decision-cache snapshot and policy instance the next window needs.
    ``resume=False`` discards any prior state and starts over.

    ``result_cache`` (see :mod:`repro.core.cache`) memoises the merged
    result at whole-run granularity, keyed on the exact shard plan: a
    hit skips planning, priming and every shard; a miss composes with
    ``checkpoint`` — per-shard resume still applies — and stores the
    merged result for next time.  Warm-start snapshots accelerate the
    decision pre-pass either way.
    """
    started = time.perf_counter()
    if trace.n_servers < config.circulation_size:
        # Same failure the unsharded simulator raises at construction;
        # sharding must not silently "fix" an invalid cluster.
        raise ConfigurationError(
            f"trace has {trace.n_servers} servers but a single "
            f"circulation needs {config.circulation_size}")
    shard_servers = resolve_shard_size(shard_servers, SHARD_SERVERS_ENV_VAR)
    shard_steps = resolve_shard_size(shard_steps, SHARD_STEPS_ENV_VAR)
    has_faults = faults is not None and len(faults) > 0
    if has_faults:
        shard_servers = None  # masks span the cluster: time-only shards
    record = obs.telemetry_enabled(telemetry)
    specs = plan_shards(trace.n_steps, trace.n_servers,
                        config.circulation_size,
                        shard_servers=shard_servers,
                        shard_steps=shard_steps)
    results_store = resolve_result_cache(result_cache)
    cache_key = None
    if results_store is not None and type(trace) is WorkloadTrace:
        cache_key = result_key(trace, config, cpu_model, teg_module,
                               faults=faults if has_faults else None,
                               cache_resolution=cache_resolution,
                               mode="loop" if has_faults else "kernel",
                               specs=specs)
        cached = results_store.load(cache_key)
        if cached is not None:
            return cached
    store = None
    if checkpoint is not None:
        from .checkpoint import CheckpointStore, run_key

        store = CheckpointStore(
            checkpoint,
            run_key(trace, config, cpu_model, teg_module,
                    faults=faults if has_faults else None,
                    cache_resolution=cache_resolution, specs=specs),
            n_shards=len(specs),
            kind="fault" if has_faults else "kernel",
            resume=resume)

    outcomes: list = [None] * len(specs)
    if has_faults:
        # Sequential time windows sharing one cache and one policy:
        # exactly the serial decision sequence (see the module note).
        # A saved window restores both the outcome and the cache store
        # its successor depends on, so resuming replays the identical
        # sequence from the first missing window onward.
        shared = CoolingDecisionCache(resolution=cache_resolution)
        policy = None
        for index, spec in enumerate(specs):
            saved = (store.load_shard(spec.index)
                     if store is not None else None)
            if saved is not None:
                outcome = saved["outcome"]
                if saved.get("cache_store") is not None:
                    shared._store = dict(saved["cache_store"])
                if outcome.policy is not None:
                    policy = outcome.policy
                outcomes[index] = outcome
                continue
            outcome = run_shard(
                trace.window(spec.step_start, spec.step_stop,
                             spec.server_start, spec.server_stop),
                spec, config, cpu_model, teg_module, faults=faults,
                cache_resolution=cache_resolution, cache=shared,
                policy=policy, telemetry=record)
            policy = outcome.policy
            outcomes[index] = outcome
            if store is not None:
                store.save_shard(spec.index, outcome,
                                 cache_store=dict(shared._store))
    else:
        missing: list[ShardSpec] = []
        for spec in specs:
            saved = (store.load_shard(spec.index)
                     if store is not None else None)
            if saved is not None:
                outcomes[spec.index] = saved["outcome"]
            else:
                missing.append(spec)
        primed = None
        if missing:
            # The pre-pass is deterministic, so recomputing it on
            # resume hands the remaining shards the same primed cache
            # an uninterrupted run would have.  A warm-start snapshot
            # (result cache) reproduces it without the full-plane pass.
            primed = primed_or_warm(trace, config, cpu_model,
                                    teg_module,
                                    cache_resolution=cache_resolution,
                                    result_cache=results_store)
        for spec in missing:
            outcome = run_shard(
                trace.window(spec.step_start, spec.step_stop,
                             spec.server_start, spec.server_stop),
                spec, config, cpu_model, teg_module,
                cache_resolution=cache_resolution,
                cache=clone_cache(primed), telemetry=record)
            outcomes[spec.index] = outcome
            if store is not None:
                store.save_shard(spec.index, outcome)
    result = merge_shard_outcomes(trace, config, outcomes)
    wall = time.perf_counter() - started
    cache_hits = sum(o.cache_hits for o in outcomes)
    cache_misses = sum(o.cache_misses for o in outcomes)
    lookups = cache_hits + cache_misses
    result.metrics = EngineMetrics(
        wall_time_s=wall,
        step_time_s=wall,
        n_steps=trace.n_steps,
        steps_per_s=trace.n_steps / wall if wall > 0 else 0.0,
        cache_hits=cache_hits,
        cache_misses=cache_misses,
        cache_hit_rate=cache_hits / lookups if lookups else 0.0,
        mode="loop" if has_faults else "kernel",
        vectorised=not has_faults,
        n_shards=len(specs),
        shards_resumed=len(store.loaded) if store is not None else 0,
    )
    if record:
        result.telemetry = _merged_telemetry(outcomes)
    if cache_key is not None:
        results_store.store(cache_key, result)
    return result


@dataclass(frozen=True)
class _ShardPayload:
    """What a process-pool shard pickles: the spec plus a windowed ref.

    The trace plane rides as a :class:`~repro.core.engine.SharedTraceRef`
    whose window bounds select this shard's tile out of the one shared
    segment — payload size is independent of both the trace length and
    the shard count (the zero-copy property the fleet-scale benchmark
    and the dispatch tests pin down).  ``decisions`` is the
    :func:`prime_decisions` cache (pickling gives each worker a private
    copy); its store is bounded by the policy's quantisation, so the
    size independence survives.
    """

    trace_ref: SharedTraceRef
    spec: ShardSpec
    config: SimulationConfig
    cpu_model: CpuThermalModel | None
    teg_module: TegModule | None
    faults: FaultSchedule | None
    cache_resolution: float
    decisions: CoolingDecisionCache | None = None
    telemetry: bool = False


def _execute_shard_payload(payload: _ShardPayload) -> ShardOutcome:
    """Process-worker entry point for shared-memory dispatched shards."""
    tile = _trace_from_ref(payload.trace_ref)
    return run_shard(tile, payload.spec, payload.config,
                     payload.cpu_model, payload.teg_module,
                     faults=payload.faults,
                     cache_resolution=payload.cache_resolution,
                     cache=payload.decisions,
                     telemetry=payload.telemetry)

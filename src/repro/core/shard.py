"""Fleet-scale sharded simulation: split, run, and merge bit-identically.

The paper's Google trace is 12.5k servers for a month (~8,900 control
intervals); one kernel invocation over that plane is a double-digit-GB
working set and a single-core job.  Cooling decisions are per
circulation and the facility split is per-``(step, circulation)`` cell,
so the plane factors cleanly into **rectangular tiles**: blocks of whole
circulations times bounded time windows.  This module

* plans the tiling (:func:`plan_shards` — server boundaries always land
  on circulation boundaries, time windows may be ragged at the end),
* runs kernel phases 1–3 on one tile (:func:`run_shard`, returning a
  :class:`ShardOutcome` of per-circulation columns), and
* stitches the tiles back into whole-cluster columns and replays the
  phase-4 fold once over them (:func:`merge_shard_outcomes`).

Bit-identity
------------
The merge is **bit-identical** to the unsharded kernel because nothing
numeric is ever combined *across* shards:

* every ``(step, circulation)`` cell is computed exactly once, by
  exactly the arithmetic the unsharded kernel would use (the scheduled
  plane, decisions, model batches and per-circulation reductions of a
  tile depend only on that tile's cells);
* the cluster fold (:func:`repro.core.kernel.fold_columns`) runs once,
  on the stitched full-length columns, in circulation order — the same
  sequential float adds as unsharded (summing per-shard subtotals would
  not be, since float addition is not associative);
* violations and errors are emitted in the global frame by the shard
  itself (``step_offset`` / ``server_offset``) and the globally earliest
  error is selected by the serial evaluation order ``(step, phase,
  circulation)``.

One subtlety breaks naive tiling: a memoising policy
(:class:`~repro.control.cooling_policy.LookupSpacePolicy`) derives a
quantised bucket's decision from the **exact** binding utilisation that
first lands in the bucket, so decisions are path-dependent on priming
order — and a shard's tile-local first occurrences need not match the
global serial ones.  :func:`prime_decisions` therefore replays kernel
phase 1 over the *full* plane on the coordinator, priming one decision
cache in global first-occurrence order; every shard runs against (a
clone of) that cache, so all shard-side lookups hit and the policy is
never consulted out of order.  The primed store is bounded by the
policy's quantisation (a few hundred entries), keeping worker payloads
independent of trace length.

Fault-carrying runs shard by **time only**: fault masks are drawn once
over the whole cluster and sensor-noise RNG streams are keyed on global
step indices, so a time window replays exactly its slice of the
unsharded fault run, and merging is plain record concatenation.
Decisions in a fault run key on noisy sensor readings that no pre-pass
can enumerate, so fault windows execute **sequentially in time order**,
sharing one decision cache and one policy instance — reproducing the
serial priming sequence exactly.

``tests/core/test_shard_parity.py`` enforces all of this, golden
fixtures and hypothesis property tests included.
"""

from __future__ import annotations

import os
import time
from contextlib import nullcontext
from dataclasses import dataclass, field, replace
from multiprocessing import shared_memory
from typing import Sequence

import numpy as np

from .. import obs
from ..errors import (
    ConfigurationError,
    CoolingFailureError,
    PhysicalRangeError,
    ResultIntegrityError,
    ShardExecutionError,
)
from ..control.scheduling import NoScheduler
from ..faults import FaultSchedule
from ..teg.module import TegModule
from ..thermal.cpu_model import CpuThermalModel
from ..workloads.trace import WorkloadTrace
from .config import SimulationConfig
from .cache import ResultCache, resolve_result_cache, result_key
from .engine import (
    DEFAULT_CACHE_RESOLUTION,
    CacheStats,
    CoolingDecisionCache,
    EngineMetrics,
    SharedTraceRef,
    _CachedVectorisedSimulator,
    _trace_from_ref,
    _warm_restore,
    _warm_save,
)
from .kernel import (
    KernelColumns,
    KernelTimings,
    _decide_cells,
    _scheduled_plane,
    fold_columns,
    run_kernel_columns,
)
from .results import ColumnarSteps, SimulationResult

__all__ = [
    "AUTOTUNE_TARGET_SHARD_S",
    "AUTO_SHARD_MIN_CELLS",
    "COLUMN_PLANES",
    "DEFAULT_SHARD_SERVERS",
    "DEFAULT_SHARD_STEPS",
    "SHARD_AUTOTUNE_ENV_VAR",
    "SHARD_SERVERS_ENV_VAR",
    "SHARD_STEPS_ENV_VAR",
    "ShardColumnRef",
    "ShardError",
    "ShardOutcome",
    "ShardSpec",
    "StreamingMerge",
    "audit_merged_result",
    "clone_cache",
    "merge_shard_outcomes",
    "plan_shards",
    "prime_decisions",
    "primed_or_warm",
    "resolve_shard_autotune",
    "resolve_shard_size",
    "run_shard",
    "simulate_sharded",
]

#: Environment variables overriding the shard tile size (servers wide,
#: steps long).  Explicit engine arguments win over the environment.
SHARD_SERVERS_ENV_VAR = "REPRO_SHARD_SERVERS"
SHARD_STEPS_ENV_VAR = "REPRO_SHARD_STEPS"

#: Environment flag enabling throughput-based shard re-planning (see
#: :meth:`BatchSimulationEngine._autotune_shards`).  Explicit engine
#: arguments win over the environment; default off, so planned shard
#: counts stay deterministic unless a run opts in.
SHARD_AUTOTUNE_ENV_VAR = "REPRO_SHARD_AUTOTUNE"

#: A kernel job auto-shards once its plane reaches this many cells
#: (steps x servers) — about the point where splitting pays for the
#: merge.  12.5k x 8,900 is ~111M cells, 55 default tiles.
AUTO_SHARD_MIN_CELLS = 2_000_000

#: Default tile dimensions when auto-sharding (clamped to the trace).
DEFAULT_SHARD_SERVERS = 2500
DEFAULT_SHARD_STEPS = 2500

#: Autotuned tiles (opt-in; see ``BatchSimulationEngine``'s
#: ``shard_autotune``) are re-sized so one tile takes about this many
#: seconds at the first tile's measured throughput.
AUTOTUNE_TARGET_SHARD_S = 5.0


@dataclass(frozen=True)
class ShardSpec:
    """One rectangular tile of a ``(steps x servers)`` trace plane.

    ``server_start:server_stop`` always covers whole circulations
    ``circ_start:circ_stop`` of the *global* partitioning (the planner
    guarantees it), so a shard's circulation columns slot directly into
    the stitched whole-cluster arrays.
    """

    index: int
    step_start: int
    step_stop: int
    server_start: int
    server_stop: int
    circ_start: int
    circ_stop: int

    @property
    def n_steps(self) -> int:
        """Time-window length of the tile."""
        return self.step_stop - self.step_start

    @property
    def n_servers(self) -> int:
        """Server width of the tile."""
        return self.server_stop - self.server_start

    @property
    def n_circs(self) -> int:
        """Whole circulations covered by the tile."""
        return self.circ_stop - self.circ_start

    @property
    def n_cells(self) -> int:
        """Trace cells (steps x servers) the tile covers."""
        return self.n_steps * self.n_servers


@dataclass(frozen=True)
class ShardError:
    """The earliest error one shard would have raised, in global frame.

    ``order`` reproduces the serial raise order across shards: earliest
    step first; within a step every circulation's evaluation (capacity
    checks, phase 0) precedes the aggregation (strict safety, phase 1);
    within a phase, circulations raise in index order.
    """

    exception: Exception
    phase: int
    step: int
    circ: int

    @property
    def order(self) -> tuple[int, int, int]:
        """Sort key ``(step, phase, circ)`` of the serial raise order."""
        return (self.step, self.phase, self.circ)


@dataclass
class ShardOutcome:
    """What one executed shard ships back to the merge.

    Kernel shards carry ``columns`` (pre-fold per-circulation planes,
    violations already in the global frame); fault shards carry the
    serial loop's ``records`` list instead.  ``error`` is set when the
    shard's slice of the run would have raised — the merge decides
    whether it is the globally earliest one.
    """

    spec: ShardSpec
    columns: KernelColumns | None = None
    records: list = field(default_factory=list)
    violations: list = field(default_factory=list)
    error: ShardError | None = None
    cache_hits: int = 0
    cache_misses: int = 0
    n_cells: int = 0
    telemetry: "obs.TelemetrySnapshot | None" = None
    #: Kernel phase timings of this shard's run; the streaming merge
    #: sums them into the sharded job's :class:`KernelTimings`.
    timings: KernelTimings | None = None
    #: Set (with ``columns`` cleared) when the worker published its
    #: plane tiles straight into the coordinator's shared column block
    #: (:func:`_publish_columns`): the non-plane data the fold still
    #: needs — per-circulation sizes and per-step violation counts.
    sizes: np.ndarray | None = None
    violation_counts: np.ndarray | None = None
    #: The policy instance a fault shard decided with — the sequential
    #: fault orchestration carries it into the next time window so a
    #: memoising policy replays the serial priming sequence.  Kernel
    #: shards leave it ``None`` (they run off a pre-primed cache).
    policy: object = field(default=None, repr=False, compare=False)


def resolve_shard_size(explicit: int | None, env_var: str) -> int | None:
    """One shard dimension: explicit > environment > ``None`` (unset).

    Raises
    ------
    ConfigurationError
        When the explicit value or the environment variable is
        non-positive or not an integer.
    """
    if explicit is not None:
        if explicit <= 0:
            raise ConfigurationError(
                f"shard size must be > 0, got {explicit}")
        return int(explicit)
    env = os.environ.get(env_var)
    if env is None:
        return None
    try:
        value = int(env)
    except ValueError:
        raise ConfigurationError(
            f"{env_var} must be an integer, got {env!r}") from None
    if value <= 0:
        raise ConfigurationError(f"{env_var} must be > 0, got {value}")
    return value


def resolve_shard_autotune(explicit: bool | None) -> bool:
    """Whether shard autotuning is on: explicit > environment > off.

    Raises
    ------
    ConfigurationError
        When ``REPRO_SHARD_AUTOTUNE`` is set to something that is not a
        recognisable boolean.
    """
    if explicit is not None:
        return bool(explicit)
    env = os.environ.get(SHARD_AUTOTUNE_ENV_VAR)
    if env is None:
        return False
    value = env.strip().lower()
    if value in ("1", "true", "yes", "on"):
        return True
    if value in ("", "0", "false", "no", "off"):
        return False
    raise ConfigurationError(
        f"{SHARD_AUTOTUNE_ENV_VAR} must be a boolean flag, got {env!r}")


def plan_shards(n_steps: int, n_servers: int, circulation_size: int,
                shard_servers: int | None = None,
                shard_steps: int | None = None) -> list[ShardSpec]:
    """Tile a ``(n_steps x n_servers)`` plane along both dimensions.

    ``shard_servers`` / ``shard_steps`` are *targets*: the server target
    is rounded **down** to whole circulations (never below one), both
    are clamped to the trace, and ``None`` leaves that dimension
    unsplit.  The last tile of either dimension may be ragged.  Tiles
    are ordered server-block-major, time-window-minor, and cover every
    cell exactly once.

    Raises
    ------
    ConfigurationError
        On non-positive dimensions or targets.
    """
    if n_steps <= 0 or n_servers <= 0:
        raise ConfigurationError(
            f"trace plane must be non-empty, got "
            f"{n_steps} x {n_servers}")
    if circulation_size <= 0:
        raise ConfigurationError(
            f"circulation_size must be > 0, got {circulation_size}")
    for label, value in (("shard_servers", shard_servers),
                         ("shard_steps", shard_steps)):
        if value is not None and value <= 0:
            raise ConfigurationError(
                f"{label} must be > 0, got {value}")

    # Global circulation partitioning (trailing ragged group kept),
    # mirroring DatacenterSimulator._partition_servers.
    n_circs = -(-n_servers // circulation_size)
    if shard_servers is None:
        circs_per_shard = n_circs
    else:
        circs_per_shard = max(
            1, min(shard_servers, n_servers) // circulation_size)
    step_width = (n_steps if shard_steps is None
                  else min(shard_steps, n_steps))

    specs: list[ShardSpec] = []
    for circ_start in range(0, n_circs, circs_per_shard):
        circ_stop = min(circ_start + circs_per_shard, n_circs)
        server_start = circ_start * circulation_size
        server_stop = min(circ_stop * circulation_size, n_servers)
        for step_start in range(0, n_steps, step_width):
            specs.append(ShardSpec(
                index=len(specs),
                step_start=step_start,
                step_stop=min(step_start + step_width, n_steps),
                server_start=server_start,
                server_stop=server_stop,
                circ_start=circ_start,
                circ_stop=circ_stop,
            ))
    return specs


def prime_decisions(trace: WorkloadTrace, config: SimulationConfig,
                    cpu_model: CpuThermalModel | None = None,
                    teg_module: TegModule | None = None, *,
                    cache_resolution: float = DEFAULT_CACHE_RESOLUTION
                    ) -> CoolingDecisionCache | None:
    """Every cooling decision of ``trace``, primed in serial order.

    A memoising policy (``LookupSpacePolicy`` exposes
    ``cache_resolution``) derives a quantised bucket's decision from the
    *exact* binding utilisation that first lands in the bucket — so its
    decisions are path-dependent on priming order, and a shard's
    tile-local first occurrences need not match the global serial ones.
    This pre-pass replays kernel phase 1 (schedule + decide) over the
    full plane, priming one :class:`CoolingDecisionCache` with every
    ``(bucket, group size)`` key in global first-occurrence order.  A
    shard running against this cache answers every decision lookup from
    the store and never consults the policy, restoring bit-identity.

    Returns ``None`` for pure policies (analytic, static — no internal
    memo): their decisions are pure functions of the exact binding, so
    shard-local computation is already bit-identical and an exact-key
    table could grow with the trace.  The primed store is bounded by
    the policy's quantisation (a few hundred entries), independent of
    trace length.  Stats are reset before returning — shards account
    their own lookups.
    """
    return primed_or_warm(trace, config, cpu_model, teg_module,
                          cache_resolution=cache_resolution)


def primed_or_warm(trace: WorkloadTrace, config: SimulationConfig,
                   cpu_model: CpuThermalModel | None = None,
                   teg_module: TegModule | None = None, *,
                   cache_resolution: float = DEFAULT_CACHE_RESOLUTION,
                   result_cache: ResultCache | None = None,
                   trace_hash: str | None = None
                   ) -> CoolingDecisionCache | None:
    """:func:`prime_decisions` with a cross-run warm start.

    With a ``result_cache``, the decision pre-pass first tries the
    cache's warm-start store (see ``docs/cache.md``): a snapshot saved
    by an earlier run over the same trace and scheduling either
    restores the decisions verbatim (matching decision key) or replays
    each bucket's representative binding through the current policy —
    both reproduce exactly the cache :func:`prime_decisions` would
    build, at a fraction of the full-plane cost.  A cold prime saves
    its snapshot for the next run.  Without a ``result_cache`` this is
    exactly :func:`prime_decisions`.
    """
    sim = _CachedVectorisedSimulator(
        trace, config, cpu_model, teg_module,
        cache=CoolingDecisionCache(resolution=cache_resolution),
        mode="kernel")
    if not getattr(sim._policy, "cache_resolution", None):
        return None
    restored = None
    if result_cache is not None:
        restored = _warm_restore(result_cache, sim, trace, config,
                                 cpu_model, teg_module,
                                 trace_hash=trace_hash)
    if restored is None:
        raw = trace.utilisation
        # NoScheduler leaves the plane untouched; skip the full-plane
        # copy (at fleet scale it is the size of the trace itself).
        plane = (raw if type(sim._scheduler) is NoScheduler
                 else _scheduled_plane(sim, raw))
        _decide_cells(sim, plane)
    if result_cache is not None and restored != "direct":
        # Cold primes publish their snapshot; replays refresh it under
        # the current decision key so the next same-config run restores
        # directly.
        _warm_save(result_cache, sim, trace, config, cpu_model,
                   teg_module, trace_hash=trace_hash)
    cache = sim._cache
    cache.stats = CacheStats()
    return cache


def clone_cache(primed: CoolingDecisionCache | None
                ) -> CoolingDecisionCache | None:
    """A private copy of a primed cache (store shared-by-value, fresh stats).

    Concurrent shards must not share one mutable stats object; the store
    itself is tiny (see :func:`prime_decisions`) and never grows on a
    shard — every lookup hits — so a shallow dict copy suffices.
    """
    if primed is None:
        return None
    clone = CoolingDecisionCache(resolution=primed.resolution)
    clone._store = dict(primed._store)
    return clone


def run_shard(tile: WorkloadTrace, spec: ShardSpec,
              config: SimulationConfig,
              cpu_model: CpuThermalModel | None = None,
              teg_module: TegModule | None = None, *,
              faults: FaultSchedule | None = None,
              cache_resolution: float = DEFAULT_CACHE_RESOLUTION,
              cache: CoolingDecisionCache | None = None,
              policy: object = None,
              telemetry: bool = False) -> ShardOutcome:
    """Execute one tile and return its mergeable :class:`ShardOutcome`.

    ``tile`` is the windowed trace (``trace.window(...)`` on the
    coordinator, or a sliced shared-memory view in a worker); ``spec``
    places it in the global plane.  Kernel tiles run phases 1–3 of
    :mod:`repro.core.kernel` with the simulator's global offsets set, so
    violations and errors come back already in cluster coordinates.
    Fault tiles must span the full server width (masks are drawn over
    the whole cluster) and step the fault-aware serial loop.

    ``cache`` supplies the decision cache to run against — for kernel
    tiles a :func:`prime_decisions` pre-pass (required for bit-identity
    under memoising policies), for fault windows the shared cache the
    sequential orchestration carries across windows; ``None`` builds a
    fresh one (bit-exact only for pure policies or single-tile plans).
    ``policy`` injects the shared policy instance of a sequential fault
    run; the instance actually used rides back on the outcome.  Cache
    hit/miss counters on the outcome are deltas, so shared caches
    account correctly.

    With ``telemetry`` on, the shard records into a private
    :mod:`repro.obs` session whose snapshot rides back on the outcome —
    the same contract worker jobs already follow.
    """
    if (tile.n_steps, tile.n_servers) != (spec.n_steps, spec.n_servers):
        raise ConfigurationError(
            f"tile is {tile.n_steps} x {tile.n_servers} but shard "
            f"{spec.index} expects {spec.n_steps} x {spec.n_servers}")
    if faults is not None and spec.server_start != 0:
        raise ConfigurationError(
            "fault-carrying runs shard by time only: fault masks are "
            "drawn over the whole cluster, so a shard starting at "
            f"server {spec.server_start} cannot replay them")

    shard_config = config
    if spec.n_servers < config.circulation_size:
        # A tile holding only the global trailing ragged circulation:
        # partition it as the single underpopulated group it is.  The
        # decision-cache key carries the vector size, so the narrowed
        # config cannot alias a full circulation's decisions.
        shard_config = replace(config, circulation_size=spec.n_servers)

    local = obs.Telemetry() if telemetry else None
    outcome = ShardOutcome(spec=spec, n_cells=spec.n_cells)
    if cache is None:
        cache = CoolingDecisionCache(resolution=cache_resolution)
    hits_before = cache.stats.hits
    misses_before = cache.stats.misses
    with obs.session(local) if local is not None else nullcontext():
        with obs.span("engine.shard"):
            obs.add("shard.cells", spec.n_cells,
                    labels={"scheme": config.name, "trace": tile.name,
                            "shard": str(spec.index)})
            try:
                if faults is not None:
                    _run_fault_shard(tile, spec, shard_config, cpu_model,
                                     teg_module, faults, cache, policy,
                                     outcome)
                else:
                    _run_kernel_shard(tile, spec, shard_config, cpu_model,
                                      teg_module, cache, outcome)
            except (ConfigurationError, ShardExecutionError):
                raise
            except Exception as exc:
                # Never let a shard failure surface as a bare exception:
                # the coordinator (and its telemetry) must always see
                # which tile failed and in which worker.  Simulation
                # errors (cooling failure, capacity breach) are already
                # captured as ``outcome.error`` by the helpers above —
                # anything landing here is unexpected.
                raise ShardExecutionError(
                    f"shard {spec.index} (steps [{spec.step_start}, "
                    f"{spec.step_stop}), servers [{spec.server_start}, "
                    f"{spec.server_stop})) failed in worker pid "
                    f"{os.getpid()}: [{type(exc).__name__}] {exc}",
                    shard_index=spec.index,
                    step_start=spec.step_start,
                    step_stop=spec.step_stop,
                    server_start=spec.server_start,
                    server_stop=spec.server_stop,
                    worker_pid=os.getpid()) from exc
        outcome.cache_hits = cache.stats.hits - hits_before
        outcome.cache_misses = cache.stats.misses - misses_before
        if local is not None:
            labels = {"scheme": config.name, "trace": tile.name}
            obs.add("engine.cache.hits", outcome.cache_hits,
                    labels=labels)
            obs.add("engine.cache.misses", outcome.cache_misses,
                    labels=labels)
    if local is not None:
        outcome.telemetry = local.snapshot()
    return outcome


def _run_kernel_shard(tile, spec, config, cpu_model, teg_module, cache,
                      outcome) -> None:
    """Kernel phases 1–3 over one tile, offsets in the global frame."""
    sim = _CachedVectorisedSimulator(
        tile, config, cpu_model, teg_module, cache=cache, mode="kernel",
        step_offset=spec.step_start, server_offset=spec.server_start)
    columns = run_kernel_columns(sim)
    outcome.columns = columns
    outcome.violations = columns.violations
    outcome.timings = sim.kernel_timings
    if columns.error is not None:
        outcome.error = ShardError(
            exception=columns.error.exception,
            phase=columns.error.phase,
            step=spec.step_start + columns.error.step,
            circ=spec.circ_start + columns.error.circ,
        )


def _run_fault_shard(tile, spec, config, cpu_model, teg_module, faults,
                     cache, policy, outcome) -> None:
    """The fault-aware serial loop over one full-width time window."""
    sim = _CachedVectorisedSimulator(
        tile, config, cpu_model, teg_module, cache=cache, mode="loop",
        faults=faults, step_offset=spec.step_start)
    if policy is not None:
        # Sequential fault windows share one policy so a memoising
        # policy's buckets are primed in the serial call order.
        sim._policy = policy
    outcome.policy = sim._policy
    try:
        result = sim.run()
    except CoolingFailureError as exc:
        # step_index is already global (the simulator applied its
        # offset); windows are disjoint in time, so this key orders
        # correctly against every other shard's error.
        outcome.error = ShardError(exception=exc, phase=1,
                                   step=exc.step_index, circ=0)
    except PhysicalRangeError as exc:
        # Capacity breaches carry no step; the window start preserves
        # the across-window order (one error per disjoint window).
        outcome.error = ShardError(exception=exc, phase=0,
                                   step=spec.step_start, circ=0)
    else:
        outcome.records = list(result.records)
        outcome.violations = list(result.violations)


# ----------------------------------------------------------------------
# Shared column blocks (zero-copy shard results)
# ----------------------------------------------------------------------

#: The plane attributes of :class:`~repro.core.kernel.KernelColumns`, in
#: the order they are stacked inside a shared column block.  Sizes and
#: violation counts are not planes — they ride back on the outcome.
COLUMN_PLANES = ("generation_c", "heat_c", "chiller_power_c",
                 "tower_power_c", "pump_power_c", "max_temp_c",
                 "inlet_cell", "flow_cell")


@dataclass(frozen=True)
class ShardColumnRef:
    """Handle to a shared ``(len(COLUMN_PLANES), n_steps, n_circs)`` block.

    The coordinator preallocates one whole-cluster column block per
    sharded job in ``multiprocessing.shared_memory`` and ships this
    handle with every shard payload; workers write their tile's planes
    straight into the block instead of pickling them back, so a shard's
    return value shrinks from the full tile (megabytes at fleet scale)
    to the spec plus two small vectors.  The segment is owned (and
    unlinked after the merge) by the engine that created it.
    """

    shm_name: str
    n_steps: int
    n_circs: int

    @property
    def shape(self) -> tuple[int, int, int]:
        """Array shape of the block's stacked planes."""
        return (len(COLUMN_PLANES), self.n_steps, self.n_circs)


#: Per-worker cache of the attached column block, keyed by segment name.
#: Sharded jobs run one at a time on the coordinator, so on attaching a
#: new job's block every previous one is unmapped — bounding worker
#: memory at one block however many sharded jobs a batch dispatches.
_WORKER_COLUMN_BLOCKS: dict[str, tuple[shared_memory.SharedMemory,
                                       np.ndarray]] = {}


def _column_block(ref: ShardColumnRef) -> np.ndarray:
    """Attach (or reuse) the shared column block named by ``ref``."""
    entry = _WORKER_COLUMN_BLOCKS.get(ref.shm_name)
    if entry is None:
        for name in [n for n in _WORKER_COLUMN_BLOCKS if n != ref.shm_name]:
            stale, _ = _WORKER_COLUMN_BLOCKS.pop(name)
            try:
                stale.close()
            except (OSError, BufferError):  # pragma: no cover - defensive
                pass
        block = shared_memory.SharedMemory(name=ref.shm_name)
        planes = np.ndarray(ref.shape, dtype=np.float64, buffer=block.buf)
        entry = _WORKER_COLUMN_BLOCKS[ref.shm_name] = (block, planes)
    return entry[1]


def _publish_columns(ref: ShardColumnRef, outcome: ShardOutcome) -> None:
    """Write an outcome's plane tiles into the shared block, then slim it.

    Idempotent per tile (a retried or speculated shard rewrites the
    same cells with the same bytes — shards are deterministic), and
    disjoint across tiles, so concurrent workers never race on a cell.
    """
    spec, columns = outcome.spec, outcome.columns
    planes = _column_block(ref)
    rows = slice(spec.step_start, spec.step_stop)
    cols = slice(spec.circ_start, spec.circ_stop)
    for i, name in enumerate(COLUMN_PLANES):
        planes[i, rows, cols] = getattr(columns, name)
    outcome.sizes = columns.sizes
    outcome.violation_counts = columns.violation_counts
    outcome.columns = None


def audit_merged_result(trace: WorkloadTrace, config: SimulationConfig,
                        result: SimulationResult) -> None:
    """Invariant audit of a merged result; raises on any finding.

    A stitching bug (a tile written to the wrong rows, a lost window, a
    double-counted circulation) would corrupt results silently — the
    merge is pure array surgery with no arithmetic to fail.  This
    auditor re-derives the invariants every correctly merged run must
    satisfy and refuses to return a result that breaks one:

    * **step count** — exactly one record per trace step;
    * **time base** — ``t_k == k * interval_s`` bit-exactly, strictly
      increasing (a shuffled or duplicated window cannot pass);
    * **energy-balance closure** — generation within ``[0, CPU power]``
      (PRE in ``[0, 1]``), facility powers finite and non-negative,
      every series finite (from
      :func:`repro.validation.audit_simulation_result`);
    * **violation consistency** — the per-step violation counts sum to
      the number of recorded :class:`SafetyViolation` objects, and no
      over-limit temperature goes unrecorded.

    Raises
    ------
    ResultIntegrityError
        Carrying every finding on ``issues``.
    """
    from ..validation import audit_simulation_result

    issues: list[str] = []
    n_steps = trace.n_steps
    if len(result.records) != n_steps:
        issues.append(f"merged result has {len(result.records)} records "
                      f"for a {n_steps}-step trace")
    else:
        expected = np.arange(n_steps) * trace.interval_s
        if not np.array_equal(result.times_s, expected):
            issues.append("time base is not exactly "
                          "k * interval_s per step")
        for name in ("chiller_power_w", "tower_power_w",
                     "pump_power_w"):
            series = result._series(name)
            if not np.all(np.isfinite(series)):
                issues.append(f"non-finite {name} series")
            elif np.any(series < 0):
                issues.append(f"negative {name}")
        recorded = len(result.violations)
        counted = result.total_safety_violations
        if recorded != counted:
            issues.append(f"{counted} violations counted per step but "
                          f"{recorded} violation records attached")
        issues.extend(audit_simulation_result(result).issues)
    if issues:
        raise ResultIntegrityError(
            f"merged result for {config.name!r} on {trace.name!r} "
            f"failed {len(issues)} integrity check(s): "
            + "; ".join(issues), issues=tuple(issues))


class StreamingMerge:
    """Fold shard outcomes into whole-cluster columns as they land.

    The barrier-free half of the streaming pipeline: the coordinator
    constructs one merge from the trace/config dimensions *before*
    dispatching anything, calls :meth:`add` on each
    :class:`ShardOutcome` the moment it completes, and calls
    :meth:`result` once every tile has landed.  The result is
    bit-identical to the old stitch-everything-then-fold merge whatever
    order outcomes arrive in, because nothing numeric is combined
    across shards: plane tiles are disjoint array writes, violation
    counts are exact integer adds, violation records are globally
    sorted at the end, and the phase-4 float fold
    (:func:`~repro.core.kernel.fold_columns`) runs exactly once, over
    the finished full-length columns.

    The integrity auditing is incremental: a tile that overlaps
    already-folded cells raises :class:`ResultIntegrityError` at
    :meth:`add` time (naming the offending shard, which a post-hoc
    audit could not), an uncovered cell raises at :meth:`result`, and
    the full :func:`audit_merged_result` still runs on the merged
    result before it escapes.

    ``plane_block`` optionally supplies the backing array for the
    stacked planes — the engine passes a shared-memory block here so
    workers can write their tiles into it directly
    (:func:`_publish_columns`) and :meth:`add` folds only the small
    non-plane remainder.  Outcomes that do carry ``columns`` (serial
    runs, thread pools, resumed checkpoints, broken-pool fallbacks)
    are stitched coordinator-side exactly as before; the two kinds mix
    freely within one merge.
    """

    def __init__(self, trace: WorkloadTrace, config: SimulationConfig, *,
                 kind: str = "kernel", audit: bool = True,
                 plane_block: np.ndarray | None = None,
                 telemetry_sink: "obs.Telemetry | None" = None) -> None:
        if kind not in ("kernel", "fault"):
            raise ConfigurationError(
                f"merge kind must be 'kernel' or 'fault', got {kind!r}")
        self.trace = trace
        self.config = config
        self.kind = kind
        self.audit = audit
        #: Outcomes folded so far / decision-cache tallies across them.
        self.n_added = 0
        self.cache_hits = 0
        self.cache_misses = 0
        #: Aggregated kernel phase timings: decide/evaluate/reduce are
        #: summed across shards, fold is the merge's own fold time.
        self.timings: KernelTimings | None = None
        self._fold_s = 0.0
        self._errors: list[ShardError] = []
        #: Shard telemetry destination.  Private by default (snapshotted
        #: into ``result.telemetry`` at the end); a caller-supplied
        #: ``telemetry_sink`` — the live-scrape path — receives every
        #: outcome's snapshot at fold time instead, so ``GET /metrics``
        #: sees ``repro_shard_*`` series grow while shards are still in
        #: flight.  With an external sink :meth:`telemetry_snapshot`
        #: returns ``None``: the sink already owns the data and the
        #: batch layer must not merge it a second time.
        self._telemetry: obs.Telemetry | None = telemetry_sink
        self._external_sink = telemetry_sink is not None
        n_steps, n_servers = trace.n_steps, trace.n_servers
        if kind == "kernel":
            n_circs = -(-n_servers // config.circulation_size)
            self._n_circs = n_circs
            shape = (len(COLUMN_PLANES), n_steps, n_circs)
            if plane_block is None:
                plane_block = np.empty(shape)
            elif plane_block.shape != shape:
                raise ConfigurationError(
                    f"plane block has shape {plane_block.shape}, "
                    f"expected {shape}")
            self._planes = plane_block
            self._sizes = np.empty(n_circs, dtype=np.int64)
            self._violation_counts = np.zeros(n_steps, dtype=np.int64)
            self._violations: list = []
            self._covered = np.zeros((n_steps, n_circs), dtype=bool)
        else:
            self._windows: dict[int, ShardOutcome] = {}
            self._covered_steps = np.zeros(n_steps, dtype=bool)

    def add(self, outcome: ShardOutcome) -> None:
        """Fold one completed shard into the merged state.

        Raises
        ------
        ResultIntegrityError
            When the outcome's tile overlaps cells another outcome
            already covered — a double dispatch or a corrupted resume.
        """
        clock = time.perf_counter()
        with obs.span("shard.fold"):
            if self.kind == "kernel":
                self._fold_kernel(outcome)
            else:
                self._fold_fault(outcome)
        self._fold_s += time.perf_counter() - clock
        obs.add("engine.shards.folded", 1,
                labels={"scheme": self.config.name,
                        "trace": self.trace.name})
        self.n_added += 1
        self.cache_hits += outcome.cache_hits
        self.cache_misses += outcome.cache_misses
        if outcome.error is not None:
            self._errors.append(outcome.error)
        if outcome.telemetry is not None:
            if self._telemetry is None:
                self._telemetry = obs.Telemetry()
            self._telemetry.merge_snapshot(outcome.telemetry)
        # getattr: outcomes unpickled from a pre-streaming checkpoint
        # lack the newer fields.
        timings = getattr(outcome, "timings", None)
        if timings is not None:
            if self.timings is None:
                self.timings = KernelTimings()
            self.timings.decide_s += timings.decide_s
            self.timings.evaluate_s += timings.evaluate_s
            self.timings.reduce_s += timings.reduce_s

    def _fold_kernel(self, outcome: ShardOutcome) -> None:
        spec = outcome.spec
        rows = slice(spec.step_start, spec.step_stop)
        cols = slice(spec.circ_start, spec.circ_stop)
        region = self._covered[rows, cols]
        if region.any():
            issue = (f"shard {spec.index} (steps [{spec.step_start}, "
                     f"{spec.step_stop}), circulations [{spec.circ_start}, "
                     f"{spec.circ_stop})) overlaps {int(region.sum())} "
                     f"already-folded cell(s)")
            raise ResultIntegrityError(issue, issues=(issue,))
        columns = outcome.columns
        if columns is not None:
            for i, name in enumerate(COLUMN_PLANES):
                self._planes[i, rows, cols] = getattr(columns, name)
            sizes, counts = columns.sizes, columns.violation_counts
        else:
            # Zero-copy dispatch: the worker already wrote this tile's
            # planes into the shared block backing ``self._planes``.
            sizes = getattr(outcome, "sizes", None)
            counts = getattr(outcome, "violation_counts", None)
            if sizes is None or counts is None:
                raise ConfigurationError(
                    f"kernel shard {spec.index} carries neither columns "
                    f"nor published plane summaries")
        self._sizes[cols] = sizes
        # Integer counts: addition is exact and order-free.
        self._violation_counts[rows] += counts
        self._violations.extend(outcome.violations)
        self._covered[rows, cols] = True

    def _fold_fault(self, outcome: ShardOutcome) -> None:
        spec = outcome.spec
        rows = slice(spec.step_start, spec.step_stop)
        if self._covered_steps[rows].any():
            issue = (f"fault window {spec.index} (steps "
                     f"[{spec.step_start}, {spec.step_stop})) overlaps an "
                     f"already-folded window")
            raise ResultIntegrityError(issue, issues=(issue,))
        self._windows[spec.step_start] = outcome
        self._covered_steps[rows] = True

    def release_planes(self) -> None:
        """Drop every reference into the external plane block.

        Called by the engine before closing a shared-memory backed
        block — a still-exported buffer would make the unmap fail.  The
        merge is unusable afterwards; call only after :meth:`result`.
        """
        self._planes = None

    def telemetry_snapshot(self):
        """Merged telemetry of every added outcome (``None`` if none).

        Also ``None`` when the merge folds into an external
        ``telemetry_sink`` — the sink holds the live aggregate and a
        snapshot here would double count it downstream.
        """
        if self._external_sink or self._telemetry is None:
            return None
        return self._telemetry.snapshot()

    def result(self) -> SimulationResult:
        """The merged whole-cluster result; every tile must have landed.

        Raises the globally earliest shard error (serial raise order)
        when any added shard reported one, and
        :class:`ResultIntegrityError` when coverage is incomplete or
        the final :func:`audit_merged_result` finds an inconsistency.
        """
        if self.n_added == 0:
            raise ConfigurationError("cannot merge zero shard outcomes")
        if self._errors:
            raise min(self._errors, key=lambda e: e.order).exception
        trace, config = self.trace, self.config
        n_steps, n_servers = trace.n_steps, trace.n_servers
        interval_s = trace.interval_s

        if self.kind == "fault":
            if not self._covered_steps.all():
                uncovered = int((~self._covered_steps).sum())
                issue = (f"{uncovered} of {n_steps} steps were never "
                         f"covered by a fault window")
                raise ResultIntegrityError(issue, issues=(issue,))
            # Full-width time windows; concatenation in window order
            # replays the serial append order exactly.
            records: list = []
            violations: list = []
            for start in sorted(self._windows):
                outcome = self._windows[start]
                records.extend(outcome.records)
                violations.extend(outcome.violations)
            result = SimulationResult(
                scheme=config.name, trace_name=trace.name,
                n_servers=n_servers, interval_s=interval_s,
                records=records)
            result.violations = violations
            if self.audit:
                audit_merged_result(trace, config, result)
            return result

        if not self._covered.all():
            uncovered = int((~self._covered).sum())
            issue = (f"{uncovered} of {n_steps * self._n_circs} plane "
                     f"cells were never covered by a shard")
            raise ResultIntegrityError(issue, issues=(issue,))
        clock = time.perf_counter()
        with obs.span("shard.fold"):
            merged = KernelColumns(
                generation_c=self._planes[0], heat_c=self._planes[1],
                chiller_power_c=self._planes[2],
                tower_power_c=self._planes[3],
                pump_power_c=self._planes[4], max_temp_c=self._planes[5],
                inlet_cell=self._planes[6], flow_cell=self._planes[7],
                sizes=self._sizes,
                violation_counts=self._violation_counts,
            )
            # The unsharded kernel emits violations in row-major
            # (step, server) order; shard violations are already
            # globally identified, so a sort restores exactly that
            # order.
            self._violations.sort(key=lambda v: (v.step_index,
                                                 v.server_id))
            raw = trace.utilisation
            records = ColumnarSteps({
                "time_s": np.arange(n_steps) * interval_s,
                "mean_utilisation": raw.mean(axis=1),
                "max_utilisation": raw.max(axis=1),
                **fold_columns(merged, n_servers),
                "safety_violations": self._violation_counts,
                "degraded_circulations": np.zeros(n_steps, dtype=np.int64),
                "lost_harvest_w": np.zeros(n_steps),
                "active_faults": np.zeros(n_steps, dtype=np.int64),
            })
        self._fold_s += time.perf_counter() - clock
        if self.timings is not None:
            self.timings.fold_s = self._fold_s
        result = SimulationResult(
            scheme=config.name, trace_name=trace.name,
            n_servers=n_servers, interval_s=interval_s, records=records)
        result.violations = self._violations
        if self.audit:
            audit_merged_result(trace, config, result)
        return result


def merge_shard_outcomes(trace: WorkloadTrace, config: SimulationConfig,
                         outcomes: Sequence[ShardOutcome], *,
                         audit: bool = True) -> SimulationResult:
    """Stitch shard outcomes back into one whole-cluster result.

    A barriered veneer over :class:`StreamingMerge` (fold every outcome,
    then finalise) for callers that already hold the full outcome list.
    Raises the globally earliest shard error (serial raise order) when
    any shard reported one.  Kernel outcomes are stitched column-wise
    and folded once; fault outcomes (time windows) are concatenated in
    window order.  Either way the result is bit-identical to running
    the trace unsharded, and (unless ``audit=False``) the merged result
    must pass :func:`audit_merged_result` before it is returned.
    """
    if not outcomes:
        raise ConfigurationError("cannot merge zero shard outcomes")
    kind = ("kernel" if any(o.columns is not None
                            or getattr(o, "sizes", None) is not None
                            for o in outcomes) else "fault")
    merge = StreamingMerge(trace, config, kind=kind, audit=audit)
    for outcome in outcomes:
        merge.add(outcome)
    return merge.result()


def _merged_telemetry(outcomes: Sequence[ShardOutcome]):
    """One :class:`repro.obs.TelemetrySnapshot` over all shard sessions."""
    telemetry = obs.Telemetry()
    merged_any = False
    for outcome in outcomes:
        if outcome.telemetry is not None:
            telemetry.merge_snapshot(outcome.telemetry)
            merged_any = True
    return telemetry.snapshot() if merged_any else None


def simulate_sharded(trace: WorkloadTrace, config: SimulationConfig,
                     cpu_model: CpuThermalModel | None = None,
                     teg_module: TegModule | None = None, *,
                     shard_servers: int | None = None,
                     shard_steps: int | None = None,
                     faults: FaultSchedule | None = None,
                     cache_resolution: float = DEFAULT_CACHE_RESOLUTION,
                     telemetry: bool | None = None,
                     metrics_port: int | None = None,
                     checkpoint: "str | os.PathLike | None" = None,
                     resume: bool = True,
                     result_cache=None) -> SimulationResult:
    """Split → run → merge one trace in-process (the reference path).

    Bit-identical to ``simulate(trace, config, ...)``; the parity suite
    pins that down.  The batch engine dispatches the same shards over
    its executor instead — this function is the executable
    specification the engine path is tested against, and a convenient
    way to bound peak memory on a single core.

    ``checkpoint`` names a directory in which every completed shard is
    persisted as it finishes (atomic write-then-rename, content-keyed
    manifest — see :mod:`repro.core.checkpoint`).  A rerun against the
    same directory with ``resume=True`` (the default) skips completed
    shards and produces results bit-identical to an uninterrupted run,
    fault windows included: each saved window carries the shared
    decision-cache snapshot and policy instance the next window needs.
    ``resume=False`` discards any prior state and starts over.

    ``result_cache`` (see :mod:`repro.core.cache`) memoises the merged
    result at whole-run granularity, keyed on the exact shard plan: a
    hit skips planning, priming and every shard; a miss composes with
    ``checkpoint`` — per-shard resume still applies — and stores the
    merged result for next time.  Warm-start snapshots accelerate the
    decision pre-pass either way.

    ``metrics_port`` (explicit, else ``REPRO_METRICS_PORT``) attaches a
    live scrape endpoint for the duration of the run: ``GET /metrics``
    serves the labelled series of every shard folded so far and
    ``GET /healthz`` reports shard progress.  Setting a port implies
    telemetry on; the endpoint is strictly observational (records are
    bit-identical with it attached or not) and is shut down before the
    function returns.
    """
    started = time.perf_counter()
    live_port = obs.resolve_metrics_port(metrics_port)
    if live_port is not None and telemetry is None:
        telemetry = True
    if trace.n_servers < config.circulation_size:
        # Same failure the unsharded simulator raises at construction;
        # sharding must not silently "fix" an invalid cluster.
        raise ConfigurationError(
            f"trace has {trace.n_servers} servers but a single "
            f"circulation needs {config.circulation_size}")
    shard_servers = resolve_shard_size(shard_servers, SHARD_SERVERS_ENV_VAR)
    shard_steps = resolve_shard_size(shard_steps, SHARD_STEPS_ENV_VAR)
    has_faults = faults is not None and len(faults) > 0
    if has_faults:
        shard_servers = None  # masks span the cluster: time-only shards
    record = obs.telemetry_enabled(telemetry)
    specs = plan_shards(trace.n_steps, trace.n_servers,
                        config.circulation_size,
                        shard_servers=shard_servers,
                        shard_steps=shard_steps)
    results_store = resolve_result_cache(result_cache)
    cache_key = None
    if results_store is not None and type(trace) is WorkloadTrace:
        cache_key = result_key(trace, config, cpu_model, teg_module,
                               faults=faults if has_faults else None,
                               cache_resolution=cache_resolution,
                               mode="loop" if has_faults else "kernel",
                               specs=specs)
        cached = results_store.load(cache_key)
        if cached is not None:
            return cached
    store = None
    if checkpoint is not None:
        from .checkpoint import CheckpointStore, run_key

        store = CheckpointStore(
            checkpoint,
            run_key(trace, config, cpu_model, teg_module,
                    faults=faults if has_faults else None,
                    cache_resolution=cache_resolution, specs=specs),
            n_shards=len(specs),
            kind="fault" if has_faults else "kernel",
            resume=resume)

    live_server = None
    live_sink = None
    health = None
    if live_port is not None:
        live_server = obs.LiveTelemetryServer(port=live_port)
        health = obs.RunHealth()
        health.begin(jobs_total=1, shards_total=len(specs))
        if record:
            # Shard outcomes fold straight into this session, so a
            # mid-run scrape sees every completed shard's series.
            live_sink = obs.Telemetry()
        live_server.bind(live_sink, health)
    merge = StreamingMerge(trace, config,
                           kind="fault" if has_faults else "kernel",
                           telemetry_sink=live_sink)
    try:
        if has_faults:
            # Sequential time windows sharing one cache and one policy:
            # exactly the serial decision sequence (see the module note).
            # A saved window restores both the outcome and the cache store
            # its successor depends on, so resuming replays the identical
            # sequence from the first missing window onward.
            shared = CoolingDecisionCache(resolution=cache_resolution)
            policy = None
            for spec in specs:
                saved = (store.load_shard(spec.index)
                         if store is not None else None)
                if saved is not None:
                    outcome = saved["outcome"]
                    if saved.get("cache_store") is not None:
                        shared._store = dict(saved["cache_store"])
                    if outcome.policy is not None:
                        policy = outcome.policy
                    merge.add(outcome)
                    if health is not None:
                        health.shard_done()
                    continue
                outcome = run_shard(
                    trace.window(spec.step_start, spec.step_stop,
                                 spec.server_start, spec.server_stop),
                    spec, config, cpu_model, teg_module, faults=faults,
                    cache_resolution=cache_resolution, cache=shared,
                    policy=policy, telemetry=record)
                policy = outcome.policy
                if store is not None:
                    store.save_shard(spec.index, outcome,
                                     cache_store=dict(shared._store))
                merge.add(outcome)
                if health is not None:
                    health.shard_done()
        else:
            missing: list[ShardSpec] = []
            for spec in specs:
                saved = (store.load_shard(spec.index)
                         if store is not None else None)
                if saved is not None:
                    merge.add(saved["outcome"])
                    if health is not None:
                        health.shard_done()
                else:
                    missing.append(spec)
            primed = None
            if missing:
                # The pre-pass is deterministic, so recomputing it on
                # resume hands the remaining shards the same primed cache
                # an uninterrupted run would have.  A warm-start snapshot
                # (result cache) reproduces it without the full-plane pass.
                primed = primed_or_warm(trace, config, cpu_model,
                                        teg_module,
                                        cache_resolution=cache_resolution,
                                        result_cache=results_store)
            for spec in missing:
                outcome = run_shard(
                    trace.window(spec.step_start, spec.step_stop,
                                 spec.server_start, spec.server_stop),
                    spec, config, cpu_model, teg_module,
                    cache_resolution=cache_resolution,
                    cache=clone_cache(primed), telemetry=record)
                if store is not None:
                    store.save_shard(spec.index, outcome)
                merge.add(outcome)
                if health is not None:
                    health.shard_done()
        result = merge.result()
        wall = time.perf_counter() - started
        cache_hits = merge.cache_hits
        cache_misses = merge.cache_misses
        lookups = cache_hits + cache_misses
        result.metrics = EngineMetrics(
            wall_time_s=wall,
            step_time_s=wall,
            n_steps=trace.n_steps,
            steps_per_s=trace.n_steps / wall if wall > 0 else 0.0,
            cache_hits=cache_hits,
            cache_misses=cache_misses,
            cache_hit_rate=cache_hits / lookups if lookups else 0.0,
            mode="loop" if has_faults else "kernel",
            vectorised=not has_faults,
            kernel=merge.timings,
            n_shards=len(specs),
            shards_resumed=len(store.loaded) if store is not None else 0,
        )
        if record:
            # With a live sink the merge holds no private session; the
            # sink is private to this call, so its snapshot is exactly
            # the per-run telemetry the non-live path would attach.
            result.telemetry = (live_sink.snapshot() if live_sink
                                is not None else merge.telemetry_snapshot())
        if cache_key is not None:
            results_store.store(cache_key, result)
        if health is not None:
            health.finish()
    finally:
        if live_server is not None:
            live_server.close()
    return result


@dataclass(frozen=True)
class _ShardPayload:
    """What a process-pool shard pickles: the spec plus a windowed ref.

    The trace plane rides as a :class:`~repro.core.engine.SharedTraceRef`
    whose window bounds select this shard's tile out of the one shared
    segment — payload size is independent of both the trace length and
    the shard count (the zero-copy property the fleet-scale benchmark
    and the dispatch tests pin down).  ``decisions`` is the
    :func:`prime_decisions` cache (pickling gives each worker a private
    copy); its store is bounded by the policy's quantisation, so the
    size independence survives.
    """

    trace_ref: SharedTraceRef
    spec: ShardSpec
    config: SimulationConfig
    cpu_model: CpuThermalModel | None
    teg_module: TegModule | None
    faults: FaultSchedule | None
    cache_resolution: float
    decisions: CoolingDecisionCache | None = None
    telemetry: bool = False
    #: With a column ref, the worker publishes its plane tiles into the
    #: shared block and ships back a slimmed outcome (``columns=None``)
    #: — the streaming-pipeline zero-copy return path.
    column_ref: ShardColumnRef | None = None


def _execute_shard_payload(payload: _ShardPayload) -> ShardOutcome:
    """Process-worker entry point for shared-memory dispatched shards."""
    tile = _trace_from_ref(payload.trace_ref)
    outcome = run_shard(tile, payload.spec, payload.config,
                        payload.cpu_model, payload.teg_module,
                        faults=payload.faults,
                        cache_resolution=payload.cache_resolution,
                        cache=payload.decisions,
                        telemetry=payload.telemetry)
    if payload.column_ref is not None and outcome.columns is not None:
        _publish_columns(payload.column_ref, outcome)
    return outcome

"""Seasonal (annual) evaluation of an H2P deployment.

The paper's evaluation spans 12-24 hours at a fixed 20 °C cold source.
Over a year, the natural-water cold side and the ambient wet-bulb both
drift (Sec. III-C's lake is "15-20 °C perennially"), moving the TEG
output and the facility's free-cooling ability with the seasons.

:class:`SeasonalStudy` replays one representative day per month with the
month's cold-source and wet-bulb temperatures taken from the environment
profiles, producing the annual generation/PRE/facility profile.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from ..environment import ColdSourceProfile, WetBulbProfile
from ..errors import PhysicalRangeError
from ..workloads.trace import WorkloadTrace
from .config import SimulationConfig, teg_loadbalance
from .facility import FacilityModel, FacilityReport
from .results import SimulationResult
from .simulator import DatacenterSimulator

_SECONDS_PER_DAY = 86_400.0
_MONTH_STARTS_DOY = (0, 31, 59, 90, 120, 151, 181, 212, 243, 273, 304,
                     334)
MONTH_NAMES = ("Jan", "Feb", "Mar", "Apr", "May", "Jun", "Jul", "Aug",
               "Sep", "Oct", "Nov", "Dec")


@dataclass(frozen=True)
class MonthOutcome:
    """One month's representative-day evaluation."""

    month: str
    cold_source_c: float
    wet_bulb_c: float
    result: SimulationResult
    facility: FacilityReport

    @property
    def generation_w(self) -> float:
        """Mean per-CPU generation of the month."""
        return self.result.average_generation_w


@dataclass
class SeasonalStudy:
    """Twelve representative days spanning one year.

    Attributes
    ----------
    trace:
        The workload replayed each month (typically one synthetic day).
    config:
        Scheme configuration; its cold-source/wet-bulb fields are
        overridden month by month.
    cold_source / wet_bulb:
        The environment profiles supplying the monthly temperatures.
    """

    trace: WorkloadTrace
    config: SimulationConfig = field(default_factory=teg_loadbalance)
    cold_source: ColdSourceProfile = field(
        default_factory=ColdSourceProfile)
    wet_bulb: WetBulbProfile = field(default_factory=WetBulbProfile)
    facility: FacilityModel = field(default_factory=FacilityModel)

    def month_conditions(self, month_index: int) -> tuple[float, float]:
        """(cold source, wet bulb) at the middle of a month."""
        if not 0 <= month_index < 12:
            raise PhysicalRangeError(
                f"month index must be in [0, 12), got {month_index}")
        mid_day = _MONTH_STARTS_DOY[month_index] + 15.0
        t_seconds = mid_day * _SECONDS_PER_DAY
        return (self.cold_source.at(t_seconds),
                self.wet_bulb.at(t_seconds))

    def run(self) -> list[MonthOutcome]:
        """Evaluate all twelve months.

        Returns
        -------
        list of MonthOutcome
            January through December.
        """
        outcomes = []
        for month_index, month_name in enumerate(MONTH_NAMES):
            cold, wet_bulb = self.month_conditions(month_index)
            config = replace(self.config, cold_source_temp_c=cold,
                             wet_bulb_c=wet_bulb)
            result = DatacenterSimulator(self.trace, config).run()
            outcomes.append(MonthOutcome(
                month=month_name,
                cold_source_c=cold,
                wet_bulb_c=wet_bulb,
                result=result,
                facility=self.facility.assess(result),
            ))
        return outcomes


def annual_summary(outcomes: list[MonthOutcome]) -> dict:
    """Roll twelve monthly outcomes into annual headline numbers."""
    if len(outcomes) != 12:
        raise PhysicalRangeError(
            f"expected 12 monthly outcomes, got {len(outcomes)}")
    generation = np.array([outcome.generation_w for outcome in outcomes])
    pre = np.array([outcome.result.average_pre for outcome in outcomes])
    pue = np.array([outcome.facility.pue for outcome in outcomes])
    return {
        "generation_mean_w": float(generation.mean()),
        "generation_min_w": float(generation.min()),
        "generation_max_w": float(generation.max()),
        "seasonal_swing": float(
            (generation.max() - generation.min()) / generation.mean()),
        "pre_mean": float(pre.mean()),
        "pue_mean": float(pue.mean()),
        "best_month": outcomes[int(np.argmax(generation))].month,
        "worst_month": outcomes[int(np.argmin(generation))].month,
    }

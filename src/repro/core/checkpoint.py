"""Crash-safe checkpoint/resume for sharded and whole simulation runs.

A month-class fleet run (12,500 servers x 8,900 steps through
:mod:`repro.core.shard`) is hours of work that a coordinator crash, OOM
kill or CI timeout would otherwise throw away.  This module persists
per-shard :class:`~repro.core.shard.ShardOutcome` objects *as they
complete*, so an interrupted run restarted against the same checkpoint
directory skips every finished shard and still produces results
**bit-identical** to an uninterrupted run.

Durability contract
-------------------
* **Atomic write-then-rename.**  Every artefact (shard outcome, run
  manifest, whole-job result) is written to a temporary file in the
  same directory, flushed and fsync'd, then :func:`os.replace`-d into
  place, followed by a directory fsync.  A file either exists complete
  or not at all; a crash mid-write leaves at most a stale ``.tmp-*``
  file that the next open sweeps away.
* **Content-keyed manifests.**  A checkpoint directory is owned by one
  run identity: the :class:`RunKey` digests of the trace plane, the
  full configuration (config + hardware models + fault schedule +
  cache resolution) and the shard plan.  Opening a directory whose
  manifest carries a different key refuses to resume
  (:class:`~repro.errors.CheckpointError`) — stale state can never
  silently leak into a different run — unless ``resume=False``
  explicitly wipes it.
* **Versioned format.**  ``checkpoint.json`` records
  :data:`CHECKPOINT_SCHEMA` / :data:`CHECKPOINT_FORMAT_VERSION`; a
  reader confronted with a newer (or unknown) version refuses loudly
  instead of misreading it.
* **Corruption is not fatal.**  A shard file that fails to unpickle is
  discarded and its shard recomputed; only a manifest that
  *structurally* cannot be trusted raises.

Bit-identity across interruption
--------------------------------
Kernel shards are pure functions of (tile, primed decision cache), and
the pre-pass that primes the cache is deterministic, so loading a saved
outcome is indistinguishable from recomputing it.  Fault windows are
path-dependent — they share one decision cache and one policy instance
sequentially — so each saved window also carries a snapshot of the
shared cache store, and the saved outcome carries the policy instance;
resuming restores both before the first missing window runs.  The
per-outcome cache hit/miss deltas ride inside the saved outcomes, so
even the merged cache counters match the uninterrupted run.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
from dataclasses import dataclass, fields, is_dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Any, Iterable

import numpy as np

from .. import obs
from ..errors import CheckpointError
from ..workloads.trace import WorkloadTrace

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .results import SimulationResult
    from .shard import ShardOutcome, ShardSpec

__all__ = [
    "CHECKPOINT_FORMAT_VERSION",
    "CHECKPOINT_SCHEMA",
    "CheckpointStore",
    "RunKey",
    "fingerprint",
    "run_key",
    "trace_digest",
]

#: Identifies the on-disk layout; bump on incompatible changes.
CHECKPOINT_SCHEMA = "repro.core/checkpoint/v1"
CHECKPOINT_FORMAT_VERSION = 1

#: Manifest file name inside a checkpoint directory.
MANIFEST_NAME = "checkpoint.json"

#: Subdirectory holding one pickle per completed shard.
SHARDS_DIR = "shards"

#: Whole-job result file (non-sharded jobs checkpoint at job granularity).
RESULT_NAME = "result.pkl"


# ----------------------------------------------------------------------
# Content digests
# ----------------------------------------------------------------------

def _hasher() -> "hashlib._Hash":
    # blake2b is in hashlib everywhere we run and is the fastest
    # stdlib hash over the ~GB trace planes this keys.
    return hashlib.blake2b(digest_size=16)


def trace_digest(trace: WorkloadTrace) -> str:
    """Content hash of a trace: shape, dtype, interval and plane bytes.

    The trace *name* is deliberately excluded — it names the run in the
    manifest key separately; two identically-named traces with
    different planes must never collide.
    """
    matrix = trace.utilisation
    h = _hasher()
    h.update(repr((matrix.shape, str(matrix.dtype),
                   trace.interval_s)).encode())
    data = matrix if matrix.flags.c_contiguous else np.ascontiguousarray(
        matrix)
    h.update(data)
    return h.hexdigest()


def _canonical(value: Any) -> Any:
    """A JSON-stable view of configs, models and schedules for hashing.

    Dataclasses unfold field-by-field (with their type name, so two
    classes with equal fields do not collide), NumPy arrays hash to
    their bytes, floats keep full ``repr`` precision, containers
    recurse.  Anything else falls back to ``repr`` — stable for the
    value types configuration objects actually hold.
    """
    if is_dataclass(value) and not isinstance(value, type):
        return {"__dataclass__": type(value).__name__,
                **{f.name: _canonical(getattr(value, f.name))
                   for f in fields(value)}}
    if isinstance(value, np.ndarray):
        digest = _hasher()
        digest.update(np.ascontiguousarray(value))
        return {"__ndarray__": [list(value.shape), str(value.dtype),
                                digest.hexdigest()]}
    if isinstance(value, dict):
        return {str(k): _canonical(v) for k, v in sorted(value.items(),
                                                         key=repr)}
    if isinstance(value, (list, tuple)):
        return [_canonical(v) for v in value]
    if isinstance(value, float):
        return repr(value)
    if value is None or isinstance(value, (bool, int, str)):
        return value
    return {"__repr__": f"{type(value).__name__}:{value!r}"}


def fingerprint(*values: Any) -> str:
    """One hex digest over any mix of configs, models, plans, scalars."""
    h = _hasher()
    h.update(json.dumps([_canonical(v) for v in values],
                        sort_keys=True).encode())
    return h.hexdigest()


@dataclass(frozen=True)
class RunKey:
    """The identity a checkpoint directory is keyed on.

    ``trace`` hashes the workload plane (shape, dtype, interval,
    bytes); ``run`` hashes everything else that shapes the numbers —
    config, hardware models, fault schedule, cache resolution and the
    shard plan.  Two runs share a checkpoint directory iff both digests
    (and the human-readable labels) match.
    """

    scheme: str
    trace_name: str
    trace: str
    run: str

    @property
    def short(self) -> str:
        """A filesystem-friendly 12-hex tag of the combined identity."""
        return fingerprint(self.trace, self.run)[:12]

    def to_dict(self) -> dict:
        return {"scheme": self.scheme, "trace_name": self.trace_name,
                "trace": self.trace, "run": self.run}

    @classmethod
    def from_dict(cls, data: dict) -> "RunKey":
        try:
            return cls(scheme=data["scheme"],
                       trace_name=data["trace_name"],
                       trace=data["trace"], run=data["run"])
        except (KeyError, TypeError) as exc:
            raise CheckpointError(
                f"checkpoint manifest key is malformed: {data!r}"
                ) from exc


def run_key(trace: WorkloadTrace, config, cpu_model=None,
            teg_module=None, *, faults=None,
            cache_resolution: float | None = None,
            specs: "Iterable[ShardSpec] | None" = None,
            extra: tuple = (),
            trace_hash: str | None = None) -> RunKey:
    """Build the :class:`RunKey` for one (trace, config, plan) run.

    ``specs`` is the shard plan (``None`` for whole-job runs); it is
    part of the identity because shard outcomes are only reusable under
    the exact tiling that produced them.  ``trace_hash`` lets a caller
    that hashed the (potentially GB-scale) plane already pass the
    digest in instead of re-hashing it per job.
    """
    plan = (None if specs is None else
            [(s.index, s.step_start, s.step_stop, s.server_start,
              s.server_stop, s.circ_start, s.circ_stop) for s in specs])
    return RunKey(
        scheme=config.name,
        trace_name=trace.name,
        trace=trace_digest(trace) if trace_hash is None else trace_hash,
        run=fingerprint(config, cpu_model, teg_module, faults,
                        cache_resolution, plan, list(extra)),
    )


# ----------------------------------------------------------------------
# Atomic file primitives
# ----------------------------------------------------------------------

def _fsync_directory(directory: Path) -> None:
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform without dir fds
        return
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def _atomic_write(path: Path, data: bytes) -> None:
    """Write ``data`` so ``path`` is either complete or absent.

    Temp file in the same directory (rename must not cross
    filesystems), fsync'd before the rename and the directory fsync'd
    after, so the entry survives a machine crash, not just a process
    one.
    """
    tmp = path.with_name(f"{path.name}.tmp-{os.getpid()}")
    with open(tmp, "wb") as handle:
        handle.write(data)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)
    _fsync_directory(path.parent)


def _sweep_temp_files(directory: Path) -> None:
    """Remove ``.tmp-*`` leftovers of crashed writers (best effort)."""
    for leftover in directory.glob("*.tmp-*"):
        try:
            leftover.unlink()
        except OSError:  # pragma: no cover - concurrent cleanup
            pass


# ----------------------------------------------------------------------
# The store
# ----------------------------------------------------------------------

class CheckpointStore:
    """One checkpoint directory: a manifest plus completed work units.

    Layout::

        DIR/checkpoint.json          # schema, version, RunKey, plan size
        DIR/shards/shard-00042.pkl   # one pickle per completed shard
        DIR/result.pkl               # whole-job runs (n_shards == 0)

    Opening semantics (``resume`` flag):

    * no manifest — the directory is (created and) claimed for this
      run: a fresh manifest is written either way;
    * manifest matches ``key`` — ``resume=True`` keeps completed
      shards, ``resume=False`` discards them and starts over;
    * manifest mismatches ``key`` — ``resume=True`` raises
      :class:`~repro.errors.CheckpointError` (never silently mix two
      runs' state), ``resume=False`` wipes the directory and claims it.

    Every save is atomic (see module docstring); every load tolerates a
    corrupt file by discarding it.
    """

    def __init__(self, directory: str | os.PathLike, key: RunKey, *,
                 n_shards: int, kind: str = "kernel",
                 resume: bool = True) -> None:
        self.directory = Path(directory)
        self.key = key
        self.n_shards = int(n_shards)
        self.kind = kind
        self.directory.mkdir(parents=True, exist_ok=True)
        self._shards_dir = self.directory / SHARDS_DIR
        manifest = self._read_manifest()
        if manifest is not None:
            stored = RunKey.from_dict(manifest.get("key", {}))
            if stored != key:
                if resume:
                    raise CheckpointError(
                        f"checkpoint directory {self.directory} belongs "
                        f"to a different run (stored "
                        f"{stored.scheme!r}/{stored.trace_name!r}, "
                        f"requested {key.scheme!r}/{key.trace_name!r} "
                        f"with different content digests); pass "
                        f"resume=False to overwrite it or use a fresh "
                        f"directory")
                self._wipe()
                manifest = None
            elif not resume:
                self._wipe()
                manifest = None
        if manifest is None:
            self._write_manifest()
        self._shards_dir.mkdir(exist_ok=True)
        _sweep_temp_files(self.directory)
        _sweep_temp_files(self._shards_dir)
        #: Shard indices loaded from disk by this process (telemetry
        #: and tests read it; the engine reports it as shards_resumed).
        self.loaded: set[int] = set()
        #: Shard indices saved by this process.
        self.saved: set[int] = set()

    # -- manifest ------------------------------------------------------

    @property
    def manifest_path(self) -> Path:
        return self.directory / MANIFEST_NAME

    def _read_manifest(self) -> dict | None:
        try:
            raw = self.manifest_path.read_text()
        except FileNotFoundError:
            return None
        try:
            manifest = json.loads(raw)
        except json.JSONDecodeError as exc:
            raise CheckpointError(
                f"checkpoint manifest {self.manifest_path} is not valid "
                f"JSON: {exc}") from exc
        schema = manifest.get("schema")
        version = manifest.get("version")
        if schema != CHECKPOINT_SCHEMA or not isinstance(version, int):
            raise CheckpointError(
                f"checkpoint manifest {self.manifest_path} has schema "
                f"{schema!r}; this build reads {CHECKPOINT_SCHEMA!r}")
        if version > CHECKPOINT_FORMAT_VERSION:
            raise CheckpointError(
                f"checkpoint format version {version} is newer than "
                f"this build's {CHECKPOINT_FORMAT_VERSION}; refusing "
                f"to guess at its layout")
        return manifest

    def _write_manifest(self) -> None:
        manifest = {
            "schema": CHECKPOINT_SCHEMA,
            "version": CHECKPOINT_FORMAT_VERSION,
            "key": self.key.to_dict(),
            "kind": self.kind,
            "n_shards": self.n_shards,
        }
        _atomic_write(self.manifest_path,
                      (json.dumps(manifest, indent=2, sort_keys=True)
                       + "\n").encode())

    def _wipe(self) -> None:
        """Discard every artefact; the manifest goes last."""
        if self._shards_dir.is_dir():
            for shard_file in self._shards_dir.glob("shard-*.pkl"):
                shard_file.unlink(missing_ok=True)
        (self.directory / RESULT_NAME).unlink(missing_ok=True)
        self.manifest_path.unlink(missing_ok=True)
        _fsync_directory(self.directory)

    # -- shard outcomes ------------------------------------------------

    def _shard_path(self, index: int) -> Path:
        return self._shards_dir / f"shard-{index:05d}.pkl"

    def completed(self) -> list[int]:
        """Sorted indices of shards with a (parseable-looking) file."""
        done = []
        for shard_file in self._shards_dir.glob("shard-*.pkl"):
            try:
                index = int(shard_file.stem.split("-", 1)[1])
            except (IndexError, ValueError):
                continue
            if 0 <= index < self.n_shards:
                done.append(index)
        return sorted(done)

    def save_shard(self, index: int, outcome: "ShardOutcome", *,
                   cache_store: dict | None = None) -> None:
        """Persist one completed shard (atomically).

        ``cache_store`` rides along for sequential fault windows: the
        shared decision-cache contents *after* this window, which a
        resume must restore before running the next window.
        """
        payload = {"outcome": outcome, "cache_store": cache_store}
        _atomic_write(self._shard_path(index),
                      pickle.dumps(payload,
                                   protocol=pickle.HIGHEST_PROTOCOL))
        self.saved.add(index)
        obs.add("engine.checkpoint.saved", 1)
        obs.emit("checkpoint.save", scheme=self.key.scheme,
                 trace=self.key.trace_name, shard=index)

    def load_shard(self, index: int) -> dict | None:
        """One saved shard payload, or ``None`` (missing or corrupt).

        A corrupt file is unlinked so the shard is recomputed — a
        half-written or stale pickle must never poison a resume.
        """
        path = self._shard_path(index)
        try:
            raw = path.read_bytes()
        except FileNotFoundError:
            return None
        try:
            payload = pickle.loads(raw)
            if not isinstance(payload, dict) or "outcome" not in payload:
                raise pickle.UnpicklingError("not a shard payload")
        except Exception:
            path.unlink(missing_ok=True)
            obs.emit("checkpoint.corrupt", scheme=self.key.scheme,
                     trace=self.key.trace_name, shard=index)
            return None
        self.loaded.add(index)
        obs.add("engine.checkpoint.loaded", 1)
        return payload

    # -- whole-job results ---------------------------------------------

    def save_result(self, result: "SimulationResult") -> None:
        """Persist one whole (non-sharded) job's result atomically."""
        _atomic_write(self.directory / RESULT_NAME,
                      pickle.dumps(result,
                                   protocol=pickle.HIGHEST_PROTOCOL))
        obs.add("engine.checkpoint.saved", 1)
        obs.emit("checkpoint.save", scheme=self.key.scheme,
                 trace=self.key.trace_name, shard=-1)

    def load_result(self) -> "SimulationResult | None":
        """The saved whole-job result, or ``None`` (missing or corrupt)."""
        path = self.directory / RESULT_NAME
        try:
            raw = path.read_bytes()
        except FileNotFoundError:
            return None
        try:
            result = pickle.loads(raw)
        except Exception:
            path.unlink(missing_ok=True)
            obs.emit("checkpoint.corrupt", scheme=self.key.scheme,
                     trace=self.key.trace_name, shard=-1)
            return None
        obs.add("engine.checkpoint.loaded", 1)
        return result

"""E-F11 — Fig. 11: CPU temperature vs coolant temperature and flow.

Regenerates the linear T_CPU(T_coolant) family at 100 % utilisation.
Paper shape: each flow rate gives a straight line; the slope k lies in
[1, 1.3] and increases as the flow decreases; the benefit of extra flow
saturates above ~250 L/H.
"""

import numpy as np

from repro.thermal.cpu_model import CoolingSetting, CpuThermalModel

from bench_utils import print_table

COOLANTS_C = np.arange(30.0, 51.0, 5.0)
FLOWS = (20.0, 50.0, 100.0, 150.0, 250.0, 300.0)


def sweep():
    model = CpuThermalModel()
    lines = {flow: [model.cpu_temp_c(
        1.0, CoolingSetting(flow_l_per_h=flow, inlet_temp_c=float(t)))
        for t in COOLANTS_C] for flow in FLOWS}
    slopes = {flow: model.slope(flow) for flow in FLOWS}
    return lines, slopes


def test_bench_fig11_cpu_temperature_vs_coolant(benchmark):
    lines, slopes = benchmark(sweep)

    print_table(
        "Fig. 11 — CPU temperature (C) vs coolant temperature at each "
        "flow (utilisation 100 %)",
        ["coolant C"] + [f"{f:.0f} L/H" for f in FLOWS],
        [[f"{t:.0f}"] + [lines[f][i] for f in FLOWS]
         for i, t in enumerate(COOLANTS_C)])
    print_table(
        "Fig. 11 (slopes) — the k of T_CPU = k*T_coolant + b",
        ["flow L/H", "slope k"],
        [[f"{f:.0f}", slopes[f]] for f in FLOWS])

    # Linearity: constant increments along each line.
    for flow in FLOWS:
        diffs = np.diff(lines[flow])
        assert np.allclose(diffs, diffs[0], rtol=1e-9)

    # Slopes in the paper's [1, 1.3] band, increasing as flow decreases.
    slope_values = [slopes[f] for f in FLOWS]
    assert all(1.0 < k <= 1.3 for k in slope_values)
    assert all(a > b for a, b in zip(slope_values, slope_values[1:]))

    # More flow means a cooler CPU at any coolant temperature...
    for i in range(len(COOLANTS_C)):
        column = [lines[f][i] for f in FLOWS]
        assert all(a > b for a, b in zip(column, column[1:]))

    # ...but the improvement saturates above ~250 L/H.
    gain_low = lines[20.0][0] - lines[100.0][0]
    gain_high = lines[250.0][0] - lines[300.0][0]
    assert gain_low > 5.0 * gain_high

"""E-F7 — Fig. 7: open-circuit voltage of 6 series TEGs vs dT and flow.

Regenerates the Voc(dT) lines for each prototype flow rate.  Paper shape:
voltage increases linearly with the coolant temperature difference; a
larger flow rate gives a slightly higher voltage, but the improvement is
"too little to be worth making".
"""

import numpy as np

from repro.teg.module import TegString

from bench_utils import print_table

FLOWS_L_PER_H = (50.0, 100.0, 200.0, 300.0)
DELTAS_C = np.arange(0.0, 26.0, 5.0)


def sweep():
    string = TegString(count=6)
    return {
        flow: [string.open_circuit_voltage_v(float(d), flow)
               for d in DELTAS_C]
        for flow in FLOWS_L_PER_H
    }


def test_bench_fig7_voc_vs_flow(benchmark):
    curves = benchmark(sweep)

    rows = [[f"dT={d:.0f}C"] + [curves[flow][i]
                                for flow in FLOWS_L_PER_H]
            for i, d in enumerate(DELTAS_C)]
    print_table("Fig. 7 — Voc of 6 series TEGs vs dT at each flow rate",
                ["point"] + [f"{f:.0f} L/H" for f in FLOWS_L_PER_H],
                rows)

    # Linearity: the increments of each curve are constant.
    for flow in FLOWS_L_PER_H:
        diffs = np.diff([v for v in curves[flow] if v > 0.0])
        assert np.allclose(diffs, diffs[0], rtol=1e-6)

    # Flow ordering: more flow, slightly more voltage.
    at_20 = [curves[flow][4] for flow in FLOWS_L_PER_H]
    assert all(b > a for a, b in zip(at_20, at_20[1:]))

    # ... but the effect is small (paper: "too little to be worth").
    assert (at_20[-1] - at_20[0]) / at_20[0] < 0.10

    # Magnitude anchor: Eq. 3 x 6 at the reference flow.
    assert curves[200.0][4] == 6 * 0.0448 * 20.0 - 6 * 0.0051

"""E-F14 — Fig. 14: electricity generation under three traces x two schemes.

The headline experiment.  Replays the drastic / irregular / common traces
under TEG_Original and TEG_LoadBalance and prints the per-trace average
and peak per-CPU generation next to the paper's numbers.

Paper shape to hold: LoadBalance wins on every trace; averages ~3.7 W
(Original) and ~4.2 W (LoadBalance); overall improvement ~13 %; high
utilisation coincides with low generation.
"""

import numpy as np

import repro

from bench_utils import print_table

PAPER = {
    # trace: (orig avg, orig peak, balance avg, balance peak)
    "drastic": (3.725, 4.210, 4.349, 4.595),
    "irregular": (3.772, 3.935, 4.203, 4.554),
    "common": (3.586, 4.035, 3.979, 4.082),
}


def run_all(system, traces):
    return {name: system.compare(trace)
            for name, trace in traces.items()}


def test_bench_fig14_generation(benchmark, h2p_system, eval_traces):
    comparisons = benchmark.pedantic(
        run_all, args=(h2p_system, eval_traces), rounds=1, iterations=1)

    rows = []
    for name, comparison in comparisons.items():
        paper = PAPER[name]
        rows.append([
            name,
            comparison.baseline.average_generation_w, paper[0],
            comparison.baseline.peak_generation_w, paper[1],
            comparison.optimised.average_generation_w, paper[2],
            comparison.optimised.peak_generation_w, paper[3],
        ])
    orig_avg = np.mean([c.baseline.average_generation_w
                        for c in comparisons.values()])
    bal_avg = np.mean([c.optimised.average_generation_w
                       for c in comparisons.values()])
    rows.append(["AVERAGE", orig_avg, 3.694, float("nan"), float("nan"),
                 bal_avg, 4.177, float("nan"), float("nan")])
    print_table(
        "Fig. 14 — per-CPU generation (W): measured vs paper",
        ["trace", "orig avg", "(paper)", "orig peak", "(paper)",
         "bal avg", "(paper)", "bal peak", "(paper)"],
        rows)
    improvement = (bal_avg - orig_avg) / orig_avg
    print(f"workload balancing improvement: {improvement:.1%} "
          f"(paper: 13.08%)")

    # Shape assertions.
    for name, comparison in comparisons.items():
        assert comparison.generation_improvement > 0.0, name
        assert comparison.baseline.anti_correlation < 0.0, name
        assert comparison.optimised.anti_correlation < 0.0, name
        assert comparison.baseline.total_safety_violations == 0, name
    assert abs(orig_avg - 3.694) < 0.5
    assert abs(bal_avg - 4.177) < 0.5
    assert 0.05 < improvement < 0.30

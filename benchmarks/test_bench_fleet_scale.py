"""Fleet-scale sharded simulation benchmark (the ISSUE 6 scenario).

One month-class synthetic-Google trace — 12,500 servers x 8,900
five-minute steps, ~111 M plane cells — is pushed through the sharded
engine path and through the unsharded whole-trace kernel.  The bench
asserts three things:

* the sharded result is bit-identical to the unsharded kernel at full
  fleet scale (parity at the scale the shard layer exists for);
* sharded throughput clears :data:`FLEET_CELLS_PER_S_FLOOR` (a
  deliberately generous fraction of the measured figure, so only real
  regressions trip it);
* the pickled worker payload stays under :data:`MAX_PAYLOAD_BYTES`
  even though the trace behind it is ~890 MB — workers slice the one
  shared-memory segment, they never receive trace data by value.

``measure_fleet_throughput`` is shared with
``benchmarks/check_engine_baseline.py --fleet``, which compares fresh
numbers against the committed ``BENCH_fleet.json`` baseline in CI.
"""

import pickle
import time

import pytest

from repro.core.config import teg_original
from repro.core.engine import (
    BatchSimulationEngine,
    SharedTraceRef,
    SimulationJob,
    simulate,
)
from repro.core.shard import (
    DEFAULT_SHARD_SERVERS,
    DEFAULT_SHARD_STEPS,
    _ShardPayload,
    plan_shards,
    prime_decisions,
)
from repro.workloads.synthetic import common_trace

from bench_utils import print_table

#: The acceptance scenario: a synthetic-Google fleet, month-class run.
FLEET_TRACE_KWARGS = dict(n_servers=12500, duration_s=8900 * 300.0,
                          interval_s=300.0, seed=7)

#: Sharded throughput floor in plane cells per second.  Measured
#: ~3.5 M cells/s on a single-core developer container; the floor
#: leaves ~7x headroom for slow CI runners.
FLEET_CELLS_PER_S_FLOOR = 0.5e6

#: Hard ceiling on one pickled worker payload.  The trace plane is
#: ~890 MB; the payload carries a shared-memory window reference and
#: the primed decision table (bounded by the policy's quantisation),
#: so 64 KiB is already generous.
MAX_PAYLOAD_BYTES = 64 * 1024


def fleet_payload_bytes(trace, config, primed):
    """Pickled size of the first worker payload for ``trace``."""
    specs = plan_shards(trace.n_steps, trace.n_servers,
                        config.circulation_size,
                        shard_servers=DEFAULT_SHARD_SERVERS,
                        shard_steps=DEFAULT_SHARD_STEPS)
    spec = specs[0]
    ref = SharedTraceRef(shm_name="bench-fleet-segment",
                         shape=(trace.n_steps, trace.n_servers),
                         dtype=str(trace.utilisation.dtype),
                         interval_s=trace.interval_s,
                         name=trace.name,
                         row_start=spec.step_start,
                         row_stop=spec.step_stop,
                         col_start=spec.server_start,
                         col_stop=spec.server_stop)
    payload = _ShardPayload(trace_ref=ref, spec=spec, config=config,
                            cpu_model=None, teg_module=None,
                            faults=None, cache_resolution=0.005,
                            decisions=primed)
    return len(pickle.dumps(payload)), len(specs)


def measure_fleet_throughput(rounds: int = 1) -> dict:
    """Sharded vs unsharded kernel throughput at 12,500 x 8,900 scale.

    Returns a plain dict so the baseline checker can serialise it.
    Bit-identity between the two paths is asserted here, so a
    fast-but-wrong shard merge can never post a good number.
    """
    trace = common_trace(**FLEET_TRACE_KWARGS)
    config = teg_original()
    cells = trace.n_steps * trace.n_servers

    primed = prime_decisions(trace, config)
    payload_bytes, n_payloads = fleet_payload_bytes(trace, config,
                                                    primed)
    assert payload_bytes < MAX_PAYLOAD_BYTES, (
        f"worker payload is {payload_bytes} bytes for a "
        f"{trace.utilisation.nbytes >> 20} MiB trace — the window "
        f"slicing is no longer by reference")

    best_unsharded = None
    unsharded = None
    for _ in range(rounds):
        started = time.perf_counter()
        unsharded = simulate(trace, config, mode="kernel")
        elapsed = time.perf_counter() - started
        best_unsharded = (elapsed if best_unsharded is None
                          else min(best_unsharded, elapsed))

    best_sharded = None
    sharded = None
    with BatchSimulationEngine(prefer="process", shard=True) as engine:
        for _ in range(rounds):
            started = time.perf_counter()
            batch = engine.run([SimulationJob(trace=trace,
                                              config=config)])
            elapsed = time.perf_counter() - started
            best_sharded = (elapsed if best_sharded is None
                            else min(best_sharded, elapsed))
            assert not batch.failures
            sharded = batch.results[0]

    assert sharded.records == unsharded.records
    assert sharded.violations == unsharded.violations
    assert sharded.metrics.n_shards == n_payloads

    return {
        "trace": dict(FLEET_TRACE_KWARGS),
        "n_steps": trace.n_steps,
        "n_servers": trace.n_servers,
        "cells": cells,
        "n_shards": sharded.metrics.n_shards,
        "payload_bytes": payload_bytes,
        "trace_bytes": trace.utilisation.nbytes,
        "sharded_cells_per_s": round(cells / best_sharded, 1),
        "unsharded_cells_per_s": round(cells / best_unsharded, 1),
        "sharded_steps_per_s": round(trace.n_steps / best_sharded, 1),
        "sharded_vs_unsharded": round(best_unsharded / best_sharded, 2),
    }


@pytest.mark.slow
@pytest.mark.benchmark
def test_bench_fleet_scale_sharded(benchmark):
    report = benchmark.pedantic(measure_fleet_throughput,
                                rounds=1, iterations=1)
    print_table(
        "Fleet-scale sharded engine — 12,500 servers x 8,900 steps",
        ["metric", "value"],
        [
            ["shards", report["n_shards"]],
            ["payload (bytes)", report["payload_bytes"]],
            ["trace (MiB)", report["trace_bytes"] >> 20],
            ["sharded Mcells/s",
             round(report["sharded_cells_per_s"] / 1e6, 2)],
            ["unsharded Mcells/s",
             round(report["unsharded_cells_per_s"] / 1e6, 2)],
            ["sharded/unsharded", report["sharded_vs_unsharded"]],
        ])
    assert report["sharded_cells_per_s"] >= FLEET_CELLS_PER_S_FLOOR, (
        f"sharded throughput {report['sharded_cells_per_s']:.0f} "
        f"cells/s below the {FLEET_CELLS_PER_S_FLOOR:.0f} floor")

"""Checkpoint overhead and resume-speed benchmark (ISSUE 7).

Three runs of the same sharded scenario pin the checkpoint layer's
cost model:

* **plain** — ``simulate_sharded`` with no checkpoint directory: the
  reference throughput (checkpoint-off overhead at fleet scale is
  guarded separately by ``check_engine_baseline.py --fleet``);
* **checkpointed** — the same run persisting every shard as it
  completes (atomic write + fsync per shard), bounded to at most
  :data:`MAX_CHECKPOINT_OVERHEAD` of the plain wall time;
* **resumed** — a rerun against the populated directory, which must
  load every shard (``shards_resumed == n_shards``), produce the
  bit-identical result, and never be slower than computing from
  scratch.
"""

import tempfile
import time
from pathlib import Path

import pytest

from repro.core.config import teg_original
from repro.core.shard import simulate_sharded
from repro.workloads.synthetic import common_trace

from bench_utils import print_table

#: A mid-size scenario: 2,000 steps x 400 servers (800 k plane cells),
#: split into a 4 x 4 = 16-shard grid.
CKPT_TRACE_KWARGS = dict(n_servers=400, duration_s=2000 * 300.0,
                         interval_s=300.0, seed=11)
CKPT_SHARD_KWARGS = dict(shard_servers=100, shard_steps=500)

#: Persisting shards may cost at most this fraction of the plain wall
#: time (generous: the payload is a few MB of columnar planes and CI
#: disks are slow, but writing must never dominate the compute).
MAX_CHECKPOINT_OVERHEAD = 1.0


def measure_checkpoint_overhead(rounds: int = 3) -> dict:
    """Plain vs checkpointed vs resumed wall time on one scenario.

    Returns a plain dict; resume bit-identity and full shard reuse are
    asserted here, so a fast-but-wrong resume can never post a good
    number.
    """
    trace = common_trace(**CKPT_TRACE_KWARGS)
    config = teg_original()
    cells = trace.n_steps * trace.n_servers

    best_plain = None
    plain = None
    for _ in range(rounds):
        started = time.perf_counter()
        plain = simulate_sharded(trace, config, **CKPT_SHARD_KWARGS)
        elapsed = time.perf_counter() - started
        best_plain = (elapsed if best_plain is None
                      else min(best_plain, elapsed))

    with tempfile.TemporaryDirectory() as tmp:
        best_cold = None
        last_dir = None
        for index in range(rounds):
            directory = Path(tmp) / f"cold-{index}"
            started = time.perf_counter()
            cold = simulate_sharded(trace, config, **CKPT_SHARD_KWARGS,
                                    checkpoint=directory)
            elapsed = time.perf_counter() - started
            best_cold = (elapsed if best_cold is None
                         else min(best_cold, elapsed))
            last_dir = directory
        assert cold.records == plain.records
        assert cold.metrics.shards_resumed == 0

        best_resume = None
        resumed = None
        for _ in range(rounds):
            started = time.perf_counter()
            resumed = simulate_sharded(trace, config,
                                       **CKPT_SHARD_KWARGS,
                                       checkpoint=last_dir)
            elapsed = time.perf_counter() - started
            best_resume = (elapsed if best_resume is None
                           else min(best_resume, elapsed))

    assert resumed.records == plain.records
    assert resumed.violations == plain.violations
    n_shards = plain.metrics.n_shards
    assert resumed.metrics.shards_resumed == n_shards

    return {
        "trace": dict(CKPT_TRACE_KWARGS),
        "cells": cells,
        "n_shards": n_shards,
        "plain_cells_per_s": round(cells / best_plain, 1),
        "checkpointed_cells_per_s": round(cells / best_cold, 1),
        "resumed_cells_per_s": round(cells / best_resume, 1),
        "checkpoint_overhead": round(best_cold / best_plain - 1.0, 3),
        "resume_speedup": round(best_plain / best_resume, 2),
    }


@pytest.mark.benchmark
def test_bench_checkpoint_overhead(benchmark):
    report = benchmark.pedantic(measure_checkpoint_overhead,
                                rounds=1, iterations=1)
    print_table(
        "Checkpoint overhead — 2,000 steps x 400 servers, 16 shards",
        ["variant", "Mcells/s"],
        [
            ["plain", round(report["plain_cells_per_s"] / 1e6, 2)],
            ["checkpointed (cold)",
             round(report["checkpointed_cells_per_s"] / 1e6, 2)],
            ["resumed",
             round(report["resumed_cells_per_s"] / 1e6, 2)],
        ])
    assert report["checkpoint_overhead"] <= MAX_CHECKPOINT_OVERHEAD, (
        f"persisting shards costs {report['checkpoint_overhead']:.0%} "
        f"of the plain wall time (cap {MAX_CHECKPOINT_OVERHEAD:.0%})")
    assert report["resume_speedup"] >= 1.0, (
        f"resuming ({report['resumed_cells_per_s']:.0f} cells/s) is "
        f"slower than computing from scratch "
        f"({report['plain_cells_per_s']:.0f} cells/s)")

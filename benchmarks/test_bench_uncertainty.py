"""E-UQ — error bars on the paper's headline numbers.

The paper reports point estimates (4.177 W, 14.23 % PRE, 0.57 % TCO
reduction) without uncertainty.  This benchmark propagates plausible
1-sigma uncertainty in the calibrated fits (Eqs. 3/6/20 and the thermal
calibration) through the evaluation pipeline by Monte Carlo and prints
90 % confidence intervals.

Shape: the paper's point estimates fall inside the intervals; the TCO
reduction stays sub-percent across the whole parameter cloud, i.e. the
paper's "up to 0.57 %" conclusion is robust to fit uncertainty.
"""

from repro.uncertainty import MonteCarloStudy
from repro.workloads.synthetic import common_trace

from bench_utils import print_table


def run_study():
    trace = common_trace(n_servers=40, duration_s=12 * 3600.0, seed=23)
    study = MonteCarloStudy(seed=11)
    return (study.run(trace, n_draws=200),
            study.run_improvement(trace, n_draws=100))


def test_bench_uncertainty(benchmark):
    result, improvements = benchmark.pedantic(run_study, rounds=1,
                                              iterations=1)

    summary = result.summary(confidence=0.90)
    print_table(
        "E-UQ — 90% confidence intervals from 200 Monte Carlo draws",
        ["metric", "median", "low", "high", "paper"],
        [
            ["generation (W/CPU)", summary["generation_w"]["median"],
             summary["generation_w"]["low"],
             summary["generation_w"]["high"], 3.979],
            ["PRE", summary["pre"]["median"], summary["pre"]["low"],
             summary["pre"]["high"], 0.128],
            ["TCO reduction", summary["tco_reduction"]["median"],
             summary["tco_reduction"]["low"],
             summary["tco_reduction"]["high"], 0.0057],
        ])

    # The paper's generation headline is inside (or adjacent to) the
    # interval.
    low, high = result.interval("generation_w", 0.95)
    assert low < 4.2 and high > 3.7
    # The TCO conclusion is robust: sub-percent across the whole cloud.
    tco_low, tco_high = result.interval("tco_reduction", 0.99)
    assert 0.0 < tco_low and tco_high < 0.01
    # Relative spread on generation is moderate (the fits are decent).
    spread = (high - low) / summary["generation_w"]["median"]
    assert spread < 0.35

    import numpy as np

    print(f"balancing improvement across 100 draws: median "
          f"{np.median(improvements):.1%}, "
          f"5th pct {np.percentile(improvements, 5):.1%} — "
          f"positive in {np.mean(improvements > 0):.0%} of draws")
    # The headline conclusion is robust: balancing wins in every draw.
    assert np.all(improvements > 0.0)

"""E-F3 — Fig. 3: a TEG sandwiched under the CPU can hardly conduct heat.

Regenerates the 50-minute, four-phase (0/10/20/0 % load) transient for
both CPU branches and prints the temperature/voltage summary per phase.
Paper shape: CPU0 (TEG under the plate) approaches the 78.9 degC limit at
just 20 % load while CPU1 stays near the coolant temperature, and the TEG
voltage tracks CPU0's temperature.
"""

import numpy as np

from repro.constants import CPU_MAX_OPERATING_TEMP_C
from repro.teg.placement import FIG3_PHASES, PlacementStudy

from bench_utils import print_table


def run_fig3():
    return PlacementStudy().run(FIG3_PHASES, output_dt_s=10.0)


def test_bench_fig3_placement(benchmark):
    outcome = benchmark.pedantic(run_fig3, rounds=3, iterations=1)

    rows = []
    start = 0.0
    for (duration, load) in FIG3_PHASES:
        end = start + duration
        window = (outcome.times_s >= start) & (outcome.times_s < end)
        rows.append([
            f"{load:.0%} load",
            float(outcome.sandwiched.temperatures_c["cpu"][window].max()),
            float(outcome.direct.temperatures_c["cpu"][window].max()),
            float(outcome.teg_voltage_v[window].max()),
        ])
        start = end
    print_table(
        "Fig. 3 — TEG sandwich vs direct cold plate (per load phase)",
        ["phase", "CPU0 (TEG) peak C", "CPU1 peak C", "TEG Voc V"],
        rows)
    print(f"max operating temperature: {CPU_MAX_OPERATING_TEMP_C} C; "
          f"CPU0 peak {outcome.peak_sandwiched_cpu_c:.1f} C "
          f"(paper: 'very close to the maximum')")

    assert outcome.sandwiched_near_limit
    assert outcome.peak_direct_cpu_c < 50.0
    corr = np.corrcoef(outcome.sandwiched.temperatures_c["cpu"],
                       outcome.teg_voltage_v)[0, 1]
    assert corr > 0.95

"""E-AB8 — the Sec. II-C argument: H2P vs district heating vs CCHP.

Values the three reuse routes for the same 1,000-server heat stream in
three climates.  The paper's qualitative claims, made quantitative:

* district heating holds up only in high-latitude climates and collapses
  to a loss in the tropics ("heat is not always in great demand from
  season to season, from district to district");
* H2P's value is identical in every climate (electricity, not heat);
* CCHP is a co-located generator whose economics barely touch the
  datacenter's low-grade waste heat.
"""

from repro.environment import CLIMATES
from repro.heatreuse.comparison import ReuseComparison

from bench_utils import print_table


def sweep():
    rows = {}
    for climate_name in ("stockholm", "hangzhou", "singapore"):
        comparison = ReuseComparison(climate=CLIMATES[climate_name])
        rows[climate_name] = {
            option.name: option for option in comparison.all_options()}
    return rows


def test_bench_reuse_routes(benchmark):
    results = benchmark.pedantic(sweep, rounds=3, iterations=1)

    table_rows = []
    for climate_name, options in results.items():
        dh = options["district heating"]
        h2p = options["H2P (TEG recycling)"]
        cchp = options["CCHP"]
        table_rows.append([
            climate_name,
            h2p.annual_value_usd,
            dh.annual_value_usd,
            dh.utilisation,
            cchp.annual_value_usd,
        ])
    print_table(
        "E-AB8 — annual value of each reuse route, 1,000 servers "
        "($/year)",
        ["climate", "H2P $", "district $", "DH heat util",
         "CCHP $"],
        table_rows)

    h2p_values = [options["H2P (TEG recycling)"].annual_value_usd
                  for options in results.values()]
    dh_values = {name: options["district heating"].annual_value_usd
                 for name, options in results.items()}

    # H2P is climate-independent.
    assert max(h2p_values) - min(h2p_values) < 1.0
    # District heating degrades monotonically toward the tropics and
    # goes negative in Singapore.
    assert dh_values["stockholm"] > dh_values["hangzhou"] \
        > dh_values["singapore"]
    assert dh_values["singapore"] < 0.0
    # In the warm climates the paper targets, H2P beats the pipeline.
    assert h2p_values[0] > dh_values["hangzhou"]
    assert h2p_values[0] > dh_values["singapore"]

"""E-AB12 — serial vs parallel plumbing of a server group.

The prototype plumbs its CPUs in parallel (Sec. III-B).  This ablation
evaluates the serial alternative — chaining the cold plates so one big
TEG module harvests the hot chain outlet — under a fair comparison:
both arrangements pushed to the same T_safe, with equal TEG capital.

Findings the benchmark asserts:

* naive (same-inlet) serial looks great: a much hotter chain outlet and
  more TEG power — but it overheats the downstream CPUs;
* at equal safety and uniform load the two arrangements harvest the
  same power, so parallel wins on robustness and pressure drop — the
  paper's implicit choice, justified;
* in a serial chain, *ordering* matters: the busy server belongs at the
  cold end (+≥20 % over busy-last).
"""

import numpy as np

from repro.cooling.plumbing import PlumbingStudy
from repro.thermal.cpu_model import CoolingSetting

from bench_utils import print_table

FLOW = 100.0
SAFE_C = 62.0
UNIFORM = np.full(5, 0.25)
SKEWED = np.array([0.9, 0.2, 0.2, 0.2, 0.2])


def run_study():
    study = PlumbingStudy()
    rows = []

    # Naive comparison at the same 48 C inlet.
    naive_setting = CoolingSetting(flow_l_per_h=FLOW, inlet_temp_c=48.0)
    for outcome in study.compare(UNIFORM, naive_setting).values():
        rows.append([f"{outcome.arrangement} @48C inlet",
                     outcome.max_cpu_temp_c, outcome.final_outlet_c,
                     outcome.generation_w])

    # Fair comparison at T_safe.
    serial_inlet = study.safe_serial_inlet(UNIFORM, FLOW, SAFE_C)
    serial = study.serial(UNIFORM, CoolingSetting(
        flow_l_per_h=FLOW, inlet_temp_c=serial_inlet))
    parallel_inlet = study.cpu_model.inlet_for_cpu_temp(
        float(UNIFORM[0]), FLOW, SAFE_C)
    parallel = study.parallel(UNIFORM, CoolingSetting(
        flow_l_per_h=FLOW, inlet_temp_c=parallel_inlet))
    rows.append(["serial @T_safe", serial.max_cpu_temp_c,
                 serial.final_outlet_c, serial.generation_w])
    rows.append(["parallel @T_safe", parallel.max_cpu_temp_c,
                 parallel.final_outlet_c, parallel.generation_w])

    # Ordering study on a skewed group.
    ordering = {}
    for name, utils in (("busy-first", SKEWED),
                        ("busy-last", SKEWED[::-1].copy())):
        inlet = study.safe_serial_inlet(utils, FLOW, SAFE_C)
        outcome = study.serial(utils, CoolingSetting(
            flow_l_per_h=FLOW, inlet_temp_c=inlet))
        ordering[name] = outcome
        rows.append([f"serial {name} @T_safe", outcome.max_cpu_temp_c,
                     outcome.final_outlet_c, outcome.generation_w])
    return rows, serial, parallel, ordering


def test_bench_plumbing(benchmark):
    rows, serial, parallel, ordering = benchmark.pedantic(
        run_study, rounds=3, iterations=1)

    print_table(
        "E-AB12 — serial vs parallel plumbing (5 servers, equal TEG "
        "capital)",
        ["arrangement", "max CPU C", "chain outlet C", "TEG W (group)"],
        rows)

    naive_serial = rows[1]
    naive_parallel = rows[0]
    # Naive serial harvests more but runs hotter.
    assert naive_serial[3] > naive_parallel[3]
    assert naive_serial[1] > naive_parallel[1]
    # Fair comparison: a tie in generation — parallel wins on other
    # grounds (per-CPU independence), vindicating the paper's choice.
    assert abs(serial.generation_w - parallel.generation_w) \
        / parallel.generation_w < 0.02
    # Ordering: busy-first chains harvest substantially more.
    assert ordering["busy-first"].generation_w > \
        1.2 * ordering["busy-last"].generation_w

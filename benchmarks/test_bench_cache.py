"""Result-cache benchmark (ISSUE 8): warm hits vs recompute at scale.

The acceptance scenario is the fleet-scale trace from
``test_bench_fleet_scale`` — 12,500 servers x 8,900 five-minute steps,
~111 M plane cells — run through ``simulate_sharded`` four ways:

* **direct** — result cache explicitly off (``result_cache=False``):
  the recompute reference, and the figure the cache-off overhead
  envelope in ``check_engine_baseline.py --cache`` guards;
* **kernel** — the unsharded whole-trace kernel, measured in the same
  process as a machine normaliser (it carries no cache plumbing, so a
  uniformly slow runner cancels out of the envelope ratio);
* **cold** — a fresh cache directory: compute + store;
* **warm** — the same directory again: the run must be served from the
  cache, bit-identical to the direct recompute, and at least
  :data:`MIN_WARM_SPEEDUP` x faster than computing.

``measure_cache_throughput`` is shared with
``benchmarks/check_engine_baseline.py --cache``, which compares fresh
numbers against the committed ``BENCH_cache.json`` baseline in CI.
"""

import tempfile
import time
from pathlib import Path

import pytest

from repro.core.config import teg_original
from repro.core.engine import simulate
from repro.core.shard import simulate_sharded
from repro.workloads.synthetic import common_trace

from bench_utils import print_table
from test_bench_fleet_scale import FLEET_TRACE_KWARGS

#: A repeated fleet-scale run answered from the cache must be at least
#: this many times faster than recomputing it (the ISSUE 8 acceptance
#: floor; measured ~100x+ — the entry is a ~1 MB columnar npz while the
#: recompute chews through ~111 M plane cells).
MIN_WARM_SPEEDUP = 20.0


def measure_cache_throughput(rounds: int = 2) -> dict:
    """Direct vs cold vs warm wall time on the fleet-scale scenario.

    Returns a plain dict so the baseline checker can serialise it.
    Warm-hit bit-identity is asserted here, so a fast-but-wrong cache
    can never post a good number.
    """
    trace = common_trace(**FLEET_TRACE_KWARGS)
    config = teg_original()
    cells = trace.n_steps * trace.n_servers

    best_direct = None
    direct = None
    for _ in range(rounds):
        started = time.perf_counter()
        direct = simulate_sharded(trace, config, result_cache=False)
        elapsed = time.perf_counter() - started
        best_direct = (elapsed if best_direct is None
                       else min(best_direct, elapsed))

    best_kernel = None
    for _ in range(rounds):
        started = time.perf_counter()
        kernel = simulate(trace, config, mode="kernel",
                          result_cache=False)
        elapsed = time.perf_counter() - started
        best_kernel = (elapsed if best_kernel is None
                       else min(best_kernel, elapsed))
    assert kernel.records == direct.records

    with tempfile.TemporaryDirectory() as tmp:
        directory = Path(tmp) / "cache"
        started = time.perf_counter()
        cold = simulate_sharded(trace, config, result_cache=directory)
        cold_elapsed = time.perf_counter() - started
        assert not cold.metrics.result_cache_hit
        assert cold.records == direct.records

        entry_bytes = sum(p.stat().st_size for p in
                          (directory / "results").iterdir())

        best_warm = None
        warm = None
        for _ in range(max(rounds, 3)):
            started = time.perf_counter()
            warm = simulate_sharded(trace, config,
                                    result_cache=directory)
            elapsed = time.perf_counter() - started
            best_warm = (elapsed if best_warm is None
                         else min(best_warm, elapsed))
        assert warm.metrics.result_cache_hit
        assert warm.records == direct.records
        assert warm.violations == direct.violations

    return {
        "trace": dict(FLEET_TRACE_KWARGS),
        "cells": cells,
        "n_steps": trace.n_steps,
        "n_servers": trace.n_servers,
        "entry_bytes": entry_bytes,
        "direct_cells_per_s": round(cells / best_direct, 1),
        "kernel_cells_per_s": round(cells / best_kernel, 1),
        "cold_cells_per_s": round(cells / cold_elapsed, 1),
        "warm_cells_per_s": round(cells / best_warm, 1),
        "store_overhead": round(cold_elapsed / best_direct - 1.0, 3),
        "warm_speedup": round(best_direct / best_warm, 1),
    }


@pytest.mark.slow
@pytest.mark.benchmark
def test_bench_cache_warm_hits(benchmark):
    report = benchmark.pedantic(measure_cache_throughput,
                                rounds=1, iterations=1)
    print_table(
        "Result cache — 12,500 servers x 8,900 steps",
        ["metric", "value"],
        [
            ["entry (KiB)", report["entry_bytes"] >> 10],
            ["direct Mcells/s",
             round(report["direct_cells_per_s"] / 1e6, 2)],
            ["cold (store) Mcells/s",
             round(report["cold_cells_per_s"] / 1e6, 2)],
            ["warm (hit) Mcells/s",
             round(report["warm_cells_per_s"] / 1e6, 2)],
            ["store overhead", f"{report['store_overhead']:.1%}"],
            ["warm speedup", f"{report['warm_speedup']:.0f}x"],
        ])
    assert report["warm_speedup"] >= MIN_WARM_SPEEDUP, (
        f"cache hit is only {report['warm_speedup']:.1f}x faster than "
        f"recompute (floor {MIN_WARM_SPEEDUP:.0f}x)")
    assert report["store_overhead"] <= 1.0, (
        f"storing the result costs {report['store_overhead']:.0%} of "
        f"the direct wall time")

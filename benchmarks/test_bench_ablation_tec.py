"""E-AB3 — ablation: TEGs alongside TECs (Sec. VI-C1) and TEG-for-LED
sizing (Sec. VI-C2).

Quantifies the two "potential applications" the paper sketches:

* a hot-spot scenario where the hybrid cooling TEC fires, raising the
  outlet temperature and therefore the TEG output — how much of the TEC's
  draw does the extra generation recover?
* how many ordinary and high-power LEDs one server's module carries.
"""

from repro.applications.lighting import (
    HIGH_POWER_LED,
    LedLightingPlan,
    ORDINARY_LED,
)
from repro.applications.tec_powering import TegTecCoupling
from repro.thermal.cpu_model import CoolingSetting

from bench_utils import print_table

SETTING = CoolingSetting(flow_l_per_h=50.0, inlet_temp_c=48.0)
HOTSPOT_UTILISATION = 0.8
CURRENTS_A = (0.0, 1.0, 2.0, 3.0, 4.0, 5.0)


def sweep():
    coupling = TegTecCoupling()
    tec_rows = []
    for current in CURRENTS_A:
        outcome = coupling.evaluate(HOTSPOT_UTILISATION, SETTING, current)
        tec_rows.append([
            current, outcome.tec_power_w, outcome.tec_heat_pumped_w,
            outcome.outlet_rise_c, outcome.extra_generation_w,
            outcome.self_power_fraction,
        ])
        generation = outcome.generation_with_tec_w
    led_rows = [
        ["ordinary (0.05 W)",
         LedLightingPlan(led=ORDINARY_LED).leds_supported(generation)],
        ["high-power (1 W)",
         LedLightingPlan(led=HIGH_POWER_LED).leds_supported(generation)],
    ]
    return tec_rows, led_rows


def test_bench_ablation_tec_and_leds(benchmark):
    tec_rows, led_rows = benchmark(sweep)

    print_table(
        "Ablation E-AB3 — TEC drive vs TEG recovery during a hot spot "
        f"(u = {HOTSPOT_UTILISATION})",
        ["I (A)", "TEC W", "pumped W", "outlet rise C",
         "extra TEG W", "self-power frac"],
        tec_rows)
    print_table(
        "Sec. VI-C2 — LEDs one server's TEG module can power",
        ["LED class", "count"],
        led_rows)

    # The TEC raises the outlet temperature monotonically with drive.
    rises = [row[3] for row in tec_rows]
    assert all(b >= a for a, b in zip(rises, rises[1:]))

    # Extra generation is real but never pays for the TEC (TEGs are ~5 %
    # devices) — the coupling softens, not erases, the TEC's cost.
    for row in tec_rows[1:]:
        assert 0.0 < row[4] < row[1]
        assert 0.0 <= row[5] < 1.0

    # Paper: "3 W or more ... enough for some of the LEDs".
    led_counts = dict(led_rows)
    assert led_counts["ordinary (0.05 W)"] >= 40
    assert led_counts["high-power (1 W)"] >= 2

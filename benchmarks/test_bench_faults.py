"""E-AB13 — fault injection: what breaks silently, what breaks loudly.

Runs one circulation through targeted scenarios with injected hardware
faults and scores safety and generation against the healthy baseline:

* a supply-temperature sensor biased +4 °C — the *silent* failure: the
  TEG output goes UP (hotter water) while the CPUs quietly lose their
  safety margin; monitoring only the harvest will not catch it;
* a valve stuck cold — the *loud* failure: generation collapses
  immediately, the CPUs are safe;
* a chiller with a fouled condenser (COP × 0.7) — a pure economics
  failure: same temperatures, 43 % more chiller energy whenever it runs.
"""

import numpy as np

from repro.cooling.faults import DegradedChiller, FaultyCdu
from repro.cooling.loop import WaterCirculation
from repro.thermal.cpu_model import CoolingSetting
from repro.workloads.scenarios import ScenarioBuilder

from bench_utils import print_table

SETTING = CoolingSetting(flow_l_per_h=100.0, inlet_temp_c=50.0)
N_SERVERS = 10


def run_injections():
    trace = (ScenarioBuilder(n_servers=N_SERVERS, duration_s=6 * 3600.0)
             .background(0.3).sine(period_s=6 * 3600.0, amplitude=0.1)
             .noise(0.03, seed=3).build())
    variants = {
        "healthy": WaterCirculation(n_servers=N_SERVERS),
        "sensor +4C": WaterCirculation(
            n_servers=N_SERVERS,
            cdu=FaultyCdu(fault_mode="sensor_bias", sensor_bias_c=4.0)),
        "valve stuck cold": WaterCirculation(
            n_servers=N_SERVERS,
            cdu=FaultyCdu(fault_mode="stuck_temp", stuck_temp_c=35.0)),
        "chiller COP x0.7": WaterCirculation(
            n_servers=N_SERVERS,
            chiller=DegradedChiller(capacity_kw=200,
                                    degradation_factor=0.7)),
    }
    scores = {}
    for name, circulation in variants.items():
        generation = []
        max_temp = -np.inf
        for step in range(trace.n_steps):
            state = circulation.evaluate(trace.step(step), SETTING)
            generation.append(state.mean_generation_w)
            max_temp = max(max_temp, state.max_cpu_temp_c)
        scores[name] = {
            "generation_w": float(np.mean(generation)),
            "max_cpu_c": float(max_temp),
        }
    # Chiller economics probed directly (the warm set-point never
    # engages it in this scenario).
    healthy_chiller_w = variants["healthy"].chiller.\
        electricity_w_for_heat(10_000.0)
    fouled_chiller_w = variants["chiller COP x0.7"].chiller.\
        electricity_w_for_heat(10_000.0)
    return scores, healthy_chiller_w, fouled_chiller_w


def test_bench_fault_injection(benchmark):
    scores, healthy_w, fouled_w = benchmark.pedantic(
        run_injections, rounds=1, iterations=1)

    print_table(
        "E-AB13 — fault injection on one 10-server circulation "
        "(50 C set-point)",
        ["variant", "gen W/CPU", "max CPU C"],
        [[name, s["generation_w"], s["max_cpu_c"]]
         for name, s in scores.items()])
    print(f"chiller draw at 10 kW heat: healthy {healthy_w:.0f} W, "
          f"fouled {fouled_w:.0f} W (+{fouled_w / healthy_w - 1:.0%})")

    healthy = scores["healthy"]
    biased = scores["sensor +4C"]
    stuck = scores["valve stuck cold"]

    # The silent failure: MORE generation, LESS safety margin.
    assert biased["generation_w"] > healthy["generation_w"]
    assert biased["max_cpu_c"] > healthy["max_cpu_c"] + 3.0
    # The loud failure: generation collapses, CPUs run cold.
    assert stuck["generation_w"] < 0.6 * healthy["generation_w"]
    assert stuck["max_cpu_c"] < healthy["max_cpu_c"]
    # The economics failure: +43 % chiller energy per unit heat.
    assert fouled_w / healthy_w == 1.0 / 0.7

"""E-AB11 — reactive vs predictive cooling control under staleness.

The paper's controller reads utilisations at the start of each 5-minute
interval and holds the setting for the whole interval (Sec. V-B).  The
setting is therefore *stale* against whatever the load does next.  This
ablation replays a drastic trace and scores each policy's decision
against the FOLLOWING interval's load — the condition the setting
actually faces:

* the reactive baseline (the paper's scheme) banks on the T_safe margin;
* the predictive wrapper (EWMA forecast + sigma margin) buys extra
  headroom at a small generation cost.

Shape: the predictive policy cuts the frequency and depth of
beyond-band excursions on fast-moving traces while giving up only a few
percent of generation.
"""

import numpy as np

from repro.constants import CPU_SAFE_TEMP_C
from repro.control.cooling_policy import AnalyticPolicy
from repro.control.predictive import PredictivePolicy
from repro.teg.module import default_server_module
from repro.thermal.cpu_model import CpuThermalModel
from repro.workloads.forecast import EwmaForecaster
from repro.workloads.synthetic import drastic_trace

from bench_utils import print_table

N_SERVERS = 20  # one circulation
COLD_C = 20.0


def run_staleness_study():
    trace = drastic_trace(n_servers=N_SERVERS, duration_s=12 * 3600.0,
                          seed=31)
    model = CpuThermalModel()
    module = default_server_module()
    policies = {
        "reactive (paper)": AnalyticPolicy(),
        "predictive +1s": PredictivePolicy(
            forecaster=EwmaForecaster(alpha=0.7, margin_sigmas=1.0)),
        "predictive +2s": PredictivePolicy(
            forecaster=EwmaForecaster(alpha=0.7, margin_sigmas=2.0)),
    }
    scores = {}
    matrix = trace.utilisation
    for name, policy in policies.items():
        excursions = 0
        worst_over_c = 0.0
        generation = []
        for step in range(matrix.shape[0] - 1):
            decision = policy.decide(matrix[step])
            next_max = float(matrix[step + 1].max())
            temp_next = model.cpu_temp_c(next_max, decision.setting)
            band_top = CPU_SAFE_TEMP_C + 1.0
            if temp_next > band_top:
                excursions += 1
                worst_over_c = max(worst_over_c, temp_next - band_top)
            outlet = model.outlet_temp_c(
                float(matrix[step + 1].mean()), decision.setting)
            generation.append(module.generation_w(
                outlet, COLD_C, decision.setting.flow_l_per_h))
        scores[name] = {
            "excursions": excursions,
            "excursion_rate": excursions / (matrix.shape[0] - 1),
            "worst_over_c": worst_over_c,
            "generation_w": float(np.mean(generation)),
        }
    return scores


def test_bench_predictive_policy(benchmark):
    scores = benchmark.pedantic(run_staleness_study, rounds=1,
                                iterations=1)

    print_table(
        "E-AB11 — stale-setting safety vs generation (drastic trace, "
        "one 20-server circulation)",
        ["policy", "excursions", "rate", "worst over band C",
         "gen W/CPU"],
        [[name, s["excursions"], s["excursion_rate"], s["worst_over_c"],
          s["generation_w"]] for name, s in scores.items()])

    reactive = scores["reactive (paper)"]
    pred1 = scores["predictive +1s"]
    pred2 = scores["predictive +2s"]

    # The reactive baseline does suffer stale-setting excursions on a
    # drastic trace (they stay below the 78.9 C hardware limit thanks to
    # the T_safe derating — this is exactly why the paper derates).
    assert reactive["excursions"] > 0
    assert reactive["worst_over_c"] < 78.9 - CPU_SAFE_TEMP_C
    # Prediction monotonically buys safety...
    assert pred1["excursions"] <= reactive["excursions"]
    assert pred2["excursions"] <= pred1["excursions"]
    # ...at a bounded generation cost.
    assert pred2["generation_w"] > 0.85 * reactive["generation_w"]

"""E-AB6 — ablation: the hot-spot episode warm water cooling must survive.

Sec. II-B's motivating scenario, quantified: a 20 %→100 % load spike on a
server cooled with 52 °C water, under (a) no mitigation, (b) a chiller
that reacts after its minutes-long lag, and (c) the TEC of the hybrid
architecture firing within a second.

Paper shape: unprotected and chiller-only runs cross the 78.9 °C limit
(the chiller is simply too slow); the TEC absorbs the transient entirely,
at a bounded energy cost — which is what allows the inlet temperature to
be raised into the TEG-friendly band in the first place.
"""

from repro.constants import CPU_MAX_OPERATING_TEMP_C
from repro.cooling.hotspot import HotSpotScenario

from bench_utils import print_table


def run_episode():
    scenario = HotSpotScenario(spike_duration_s=300.0)
    return scenario.compare(duration_s=700.0, dt_s=0.5)


def test_bench_ablation_hotspot(benchmark):
    outcomes = benchmark.pedantic(run_episode, rounds=3, iterations=1)

    rows = []
    for strategy in ("none", "chiller", "tec"):
        outcome = outcomes[strategy]
        rows.append([
            strategy,
            outcome.peak_cpu_temp_c,
            "YES" if outcome.violation else "no",
            outcome.time_above_limit_s,
            outcome.tec_energy_j / 1000.0,
        ])
    print_table(
        "Ablation E-AB6 — 20%->100% spike at 52 C inlet "
        f"(limit {CPU_MAX_OPERATING_TEMP_C} C)",
        ["strategy", "peak CPU C", "violation", "time>limit s",
         "TEC energy kJ"],
        rows)

    assert outcomes["none"].violation
    assert outcomes["chiller"].violation
    assert not outcomes["tec"].violation
    # The chiller helps late (shorter violation than nothing at all)...
    assert outcomes["chiller"].time_above_limit_s \
        <= outcomes["none"].time_above_limit_s + 1e-9
    # ...but only the TEC eliminates it.
    assert outcomes["tec"].time_above_limit_s == 0.0
    assert outcomes["tec"].tec_energy_j > 0.0

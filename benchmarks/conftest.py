"""Shared helpers for the benchmark harness.

Every benchmark regenerates one table or figure of the paper and prints
the corresponding rows/series (run pytest with ``-s`` to see them).  Use
``pytest benchmarks/ --benchmark-only`` to execute the whole harness.
"""

from __future__ import annotations

import pytest


@pytest.fixture(scope="session")
def h2p_system():
    """One shared H2P system for all benchmarks."""
    import repro

    return repro.H2PSystem()


@pytest.fixture(scope="session")
def eval_traces():
    """The three evaluation traces at benchmark scale.

    400 servers keeps each full comparison under ~10 s while preserving
    the per-circulation statistics that drive the results (circulations
    are 20 servers, so 400 servers still average over 20 loops).
    """
    import repro

    return {name: repro.trace_by_name(name, n_servers=400)
            for name in ("drastic", "irregular", "common")}
